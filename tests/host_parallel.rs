//! Host-parallel determinism suite (PR-5 tentpole): running the real
//! compute closures across host threads must leave every simulated
//! observable — results, `SimReport` accounting, and the recorded trace —
//! bit-identical to the serial run.
//!
//! Every engine × workload × seeded fault/memory plan runs at host
//! thread counts {1, 2, 8} (via [`RunConfig::threads`]); the serial run
//! is the baseline. `set_deterministic_timing(true)` zeroes host-time
//! feedback into task costs so equality is exact.

use mdtask::prelude::*;
use netsim::chaos::plan_for_seed;
use std::sync::Arc;

/// Seeded chaos plans (deaths, stragglers, memory shrinks, lost fetches)
/// drawn from the same generator the fuzz harness uses.
const SEEDS: [u64; 2] = [7, 99_991];

const DEGREES: [Threads; 2] = [Threads::Fixed(2), Threads::Fixed(8)];

fn lf_system() -> (Arc<Vec<Vec3>>, LfConfig) {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 200,
            ..Default::default()
        },
        7,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 8,
            paper_atoms: 200,
            charge_io: true,
        },
    )
}

fn psa_system() -> (Arc<Vec<Trajectory>>, PsaConfig) {
    let spec = ChainSpec {
        n_atoms: 10,
        n_frames: 5,
        stride: 1,
        ..ChainSpec::default()
    };
    (
        Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 4, 42)),
        PsaConfig {
            groups: 2,
            charge_io: true,
        },
    )
}

fn chaos_cfg(death_window: (f64, f64)) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(2, 8);
    cfg.death_window_s = death_window;
    cfg
}

/// The fault/memory plans a given engine runs under: fault-free plus one
/// seeded chaos plan per seed, deaths placed inside the engine's
/// execution window.
fn plans(death_window: (f64, f64)) -> Vec<FaultPlan> {
    let mut out = vec![FaultPlan::none()];
    out.extend(
        SEEDS
            .iter()
            .map(|&s| plan_for_seed(&chaos_cfg(death_window), s)),
    );
    out
}

fn death_window(engine: Engine) -> (f64, f64) {
    match engine {
        Engine::Spark | Engine::Dask => (0.0, 3.0),
        Engine::Pilot => (0.0, 40.0),
        Engine::Mpi => (0.0, 1.5),
    }
}

fn rc_for(engine: Engine, approach: LfApproach, plan: FaultPlan) -> RunConfig {
    let mut rc = RunConfig::new(Cluster::new(laptop(), 2).with_faults(plan), engine)
        .approach(approach)
        .mpi_world(8)
        .trace(true);
    if engine == Engine::Mpi {
        rc = rc.retry_policy(RetryPolicy::new(4).with_detection_delay(0.25));
    }
    rc
}

fn assert_lf_identical(
    what: &str,
    base: &Result<LfOutput, String>,
    got: &Result<LfOutput, String>,
) {
    match (base, got) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.leaflet_sizes, b.leaflet_sizes, "{what}: leaflet sizes");
            assert_eq!(a.n_components, b.n_components, "{what}: components");
            assert_eq!(a.edges_found, b.edges_found, "{what}: edges");
            assert_eq!(a.shuffle_bytes, b.shuffle_bytes, "{what}: shuffle bytes");
            assert_eq!(a.tasks, b.tasks, "{what}: tasks");
            assert_eq!(a.report, b.report, "{what}: SimReport (incl. trace)");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{what}: error"),
        (a, b) => panic!("{what}: outcome diverged: {a:?} vs {b:?}"),
    }
}

/// Every engine × LF approach × plan: thread counts 2 and 8 reproduce
/// the serial run's output, report, and trace exactly.
#[test]
fn lf_reports_and_traces_identical_across_thread_counts() {
    mdtask::cluster::set_deterministic_timing(true);
    let (positions, cfg) = lf_system();
    for engine in Engine::ALL {
        // Pilot implements Approach 2 only; the knob is ignored there.
        let approaches: &[LfApproach] = if engine == Engine::Pilot {
            &[LfApproach::Task2D]
        } else {
            &LfApproach::ALL
        };
        for &approach in approaches {
            for plan in plans(death_window(engine)) {
                let run = |threads: Option<Threads>| {
                    let mut rc = rc_for(engine, approach, plan.clone());
                    if let Some(t) = threads {
                        rc = rc.threads(t);
                    }
                    run_lf(&rc, Arc::clone(&positions), &cfg).map_err(|e| format!("{e:?}"))
                };
                let serial = run(Some(Threads::Serial));
                for degree in DEGREES {
                    let what = format!("{engine:?}/{}/{degree}", approach.label());
                    assert_lf_identical(&what, &serial, &run(Some(degree)));
                }
                // And the process default (whatever MDTASK_THREADS says).
                assert_lf_identical(&format!("{engine:?}/default"), &serial, &run(None));
            }
        }
    }
}

/// Every engine × plan: the PSA Hausdorff matrix, report, and trace are
/// bit-identical at thread counts 2 and 8.
#[test]
fn psa_reports_and_traces_identical_across_thread_counts() {
    mdtask::cluster::set_deterministic_timing(true);
    let (ensemble, cfg) = psa_system();
    for engine in Engine::ALL {
        for plan in plans(death_window(engine)) {
            let run = |threads: Threads| {
                let rc = rc_for(engine, LfApproach::Task2D, plan.clone()).threads(threads);
                run_psa(&rc, Arc::clone(&ensemble), &cfg).map_err(|e| format!("{e:?}"))
            };
            let serial = run(Threads::Serial);
            for degree in DEGREES {
                let what = format!("{engine:?}/{degree}");
                match (&serial, &run(degree)) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.distances.as_slice(),
                            b.distances.as_slice(),
                            "{what}: matrix"
                        );
                        assert_eq!(a.report, b.report, "{what}: SimReport (incl. trace)");
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "{what}: error"),
                    (a, b) => panic!(
                        "{what}: outcome diverged: ok={} vs ok={}",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }
}

/// Deliberate memory pressure (both nodes capped at half the fault-free
/// peak) engages spill/evict/recompute paths; their accounting must not
/// depend on the host thread count.
#[test]
fn memory_pressure_accounting_identical_across_thread_counts() {
    mdtask::cluster::set_deterministic_timing(true);
    let (positions, cfg) = lf_system();
    for engine in [Engine::Spark, Engine::Dask, Engine::Pilot] {
        let clean = run_lf(
            &rc_for(engine, LfApproach::Broadcast1D, FaultPlan::none()),
            Arc::clone(&positions),
            &cfg,
        )
        .expect("fault-free");
        let peak = clean
            .report
            .mem_high_water
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(2);
        let plan = FaultPlan::none()
            .shrink_memory(0, 0.0, peak / 2)
            .shrink_memory(1, 0.0, peak / 2);
        let run = |threads: Threads| {
            let rc = rc_for(engine, LfApproach::Broadcast1D, plan.clone()).threads(threads);
            run_lf(&rc, Arc::clone(&positions), &cfg).map_err(|e| format!("{e:?}"))
        };
        let serial = run(Threads::Serial);
        for degree in DEGREES {
            assert_lf_identical(
                &format!("{engine:?}/capped/{degree}"),
                &serial,
                &run(degree),
            );
        }
    }
}

/// The chaos fuzz harness itself (which fans plans out across host
/// threads) produces the same verdicts at every degree.
#[test]
fn chaos_fuzz_verdicts_identical_across_thread_counts() {
    mdtask::cluster::set_deterministic_timing(true);
    let (positions, cfg) = lf_system();
    let run_fuzz = || {
        let mut ccfg = chaos_cfg((0.0, 3.0));
        ccfg.plans = 16;
        ccfg.base_seed = 42;
        netsim::chaos::fuzz(&ccfg, |plan| {
            let rc = rc_for(Engine::Spark, LfApproach::ParallelCC, plan.clone());
            let out = run_lf(&rc, Arc::clone(&positions), &cfg).map_err(|e| format!("{e:?}"))?;
            let mut fp = netsim::chaos::Fingerprint::new();
            for &s in &out.leaflet_sizes {
                fp.write_usize(s);
            }
            fp.write_u64(out.edges_found);
            Ok(netsim::chaos::ChaosOutcome {
                fingerprint: fp.finish(),
                report: out.report,
            })
        })
    };
    let serial = netsim::parallel::with_degree(Threads::Serial, run_fuzz);
    for degree in DEGREES {
        let got = netsim::parallel::with_degree(degree, run_fuzz);
        assert_eq!(serial.plans_run, got.plans_run, "{degree}: plans run");
        assert_eq!(
            serial.violations.len(),
            got.violations.len(),
            "{degree}: violation count"
        );
        for (a, b) in serial.violations.iter().zip(&got.violations) {
            assert_eq!(a.seed, b.seed, "{degree}: violation seed");
            assert_eq!(a.message, b.message, "{degree}: violation message");
        }
    }
}
