//! Chaos equivalence sweep (PR-3 satellite): every engine, run under 100+
//! seeded random fault plans, must produce results identical to its
//! fault-free run — node deaths, stragglers, and lost fetches may cost
//! virtual time but never change the data.
//!
//! Plans come from `netsim::chaos::plan_for_seed`, the same generator the
//! chaos-fuzzing harness uses, so any seed that fails here is directly
//! replayable through the harness.

use mdtask::prelude::*;
use netsim::chaos::plan_for_seed;
use proptest::prelude::*;
use std::sync::Arc;

const CASES: u32 = 110;

fn lf_system() -> (Arc<Vec<Vec3>>, LfConfig) {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 200,
            ..Default::default()
        },
        7,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 8,
            paper_atoms: 200,
            charge_io: false,
        },
    )
}

fn psa_system() -> (Arc<Vec<Trajectory>>, PsaConfig) {
    let spec = ChainSpec {
        n_atoms: 10,
        n_frames: 5,
        stride: 1,
        ..ChainSpec::default()
    };
    (
        Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 4, 42)),
        PsaConfig {
            groups: 2,
            charge_io: true,
        },
    )
}

/// Plans whose deaths land inside a task engine's execution window
/// (startup is ~0.2–1 s; jobs finish within a few seconds).
fn chaos_cfg(death_window: (f64, f64)) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(2, 8);
    cfg.death_window_s = death_window;
    cfg
}

fn cluster(plan: FaultPlan) -> Cluster {
    Cluster::new(laptop(), 2).with_faults(plan)
}

fn lf_matches(clean: &LfOutput, got: &LfOutput) -> Result<(), String> {
    if got.leaflet_sizes != clean.leaflet_sizes {
        return Err(format!(
            "leaflet sizes diverged: {:?} vs {:?}",
            got.leaflet_sizes, clean.leaflet_sizes
        ));
    }
    if got.n_components != clean.n_components {
        return Err("component count diverged".into());
    }
    if got.edges_found != clean.edges_found {
        return Err("edge count diverged".into());
    }
    Ok(())
}

/// The policy the MPI chaos runs recover under.
fn mpi_chaos_policy() -> RetryPolicy {
    RetryPolicy::new(4).with_detection_delay(0.25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Spark LF under seeded chaos matches the fault-free run.
    #[test]
    fn spark_lf_matches_fault_free_under_chaos(seed in 0u64..u64::MAX / 2) {
        let (positions, cfg) = lf_system();
        let rc = |plan| RunConfig::new(cluster(plan), Engine::Spark)
            .approach(LfApproach::ParallelCC);
        let clean = run_lf(&rc(FaultPlan::none()), Arc::clone(&positions), &cfg).unwrap();
        let plan = plan_for_seed(&chaos_cfg((0.0, 3.0)), seed);
        match run_lf(&rc(plan), Arc::clone(&positions), &cfg) {
            Ok(out) => prop_assert!(lf_matches(&clean, &out).is_ok(),
                "seed {seed}: {:?}", lf_matches(&clean, &out)),
            Err(e) => prop_assert!(false, "seed {seed}: spark errored: {e:?}"),
        }
    }

    /// Dask LF under seeded chaos matches the fault-free run.
    #[test]
    fn dask_lf_matches_fault_free_under_chaos(seed in 0u64..u64::MAX / 2) {
        let (positions, cfg) = lf_system();
        let rc = |plan| RunConfig::new(cluster(plan), Engine::Dask)
            .approach(LfApproach::Task2D);
        let clean = run_lf(&rc(FaultPlan::none()), Arc::clone(&positions), &cfg).unwrap();
        let plan = plan_for_seed(&chaos_cfg((0.0, 3.0)), seed);
        match run_lf(&rc(plan), Arc::clone(&positions), &cfg) {
            Ok(out) => prop_assert!(lf_matches(&clean, &out).is_ok(),
                "seed {seed}: {:?}", lf_matches(&clean, &out)),
            Err(e) => prop_assert!(false, "seed {seed}: dask errored: {e:?}"),
        }
    }

    /// MPI LF (checkpoint/restart policy) under seeded chaos matches the
    /// fault-free run.
    #[test]
    fn mpi_lf_matches_fault_free_under_chaos(seed in 0u64..u64::MAX / 2) {
        let (positions, cfg) = lf_system();
        let base = |plan| RunConfig::new(cluster(plan), Engine::Mpi)
            .approach(LfApproach::Broadcast1D)
            .mpi_world(16);
        let clean = run_lf(&base(FaultPlan::none()), Arc::clone(&positions), &cfg).unwrap();
        let plan = plan_for_seed(&chaos_cfg((0.0, 1.5)), seed);
        let got = run_lf(
            &base(plan).retry_policy(mpi_chaos_policy()),
            Arc::clone(&positions),
            &cfg,
        );
        match got {
            Ok(out) => prop_assert!(lf_matches(&clean, &out).is_ok(),
                "seed {seed}: {:?}", lf_matches(&clean, &out)),
            Err(e) => prop_assert!(false, "seed {seed}: mpi errored: {e:?}"),
        }
    }

    /// Spark PSA under seeded chaos reproduces the Hausdorff matrix
    /// bit-for-bit.
    #[test]
    fn spark_psa_matches_fault_free_under_chaos(seed in 0u64..u64::MAX / 2) {
        let (ensemble, cfg) = psa_system();
        let rc = |plan| RunConfig::new(cluster(plan), Engine::Spark);
        let clean = run_psa(&rc(FaultPlan::none()), Arc::clone(&ensemble), &cfg).unwrap();
        let plan = plan_for_seed(&chaos_cfg((0.0, 3.0)), seed);
        match run_psa(&rc(plan), Arc::clone(&ensemble), &cfg) {
            Ok(out) => prop_assert!(
                out.distances.as_slice() == clean.distances.as_slice(),
                "seed {seed}: matrix diverged"
            ),
            Err(e) => prop_assert!(false, "seed {seed}: spark errored: {e:?}"),
        }
    }

    /// Dask PSA under seeded chaos reproduces the matrix bit-for-bit.
    #[test]
    fn dask_psa_matches_fault_free_under_chaos(seed in 0u64..u64::MAX / 2) {
        let (ensemble, cfg) = psa_system();
        let rc = |plan| RunConfig::new(cluster(plan), Engine::Dask);
        let clean = run_psa(&rc(FaultPlan::none()), Arc::clone(&ensemble), &cfg).unwrap();
        let plan = plan_for_seed(&chaos_cfg((0.0, 3.0)), seed);
        match run_psa(&rc(plan), Arc::clone(&ensemble), &cfg) {
            Ok(out) => prop_assert!(
                out.distances.as_slice() == clean.distances.as_slice(),
                "seed {seed}: matrix diverged"
            ),
            Err(e) => prop_assert!(false, "seed {seed}: dask errored: {e:?}"),
        }
    }

    /// Pilot PSA under seeded chaos (deaths inside the 35 s bootstrap +
    /// execution window) reproduces the matrix bit-for-bit.
    #[test]
    fn pilot_psa_matches_fault_free_under_chaos(seed in 0u64..u64::MAX / 2) {
        let (ensemble, cfg) = psa_system();
        let rc = |plan| RunConfig::new(cluster(plan), Engine::Pilot);
        let clean = run_psa(&rc(FaultPlan::none()), Arc::clone(&ensemble), &cfg).unwrap();
        let plan = plan_for_seed(&chaos_cfg((0.0, 40.0)), seed);
        match run_psa(&rc(plan), Arc::clone(&ensemble), &cfg) {
            Ok(out) => prop_assert!(
                out.distances.as_slice() == clean.distances.as_slice(),
                "seed {seed}: matrix diverged"
            ),
            Err(e) => prop_assert!(false, "seed {seed}: pilot errored: {e:?}"),
        }
    }

    /// MPI PSA (checkpoint/restart policy) under seeded chaos reproduces
    /// the matrix bit-for-bit.
    #[test]
    fn mpi_psa_matches_fault_free_under_chaos(seed in 0u64..u64::MAX / 2) {
        let (ensemble, cfg) = psa_system();
        let base = |plan| RunConfig::new(cluster(plan), Engine::Mpi).mpi_world(8);
        let clean = run_psa(&base(FaultPlan::none()), Arc::clone(&ensemble), &cfg).unwrap();
        let plan = plan_for_seed(&chaos_cfg((0.0, 1.5)), seed);
        match run_psa(
            &base(plan).retry_policy(mpi_chaos_policy()),
            Arc::clone(&ensemble),
            &cfg,
        ) {
            Ok(out) => prop_assert!(
                out.distances.as_slice() == clean.distances.as_slice(),
                "seed {seed}: matrix diverged"
            ),
            Err(e) => prop_assert!(false, "seed {seed}: mpi errored: {e:?}"),
        }
    }

    /// Pilot LF under seeded chaos matches the fault-free run.
    #[test]
    fn pilot_lf_matches_fault_free_under_chaos(seed in 0u64..u64::MAX / 2) {
        let (positions, cfg) = lf_system();
        let rc = |plan| RunConfig::new(cluster(plan), Engine::Pilot);
        let clean = run_lf(&rc(FaultPlan::none()), Arc::clone(&positions), &cfg).unwrap();
        let plan = plan_for_seed(&chaos_cfg((0.0, 40.0)), seed);
        match run_lf(&rc(plan), Arc::clone(&positions), &cfg) {
            Ok(out) => prop_assert!(lf_matches(&clean, &out).is_ok(),
                "seed {seed}: {:?}", lf_matches(&clean, &out)),
            Err(e) => prop_assert!(false, "seed {seed}: pilot errored: {e:?}"),
        }
    }
}
