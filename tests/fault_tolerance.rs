//! Fault injection and recovery across engines (ISSUE acceptance
//! scenarios): task engines survive a worker death with identical results
//! and bounded slowdown; SPMD aborts; speculation tames stragglers.

use mdtask::prelude::*;
use std::sync::Arc;

struct System {
    positions: Arc<Vec<Vec3>>,
    cfg: LfConfig,
}

fn system() -> System {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 300,
            ..Default::default()
        },
        17,
    );
    System {
        positions: Arc::new(b.positions),
        cfg: LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 16,
            paper_atoms: 300,
            charge_io: false,
        },
    }
}

fn cluster() -> Cluster {
    Cluster::new(laptop(), 2)
}

/// Midpoint of the first phase with this name — a virtual time guaranteed
/// to fall inside the task window of that phase (tasks run back-to-back on
/// every core during a stage).
fn phase_midpoint(report: &SimReport, name: &str) -> f64 {
    let p = report
        .phases
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("no {name:?} phase recorded"));
    0.5 * (p.start_s + p.end_s)
}

/// Scenario (a), Spark: kill one of the two nodes mid-edge-discovery. The
/// job must finish with results identical to the fault-free run, visible
/// retries, and a makespan that is inflated but bounded.
#[test]
fn spark_survives_worker_death_with_identical_results() {
    let s = system();
    let rc = RunConfig::new(cluster(), Engine::Spark).approach(LfApproach::Broadcast1D);
    let clean = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();
    assert_eq!(clean.report.retries, 0);
    assert_eq!(clean.report.lost_time_s, 0.0);

    let t_kill = phase_midpoint(&clean.report, "edge-discovery");
    let plan = FaultPlan::none().kill_node(1, t_kill);
    let rc = RunConfig::new(cluster().with_faults(plan), Engine::Spark)
        .approach(LfApproach::Broadcast1D);
    let faulty = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();

    assert_eq!(faulty.leaflet_sizes, clean.leaflet_sizes);
    assert_eq!(faulty.n_components, clean.n_components);
    assert_eq!(faulty.edges_found, clean.edges_found);
    assert!(faulty.report.retries > 0, "reruns must be accounted");
    assert!(faulty.report.lost_time_s > 0.0, "killed attempts lose work");
    assert!(
        faulty.report.phase_total("recovery").unwrap_or(0.0) > 0.0,
        "recovery must be recorded as a phase"
    );
    assert!(
        faulty.report.makespan_s > clean.report.makespan_s,
        "losing half the cluster mid-stage must cost time: {} vs {}",
        faulty.report.makespan_s,
        clean.report.makespan_s
    );
    assert!(
        faulty.report.makespan_s < 3.0 * clean.report.makespan_s,
        "recovery must stay bounded: {} vs {}",
        faulty.report.makespan_s,
        clean.report.makespan_s
    );
}

/// Scenario (a), Dask: same worker death, same guarantees — the dynamic
/// scheduler reschedules the dead worker's tasks on the survivors.
#[test]
fn dask_survives_worker_death_with_identical_results() {
    let s = system();
    let rc = RunConfig::new(cluster(), Engine::Dask).approach(LfApproach::Broadcast1D);
    let clean = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();
    assert_eq!(clean.report.retries, 0);

    let t_kill = phase_midpoint(&clean.report, "edge-discovery");
    let plan = FaultPlan::none().kill_node(1, t_kill);
    let rc =
        RunConfig::new(cluster().with_faults(plan), Engine::Dask).approach(LfApproach::Broadcast1D);
    let faulty = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();

    assert_eq!(faulty.leaflet_sizes, clean.leaflet_sizes);
    assert_eq!(faulty.n_components, clean.n_components);
    assert_eq!(faulty.edges_found, clean.edges_found);
    assert!(faulty.report.retries > 0, "reruns must be accounted");
    assert!(faulty.report.lost_time_s > 0.0, "killed attempts lose work");
    assert!(
        faulty.report.makespan_s < 3.0 * clean.report.makespan_s,
        "recovery must stay bounded: {} vs {}",
        faulty.report.makespan_s,
        clean.report.makespan_s
    );
}

/// The pilot re-enqueues failed units through the database, paying the
/// scheduling round-trip again, and still returns every result.
#[test]
fn pilot_reenqueues_failed_units() {
    let clean = Session::new(cluster())
        .unwrap()
        .submit_and_wait(
            (0..32u64)
                .map(|i| UnitDescription::compute_only(move |_, _| i * i))
                .collect::<Vec<UnitDescription<u64>>>(),
        )
        .unwrap();
    assert_eq!(clean.report.retries, 0);

    // Pilot startup is 35 s; units execute right after, so a death shortly
    // into the execution window hits running units.
    let t_kill = 0.5 * (35.0 + clean.report.makespan_s);
    let plan = FaultPlan::none().kill_node(1, t_kill);
    let faulty = Session::new(cluster().with_faults(plan))
        .unwrap()
        .submit_and_wait(
            (0..32u64)
                .map(|i| UnitDescription::compute_only(move |_, _| i * i))
                .collect::<Vec<UnitDescription<u64>>>(),
        )
        .unwrap();
    assert_eq!(faulty.results, clean.results);
    assert!(
        faulty.report.retries > 0,
        "failed units must be re-enqueued"
    );
    assert!(
        faulty.report.makespan_s >= clean.report.makespan_s,
        "re-enqueued units pay the DB round-trip again"
    );
}

/// Scenario (b): the same node death under MPI aborts the whole
/// communicator — SPMD has no task-level recovery.
#[test]
fn mpi_aborts_on_worker_death() {
    let s = system();
    // 0.4 s is before mpirun even finishes startup (0.5 s), so the death
    // always lands inside the job window.
    let plan = FaultPlan::none().kill_node(1, 0.4);
    let rc = RunConfig::new(cluster().with_faults(plan), Engine::Mpi)
        .approach(LfApproach::Broadcast1D)
        .mpi_world(16);
    match run_lf(&rc, Arc::clone(&s.positions), &s.cfg) {
        Err(EngineError::WorkerLost { node, at_s }) => {
            assert_eq!(node, 1);
            assert!((at_s - 0.4).abs() < 1e-12);
        }
        other => panic!("expected WorkerLost, got {other:?}"),
    }

    // A death scripted *after* the job would finish leaves it untouched.
    let late = FaultPlan::none().kill_node(1, 1e6);
    let rc = RunConfig::new(cluster().with_faults(late), Engine::Mpi)
        .approach(LfApproach::Broadcast1D)
        .mpi_world(16);
    let ok = run_lf(&rc, Arc::clone(&s.positions), &s.cfg);
    assert!(ok.is_ok(), "a post-job death must not abort: {ok:?}");
}

/// Scenario (c): under an injected straggler, enabling Spark's speculative
/// execution launches a backup attempt and shrinks the makespan.
#[test]
fn speculation_reduces_spark_makespan_under_straggler() {
    let run = |speculate: bool| {
        let plan = FaultPlan::none().slow_core(0, 30.0);
        let sc = SparkContext::new(cluster().with_faults(plan));
        if speculate {
            sc.enable_speculation(1.5);
        }
        let rdd = sc.parallelize((0..160u32).collect::<Vec<_>>(), 16);
        let doubled: Vec<u32> = rdd.map(|x| x * 2).collect();
        assert_eq!(doubled.len(), 160);
        sc.report()
    };
    let without = run(false);
    let with = run(true);
    assert_eq!(without.retries, 0);
    assert!(
        with.retries > 0,
        "the winning backup attempt counts as a retry"
    );
    assert!(
        with.makespan_s < 0.8 * without.makespan_s,
        "speculation must beat the straggler: {} vs {}",
        with.makespan_s,
        without.makespan_s
    );
}

/// A node death that destroys already-written shuffle output forces a
/// lineage recompute of the lost map partitions, and the recovered job
/// still produces the fault-free answer.
#[test]
fn spark_recomputes_lost_shuffle_output_from_lineage() {
    let data: Vec<(u32, u32)> = (0..64).map(|i| (i % 8, 1)).collect();
    let run = |faults: FaultPlan| {
        let sc = SparkContext::new(cluster().with_faults(faults));
        let rdd = sc.parallelize(data.clone(), 16);
        let mut grouped: Vec<(u32, Vec<u32>)> = rdd.group_by_key(4).collect();
        grouped.sort_unstable_by_key(|(k, _)| *k);
        (grouped, sc.report())
    };
    let (clean, clean_rep) = run(FaultPlan::none());
    assert_eq!(clean_rep.recomputed_partitions, 0);

    // Kill node 1 the instant the map stage's barrier passes: its shuffle
    // files vanish before any reducer can fetch them.
    let map_end = clean_rep
        .phases
        .iter()
        .find(|p| p.name == "shuffle")
        .expect("shuffle phase")
        .start_s;
    let (faulty, faulty_rep) = run(FaultPlan::none().kill_node(1, map_end + 1e-9));
    assert_eq!(faulty, clean, "lineage recompute must reproduce the data");
    assert!(
        faulty_rep.recomputed_partitions > 0,
        "lost map outputs must be recomputed from lineage"
    );
    assert!(faulty_rep.phase_total("recovery").unwrap_or(0.0) > 0.0);
}

/// Lost shuffle fetches are re-sent (and accounted as retries) without
/// double-counting the shuffled bytes.
#[test]
fn lost_fetches_are_resent_not_recounted() {
    let data: Vec<(u32, u32)> = (0..64).map(|i| (i % 8, 1)).collect();
    let run = |faults: FaultPlan| {
        let sc = SparkContext::new(cluster().with_faults(faults));
        let out = sc.parallelize(data.clone(), 8).group_by_key(4).count();
        assert_eq!(out, 8);
        sc.report()
    };
    let clean = run(FaultPlan::none());
    let lossy = run(FaultPlan::none().lose_fetches(0.5, 7));
    assert_eq!(
        lossy.bytes_shuffled, clean.bytes_shuffled,
        "re-sent fetches carry the same logical bytes"
    );
    assert!(lossy.retries > 0, "re-sent fetches are retries");
    assert!(lossy.comm_s > clean.comm_s, "re-sending costs wire time");
}
