//! Network partitions, suspicion, and zombie fencing (ISSUE-9
//! acceptance): a partitioned-but-alive node keeps computing while the
//! suspicion detector false-positively reschedules its tasks; the
//! original attempts survive as zombies whose stale results are fenced
//! exactly once at heal. Every engine must converge to the fault-free
//! answer, report the wasted work (`zombie_attempts`/`zombie_time_s`)
//! and the rejections (`fenced_results`), stay bit-identical across
//! host thread counts, and hold the no-double-count/no-hang oracles
//! under a ≥100-plan seeded partition-chaos battery.

use mdtask::prelude::*;
use netsim::chaos::plan_for_seed;
use std::sync::Arc;

fn lf_system() -> (Arc<Vec<Vec3>>, LfConfig) {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 200,
            ..Default::default()
        },
        7,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            // More partitions than one node's 8 cores, so node 1 hosts
            // in-flight tasks for every cut to strand.
            partitions: 16,
            cutoff: b.suggested_cutoff,
            paper_atoms: 200,
            charge_io: false,
        },
    )
}

fn cluster(plan: FaultPlan) -> Cluster {
    Cluster::new(laptop(), 2).with_faults(plan)
}

/// A detector aggressive enough to false-positive on short cuts: 0.25 s
/// heartbeats, suspected after one missed timeout window of 0.5 s.
fn suspicious_policy() -> RetryPolicy {
    RetryPolicy::new(4)
        .with_detection_delay(0.25)
        .with_suspicion(0.25, 0.5)
}

/// Midpoint of the named phase — virtual time guaranteed to fall inside
/// that phase's task window (tasks run back-to-back during a stage).
fn phase_midpoint(report: &SimReport, name: &str) -> f64 {
    let p = report
        .phases
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("no {name:?} phase recorded"));
    0.5 * (p.start_s + p.end_s)
}

fn lf_matches(clean: &LfOutput, got: &LfOutput) {
    assert_eq!(got.leaflet_sizes, clean.leaflet_sizes, "leaflet sizes");
    assert_eq!(got.n_components, clean.n_components, "components");
    assert_eq!(got.edges_found, clean.edges_found, "edges");
}

/// The zombie ledger every false-positive run must balance: wasted work
/// is visible, and every zombie's stale result was rejected exactly once
/// (fences and zombies are conserved — never double-counted, never
/// silently dropped).
fn assert_fenced_exactly_once(engine: &str, report: &SimReport) {
    assert!(
        report.zombie_attempts > 0,
        "{engine}: the cut must strand at least one live attempt"
    );
    assert!(
        report.zombie_time_s > 0.0,
        "{engine}: zombie attempts burn core time"
    );
    assert_eq!(
        report.fenced_results, report.zombie_attempts,
        "{engine}: each zombie result is fenced exactly once"
    );
    assert!(
        report.retries > 0,
        "{engine}: suspicion must have rescheduled work"
    );
    assert!(report.makespan_s.is_finite(), "{engine}: no hang");
}

/// Spark: cut node 1 off mid-edge-discovery for long enough that the
/// detector gives up on it. Its in-flight tasks keep running behind the
/// cut; the driver reschedules them and later fences the stale shuffle
/// outputs by epoch. Results match the fault-free run bit-for-bit.
#[test]
fn spark_fences_zombies_and_converges_after_heal() {
    let (positions, cfg) = lf_system();
    let rc = |plan| {
        RunConfig::new(cluster(plan), Engine::Spark)
            .approach(LfApproach::Broadcast1D)
            .retry_policy(suspicious_policy())
    };
    let clean = run_lf(&rc(FaultPlan::none()), Arc::clone(&positions), &cfg).unwrap();
    assert_eq!(clean.report.zombie_attempts, 0);
    assert_eq!(clean.report.fenced_results, 0);

    let t_cut = phase_midpoint(&clean.report, "edge-discovery");
    let plan = FaultPlan::none().partition(vec![vec![1]], t_cut, t_cut + 2.0);
    let faulty = run_lf(&rc(plan), Arc::clone(&positions), &cfg).unwrap();
    lf_matches(&clean, &faulty);
    assert_fenced_exactly_once("spark", &faulty.report);
}

/// Dask: same cut; the dynamic scheduler reroutes the suspected node's
/// keys to survivors and ignores the superseded key results at heal.
#[test]
fn dask_fences_zombies_and_converges_after_heal() {
    let (positions, cfg) = lf_system();
    let rc = |plan| {
        RunConfig::new(cluster(plan), Engine::Dask)
            .approach(LfApproach::Broadcast1D)
            .retry_policy(suspicious_policy())
    };
    let clean = run_lf(&rc(FaultPlan::none()), Arc::clone(&positions), &cfg).unwrap();

    let t_cut = phase_midpoint(&clean.report, "edge-discovery");
    let plan = FaultPlan::none().partition(vec![vec![1]], t_cut, t_cut + 2.0);
    let faulty = run_lf(&rc(plan), Arc::clone(&positions), &cfg).unwrap();
    lf_matches(&clean, &faulty);
    assert_fenced_exactly_once("dask", &faulty.report);
}

/// Pilot: the cut lands inside the execution window (after the 35 s
/// bootstrap). The DB poll gives up on the partitioned agent, re-enqueues
/// its units, and fences the stale completions by generation number.
#[test]
fn pilot_fences_zombies_and_converges_after_heal() {
    let (positions, cfg) = lf_system();
    let rc = |plan| RunConfig::new(cluster(plan), Engine::Pilot).retry_policy(suspicious_policy());
    let clean = run_lf(&rc(FaultPlan::none()), Arc::clone(&positions), &cfg).unwrap();
    assert!(clean.report.makespan_s > 35.0, "pilot pays bootstrap");

    let t_cut = 0.5 * (35.0 + clean.report.makespan_s);
    let plan = FaultPlan::none().partition(vec![vec![1]], t_cut, t_cut + 8.0);
    let faulty = run_lf(&rc(plan), Arc::clone(&positions), &cfg).unwrap();
    lf_matches(&clean, &faulty);
    assert_fenced_exactly_once("pilot", &faulty.report);
}

/// MPI: a cut crossing the communicator breaks collectives like a death,
/// except the isolated cohort is alive — its post-checkpoint progress
/// carries a stale communicator epoch and is discarded exactly once on
/// the barrier restart.
#[test]
fn mpi_fences_zombie_cohort_and_converges_after_heal() {
    let (positions, cfg) = lf_system();
    let rc = |plan| {
        RunConfig::new(cluster(plan), Engine::Mpi)
            .approach(LfApproach::Broadcast1D)
            .mpi_world(16)
            .retry_policy(suspicious_policy())
    };
    let clean = run_lf(&rc(FaultPlan::none()), Arc::clone(&positions), &cfg).unwrap();
    // Midway between mpirun startup (0.5 s) and job end — inside the
    // collective window, so the cut breaks the communicator.
    let t_cut = 0.5 * (0.5 + clean.report.makespan_s);

    // Heal far past the suspicion horizon (< cut + heartbeat + timeout =
    // cut + 0.75) so the detector declares the cohort dead while it is
    // still computing.
    let plan = FaultPlan::none().partition(vec![vec![1]], t_cut, t_cut + 2.0);
    let faulty = run_lf(&rc(plan), Arc::clone(&positions), &cfg).unwrap();
    lf_matches(&clean, &faulty);
    assert_fenced_exactly_once("mpi", &faulty.report);

    // The same cut healing before the suspicion horizon (suspect is at
    // least cut + timeout - heartbeat = cut + 0.25) is a stall, not a
    // failure: ranks block on the broken collective and resume — no
    // attempt consumed, nothing fenced.
    let brief = FaultPlan::none().partition(vec![vec![1]], t_cut, t_cut + 0.1);
    let stalled = run_lf(&rc(brief), Arc::clone(&positions), &cfg).unwrap();
    lf_matches(&clean, &stalled);
    assert_eq!(stalled.report.retries, 0, "waited-out cut costs no attempt");
    assert_eq!(stalled.report.zombie_attempts, 0);
    assert_eq!(stalled.report.fenced_results, 0);
    assert!(
        stalled.report.makespan_s > clean.report.makespan_s,
        "the stall still costs wall time"
    );

    // Plain MPI (one attempt, no detector) cannot recover: the cut is
    // indistinguishable from a death and aborts the communicator.
    let rc1 = RunConfig::new(
        cluster(FaultPlan::none().partition(vec![vec![1]], t_cut, t_cut + 2.0)),
        Engine::Mpi,
    )
    .approach(LfApproach::Broadcast1D)
    .mpi_world(16);
    match run_lf(&rc1, Arc::clone(&positions), &cfg) {
        Err(EngineError::WorkerLost { node, .. }) => assert_eq!(node, 1),
        other => panic!("expected WorkerLost, got {other:?}"),
    }
}

/// A partition during a streaming run never double-counts a window: every
/// engine's window map matches the fault-free run, replays are fenced,
/// and the fence/zombie ledger balances.
#[test]
fn stream_partition_replays_without_double_count() {
    const FRAMES: usize = 20;
    let spec = ChainSpec {
        n_atoms: 30,
        n_frames: FRAMES,
        stride: 1,
        ..ChainSpec::default()
    };
    let trajectory = Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 1, 11).remove(0));
    let lf_cfg = LfConfig {
        cutoff: 8.0,
        partitions: 4,
        paper_atoms: 30,
        charge_io: false,
    };
    let source = || StreamSource::new(FRAMES, 0.5).with_latency(0.05);
    // Drain the driver node's memory so window state lives on node 1 —
    // the node the cut will sever — while node 2 stays free for replays.
    let run = |engine: Engine, plan: FaultPlan| {
        let plan = plan.shrink_memory(0, 0.0, 0);
        let mut rc = RunConfig::new(Cluster::new(laptop(), 3).with_faults(plan), engine)
            .streaming(2.0, 2.0, 0.5)
            .retry_policy(suspicious_policy().with_deadline(500.0));
        if engine == Engine::Mpi {
            rc = rc.mpi_world(16);
        }
        run_lf_stream(&rc, Arc::clone(&trajectory), &lf_cfg, &source())
    };
    let window_map = |out: &StreamOutput| {
        let mut v: Vec<_> = out
            .windows
            .iter()
            .map(|w| (w.id, w.frames.clone(), w.value))
            .collect();
        v.sort();
        v
    };

    // Cut node 1 off mid-stream for long enough that suspicion fires.
    let plan = FaultPlan::none().partition(vec![vec![1]], 1.0, 4.0);
    let mut disturbed = 0usize;
    for engine in Engine::ALL {
        let clean = run(engine, FaultPlan::none()).unwrap();
        let faulty = run(engine, plan.clone()).unwrap_or_else(|e| {
            panic!("{engine:?}: partitioned stream failed: {e}");
        });
        assert_eq!(
            window_map(&faulty.output),
            window_map(&clean.output),
            "{engine:?}: window contents must match the fault-free run"
        );
        // Exactly-once per window id, even where replays happened.
        let mut ids: Vec<usize> = faulty.output.windows.iter().map(|w| w.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            faulty.output.windows.len(),
            "{engine:?}: a window closed twice"
        );
        assert!(
            faulty.report.zombie_attempts == 0 || faulty.report.fenced_results > 0,
            "{engine:?}: zombies without fences"
        );
        assert!(faulty.report.makespan_s.is_finite(), "{engine:?}: hang");
        disturbed +=
            faulty.report.zombie_attempts + faulty.report.fenced_results + faulty.report.retries;
        disturbed += faulty.output.frames_replayed;
    }
    assert!(
        disturbed > 0,
        "the cut must visibly disturb at least one engine"
    );
}

/// Partition recovery — reschedules, zombie accounting, fence events, and
/// the trace — is bit-identical across host thread counts {1, 2, 8}.
#[test]
fn partition_runs_identical_across_host_threads() {
    mdtask::cluster::set_deterministic_timing(true);
    let (positions, cfg) = lf_system();
    for engine in Engine::ALL {
        let clean = {
            let rc = RunConfig::new(cluster(FaultPlan::none()), engine)
                .approach(LfApproach::Broadcast1D)
                .mpi_world(16)
                .retry_policy(suspicious_policy());
            run_lf(&rc, Arc::clone(&positions), &cfg).unwrap()
        };
        let t_cut = match engine {
            Engine::Pilot => 0.5 * (35.0 + clean.report.makespan_s),
            Engine::Mpi => 0.5 * (0.5 + clean.report.makespan_s),
            _ => phase_midpoint(&clean.report, "edge-discovery"),
        };
        let plan = FaultPlan::none().partition(vec![vec![1]], t_cut, t_cut + 8.0);
        let run = |threads: Threads| {
            let rc = RunConfig::new(cluster(plan.clone()), engine)
                .approach(LfApproach::Broadcast1D)
                .mpi_world(16)
                .retry_policy(suspicious_policy())
                .trace(true)
                .threads(threads);
            run_lf(&rc, Arc::clone(&positions), &cfg).map_err(|e| format!("{e:?}"))
        };
        let serial = run(Threads::Serial);
        for degree in [Threads::Fixed(2), Threads::Fixed(8)] {
            let got = run(degree);
            match (&serial, &got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.leaflet_sizes, b.leaflet_sizes, "{engine:?}/{degree}");
                    assert_eq!(
                        a.report, b.report,
                        "{engine:?}/{degree}: SimReport (incl. zombies, fences, trace)"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{engine:?}/{degree}: error"),
                (a, b) => panic!("{engine:?}/{degree}: outcome diverged: {a:?} vs {b:?}"),
            }
        }
    }
}

/// The ≥100-plan seeded partition-chaos battery: every engine under every
/// generated partition plan either matches the fault-free run exactly or
/// fails typed — zero double-counts (fences conserve zombies, results
/// never diverge) and zero hangs (every makespan finite).
#[test]
fn seeded_partition_chaos_battery_holds_on_every_engine() {
    let (positions, cfg) = lf_system();
    for engine in Engine::ALL {
        let window = match engine {
            Engine::Spark | Engine::Dask => (0.0, 3.0),
            Engine::Pilot => (0.0, 40.0),
            Engine::Mpi => (0.0, 1.5),
        };
        let rc = |plan| {
            RunConfig::new(cluster(plan), engine)
                .approach(LfApproach::Broadcast1D)
                .mpi_world(16)
                .retry_policy(suspicious_policy().with_deadline(10_000.0))
        };
        let clean = run_lf(&rc(FaultPlan::none()), Arc::clone(&positions), &cfg).unwrap();
        // Aim the cuts at the engine's busy window (for the pilot, past
        // the 35 s bootstrap) so they land among in-flight tasks; deaths
        // keep their per-engine windows.
        let busy_lo = if engine == Engine::Pilot { 34.0 } else { 0.05 };
        let chaos_cfg = {
            let mut c = ChaosConfig::new(2, 8).with_partitions(2);
            c.death_window_s = window;
            c.partition_window_s = (busy_lo, clean.report.makespan_s);
            c.partition_len_s = (0.5, 3.0);
            c
        };
        let mut zombies = 0usize;
        for seed in 0..110u64 {
            let plan = plan_for_seed(&chaos_cfg, seed);
            match run_lf(&rc(plan), Arc::clone(&positions), &cfg) {
                Ok(out) => {
                    lf_matches(&clean, &out);
                    assert!(
                        out.report.zombie_attempts == 0 || out.report.fenced_results > 0,
                        "{engine:?} seed {seed}: stale outputs were not rejected"
                    );
                    assert!(
                        out.report.makespan_s.is_finite(),
                        "{engine:?} seed {seed}: hang"
                    );
                    zombies += out.report.zombie_attempts;
                }
                // Under stacked deaths + cuts, running out of attempts or
                // time is an acceptable *typed* outcome — never a panic,
                // a hang, or silently wrong data.
                Err(
                    EngineError::RetriesExhausted { .. }
                    | EngineError::DeadlineExceeded { .. }
                    | EngineError::WorkerLost { .. },
                ) => {}
                Err(e) => panic!("{engine:?} seed {seed}: untyped failure: {e:?}"),
            }
        }
        assert!(
            zombies > 0,
            "{engine:?}: the battery must exercise the zombie path"
        );
    }
}
