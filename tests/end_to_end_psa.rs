//! End-to-end PSA: generate an ensemble, round-trip it through trajectory
//! files (both formats), and verify every engine computes the identical
//! Hausdorff distance matrix from the file-loaded data.

use mdtask::prelude::*;
use std::sync::Arc;

fn ensemble() -> Vec<Trajectory> {
    let spec = ChainSpec {
        n_atoms: 24,
        n_frames: 12,
        stride: 1,
        ..ChainSpec::default()
    };
    mdtask::sim::chain::generate_ensemble(&spec, 6, 1234)
}

fn write_and_reload(e: &[Trajectory], dir: &std::path::Path) -> Vec<Trajectory> {
    std::fs::create_dir_all(dir).unwrap();
    e.iter()
        .enumerate()
        .map(|(i, t)| {
            let path = dir.join(format!("traj-{i:03}.mdt"));
            mdtask::io::write_mdt(&path, &t.frames).unwrap();
            Trajectory {
                frames: mdtask::io::read_mdt(&path).unwrap(),
            }
        })
        .collect()
}

#[test]
fn psa_from_files_identical_across_engines() {
    let dir = std::env::temp_dir().join(format!("mdtask-e2e-psa-{}", std::process::id()));
    let original = ensemble();
    let reloaded = write_and_reload(&original, &dir);
    assert_eq!(original, reloaded, "MDT round-trip must be lossless");

    let reference = psa_serial(&reloaded);
    let cfg = PsaConfig {
        groups: 3,
        charge_io: true,
    };
    let arc = Arc::new(reloaded.clone());
    let cluster = || Cluster::new(wrangler(), 2);

    let outs: Vec<(Engine, DistanceMatrix)> = Engine::ALL
        .into_iter()
        .map(|engine| {
            let rc = RunConfig::new(cluster(), engine).mpi_world(8);
            let out = run_psa(&rc, Arc::clone(&arc), &cfg).expect("fault-free");
            (engine, out.distances)
        })
        .collect();
    for (name, d) in outs {
        let name = name.label();
        for i in 0..reference.rows() {
            for j in 0..reference.cols() {
                assert!(
                    (d.get(i, j) - reference.get(i, j)).abs() < 1e-12,
                    "{name} at ({i},{j})"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn xyz_and_mdt_agree() {
    let dir = std::env::temp_dir().join(format!("mdtask-e2e-xyz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let t = &ensemble()[0];
    let mdt_path = dir.join("t.mdt");
    let xyz_path = dir.join("t.xyz");
    mdtask::io::write_mdt(&mdt_path, &t.frames).unwrap();
    mdtask::io::write_xyz(&xyz_path, &t.frames).unwrap();
    let via_mdt = mdtask::io::read_mdt(&mdt_path).unwrap();
    let via_xyz = mdtask::io::read_xyz(&xyz_path).unwrap();
    assert_eq!(via_mdt.len(), via_xyz.len());
    // XYZ prints full f32 precision; frames must match bit-for-bit.
    for (a, b) in via_mdt.iter().zip(&via_xyz) {
        assert_eq!(a, b);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cpptraj_agrees_with_mdanalysis_path() {
    // The CPPTraj pipeline (2D-RMSD then Hausdorff reduction) and the
    // MDAnalysis-style pipeline (direct Hausdorff) must agree.
    let e = ensemble();
    let reference = psa_serial(&e);
    let out = mdtask::cpp::ensemble_psa(
        Cluster::new(comet(), 1),
        4,
        mdtask::cpp::KernelBuild::IntelO3,
        &e,
    );
    for i in 0..e.len() {
        for j in 0..e.len() {
            assert!(
                (out.distances.get(i, j) - reference.get(i, j)).abs() < 1e-9,
                "({i},{j})"
            );
        }
    }
}
