//! The generic analysis API (this PR's tentpole): a *custom*
//! [`AnalysisFromFunction`] — one the engines have never seen — must
//! produce bit-identical per-frame values on every engine, at every
//! host-parallelism degree, clean or under a node-death + network
//! partition fault plan. Plus differential oracles for the optimized
//! kernels: tree/cell-list edge discovery against the brute-force
//! reference, on arbitrary generated point clouds.

use mdtask::analysis::leaflet::{block_edges, block_edges_tree};
use mdtask::analysis::partition::Block;
use mdtask::math::rmsd_superposed;
use mdtask::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const ENGINES: [Engine; 4] = [Engine::Spark, Engine::Dask, Engine::Pilot, Engine::Mpi];
const DEGREES: [Threads; 3] = [Threads::Fixed(1), Threads::Fixed(2), Threads::Fixed(8)];

fn trajectory() -> Arc<Trajectory> {
    let spec = ChainSpec {
        n_atoms: 30,
        n_frames: 12,
        stride: 1,
        ..ChainSpec::default()
    };
    Arc::new(mdtask::sim::chain::generate(&spec, 71))
}

/// Radius of gyration — a closure none of the built-ins ship, so this
/// exercises the user-defined path, not a special case.
fn rgyr(frame: &Frame, sel: &AtomSelection) -> f64 {
    let pts = sel.gather(frame);
    let inv = 1.0 / pts.len() as f64;
    let (mut cx, mut cy, mut cz) = (0.0f64, 0.0f64, 0.0f64);
    for p in &pts {
        cx += p.x as f64;
        cy += p.y as f64;
        cz += p.z as f64;
    }
    (cx, cy, cz) = (cx * inv, cy * inv, cz * inv);
    let mut acc = 0.0f64;
    for p in &pts {
        let (dx, dy, dz) = (p.x as f64 - cx, p.y as f64 - cy, p.z as f64 - cz);
        acc += dx * dx + dy * dy + dz * dz;
    }
    (acc * inv).sqrt()
}

fn rgyr_analysis(
    traj: Arc<Trajectory>,
) -> AnalysisFromFunction<f64, impl Fn(&Frame, &AtomSelection) -> f64> {
    AnalysisFromFunction::new("rgyr", traj, AtomSelection::Stride(2), 5, rgyr)
}

/// A node death early enough to land inside even the fastest engine's
/// run (Dask finishes this workload in ~0.2 virtual seconds) plus a
/// network partition over the same window, so both recovery mechanisms
/// — reschedule-after-death and fencing across a cut — are exercised.
fn death_and_partition() -> FaultPlan {
    FaultPlan::none()
        .kill_node(1, 0.05)
        .partition(vec![vec![1]], 0.1, 0.5)
}

#[test]
fn custom_analysis_bit_identical_across_engines_threads_and_faults() {
    mdtask::cluster::set_deterministic_timing(true);
    let traj = trajectory();
    let select = AtomSelection::Stride(2);
    let reference: Vec<f64> = traj.frames.iter().map(|f| rgyr(f, &select)).collect();

    for engine in ENGINES {
        for faulty in [false, true] {
            let mut reports = Vec::new();
            for threads in DEGREES {
                let mut cluster = Cluster::new(laptop(), 2);
                if faulty {
                    cluster = cluster.with_faults(death_and_partition());
                }
                let rc = RunConfig::new(cluster, engine)
                    .retry_policy(RetryPolicy::new(4).with_detection_delay(0.25))
                    .threads(threads);
                let out = rc
                    .run_analysis(rgyr_analysis(Arc::clone(&traj)))
                    .unwrap_or_else(|e| panic!("{engine:?} faulty={faulty} {threads}: {e:?}"));
                // Bitwise f64 equality: per-frame map with a collected
                // reduce has no floating-point reassociation anywhere.
                assert_eq!(
                    out.values, reference,
                    "{engine:?} faulty={faulty} threads={threads}: values"
                );
                assert!(out.report.makespan_s > 0.0);
                reports.push(out.report);
            }
            // Host threads are an execution vehicle, not a semantic knob:
            // under deterministic timing the full report is identical at
            // every degree.
            assert_eq!(
                reports[0], reports[1],
                "{engine:?} faulty={faulty}: report 1 vs 2 threads"
            );
            assert_eq!(
                reports[1], reports[2],
                "{engine:?} faulty={faulty}: report 2 vs 8 threads"
            );
        }
    }
}

#[test]
fn faulty_runs_actually_retried() {
    mdtask::cluster::set_deterministic_timing(true);
    let traj = trajectory();
    let reference: Vec<f64> = {
        let select = AtomSelection::Stride(2);
        traj.frames.iter().map(|f| rgyr(f, &select)).collect()
    };
    // Heavy declared frames (0.5 s each) keep tasks on the wire long
    // enough to be interrupted mid-flight.
    let heavy = AnalysisCost {
        stream_frame_cost_s: 0.5,
        ..AnalysisCost::DEFAULT
    };
    // One slice per frame: 12 half-second tasks over 2 × 8 cores, so
    // node 1 demonstrably holds work when the plan strikes.
    let analysis = |cost| {
        AnalysisFromFunction::new(
            "rgyr-heavy",
            Arc::clone(&traj),
            AtomSelection::Stride(2),
            12,
            rgyr,
        )
        .with_cost(cost)
    };
    for engine in [Engine::Spark, Engine::Dask] {
        // Clean run first: the kill must land inside the frame-map task
        // window, which starts after the engine's startup + broadcast.
        let rc = RunConfig::new(Cluster::new(laptop(), 2), engine);
        let clean = rc.run_analysis(analysis(heavy)).unwrap();
        let bcast_end = clean
            .report
            .phases
            .iter()
            .find(|p| p.name == "broadcast")
            .map(|p| p.end_s)
            .unwrap();
        let t_kill = 0.5 * (bcast_end + clean.report.makespan_s);
        let plan = FaultPlan::none().kill_node(1, t_kill).partition(
            vec![vec![1]],
            t_kill + 0.05,
            t_kill + 0.6,
        );
        let rc = RunConfig::new(Cluster::new(laptop(), 2).with_faults(plan), engine)
            .retry_policy(RetryPolicy::new(4).with_detection_delay(0.25));
        let out = rc.run_analysis(analysis(heavy)).unwrap();
        assert!(
            out.report.retries > 0,
            "{engine:?}: the plan must actually bite, got {} retries",
            out.report.retries
        );
        assert_eq!(out.values, reference, "{engine:?}: recovery is exact");
    }
}

#[test]
fn builtin_rmsd_matches_direct_kernel_and_contacts_matches_brute_force() {
    mdtask::cluster::set_deterministic_timing(true);
    let traj = trajectory();

    let rc = RunConfig::new(Cluster::new(laptop(), 2), Engine::Spark);
    let out = rc
        .run_analysis(rmsd_analysis(Arc::clone(&traj), AtomSelection::All, 0, 4))
        .unwrap();
    assert_eq!(out.values.len(), traj.frames.len());
    assert_eq!(out.values[0], 0.0, "self-RMSD of the reference frame");
    let reference = &traj.frames[0];
    for (i, frame) in traj.frames.iter().enumerate() {
        assert_eq!(
            out.values[i],
            rmsd_superposed(frame, reference),
            "frame {i}"
        );
    }

    let cutoff = 5.0f32;
    let out = rc
        .run_analysis(contacts_analysis(
            Arc::clone(&traj),
            AtomSelection::All,
            cutoff,
            4,
        ))
        .unwrap();
    let c2 = cutoff * cutoff;
    for (i, frame) in traj.frames.iter().enumerate() {
        let pts = frame.positions();
        let mut brute = 0u64;
        for a in 0..pts.len() {
            for b in (a + 1)..pts.len() {
                if pts[a].dist2(pts[b]) <= c2 {
                    brute += 1;
                }
            }
        }
        assert_eq!(out.values[i], brute, "frame {i} contact count");
    }
}

/// Sorted canonical form: the kernels may emit edges in any order.
fn canon(mut edges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    for e in edges.iter_mut() {
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn points_from(raw: &[(f32, f32, f32)]) -> Vec<Vec3> {
    raw.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tree-based edge discovery (Approach 4's kernel) finds exactly the
    /// brute-force edge set on a diagonal block of arbitrary points.
    #[test]
    fn tree_edges_match_brute_force_diagonal(
        raw in prop::collection::vec((0.0f32..18.0, 0.0f32..18.0, 0.0f32..18.0), 2..80),
        cutoff in 1.0f32..6.0,
    ) {
        let pts = points_from(&raw);
        let n = pts.len() as u32;
        let b = Block { row: (0, n), col: (0, n) };
        prop_assert_eq!(
            canon(block_edges_tree(&pts, b, cutoff)),
            canon(block_edges(&pts, b, cutoff))
        );
    }

    /// Same oracle on off-diagonal blocks — the rectangular case the 2-D
    /// partitioning actually dispatches.
    #[test]
    fn tree_edges_match_brute_force_off_diagonal(
        raw in prop::collection::vec((0.0f32..18.0, 0.0f32..18.0, 0.0f32..18.0), 4..80),
        cutoff in 1.0f32..6.0,
        split_num in 1u32..9,
    ) {
        let pts = points_from(&raw);
        let n = pts.len() as u32;
        let split = (n * split_num / 10).clamp(1, n - 1);
        let b = Block { row: (0, split), col: (split, n) };
        prop_assert_eq!(
            canon(block_edges_tree(&pts, b, cutoff)),
            canon(block_edges(&pts, b, cutoff))
        );
    }
}
