//! Service-level integration tests for `mdtaskd`: determinism across
//! host-thread counts and the no-starvation contract under chaos.

use mdtask::cluster::parallel::with_degree;
use mdtask::cluster::{Cluster, FaultPlan, RetryPolicy, Threads};
use mdtask::prelude::{Engine, JobRequest, Service, TenantSpec};
use mdtask::service::chaos::{fuzz_service, ServiceChaosConfig};
use mdtask_core::run::Workload;
use taskframe::EngineError;

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

/// A fault-heavy scenario: two tenants, a node death, a budget shrink
/// with a scripted recovery — everything the scheduler has a code path
/// for.
fn scenario() -> (Service, Vec<TenantSpec>, Vec<JobRequest>) {
    // Workload virtual makespans are ~0.2s on this cluster, so the burst
    // below keeps jobs in flight when the node dies (0.1s) and the budget
    // shrinks (0.05s); the scripted grow at 2.0s un-stalls the big jobs.
    let plan = FaultPlan::none()
        .kill_node(1, 0.1)
        .shrink_memory(0, 0.05, 100 * MIB)
        .set_memory(0, 2.0, 2 * GIB);
    let cluster = Cluster::builder()
        .nodes(2)
        .cores_per_node(3)
        .mem_budget(2 * GIB)
        .fault_plan(plan)
        .build();
    let service = Service::new(vec![cluster], Engine::Dask).trace(true);
    let tenants = vec![
        TenantSpec::new("alpha", 3, GIB, 32),
        TenantSpec::new("beta", 1, GIB, 32),
    ];
    let pool = [
        Workload::Lf {
            n_atoms: 96,
            partitions: 2,
            seed: 1,
        },
        Workload::Psa {
            n_traj: 3,
            n_frames: 4,
            groups: 2,
            seed: 2,
        },
    ];
    let jobs: Vec<JobRequest> = (0..18)
        .map(|i| {
            JobRequest::new(i % 2, i as f64 * 0.01, pool[i % pool.len()])
                .working_set(((1 + i % 3) as u64) * 100 * MIB)
                .priority((i % 2) as u8)
                .policy(RetryPolicy::new(4).with_detection_delay(0.5))
        })
        .collect();
    (service, tenants, jobs)
}

#[test]
fn service_reports_are_bit_identical_at_1_2_and_8_host_threads() {
    let (service, tenants, jobs) = scenario();
    let run = |t: Threads| with_degree(t, || service.run(&tenants, &jobs).expect("valid batch"));
    let serial = run(Threads::Serial);
    let two = run(Threads::Fixed(2));
    let eight = run(Threads::Fixed(8));
    // Full-report equality: control-plane trace, per-cluster ledgers,
    // every job outcome and every latency — not just summary counters.
    assert_eq!(serial, two, "1 vs 2 host threads diverged");
    assert_eq!(two, eight, "2 vs 8 host threads diverged");
    // And the scenario actually exercised the fault paths.
    assert!(serial.control.retries >= 1, "a job was killed and retried");
    assert!(serial.jobs.iter().all(|j| j.end_s.is_some()));
}

#[test]
fn every_submission_resolves_typed_under_chaos() {
    // The service chaos battery: tenant bursts, mid-job node deaths,
    // mid-job budget shrinks and grows. Oracles: determinism (run-twice
    // and cross-thread equality), no starvation (every job resolves with
    // a fingerprint or a typed error), per-tenant conservation and quota
    // enforcement.
    let cfg = ServiceChaosConfig {
        scenarios: 8,
        ..ServiceChaosConfig::default()
    };
    let report = fuzz_service(&cfg);
    assert!(
        report.passed(),
        "service chaos battery violation: {:?}",
        report.violations.first()
    );
    assert_eq!(report.scenarios_run, 8);
}

#[test]
fn overloaded_service_sheds_load_with_typed_rejections() {
    let cluster = Cluster::builder()
        .nodes(1)
        .cores_per_node(1)
        .mem_budget(GIB)
        .build();
    let service = Service::new(vec![cluster], Engine::Spark);
    let tenants = vec![TenantSpec::new("burst", 1, GIB, 3)];
    let w = Workload::Lf {
        n_atoms: 96,
        partitions: 2,
        seed: 9,
    };
    let jobs: Vec<JobRequest> = (0..10)
        .map(|_| JobRequest::new(0, 0.0, w).working_set(10 * MIB))
        .collect();
    let report = service.run(&tenants, &jobs).unwrap();
    let rejected = report
        .jobs
        .iter()
        .filter(|j| matches!(j.result, Err(EngineError::Rejected { .. })))
        .count();
    assert_eq!(rejected, 7, "queue bound of 3 sheds the rest typed");
    assert_eq!(report.tenants[0].completed, 3);
    assert!(report.jobs.iter().all(|j| j.end_s.is_some()), "no limbo");
}
