//! Cross-engine behavioural tests: the paper's headline framework
//! orderings must emerge from the mechanisms, not be printed constants.

use mdtask::prelude::*;

type ZeroTask = Box<dyn Fn(&TaskCtx) -> u64 + Send + Sync>;

fn zero_tasks(n: usize) -> Vec<ZeroTask> {
    (0..n)
        .map(|i| Box::new(move |_: &TaskCtx| i as u64) as _)
        .collect()
}

/// Fig. 2: single-node task throughput ordering Dask > Spark > RP.
#[test]
fn single_node_throughput_ordering() {
    let n = 2048;
    let cluster = || Cluster::new(wrangler(), 1);

    let mut spark = SparkContext::new(cluster());
    let (r, spark_rep) = spark.run_bag(zero_tasks(n)).unwrap();
    assert_eq!(r.len(), n);

    let mut dask = DaskClient::new(cluster());
    let (_, dask_rep) = dask.run_bag(zero_tasks(n)).unwrap();

    let mut rp = Session::new(cluster()).unwrap();
    let (_, rp_rep) = rp.run_bag(zero_tasks(n)).unwrap();

    let (ts, td, tr) = (
        spark_rep.throughput(),
        dask_rep.throughput(),
        rp_rep.throughput(),
    );
    assert!(
        td > 3.0 * ts,
        "Dask ({td:.0}/s) should dwarf Spark ({ts:.0}/s)"
    );
    assert!(
        ts > 2.0 * tr,
        "Spark ({ts:.0}/s) should dwarf RP ({tr:.0}/s)"
    );
    assert!(tr < 100.0, "RP must stay under 100 tasks/s (DB bound)");
}

/// Fig. 3: Dask and Spark throughput grows with node count; RP plateaus.
#[test]
fn multi_node_scaling_shapes() {
    let n = 4096;
    let throughput = |nodes: usize, which: &str| -> f64 {
        let c = Cluster::new(wrangler(), nodes);
        match which {
            "spark" => {
                let mut e = SparkContext::new(c);
                e.run_bag(zero_tasks(n)).unwrap().1.throughput()
            }
            "dask" => {
                let mut e = DaskClient::new(c);
                e.run_bag(zero_tasks(n)).unwrap().1.throughput()
            }
            _ => {
                let mut e = Session::new(c).unwrap();
                e.run_bag(zero_tasks(n)).unwrap().1.throughput()
            }
        }
    };
    for which in ["spark", "dask"] {
        let t1 = throughput(1, which);
        let t4 = throughput(4, which);
        assert!(
            t4 > 1.8 * t1,
            "{which} should scale with nodes: 1 node {t1:.0}/s, 4 nodes {t4:.0}/s"
        );
    }
    let r1 = throughput(1, "rp");
    let r4 = throughput(4, "rp");
    assert!(
        r4 < 1.5 * r1.max(1.0),
        "RP must plateau: 1 node {r1:.1}/s, 4 nodes {r4:.1}/s"
    );
}

/// §4.1: RP cannot reach 32k tasks; Spark and Dask handle 32k fine.
#[test]
fn rp_scale_ceiling() {
    let cluster = || Cluster::new(wrangler(), 1);
    let mut rp = Session::new(cluster()).unwrap();
    assert!(rp.run_bag(zero_tasks(32_768)).is_err());

    let mut dask = DaskClient::new(cluster());
    let (r, _) = dask.run_bag(zero_tasks(32_768)).unwrap();
    assert_eq!(r.len(), 32_768);
}

/// Fig. 5: the same job speeds up more on Comet than on Wrangler
/// (hyper-threaded cores), at equal core counts.
#[test]
fn comet_outruns_wrangler() {
    let spec = ChainSpec {
        n_atoms: 60,
        n_frames: 20,
        stride: 1,
        ..ChainSpec::default()
    };
    let e = std::sync::Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 8, 5));
    let cfg = PsaConfig {
        groups: 4,
        charge_io: true,
    };
    let run = |profile: MachineProfile| {
        let rc = RunConfig::new(Cluster::with_cores(profile, 48), Engine::Spark);
        run_psa(&rc, std::sync::Arc::clone(&e), &cfg)
            .expect("fault-free")
            .report
            .makespan_s
    };
    let t_comet = run(comet());
    let t_wrangler = run(wrangler());
    assert!(
        t_wrangler > t_comet,
        "Wrangler ({t_wrangler:.3}s) should trail Comet ({t_comet:.3}s)"
    );
}

/// Table 2 direction: approach 3 moves fewer shuffle bytes than 2.
#[test]
fn shuffle_volume_ordering_across_engines() {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 600,
            ..Default::default()
        },
        11,
    );
    let pos = std::sync::Arc::new(b.positions);
    let cfg = LfConfig {
        cutoff: b.suggested_cutoff,
        partitions: 36,
        paper_atoms: 600,
        charge_io: false,
    };
    let c = || Cluster::new(comet(), 2);
    let spark = |approach| {
        let rc = RunConfig::new(c(), Engine::Spark).approach(approach);
        run_lf(&rc, pos.clone(), &cfg).unwrap()
    };
    let s2 = spark(LfApproach::Task2D);
    let s3 = spark(LfApproach::ParallelCC);
    assert!(s3.shuffle_bytes < s2.shuffle_bytes);

    let mpi = |approach| {
        let rc = RunConfig::new(c(), Engine::Mpi)
            .approach(approach)
            .mpi_world(8);
        run_lf(&rc, pos.clone(), &cfg).unwrap()
    };
    let m2 = mpi(LfApproach::Task2D);
    let m3 = mpi(LfApproach::ParallelCC);
    assert!(m3.shuffle_bytes < m2.shuffle_bytes);
}

/// Fig. 8 direction: broadcast is a far larger share of runtime for Dask
/// than for Spark.
#[test]
fn broadcast_share_dask_exceeds_spark() {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 2048,
            ..Default::default()
        },
        13,
    );
    let pos = std::sync::Arc::new(b.positions);
    let cfg = LfConfig {
        cutoff: b.suggested_cutoff,
        partitions: 32,
        paper_atoms: 131_072,
        charge_io: false,
    };
    let c = || Cluster::new(wrangler(), 2);

    let share = |report: &SimReport| {
        // phase_total: all occurrences count, not just the first recorded.
        let bcast = report.phase_total("broadcast").unwrap();
        let edges = report.phase_total("edge-discovery").unwrap();
        bcast / edges
    };
    let spark = run_lf(
        &RunConfig::new(c(), Engine::Spark).approach(LfApproach::Broadcast1D),
        pos.clone(),
        &cfg,
    )
    .unwrap();
    let dask = run_lf(
        &RunConfig::new(c(), Engine::Dask).approach(LfApproach::Broadcast1D),
        pos.clone(),
        &cfg,
    )
    .unwrap();
    let (ss, ds) = (share(&spark.report), share(&dask.report));
    assert!(
        ds > 3.0 * ss,
        "Dask broadcast share ({ds:.3}) must dwarf Spark's ({ss:.3})"
    );
}
