//! Memory-pressure equivalence sweep (PR-4 satellite): cap every node's
//! memory budget below the fault-free peak footprint and re-run LF and
//! PSA on all four engines. Each engine must take its paper-faithful
//! degradation path — Spark evicts cache and recomputes from lineage,
//! Dask pauses and spills, Pilot serializes admission, MPI chunks its
//! collectives — and either complete **bit-identical** to the uncapped
//! run or surface a typed memory error. Never a panic, never a hang,
//! never silently different data.
//!
//! Caps are applied through `FaultPlan::shrink_memory` at t=0, so the
//! same machinery that models mid-run memory faults enforces the static
//! budget here.

use mdtask::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const CASES: u32 = 48;

/// When a clean run never engaged the memory ledger (MPI tracks no
/// high-water), pressure is derived from this stand-in footprint.
const FALLBACK_FOOTPRINT: u64 = 64 * 1024;

fn lf_system() -> (Arc<Vec<Vec3>>, LfConfig) {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 200,
            ..Default::default()
        },
        7,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 8,
            paper_atoms: 200,
            charge_io: false,
        },
    )
}

fn psa_system() -> (Arc<Vec<Trajectory>>, PsaConfig) {
    let spec = ChainSpec {
        n_atoms: 10,
        n_frames: 5,
        stride: 1,
        ..ChainSpec::default()
    };
    (
        Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 4, 42)),
        PsaConfig {
            groups: 2,
            charge_io: true,
        },
    )
}

fn cluster(plan: FaultPlan) -> Cluster {
    Cluster::new(laptop(), 2).with_faults(plan)
}

/// Shrink every node of the 2-node cluster to `cap` bytes at t=0.
fn memory_cap_plan(cap: u64) -> FaultPlan {
    FaultPlan::none()
        .shrink_memory(0, 0.0, cap)
        .shrink_memory(1, 0.0, cap)
}

/// Peak resident footprint of a fault-free run, per its memory ledger.
fn peak_footprint(report: &SimReport) -> u64 {
    report
        .mem_high_water
        .iter()
        .copied()
        .max()
        .filter(|&p| p > 0)
        .unwrap_or(FALLBACK_FOOTPRINT)
}

/// The only acceptable failure mode under memory pressure.
fn is_typed_memory_error(e: &EngineError) -> bool {
    matches!(
        e,
        EngineError::MemoryExhausted { .. } | EngineError::OutOfMemory { .. }
    )
}

fn lf_matches(clean: &LfOutput, got: &LfOutput) -> Result<(), String> {
    if got.leaflet_sizes != clean.leaflet_sizes {
        return Err(format!(
            "leaflet sizes diverged: {:?} vs {:?}",
            got.leaflet_sizes, clean.leaflet_sizes
        ));
    }
    if got.n_components != clean.n_components {
        return Err("component count diverged".into());
    }
    if got.edges_found != clean.edges_found {
        return Err("edge count diverged".into());
    }
    Ok(())
}

/// LF `RunConfig` for an engine with its canonical degradation-path
/// approach, over the given fault plan.
fn lf_rc(engine: Engine, plan: FaultPlan) -> RunConfig {
    let approach = match engine {
        Engine::Spark => LfApproach::ParallelCC,
        Engine::Dask => LfApproach::Task2D,
        _ => LfApproach::Broadcast1D,
    };
    RunConfig::new(cluster(plan), engine)
        .approach(approach)
        .mpi_world(16)
}

fn psa_rc(engine: Engine, plan: FaultPlan) -> RunConfig {
    RunConfig::new(cluster(plan), engine).mpi_world(8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Spark LF under a memory cap: evicted partitions are recomputed
    /// from lineage and the answer is unchanged.
    #[test]
    fn spark_lf_survives_memory_cap_bit_identical(frac in 0.25f64..1.0) {
        let (positions, cfg) = lf_system();
        let clean = run_lf(&lf_rc(Engine::Spark, FaultPlan::none()),
            Arc::clone(&positions), &cfg).unwrap();
        let cap = ((peak_footprint(&clean.report) as f64 * frac) as u64).max(1);
        let got = run_lf(&lf_rc(Engine::Spark, memory_cap_plan(cap)),
            Arc::clone(&positions), &cfg);
        match got {
            Ok(out) => prop_assert!(lf_matches(&clean, &out).is_ok(),
                "cap {cap}: {:?}", lf_matches(&clean, &out)),
            Err(e) => prop_assert!(is_typed_memory_error(&e),
                "cap {cap}: spark failed non-typed: {e:?}"),
        }
    }

    /// Dask LF under a memory cap: paused/spilled workers still deliver
    /// identical results, or the run fails typed.
    #[test]
    fn dask_lf_survives_memory_cap_bit_identical(frac in 0.25f64..1.0) {
        let (positions, cfg) = lf_system();
        let clean = run_lf(&lf_rc(Engine::Dask, FaultPlan::none()),
            Arc::clone(&positions), &cfg).unwrap();
        let cap = ((peak_footprint(&clean.report) as f64 * frac) as u64).max(1);
        let got = run_lf(&lf_rc(Engine::Dask, memory_cap_plan(cap)),
            Arc::clone(&positions), &cfg);
        match got {
            Ok(out) => prop_assert!(lf_matches(&clean, &out).is_ok(),
                "cap {cap}: {:?}", lf_matches(&clean, &out)),
            Err(e) => prop_assert!(is_typed_memory_error(&e),
                "cap {cap}: dask failed non-typed: {e:?}"),
        }
    }

    /// Pilot LF under a memory cap: admission control serializes fat
    /// units; results match or the unit is refused typed.
    #[test]
    fn pilot_lf_survives_memory_cap_bit_identical(frac in 0.25f64..1.0) {
        let (positions, cfg) = lf_system();
        let clean = run_lf(&lf_rc(Engine::Pilot, FaultPlan::none()),
            Arc::clone(&positions), &cfg).unwrap();
        let cap = ((peak_footprint(&clean.report) as f64 * frac) as u64).max(1);
        let got = run_lf(&lf_rc(Engine::Pilot, memory_cap_plan(cap)),
            Arc::clone(&positions), &cfg);
        match got {
            Ok(out) => prop_assert!(lf_matches(&clean, &out).is_ok(),
                "cap {cap}: {:?}", lf_matches(&clean, &out)),
            Err(e) => prop_assert!(is_typed_memory_error(&e),
                "cap {cap}: pilot failed non-typed: {e:?}"),
        }
    }

    /// MPI LF under a memory cap: fixed per-rank buffers chunk the
    /// broadcast (identical results, more latency) or refuse it typed.
    /// MPI keeps no resident ledger, so pressure scales off the bytes
    /// its collectives actually move.
    #[test]
    fn mpi_lf_survives_memory_cap_bit_identical(frac in 0.2f64..4.0) {
        let (positions, cfg) = lf_system();
        let clean = run_lf(&lf_rc(Engine::Mpi, FaultPlan::none()),
            Arc::clone(&positions), &cfg).unwrap();
        let moved = (clean.report.bytes_broadcast + clean.report.bytes_shuffled)
            .max(FALLBACK_FOOTPRINT);
        let cap = ((moved as f64 * frac) as u64).max(1);
        let got = run_lf(&lf_rc(Engine::Mpi, memory_cap_plan(cap)),
            Arc::clone(&positions), &cfg);
        match got {
            Ok(out) => prop_assert!(lf_matches(&clean, &out).is_ok(),
                "cap {cap}: {:?}", lf_matches(&clean, &out)),
            Err(e) => prop_assert!(is_typed_memory_error(&e),
                "cap {cap}: mpi failed non-typed: {e:?}"),
        }
    }

    /// Spark PSA under a memory cap reproduces the Hausdorff matrix
    /// bit-for-bit (lineage recompute), or fails typed.
    #[test]
    fn spark_psa_survives_memory_cap_bit_identical(frac in 0.25f64..1.0) {
        let (ensemble, cfg) = psa_system();
        let clean = run_psa(&psa_rc(Engine::Spark, FaultPlan::none()),
            Arc::clone(&ensemble), &cfg).unwrap();
        let cap = ((peak_footprint(&clean.report) as f64 * frac) as u64).max(1);
        match run_psa(&psa_rc(Engine::Spark, memory_cap_plan(cap)),
            Arc::clone(&ensemble), &cfg) {
            Ok(out) => prop_assert!(
                out.distances.as_slice() == clean.distances.as_slice(),
                "cap {cap}: matrix diverged"
            ),
            Err(e) => prop_assert!(is_typed_memory_error(&e),
                "cap {cap}: spark failed non-typed: {e:?}"),
        }
    }

    /// Dask PSA under a memory cap reproduces the matrix bit-for-bit,
    /// or fails typed.
    #[test]
    fn dask_psa_survives_memory_cap_bit_identical(frac in 0.25f64..1.0) {
        let (ensemble, cfg) = psa_system();
        let clean = run_psa(&psa_rc(Engine::Dask, FaultPlan::none()),
            Arc::clone(&ensemble), &cfg).unwrap();
        let cap = ((peak_footprint(&clean.report) as f64 * frac) as u64).max(1);
        match run_psa(&psa_rc(Engine::Dask, memory_cap_plan(cap)),
            Arc::clone(&ensemble), &cfg) {
            Ok(out) => prop_assert!(
                out.distances.as_slice() == clean.distances.as_slice(),
                "cap {cap}: matrix diverged"
            ),
            Err(e) => prop_assert!(is_typed_memory_error(&e),
                "cap {cap}: dask failed non-typed: {e:?}"),
        }
    }

    /// Pilot PSA under a memory cap reproduces the matrix bit-for-bit,
    /// or the units are refused typed.
    #[test]
    fn pilot_psa_survives_memory_cap_bit_identical(frac in 0.25f64..1.0) {
        let (ensemble, cfg) = psa_system();
        let clean = run_psa(&psa_rc(Engine::Pilot, FaultPlan::none()),
            Arc::clone(&ensemble), &cfg).unwrap();
        let cap = ((peak_footprint(&clean.report) as f64 * frac) as u64).max(1);
        match run_psa(&psa_rc(Engine::Pilot, memory_cap_plan(cap)),
            Arc::clone(&ensemble), &cfg) {
            Ok(out) => prop_assert!(
                out.distances.as_slice() == clean.distances.as_slice(),
                "cap {cap}: matrix diverged"
            ),
            Err(e) => prop_assert!(is_typed_memory_error(&e),
                "cap {cap}: pilot failed non-typed: {e:?}"),
        }
    }

    /// MPI PSA under a memory cap reproduces the matrix bit-for-bit
    /// (chunked gather), or every rank fails with the same typed error.
    #[test]
    fn mpi_psa_survives_memory_cap_bit_identical(frac in 0.2f64..4.0) {
        let (ensemble, cfg) = psa_system();
        let clean = run_psa(&psa_rc(Engine::Mpi, FaultPlan::none()),
            Arc::clone(&ensemble), &cfg).unwrap();
        let moved = (clean.report.bytes_broadcast + clean.report.bytes_shuffled)
            .max(FALLBACK_FOOTPRINT);
        let cap = ((moved as f64 * frac) as u64).max(1);
        match run_psa(&psa_rc(Engine::Mpi, memory_cap_plan(cap)),
            Arc::clone(&ensemble), &cfg) {
            Ok(out) => prop_assert!(
                out.distances.as_slice() == clean.distances.as_slice(),
                "cap {cap}: matrix diverged"
            ),
            Err(e) => prop_assert!(is_typed_memory_error(&e),
                "cap {cap}: mpi failed non-typed: {e:?}"),
        }
    }
}

/// The PR's headline acceptance criterion, run deterministically: cap
/// every node at 50% of the fault-free peak footprint and check all
/// four engines on both workloads complete bit-identical or fail with
/// a typed memory error — and that the caps actually bite (some spill,
/// evict, recompute, or OOM shows up across the task engines).
#[test]
fn half_peak_cap_completes_bit_identical_or_typed() {
    let (positions, lf_cfg) = lf_system();
    let (ensemble, psa_cfg) = psa_system();
    let mut pressure_engaged = false;

    for engine in [Engine::Spark, Engine::Dask, Engine::Pilot, Engine::Mpi] {
        // LF.
        let clean = run_lf(
            &lf_rc(engine, FaultPlan::none()),
            Arc::clone(&positions),
            &lf_cfg,
        )
        .unwrap();
        let cap = match engine {
            // MPI keeps no resident ledger, so "peak footprint" is the
            // bytes its collectives move; halving it forces chunking.
            Engine::Mpi => {
                (clean.report.bytes_broadcast + clean.report.bytes_shuffled).max(FALLBACK_FOOTPRINT)
                    / 2
            }
            _ => (peak_footprint(&clean.report) / 2).max(1),
        };
        match run_lf(
            &lf_rc(engine, memory_cap_plan(cap)),
            Arc::clone(&positions),
            &lf_cfg,
        ) {
            Ok(out) => {
                assert!(
                    lf_matches(&clean, &out).is_ok(),
                    "{} lf diverged",
                    engine.label()
                );
                pressure_engaged |= out.report.bytes_spilled > 0
                    || out.report.bytes_evicted > 0
                    || out.report.recomputed_partitions > 0
                    || out.report.oom_kills > 0;
            }
            Err(e) => assert!(is_typed_memory_error(&e), "{} lf: {e:?}", engine.label()),
        }

        // PSA.
        let clean = run_psa(
            &psa_rc(engine, FaultPlan::none()),
            Arc::clone(&ensemble),
            &psa_cfg,
        )
        .unwrap();
        let cap = match engine {
            Engine::Mpi => {
                (clean.report.bytes_broadcast + clean.report.bytes_shuffled).max(FALLBACK_FOOTPRINT)
                    / 2
            }
            _ => (peak_footprint(&clean.report) / 2).max(1),
        };
        match run_psa(
            &psa_rc(engine, memory_cap_plan(cap)),
            Arc::clone(&ensemble),
            &psa_cfg,
        ) {
            Ok(out) => {
                assert_eq!(
                    out.distances.as_slice(),
                    clean.distances.as_slice(),
                    "{} psa diverged",
                    engine.label()
                );
                pressure_engaged |= out.report.bytes_spilled > 0
                    || out.report.bytes_evicted > 0
                    || out.report.recomputed_partitions > 0
                    || out.report.oom_kills > 0;
            }
            Err(e) => assert!(is_typed_memory_error(&e), "{} psa: {e:?}", engine.label()),
        }
    }

    assert!(
        pressure_engaged,
        "a 50% cap should make at least one task engine spill, evict, \
         recompute, or OOM — the memory model never engaged"
    );
}
