//! Integration tests for the extension layers: EnTK pipelines,
//! Pilot-MapReduce, the RMSD-series analyses, and speculative execution.

use mdtask::prelude::*;
use mdtask::rp::entk::{Pipeline, Stage};

#[test]
fn entk_pipeline_runs_md_then_analysis() {
    // The classic EnTK shape: a "simulation" stage producing trajectories,
    // then an "analysis" stage computing RMSD series — on one pilot.
    let session = Session::new(Cluster::new(comet(), 1)).unwrap();
    let spec = ChainSpec {
        n_atoms: 12,
        n_frames: 6,
        stride: 1,
        ..ChainSpec::default()
    };

    let mut simulate = Stage::new("simulate");
    for seed in 0..4u64 {
        let spec = spec.clone();
        simulate = simulate.task(move |_, _| {
            let t = mdtask::sim::chain::generate(&spec, seed);
            t.frames.len() as u64
        });
    }
    let analyze = Stage::new("analyze").task(|_, _| 1u64);
    let out = Pipeline::new("md-campaign")
        .stage(simulate)
        .stage(analyze)
        .run(&session)
        .unwrap();
    assert_eq!(out.stages[0].1, vec![6, 6, 6, 6]);
    assert!(out.report.phase_total("simulate").unwrap() > 0.0);
    assert!(
        out.report
            .phases
            .iter()
            .find(|p| p.name == "analyze")
            .unwrap()
            .start_s
            >= out
                .report
                .phases
                .iter()
                .find(|p| p.name == "simulate")
                .unwrap()
                .end_s
    );
}

#[test]
fn pilot_mapreduce_word_count() {
    let session = Session::new(Cluster::new(comet(), 1)).unwrap();
    let docs: Vec<Vec<u32>> = (0..6).map(|i| vec![i % 3, (i + 1) % 3]).collect();
    let (mut out, report) = mdtask::rp::mapreduce::map_reduce(
        &session,
        docs,
        |doc: Vec<u32>| doc.into_iter().map(|w| (w, 1u64)).collect(),
        3,
        |a, b| a + b,
    )
    .unwrap();
    out.sort_unstable();
    assert_eq!(out, vec![(0, 4), (1, 4), (2, 4)]);
    // The shuffle went through the filesystem — RP's only data path.
    assert!(report.bytes_staged > 0);
}

#[test]
fn rmsd_series_parallel_equals_serial() {
    use mdtask::analysis::common::*;
    let spec = ChainSpec {
        n_atoms: 18,
        n_frames: 30,
        stride: 1,
        ..ChainSpec::default()
    };
    let t = mdtask::sim::chain::generate(&spec, 3);
    let reference = rmsd_series_serial(&t, &t.frames[0], RmsdMode::Superposed);
    let sc = SparkContext::new(Cluster::new(laptop(), 2));
    let spark = rmsd_series_spark(&sc, &t, &t.frames[0], RmsdMode::Superposed, 5);
    assert_eq!(spark, reference);
    // Superposed RMSD strips global drift: it stays below plain RMSD.
    let plain = rmsd_series_serial(&t, &t.frames[0], RmsdMode::Plain);
    for (s, p) in reference.iter().zip(&plain) {
        assert!(s <= &(p + 1e-5), "QCP convergence tolerance");
    }
}

#[test]
fn speculation_rescues_straggling_stage() {
    let sc = SparkContext::new(Cluster::new(comet(), 1));
    sc.enable_speculation(2.0);
    let rdd = Rdd::from_partitions(sc.clone(), 12, |p, ctx: &TaskCtx| {
        // One pathological task (a straggler node, GC pause, …).
        ctx.charge(if p == 7 { 500.0 } else { 0.5 });
        vec![p as u32]
    });
    let out = rdd.collect();
    assert_eq!(out.len(), 12);
    assert!(
        sc.report().makespan_s < 10.0,
        "speculation should cap the 500 s straggler: {}",
        sc.report().makespan_s
    );
}
