//! Shuffle byte accounting properties: the reported `bytes_shuffled` must
//! equal the logical volume actually crossing the wire, and re-running an
//! action on an already-shuffled RDD must not re-charge the shuffle.

use mdtask::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: `group_by_key` moves every record exactly once, so
    /// `bytes_shuffled` equals the wire size of the whole dataset — one
    /// 8-byte `(u32, u32)` record at a time — regardless of how the input
    /// is partitioned or how many reducers there are.
    #[test]
    fn group_by_key_conserves_bytes(
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 1..120),
        in_parts in 1usize..7,
        out_parts in 1usize..5,
    ) {
        let sc = SparkContext::new(Cluster::new(laptop(), 2));
        let grouped = sc.parallelize(pairs.clone(), in_parts).group_by_key(out_parts);
        let counted: usize = grouped.count();
        prop_assert!(counted >= 1);
        let report = sc.report();
        let expected = 8 * pairs.len() as u64;
        prop_assert_eq!(
            report.bytes_shuffled, expected,
            "per-(map,reduce) wire bytes must sum to the dataset size"
        );
    }

    /// Map-side combining (`reduce_by_key`) can only shrink the shuffled
    /// volume, never grow it.
    #[test]
    fn map_side_combine_never_inflates_shuffle(
        pairs in prop::collection::vec((0u32..16, any::<u32>()), 1..120),
        in_parts in 1usize..7,
        out_parts in 1usize..5,
    ) {
        let grouped = SparkContext::new(Cluster::new(laptop(), 2));
        let _ = grouped.parallelize(pairs.clone(), in_parts).group_by_key(out_parts).count();
        let full = grouped.report().bytes_shuffled;

        let reduced = SparkContext::new(Cluster::new(laptop(), 2));
        let _ = reduced
            .parallelize(pairs, in_parts)
            .reduce_by_key(out_parts, |a, b| a.wrapping_add(b))
            .count();
        let combined = reduced.report().bytes_shuffled;
        prop_assert!(combined <= full, "combine shuffled {combined} > {full}");
    }

    /// Shuffle files persist (Spark keeps them on disk): a second action on
    /// the shuffled RDD re-reads them and must not re-charge shuffle bytes
    /// or communication time.
    #[test]
    fn second_action_does_not_recharge_shuffle(
        pairs in prop::collection::vec((0u32..8, any::<u32>()), 1..80),
        in_parts in 1usize..5,
        out_parts in 1usize..4,
    ) {
        let sc = SparkContext::new(Cluster::new(laptop(), 2));
        let grouped = sc.parallelize(pairs, in_parts).group_by_key(out_parts);
        let first = grouped.count();
        let (bytes, comm, retries) = {
            let r = sc.report();
            (r.bytes_shuffled, r.comm_s, r.retries)
        };
        let second = grouped.count();
        prop_assert_eq!(first, second);
        let r = sc.report();
        prop_assert_eq!(r.bytes_shuffled, bytes, "shuffle bytes re-charged");
        prop_assert!(
            (r.comm_s - comm).abs() < 1e-12,
            "shuffle comm time re-charged: {} vs {}", r.comm_s, comm
        );
        prop_assert_eq!(r.retries, retries);
    }
}
