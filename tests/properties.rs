//! Cross-crate property tests: engine results must be invariant to how
//! work is partitioned, and virtual time must obey scheduling bounds.

use mdtask::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Spark group_by_key results do not depend on the input partitioning
    /// or the reducer count.
    #[test]
    fn spark_shuffle_partitioning_invariance(
        pairs in prop::collection::vec((0u32..8, 0u32..100), 1..60),
        in_parts in 1usize..7,
        out_parts in 1usize..5,
    ) {
        let sc = SparkContext::new(Cluster::new(laptop(), 2));
        let mut got = sc
            .parallelize(pairs.clone(), in_parts)
            .group_by_key(out_parts)
            .collect();
        got.sort_by_key(|(k, _)| *k);
        got.iter_mut().for_each(|(_, vs)| vs.sort_unstable());

        let mut want: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
        for (k, v) in pairs {
            want.entry(k).or_default().push(v);
        }
        let mut want: Vec<(u32, Vec<u32>)> = want.into_iter().collect();
        want.iter_mut().for_each(|(_, vs)| vs.sort_unstable());
        prop_assert_eq!(got, want);
    }

    /// PSA distance matrices are identical for every group count k —
    /// Algorithm 2's partitioning is a pure execution strategy.
    #[test]
    fn psa_partitioning_invariance(k in 1usize..5, seed in 0u64..50) {
        let spec = ChainSpec { n_atoms: 8, n_frames: 4, stride: 1, ..ChainSpec::default() };
        let e = Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 4, seed));
        let cfg_k = PsaConfig { groups: k.min(4), charge_io: false };
        let cfg_1 = PsaConfig { groups: 1, charge_io: false };
        let rc = RunConfig::new(Cluster::new(laptop(), 1), Engine::Spark);
        let a = run_psa(&rc, Arc::clone(&e), &cfg_k).unwrap().distances;
        let b = run_psa(&rc, Arc::clone(&e), &cfg_1).unwrap().distances;
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-12);
            }
        }
    }

    /// Leaflet Finder output is invariant to the partition count, for
    /// every approach, on Spark.
    #[test]
    fn leaflet_partitioning_invariance(parts in 2usize..20, seed in 0u64..30) {
        let b = mdtask::sim::bilayer::generate(
            &BilayerSpec { n_atoms: 120, ..Default::default() }, seed);
        let pos = Arc::new(b.positions);
        let mk = |partitions| LfConfig {
            cutoff: b.suggested_cutoff,
            partitions,
            paper_atoms: 120,
            charge_io: false,
        };
        for approach in LfApproach::ALL {
            let rc = RunConfig::new(Cluster::new(laptop(), 1), Engine::Spark).approach(approach);
            let a = run_lf(&rc, Arc::clone(&pos), &mk(parts)).unwrap();
            let c = run_lf(&rc, Arc::clone(&pos), &mk(3)).unwrap();
            prop_assert_eq!(&a.leaflet_sizes, &c.leaflet_sizes, "{:?}", approach);
            prop_assert_eq!(a.edges_found, c.edges_found, "{:?}", approach);
        }
    }

    /// MPI world size never changes a PSA answer; virtual makespan never
    /// goes below the critical-path lower bound (work/cores).
    #[test]
    fn mpi_world_size_invariance(world in 1usize..9, seed in 0u64..20) {
        let spec = ChainSpec { n_atoms: 6, n_frames: 3, stride: 1, ..ChainSpec::default() };
        let e = Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 3, seed));
        let cfg = PsaConfig { groups: 3, charge_io: false };
        let rc = |w| RunConfig::new(Cluster::new(laptop(), 2), Engine::Mpi).mpi_world(w);
        let base = run_psa(&rc(1), Arc::clone(&e), &cfg).unwrap();
        let out = run_psa(&rc(world), Arc::clone(&e), &cfg).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((out.distances.get(i, j) - base.distances.get(i, j)).abs() < 1e-12);
            }
        }
        // Makespan ≥ startup (0.5 s) always; tasks cannot finish before
        // the critical path allows.
        prop_assert!(out.report.makespan_s >= 0.5);
    }
}
