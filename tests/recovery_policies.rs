//! Recovery policies end-to-end (PR-3 acceptance scenarios): bounded
//! retries surface typed errors instead of panicking or hanging, deadlines
//! and detection delays are honoured, sparklet checkpoints truncate
//! lineage recompute, and mpilike restarts from the last collective
//! barrier instead of aborting.

use mdtask::prelude::*;
use std::sync::Arc;

struct System {
    positions: Arc<Vec<Vec3>>,
    cfg: LfConfig,
}

fn system() -> System {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 300,
            ..Default::default()
        },
        17,
    );
    System {
        positions: Arc::new(b.positions),
        cfg: LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 16,
            paper_atoms: 300,
            charge_io: false,
        },
    }
}

fn cluster() -> Cluster {
    Cluster::new(laptop(), 2)
}

fn phase_midpoint(report: &SimReport, name: &str) -> f64 {
    let p = report
        .phases
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("no {name:?} phase recorded"));
    0.5 * (p.start_s + p.end_s)
}

/// With `max_attempts = 1` the very first killed attempt exhausts the
/// policy: Spark surfaces `RetriesExhausted` as a value, not a panic.
#[test]
fn spark_retry_exhaustion_is_typed_error() {
    let s = system();
    let rc = RunConfig::new(cluster(), Engine::Spark).approach(LfApproach::Broadcast1D);
    let clean = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();

    let t_kill = phase_midpoint(&clean.report, "edge-discovery");
    let rc = RunConfig::new(
        cluster().with_faults(FaultPlan::none().kill_node(1, t_kill)),
        Engine::Spark,
    )
    .approach(LfApproach::Broadcast1D)
    .retry_policy(RetryPolicy::new(1));
    let got = run_lf(&rc, Arc::clone(&s.positions), &s.cfg);
    match got {
        Err(EngineError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 1),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// Same scenario on Dask: the poisoned future reaches `try_gather` as a
/// typed error.
#[test]
fn dask_retry_exhaustion_is_typed_error() {
    let s = system();
    let rc = RunConfig::new(cluster(), Engine::Dask).approach(LfApproach::Broadcast1D);
    let clean = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();

    let t_kill = phase_midpoint(&clean.report, "edge-discovery");
    let rc = RunConfig::new(
        cluster().with_faults(FaultPlan::none().kill_node(1, t_kill)),
        Engine::Dask,
    )
    .approach(LfApproach::Broadcast1D)
    .retry_policy(RetryPolicy::new(1));
    let got = run_lf(&rc, Arc::clone(&s.positions), &s.cfg);
    match got {
        Err(EngineError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 1),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// Pilot: a unit killed once under `max_attempts = 1` is not re-enqueued —
/// the session returns the typed error.
#[test]
fn pilot_retry_exhaustion_is_typed_error() {
    let units = || {
        (0..32u64)
            .map(|i| UnitDescription::compute_only(move |_, _| i * i))
            .collect::<Vec<UnitDescription<u64>>>()
    };
    let clean = Session::new(cluster())
        .unwrap()
        .submit_and_wait(units())
        .unwrap();
    let t_kill = 0.5 * (35.0 + clean.report.makespan_s);
    let session =
        Session::new(cluster().with_faults(FaultPlan::none().kill_node(1, t_kill))).unwrap();
    session.set_retry_policy(RetryPolicy::new(1));
    match session.submit_and_wait(units()) {
        Err(EngineError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 1),
        Err(other) => panic!("expected RetriesExhausted, got {other:?}"),
        Ok(_) => panic!("expected RetriesExhausted, job succeeded"),
    }
}

/// When every node dies there is nowhere left to run: the engines fail
/// fast with `NoSurvivingWorkers` instead of hanging.
#[test]
fn all_nodes_dead_fails_fast_not_hangs() {
    let s = system();
    let plan = || FaultPlan::none().kill_node(0, 1e-4).kill_node(1, 1e-4);

    for engine in [Engine::Spark, Engine::Dask] {
        let rc =
            RunConfig::new(cluster().with_faults(plan()), engine).approach(LfApproach::Broadcast1D);
        match run_lf(&rc, Arc::clone(&s.positions), &s.cfg) {
            Err(EngineError::NoSurvivingWorkers { .. }) => {}
            other => panic!("{engine:?}: expected NoSurvivingWorkers, got {other:?}"),
        }
    }
}

/// An impossibly tight deadline fails fast with the typed error even on a
/// fault-free cluster.
#[test]
fn deadline_exceeded_is_typed_error() {
    let sc = SparkContext::new(cluster());
    sc.set_retry_policy(RetryPolicy::new(3).with_deadline(1e-12));
    let rdd = sc.parallelize((0..64u32).collect::<Vec<_>>(), 8);
    match rdd.try_collect() {
        Err(EngineError::DeadlineExceeded { deadline_s, .. }) => {
            assert!((deadline_s - 1e-12).abs() < 1e-15)
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

/// Heartbeat detection delay is paid in virtual time: the same death with
/// a 2 s heartbeat finishes at least ~2 s later than instant detection.
#[test]
fn detection_delay_is_paid_in_virtual_time() {
    let s = system();
    let rc = RunConfig::new(cluster(), Engine::Dask).approach(LfApproach::Broadcast1D);
    let clean = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();
    let t_kill = phase_midpoint(&clean.report, "edge-discovery");
    let run = |delay: f64| {
        let rc = RunConfig::new(
            cluster().with_faults(FaultPlan::none().kill_node(1, t_kill)),
            Engine::Dask,
        )
        .approach(LfApproach::Broadcast1D)
        .retry_policy(RetryPolicy::new(5).with_detection_delay(delay));
        run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap()
    };
    let instant = run(0.0);
    let delayed = run(2.0);
    assert_eq!(instant.leaflet_sizes, delayed.leaflet_sizes);
    assert!(
        delayed.report.makespan_s >= instant.report.makespan_s + 1.0,
        "a 2 s heartbeat must delay recovery: {} vs {}",
        delayed.report.makespan_s,
        instant.report.makespan_s
    );
}

/// Acceptance scenario: a checkpointed RDD provably recomputes fewer
/// partitions than the same uncheckpointed lineage after a late node
/// death, and still produces the fault-free answer.
#[test]
fn checkpoint_truncates_lineage_recompute() {
    // Two chained shuffles over bulky records: the second shuffle's fetch
    // window is dominated by deterministic (byte-volume) transfer time, so
    // a kill at its midpoint reliably destroys map outputs on node 1
    // before the reducers finish fetching. Without a checkpoint the
    // rebuild replays the whole depth-2 lineage per lost partition; with
    // the intermediate RDD checkpointed it replays a single stage.
    let data: Vec<(u32, Vec<u32>)> = (0..64).map(|i| (i % 16, vec![i; 4096])).collect();
    let run = |checkpointed: bool, faults: Option<f64>| {
        let plan = match faults {
            Some(t) => FaultPlan::none().kill_node(1, t),
            None => FaultPlan::none(),
        };
        let sc = SparkContext::new(cluster().with_faults(plan));
        // 16 map partitions feed shuffle #2, spanning both nodes.
        let mid = sc
            .parallelize(data.clone(), 16)
            .group_by_key(16)
            .map(|(k, vs)| (k % 4, vs));
        let mid = if checkpointed { mid.checkpoint() } else { mid };
        let mut out: Vec<(u32, Vec<Vec<Vec<u32>>>)> = mid.group_by_key(4).collect();
        out.sort_unstable();
        (out, sc.report())
    };
    // Midpoint of the second (latest-starting) shuffle's fetch window.
    let second_shuffle_mid = |rep: &SimReport| {
        rep.phases
            .iter()
            .filter(|p| p.name == "shuffle")
            .max_by(|a, b| a.start_s.total_cmp(&b.start_s))
            .map(|p| 0.5 * (p.start_s + p.end_s))
            .expect("shuffle phase recorded")
    };

    let (clean_plain, rep_plain) = run(false, None);
    let (clean_ckpt, rep_ckpt) = run(true, None);
    assert_eq!(clean_plain, clean_ckpt);
    assert!(
        rep_ckpt.phase_total("checkpoint").unwrap_or(0.0) > 0.0,
        "the checkpoint write must be charged"
    );

    let (faulty_plain, frep_plain) = run(false, Some(second_shuffle_mid(&rep_plain)));
    let (faulty_ckpt, frep_ckpt) = run(true, Some(second_shuffle_mid(&rep_ckpt)));
    assert_eq!(faulty_plain, clean_plain, "recompute must reproduce data");
    assert_eq!(faulty_ckpt, clean_plain, "recompute must reproduce data");
    assert!(frep_plain.recomputed_partitions > 0);
    assert!(frep_ckpt.recomputed_partitions > 0);
    assert!(
        frep_ckpt.recomputed_partitions < frep_plain.recomputed_partitions,
        "checkpoint must truncate lineage: {} (ckpt) vs {} (plain)",
        frep_ckpt.recomputed_partitions,
        frep_plain.recomputed_partitions
    );
}

/// MPI under a recovery policy restarts from the last completed collective
/// barrier: the job finishes with the fault-free answer, and restarting
/// from the barrier loses strictly less work than restarting from scratch.
#[test]
fn mpi_restarts_from_last_collective_barrier() {
    let s = system();
    let rc = RunConfig::new(cluster(), Engine::Mpi)
        .approach(LfApproach::Broadcast1D)
        .mpi_world(16);
    let clean = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();
    let t_kill = phase_midpoint(&clean.report, "edge-discovery");
    let policy = RetryPolicy::new(3).with_detection_delay(1.0);
    let run = |from_barrier: bool| {
        let rc = RunConfig::new(
            cluster().with_faults(FaultPlan::none().kill_node(1, t_kill)),
            Engine::Mpi,
        )
        .approach(LfApproach::Broadcast1D)
        .mpi_world(16)
        .retry_policy(policy)
        .checkpoint_restart(from_barrier);
        run_lf(&rc, Arc::clone(&s.positions), &s.cfg).expect("policied MPI job must recover")
    };
    let barrier = run(true);
    let scratch = run(false);

    for out in [&barrier, &scratch] {
        assert_eq!(out.leaflet_sizes, clean.leaflet_sizes);
        assert_eq!(out.n_components, clean.n_components);
        assert_eq!(out.edges_found, clean.edges_found);
        assert_eq!(out.report.retries, 1, "one restart");
        assert!(out.report.lost_time_s > 0.0);
        assert!(out.report.makespan_s > clean.report.makespan_s);
        assert!(
            out.report.phase_total("recovery").unwrap_or(0.0) > 0.0,
            "the restart window must be a recovery phase"
        );
    }
    // Note: makespans of the two runs are not directly comparable — each
    // re-measures its real task durations — but lost work is computed
    // inside one timeline and scales with `world`, so it is robust.
    assert!(
        barrier.report.lost_time_s < scratch.report.lost_time_s,
        "the broadcast barrier checkpoint must save work: {} vs {}",
        barrier.report.lost_time_s,
        scratch.report.lost_time_s
    );
}

/// A second death during the restarted MPI run exhausts `max_attempts = 2`
/// and surfaces the typed error; plain `lf_mpi` (one attempt) still keeps
/// the abort-on-death posture.
#[test]
fn mpi_policy_exhaustion_and_default_abort() {
    let s = system();
    // Both deaths land inside the 0.5 s mpirun startup window, so they are
    // always before the job's end regardless of measured task durations.
    let plan = FaultPlan::none().kill_node(1, 0.3).kill_node(0, 0.4);
    let rc = RunConfig::new(cluster().with_faults(plan.clone()), Engine::Mpi)
        .approach(LfApproach::Broadcast1D)
        .mpi_world(16)
        .retry_policy(RetryPolicy::new(2));
    match run_lf(&rc, Arc::clone(&s.positions), &s.cfg) {
        Err(EngineError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }

    let rc = RunConfig::new(
        cluster().with_faults(FaultPlan::none().kill_node(1, 0.4)),
        Engine::Mpi,
    )
    .approach(LfApproach::Broadcast1D)
    .mpi_world(16);
    match run_lf(&rc, Arc::clone(&s.positions), &s.cfg) {
        Err(EngineError::WorkerLost { node, .. }) => assert_eq!(node, 1),
        other => panic!("expected WorkerLost, got {other:?}"),
    }
}

/// `psa_mpi_with_policy` survives a mid-job death and still reproduces the
/// fault-free Hausdorff matrix bit-for-bit.
#[test]
fn psa_mpi_with_policy_matches_fault_free() {
    let spec = ChainSpec {
        n_atoms: 10,
        n_frames: 5,
        stride: 1,
        ..ChainSpec::default()
    };
    let e = mdtask::sim::chain::generate_ensemble(&spec, 6, 42);
    let cfg = PsaConfig {
        groups: 3,
        charge_io: true,
    };
    let e = Arc::new(e);
    let rc = RunConfig::new(cluster(), Engine::Mpi).mpi_world(4);
    let clean = run_psa(&rc, Arc::clone(&e), &cfg).unwrap();
    // A death during startup always precedes the job's end, whatever the
    // measured kernel durations turn out to be. All 4 ranks sit on node 0,
    // so that is the node whose death the communicator observes.
    let rc = RunConfig::new(
        cluster().with_faults(FaultPlan::none().kill_node(0, 0.4)),
        Engine::Mpi,
    )
    .mpi_world(4)
    .retry_policy(RetryPolicy::new(3));
    let faulty = run_psa(&rc, Arc::clone(&e), &cfg).expect("policied PSA must recover");
    assert_eq!(
        faulty.distances.as_slice(),
        clean.distances.as_slice(),
        "recovered matrix must match fault-free bit-for-bit"
    );
    assert_eq!(faulty.report.retries, 1);
}
