//! Fault-tolerant streaming across engines (ISSUE-8 acceptance): the
//! Leaflet-Finder per-frame kernel streamed through all four engine
//! postures under clean delivery, producer stalls/crashes, mid-window
//! node deaths, and memory pressure. Every outcome is *typed or
//! identical*: a run either completes with window results equal to the
//! fault-free run or fails with a typed `EngineError` — never a panic,
//! hang, or silent loss. Reports are bit-identical across host thread
//! counts, and a ≥100-plan seeded stream-chaos battery holds the stream
//! oracles on every engine.

use mdtask::prelude::*;
use netsim::chaos::{plan_for_seed, ChaosConfig};
use netsim::stream::DispatchMode;
use std::sync::Arc;

const FRAMES: usize = 20;
const INTERVAL: f64 = 0.5;

fn trajectory() -> Arc<Trajectory> {
    let spec = ChainSpec {
        n_atoms: 30,
        n_frames: FRAMES,
        stride: 1,
        ..ChainSpec::default()
    };
    Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 1, 11).remove(0))
}

fn lf_cfg() -> LfConfig {
    LfConfig {
        cutoff: 8.0,
        partitions: 4,
        paper_atoms: 30,
        charge_io: false,
    }
}

fn rc(engine: Engine, plan: FaultPlan) -> RunConfig {
    let mut rc = RunConfig::new(Cluster::new(laptop(), 2).with_faults(plan), engine)
        .streaming(2.0, 2.0, 0.5)
        .retry_policy(
            RetryPolicy::new(4)
                .with_detection_delay(0.25)
                .with_deadline(500.0),
        );
    if engine == Engine::Mpi {
        rc = rc.mpi_world(8);
    }
    rc
}

fn source(plan: FaultPlan) -> StreamSource {
    StreamSource::new(FRAMES, INTERVAL)
        .with_latency(0.05)
        .with_jitter(0.1)
        .with_faults(plan)
}

fn run(engine: Engine, plan: FaultPlan) -> Result<StreamRun, EngineError> {
    run_lf_stream(
        &rc(engine, plan.clone()),
        trajectory(),
        &lf_cfg(),
        &source(plan),
    )
}

/// The (window id → frames, value) association every engine must agree on.
fn window_map(out: &StreamOutput) -> Vec<(usize, Vec<usize>, u64)> {
    let mut v: Vec<_> = out
        .windows
        .iter()
        .map(|w| (w.id, w.frames.clone(), w.value))
        .collect();
    v.sort();
    v
}

/// The dispatch posture `run_lf_stream` picks per engine, for re-deriving
/// the oracle's `StreamSpec`.
fn mode_for(engine: Engine) -> DispatchMode {
    match engine {
        Engine::Spark => DispatchMode::MicroBatch(4),
        Engine::Dask => DispatchMode::PerFrame,
        Engine::Pilot => DispatchMode::UnitPerWindow,
        Engine::Mpi => DispatchMode::RingCollective(4),
    }
}

fn check_oracles(engine: Engine, plan: &FaultPlan, run: &StreamRun) {
    let spec = StreamJob::new(WindowSpec::sliding(2.0, 2.0, 0.5)).spec(mode_for(engine), 0.0);
    let log = source(plan.clone()).schedule();
    // Generous staleness slack: dispatch overheads, micro-batch/ring
    // buffering, and death-detection delays all postpone closes.
    if let Some(msg) = check_stream_invariants(&log, &spec, &run.output, 10.0) {
        panic!("{engine:?}: stream oracle violated: {msg}");
    }
    // Watermarks never regress (also checked inside the oracle; asserted
    // here so a future oracle refactor cannot silently lose it).
    for w in run.output.watermarks.windows(2) {
        assert!(w[1].1 >= w[0].1, "{engine:?}: watermark regressed: {w:?}");
    }
    assert!(run.report.makespan_s.is_finite());
}

#[test]
fn clean_streams_agree_across_all_engines() {
    let mut maps = Vec::new();
    for engine in Engine::ALL {
        let r = run(engine, FaultPlan::none()).unwrap_or_else(|e| {
            panic!("{engine:?}: clean stream failed: {e}");
        });
        check_oracles(engine, &FaultPlan::none(), &r);
        assert_eq!(r.output.frames_accepted, FRAMES, "{engine:?}");
        assert_eq!(r.output.frames_replayed, 0, "{engine:?}");
        assert!(!r.output.windows.is_empty(), "{engine:?}");
        maps.push((engine, window_map(&r.output)));
    }
    // Same windows, same member frames, same fold values everywhere; only
    // close times differ between postures.
    for pair in maps.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "{:?} and {:?} disagree on window contents",
            pair[0].0, pair[1].0
        );
    }
}

#[test]
fn producer_stall_delays_but_completes_identically() {
    for engine in Engine::ALL {
        let clean = run(engine, FaultPlan::none()).unwrap();
        let plan = FaultPlan::none().stall_producer(2.2, 3.0);
        let stalled = run(engine, plan.clone())
            .unwrap_or_else(|e| panic!("{engine:?}: stall is recoverable, got {e}"));
        check_oracles(engine, &plan, &stalled);
        assert_eq!(
            window_map(&clean.output),
            window_map(&stalled.output),
            "{engine:?}: a finite stall must not change any window result"
        );
        let last_close = |r: &StreamRun| {
            r.output
                .windows
                .iter()
                .map(|w| w.close_s)
                .fold(0.0f64, f64::max)
        };
        assert!(
            last_close(&stalled) > last_close(&clean),
            "{engine:?}: the stall shows up in virtual close times"
        );
    }
}

#[test]
fn producer_crash_surfaces_typed_stall_not_a_hang() {
    for engine in Engine::ALL {
        let plan = FaultPlan::none().crash_producer(3.2);
        match run(engine, plan) {
            Err(EngineError::StreamStalled { at_s, open_windows }) => {
                assert!(open_windows > 0, "{engine:?}: the crash left windows open");
                assert!(at_s.is_finite());
            }
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => panic!("{engine:?}: expected StreamStalled, got {other:?}"),
        }
    }
}

#[test]
fn mid_window_death_is_typed_or_identical() {
    for engine in Engine::ALL {
        let clean = run(engine, FaultPlan::none()).unwrap();
        // Node 0 hosts the open-window state (first-fit placement);
        // 2.7s is inside the second window's lifetime for every posture.
        let plan = FaultPlan::none().kill_node(0, 2.7);
        match run(engine, plan.clone()) {
            Ok(r) => {
                check_oracles(engine, &plan, &r);
                assert_eq!(
                    window_map(&clean.output),
                    window_map(&r.output),
                    "{engine:?}: recovery must reproduce every window exactly"
                );
                // Lineage is per-window: a replay re-runs at most the
                // frames of the windows homed on the dead node.
                assert!(
                    r.output.frames_replayed <= FRAMES,
                    "{engine:?}: replayed {} frames of {FRAMES}",
                    r.output.frames_replayed
                );
            }
            Err(
                EngineError::WorkerLost { .. }
                | EngineError::NoSurvivingWorkers { .. }
                | EngineError::RetriesExhausted { .. }
                | EngineError::StreamStalled { .. },
            ) => {}
            Err(other) => panic!("{engine:?}: untyped death outcome: {other:?}"),
        }
    }
}

#[test]
fn task_engines_replay_only_the_lost_windows() {
    // At least one task engine must demonstrate actual per-window lineage
    // replay (not a silent pass because state happened to live elsewhere):
    // node 0 holds the open-window state, so killing it mid-stream forces
    // a re-home plus a replay of a strict subset of frames.
    let mut replays = 0usize;
    for engine in [Engine::Spark, Engine::Dask, Engine::Pilot] {
        let plan = FaultPlan::none().kill_node(0, 2.7);
        if let Ok(r) = run(engine, plan) {
            replays += r.output.frames_replayed;
            if r.output.frames_replayed > 0 {
                assert!(
                    r.output.windows.iter().any(|w| w.replayed),
                    "{engine:?}: replayed frames but no window marked replayed"
                );
                assert!(
                    r.output.frames_replayed < FRAMES,
                    "{engine:?}: replay must be per-window, not whole-stream"
                );
            }
        }
    }
    assert!(replays > 0, "no task engine exercised lineage replay");
}

#[test]
fn memory_squeeze_backpressures_and_recovers_identically() {
    // Both nodes pinched to 2 MiB shortly after the stream starts (each
    // open window holds ~1 MiB/frame), restored two seconds later: the
    // runner must pause ingestion against the ledger and catch up, not
    // OOM — and produce the exact clean results.
    for engine in Engine::ALL {
        let clean = run(engine, FaultPlan::none()).unwrap();
        let plan = FaultPlan::none()
            .shrink_memory(0, 2.0, 2 << 20)
            .shrink_memory(1, 2.0, 2 << 20)
            .set_memory(0, 4.0, 16 << 30)
            .set_memory(1, 4.0, 16 << 30);
        match run(engine, plan.clone()) {
            Ok(r) => {
                check_oracles(engine, &plan, &r);
                assert_eq!(
                    window_map(&clean.output),
                    window_map(&r.output),
                    "{engine:?}: backpressure must not change results"
                );
                assert!(
                    r.output.backpressure_pauses > 0,
                    "{engine:?}: the squeeze was never felt"
                );
                assert!(r.output.backpressure_wait_s > 0.0, "{engine:?}");
            }
            Err(EngineError::MemoryExhausted { .. } | EngineError::StreamStalled { .. }) => {}
            Err(other) => panic!("{engine:?}: untyped memory outcome: {other:?}"),
        }
    }
}

#[test]
fn exhausted_budget_fails_typed_never_ooms() {
    // Shrink with no restoration: once open-window state cannot fit and
    // nothing is scheduled to free it, the run must fail typed.
    for engine in Engine::ALL {
        let plan = FaultPlan::none()
            .shrink_memory(0, 1.0, 1 << 20)
            .shrink_memory(1, 1.0, 1 << 20);
        match run(engine, plan) {
            Err(
                EngineError::MemoryExhausted { .. }
                | EngineError::StreamStalled { .. }
                | EngineError::DeadlineExceeded { .. },
            ) => {}
            Ok(_) => panic!("{engine:?}: 1 MiB cannot hold any window state"),
            Err(other) => panic!("{engine:?}: untyped OOM outcome: {other:?}"),
        }
    }
}

#[test]
fn stream_reports_are_identical_across_host_threads() {
    mdtask::cluster::set_deterministic_timing(true);
    let plans = [
        FaultPlan::none(),
        FaultPlan::none()
            .seeded(5)
            .stall_producer(2.2, 1.0)
            .duplicate_frames(0.2),
        FaultPlan::none().kill_node(1, 2.7),
    ];
    for engine in Engine::ALL {
        for plan in &plans {
            let at = |threads: Threads| {
                let mut cfg = rc(engine, plan.clone()).threads(threads);
                cfg = cfg.trace(true);
                run_lf_stream(&cfg, trajectory(), &lf_cfg(), &source(plan.clone()))
                    .map_err(|e| format!("{e:?}"))
            };
            let serial = at(Threads::Serial);
            for threads in [Threads::Fixed(2), Threads::Fixed(8)] {
                let got = at(threads);
                match (&serial, &got) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.output, b.output, "{engine:?}/{threads}: output");
                        assert_eq!(
                            a.report, b.report,
                            "{engine:?}/{threads}: SimReport (incl. trace)"
                        );
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "{engine:?}/{threads}"),
                    (a, b) => panic!("{engine:?}/{threads}: diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

#[test]
fn hundred_seeded_stream_plans_hold_the_oracles_on_every_engine() {
    // The chaos generator with stream faults enabled: ≥100 plans mixing
    // node deaths, stragglers, memory shrinks, producer stalls/crashes,
    // scripted and seeded drops, delays, and duplicate delivery. Every
    // engine either completes (oracles hold, results match the plan's
    // delivery) or fails with a typed error. Nothing panics or hangs.
    let mut cfg = ChaosConfig::new(2, 8).with_stream(FRAMES);
    cfg.death_window_s = (0.0, 12.0);
    cfg.mem_shrink_window_s = (0.0, 12.0);
    // Full node budgets shrink towards ~5–15 GiB: felt, survivable.
    cfg.mem_per_node = 16 << 30;
    let mut completed = 0usize;
    let mut typed = 0usize;
    for seed in 0..25u64 {
        let plan = plan_for_seed(&cfg, seed);
        for engine in Engine::ALL {
            match run(engine, plan.clone()) {
                Ok(r) => {
                    check_oracles(engine, &plan, &r);
                    completed += 1;
                }
                Err(
                    EngineError::StreamStalled { .. }
                    | EngineError::DeadlineExceeded { .. }
                    | EngineError::MemoryExhausted { .. }
                    | EngineError::OutOfMemory { .. }
                    | EngineError::WorkerLost { .. }
                    | EngineError::NoSurvivingWorkers { .. }
                    | EngineError::RetriesExhausted { .. },
                ) => typed += 1,
                Err(other) => {
                    panic!("seed {seed} {engine:?}: untyped failure: {other:?}")
                }
            }
        }
    }
    assert_eq!(completed + typed, 100, "25 plans x 4 engines, all resolved");
    assert!(
        completed >= 40,
        "most plans are survivable, only {completed}/100 completed"
    );
    assert!(typed >= 1, "crash plans exist in 25 seeds at p=0.15");
}

#[test]
fn late_frames_follow_the_configured_disposition_end_to_end() {
    // A frame delayed far past the allowed lateness: side-channelled by
    // default, absorbed (amending the emitted result) when asked.
    let plan = FaultPlan::none().delay_frame(2, 5.0);
    for engine in Engine::ALL {
        let r = run(engine, plan.clone()).unwrap();
        assert!(
            r.output.late.iter().any(|l| l.frame == 2),
            "{engine:?}: frame 2 lands on the side channel"
        );
        let cfg = rc(engine, plan.clone()).late_disposition(LateDisposition::Absorb);
        let r = run_lf_stream(&cfg, trajectory(), &lf_cfg(), &source(plan.clone())).unwrap();
        assert!(
            r.output.absorbed.iter().any(|l| l.frame == 2)
                || r.output.late.iter().any(|l| l.frame == 2),
            "{engine:?}: absorb mode accounts for frame 2"
        );
    }
}
