//! Cross-crate observability tests: traced engine runs export valid
//! Chrome traces and CSV, the gantt renderer never panics, and the
//! critical path reproduces Fig. 8's broadcast attribution from mechanism.

use mdtask::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Minimal structural JSON check: balanced braces/brackets outside
/// strings, double quotes paired, no trailing garbage. Enough to catch a
/// malformed hand-rolled export without a JSON dependency.
fn assert_structurally_valid_json(s: &str) {
    let mut depth: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth.push('}'),
            '[' => depth.push(']'),
            '}' | ']' => {
                assert_eq!(depth.pop(), Some(c), "unbalanced {c:?} in JSON export")
            }
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string in JSON export");
    assert!(depth.is_empty(), "unclosed brackets in JSON export");
}

fn traced_lf_clients() -> (Cluster, LfConfig, Arc<Vec<Vec3>>) {
    // ~2048 atoms: the 131k-atom bilayer at scale 64, the regime where
    // Dask's list-wise broadcast tax (items × 5e-5 s) dominates.
    let system = mdtask::sim::lf_dataset(LfDatasetId::Atoms131k, 64, 7);
    let cfg = LfConfig {
        cutoff: system.suggested_cutoff,
        partitions: 64,
        paper_atoms: LfDatasetId::Atoms131k.paper_atoms(),
        charge_io: false,
    };
    (Cluster::new(laptop(), 2), cfg, Arc::new(system.positions))
}

#[test]
fn traced_zero_workload_run_completes() {
    // Fig. 2's shape — zero-workload tasks — with the trace on.
    let sc = SparkContext::new(Cluster::new(laptop(), 1));
    sc.enable_trace();
    sc.set_phase("zero-workload");
    let mut sc = sc;
    let tasks: Vec<mdtask::frame::BagTask> = (0..64)
        .map(|i| Box::new(move |_: &TaskCtx| i as u64) as mdtask::frame::BagTask)
        .collect();
    let (_, report) = sc.run_bag(tasks).expect("traced run completes");
    let trace = report.trace.as_ref().expect("trace carried in report");
    assert!(trace.events.len() >= 64, "one event per task at least");
    // The exporters all accept the real trace.
    assert!(!trace
        .gantt(Cluster::new(laptop(), 1).total_cores(), 60)
        .is_empty());
    assert_structurally_valid_json(&trace.to_chrome_json());
    assert_structurally_valid_json(&Metrics::from_report(&report, 4).to_json());
}

#[test]
fn chrome_export_of_lf_run_is_structurally_valid() {
    let (cluster, cfg, positions) = traced_lf_clients();
    let rc = RunConfig::new(cluster, Engine::Spark)
        .approach(LfApproach::Broadcast1D)
        .trace(true);
    let out = run_lf(&rc, positions, &cfg).expect("spark LF runs");
    let trace = out.report.trace.as_ref().expect("trace enabled");
    let json = trace.to_chrome_json();
    assert_structurally_valid_json(&json);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""), "duration slices present");
    assert!(json.contains("\"ph\":\"M\""), "metadata records present");
    assert!(
        json.contains("\"broadcast\""),
        "the broadcast shows up as a named slice"
    );
}

#[test]
fn csv_round_trips_a_real_engine_trace() {
    let (cluster, cfg, positions) = traced_lf_clients();
    let rc = RunConfig::new(cluster, Engine::Dask)
        .approach(LfApproach::Broadcast1D)
        .trace(true);
    let out = run_lf(&rc, positions, &cfg).expect("dask LF runs");
    let trace = out.report.trace.as_ref().expect("trace enabled");
    assert!(!trace.is_empty());
    let parsed = Trace::from_csv(&trace.to_csv()).expect("export parses back");
    assert_eq!(&parsed, trace);
}

#[test]
fn critical_path_attributes_dask_edge_discovery_to_broadcast() {
    // Fig. 8's headline: list-wise broadcast is 40–65% of Dask's
    // approach-1 edge discovery. The critical path derives it from the
    // event graph rather than from phase bookkeeping.
    let (cluster, cfg, positions) = traced_lf_clients();
    let rc = RunConfig::new(cluster, Engine::Dask)
        .approach(LfApproach::Broadcast1D)
        .trace(true);
    let out = run_lf(&rc, positions, &cfg).expect("dask LF runs");
    let trace = out.report.trace.as_ref().expect("trace enabled");
    let cp = CriticalPath::from_trace(trace);
    let edge = out
        .report
        .phase_total("edge-discovery")
        .expect("edge-discovery phase recorded");
    assert!(
        cp.time_for("broadcast") >= 0.40 * edge,
        "broadcast {}s must be >= 40% of edge discovery {}s",
        cp.time_for("broadcast"),
        edge
    );
}

#[test]
fn critical_path_keeps_spark_broadcast_marginal() {
    let (cluster, cfg, positions) = traced_lf_clients();
    let rc = RunConfig::new(cluster, Engine::Spark)
        .approach(LfApproach::Broadcast1D)
        .trace(true);
    let out = run_lf(&rc, positions, &cfg).expect("spark LF runs");
    let trace = out.report.trace.as_ref().expect("trace enabled");
    let cp = CriticalPath::from_trace(trace);
    let edge = out
        .report
        .phase_total("edge-discovery")
        .expect("edge-discovery phase recorded");
    assert!(
        cp.time_for("broadcast") <= 0.15 * edge,
        "tree broadcast {}s must be <= 15% of edge discovery {}s",
        cp.time_for("broadcast"),
        edge
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The gantt renderer tolerates any event geometry — zero-duration
    /// events, events at the exact span boundary, any width.
    #[test]
    fn gantt_never_panics(
        events in prop::collection::vec(
            (0usize..6, 0.0f64..10.0, 0.0f64..3.0, 0u8..2),
            0..24,
        ),
        width in 1usize..100,
    ) {
        let mut trace = Trace::default();
        for (i, (core, start, dur, killed)) in events.iter().enumerate() {
            if *killed == 1 {
                trace.push_killed(i, *core, *start, *start + *dur);
            } else {
                trace.push(i, *core, *start, *start + *dur);
            }
        }
        let rendered = trace.gantt(6, width);
        prop_assert!(trace.is_empty() || !rendered.is_empty());
    }
}
