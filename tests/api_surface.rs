//! API-surface regression (PR-5 satellite): the deprecated free-function
//! entry points and the [`RunConfig`] + `run_lf`/`run_psa` API must
//! produce bit-identical outputs for every engine × workload combination,
//! including the `*_with_policy` variants the builder folded in.
//!
//! `netsim::set_deterministic_timing(true)` zeroes the host-time
//! component of task costs, so full `SimReport` equality (makespan,
//! bytes, retries, phases, trace) is exact, not approximate.
#![allow(deprecated)]

use mdtask::analysis::leaflet::{lf_dask, lf_mpi, lf_mpi_with_policy, lf_pilot, lf_spark};
use mdtask::analysis::psa::{psa_dask, psa_mpi, psa_mpi_with_policy, psa_pilot, psa_spark};
use mdtask::prelude::*;
use std::sync::Arc;

fn lf_system() -> (Arc<Vec<Vec3>>, LfConfig) {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 240,
            ..Default::default()
        },
        11,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 8,
            paper_atoms: 240,
            charge_io: true,
        },
    )
}

fn psa_system() -> (Arc<Vec<Trajectory>>, PsaConfig) {
    let spec = ChainSpec {
        n_atoms: 12,
        n_frames: 6,
        stride: 1,
        ..ChainSpec::default()
    };
    (
        Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 5, 42)),
        PsaConfig {
            groups: 2,
            charge_io: true,
        },
    )
}

fn cluster() -> Cluster {
    Cluster::new(laptop(), 2)
}

fn assert_lf_identical(what: &str, old: &LfOutput, new: &LfOutput) {
    assert_eq!(
        old.leaflet_sizes, new.leaflet_sizes,
        "{what}: leaflet sizes"
    );
    assert_eq!(old.n_components, new.n_components, "{what}: components");
    assert_eq!(old.edges_found, new.edges_found, "{what}: edges");
    assert_eq!(
        old.shuffle_bytes, new.shuffle_bytes,
        "{what}: shuffle bytes"
    );
    assert_eq!(old.tasks, new.tasks, "{what}: tasks");
    assert_eq!(old.report, new.report, "{what}: SimReport");
}

fn assert_psa_identical(what: &str, old: &PsaOutput, new: &PsaOutput) {
    assert_eq!(
        old.distances.as_slice(),
        new.distances.as_slice(),
        "{what}: distance matrix"
    );
    assert_eq!(old.report, new.report, "{what}: SimReport");
}

#[test]
fn lf_free_functions_match_run_lf_for_every_engine_and_approach() {
    mdtask::cluster::set_deterministic_timing(true);
    let (positions, cfg) = lf_system();
    for approach in LfApproach::ALL {
        let old = lf_spark(
            &SparkContext::new(cluster()),
            Arc::clone(&positions),
            approach,
            &cfg,
        )
        .unwrap();
        let rc = RunConfig::new(cluster(), Engine::Spark).approach(approach);
        let new = run_lf(&rc, Arc::clone(&positions), &cfg).unwrap();
        assert_lf_identical(&format!("spark/{}", approach.label()), &old, &new);

        let old = lf_dask(
            &DaskClient::new(cluster()),
            Arc::clone(&positions),
            approach,
            &cfg,
        )
        .unwrap();
        let rc = RunConfig::new(cluster(), Engine::Dask).approach(approach);
        let new = run_lf(&rc, Arc::clone(&positions), &cfg).unwrap();
        assert_lf_identical(&format!("dask/{}", approach.label()), &old, &new);

        let old = lf_mpi(cluster(), 8, &positions, approach, &cfg).unwrap();
        let rc = RunConfig::new(cluster(), Engine::Mpi)
            .approach(approach)
            .mpi_world(8);
        let new = run_lf(&rc, Arc::clone(&positions), &cfg).unwrap();
        assert_lf_identical(&format!("mpi/{}", approach.label()), &old, &new);
    }

    // Pilot implements Approach 2 only; the free function takes no
    // approach argument and run_lf ignores the knob for it.
    let session = Session::new(cluster()).unwrap();
    let old = lf_pilot(&session, &positions, &cfg).unwrap();
    let rc = RunConfig::new(cluster(), Engine::Pilot);
    let new = run_lf(&rc, Arc::clone(&positions), &cfg).unwrap();
    assert_lf_identical("pilot", &old, &new);
}

#[test]
fn lf_mpi_with_policy_matches_configured_run_lf_under_faults() {
    mdtask::cluster::set_deterministic_timing(true);
    let (positions, cfg) = lf_system();
    let plan = FaultPlan::none().kill_node(1, 0.4);
    let policy = RetryPolicy::new(4).with_detection_delay(0.25);
    for restart_from_barrier in [true, false] {
        let faulty = || cluster().with_faults(plan.clone());
        let old = lf_mpi_with_policy(
            faulty(),
            8,
            &positions,
            LfApproach::Broadcast1D,
            &cfg,
            &policy,
            restart_from_barrier,
        )
        .unwrap();
        let rc = RunConfig::new(faulty(), Engine::Mpi)
            .approach(LfApproach::Broadcast1D)
            .mpi_world(8)
            .retry_policy(policy)
            .checkpoint_restart(restart_from_barrier);
        let new = run_lf(&rc, Arc::clone(&positions), &cfg).unwrap();
        assert_lf_identical(
            &format!("mpi policy restart={restart_from_barrier}"),
            &old,
            &new,
        );
    }
}

#[test]
fn psa_free_functions_match_run_psa_for_every_engine() {
    mdtask::cluster::set_deterministic_timing(true);
    let (ensemble, cfg) = psa_system();

    let old = psa_spark(&SparkContext::new(cluster()), Arc::clone(&ensemble), &cfg).unwrap();
    let rc = RunConfig::new(cluster(), Engine::Spark);
    let new = run_psa(&rc, Arc::clone(&ensemble), &cfg).unwrap();
    assert_psa_identical("spark", &old, &new);

    let old = psa_dask(&DaskClient::new(cluster()), Arc::clone(&ensemble), &cfg).unwrap();
    let rc = RunConfig::new(cluster(), Engine::Dask);
    let new = run_psa(&rc, Arc::clone(&ensemble), &cfg).unwrap();
    assert_psa_identical("dask", &old, &new);

    let session = Session::new(cluster()).unwrap();
    let old = psa_pilot(&session, &ensemble, &cfg).unwrap();
    let rc = RunConfig::new(cluster(), Engine::Pilot);
    let new = run_psa(&rc, Arc::clone(&ensemble), &cfg).unwrap();
    assert_psa_identical("pilot", &old, &new);

    // The legacy psa_mpi is infallible single-attempt; RunConfig's MPI
    // default (no policy = one attempt, restart-from-barrier on) must be
    // bit-identical to it.
    let old = psa_mpi(cluster(), 8, &ensemble, &cfg);
    let rc = RunConfig::new(cluster(), Engine::Mpi).mpi_world(8);
    let new = run_psa(&rc, Arc::clone(&ensemble), &cfg).unwrap();
    assert_psa_identical("mpi", &old, &new);
}

#[test]
fn psa_mpi_with_policy_matches_configured_run_psa_under_faults() {
    mdtask::cluster::set_deterministic_timing(true);
    let (ensemble, cfg) = psa_system();
    let plan = FaultPlan::none().kill_node(0, 0.3);
    let policy = RetryPolicy::new(5).with_detection_delay(0.25);
    for restart_from_barrier in [true, false] {
        let faulty = || cluster().with_faults(plan.clone());
        let old = psa_mpi_with_policy(faulty(), 8, &ensemble, &cfg, &policy, restart_from_barrier)
            .unwrap();
        let rc = RunConfig::new(faulty(), Engine::Mpi)
            .mpi_world(8)
            .retry_policy(policy)
            .checkpoint_restart(restart_from_barrier);
        let new = run_psa(&rc, Arc::clone(&ensemble), &cfg).unwrap();
        assert_psa_identical(
            &format!("mpi policy restart={restart_from_barrier}"),
            &old,
            &new,
        );
    }
}

#[test]
fn traced_runs_are_identical_across_apis() {
    mdtask::cluster::set_deterministic_timing(true);
    let (positions, cfg) = lf_system();
    let sc = SparkContext::new(cluster());
    sc.enable_trace();
    let old = lf_spark(&sc, Arc::clone(&positions), LfApproach::TreeSearch, &cfg).unwrap();
    let rc = RunConfig::new(cluster(), Engine::Spark)
        .approach(LfApproach::TreeSearch)
        .trace(true);
    let new = run_lf(&rc, Arc::clone(&positions), &cfg).unwrap();
    assert!(
        new.report.trace.is_some(),
        "RunConfig::trace records a trace"
    );
    assert_lf_identical("spark traced", &old, &new);
}
