//! End-to-end Leaflet Finder: every engine × approach combination must
//! recover the bilayer generator's ground-truth leaflets, and the memory
//! gates must reproduce the paper's failure matrix.

use mdtask::analysis::leaflet;
use mdtask::prelude::*;
use std::sync::Arc;

struct System {
    positions: Arc<Vec<Vec3>>,
    cfg: LfConfig,
    truth: Vec<usize>,
}

fn system() -> System {
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 500,
            ..Default::default()
        },
        77,
    );
    let (up, lo) = b.leaflet_sizes();
    let mut truth = vec![up, lo];
    truth.sort_unstable_by(|a, b| b.cmp(a));
    System {
        positions: Arc::new(b.positions),
        cfg: LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 25,
            paper_atoms: 500,
            charge_io: true,
        },
        truth,
    }
}

fn cluster() -> Cluster {
    Cluster::new(comet(), 2)
}

#[test]
fn every_engine_and_approach_recovers_ground_truth() {
    let s = system();
    for approach in LfApproach::ALL {
        for engine in [Engine::Spark, Engine::Dask] {
            let rc = RunConfig::new(cluster(), engine).approach(approach);
            let out = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();
            assert_eq!(out.leaflet_sizes, s.truth, "{engine:?} {approach:?}");
        }
        let rc = RunConfig::new(cluster(), Engine::Mpi)
            .approach(approach)
            .mpi_world(6);
        let mpi = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();
        assert_eq!(mpi.leaflet_sizes, s.truth, "mpi {approach:?}");
    }
    let rc = RunConfig::new(cluster(), Engine::Pilot);
    let rp = run_lf(&rc, Arc::clone(&s.positions), &s.cfg).unwrap();
    assert_eq!(rp.leaflet_sizes, s.truth, "pilot approach 2");
}

#[test]
fn paper_scale_memory_failures_reproduce() {
    // Fig. 7's missing bars, driven by cfg.paper_atoms.
    let s = system();
    let c = Cluster::new(wrangler(), 8);
    // Paper-scale runs used 1024 partitions; the gates assume that layout.
    let at = |paper_atoms: usize| LfConfig {
        paper_atoms,
        partitions: 1024,
        ..s.cfg.clone()
    };

    use mdtask::analysis::EngineKind::*;
    // Approach 1: Dask dies at 524k; Spark/MPI at 4M.
    assert!(leaflet::check_feasible(Dask, LfApproach::Broadcast1D, &at(524_288), &c).is_err());
    assert!(leaflet::check_feasible(Spark, LfApproach::Broadcast1D, &at(524_288), &c).is_ok());
    assert!(leaflet::check_feasible(Spark, LfApproach::Broadcast1D, &at(4_000_000), &c).is_err());
    // Approach 3: Spark/MPI survive 4M (with splitting), Dask does not.
    assert!(leaflet::check_feasible(Spark, LfApproach::ParallelCC, &at(4_000_000), &c).is_ok());
    assert!(leaflet::check_feasible(Dask, LfApproach::ParallelCC, &at(4_000_000), &c).is_err());
    // Approach 4 runs everywhere.
    assert!(leaflet::check_feasible(Dask, LfApproach::TreeSearch, &at(4_000_000), &c).is_ok());

    // And the gates actually fire through the public entry points.
    let big = LfConfig {
        paper_atoms: 4_000_000,
        ..s.cfg.clone()
    };
    let rc = RunConfig::new(c.clone(), Engine::Spark).approach(LfApproach::Task2D);
    let err = run_lf(&rc, Arc::clone(&s.positions), &big);
    assert!(err.is_err(), "approach 2 at 4M paper-scale must refuse");
}

#[test]
fn memory_splitting_increases_task_count() {
    // ParallelCC on a "4M-atom" system must run far more tasks than the
    // target partition count (the paper's 1024 → 42k explosion).
    let s = system();
    let big = LfConfig {
        paper_atoms: 4_000_000,
        partitions: 64,
        ..s.cfg.clone()
    };
    let rc = RunConfig::new(cluster(), Engine::Spark).approach(LfApproach::ParallelCC);
    let out = run_lf(&rc, Arc::clone(&s.positions), &big).unwrap();
    assert!(
        out.tasks > 64 * 10,
        "expected task explosion from memory splitting, got {}",
        out.tasks
    );
    // Science unchanged despite the different decomposition.
    assert_eq!(out.leaflet_sizes, s.truth);
}

#[test]
fn search_strategies_are_interchangeable() {
    // The neighbors crate's three strategies feed the same pipeline.
    let b = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 200,
            ..Default::default()
        },
        3,
    );
    use mdtask::search::{neighbor_pairs, SearchStrategy};
    let brute = neighbor_pairs(&b.positions, b.suggested_cutoff, SearchStrategy::BruteForce);
    let tree = neighbor_pairs(&b.positions, b.suggested_cutoff, SearchStrategy::BallTree);
    let cells = neighbor_pairs(&b.positions, b.suggested_cutoff, SearchStrategy::CellList);
    assert_eq!(brute, tree);
    assert_eq!(brute, cells);
}
