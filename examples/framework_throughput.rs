//! Framework task throughput (the experiment behind Fig. 2): run bags of
//! zero-workload tasks on all three task frameworks and watch the paper's
//! ordering emerge — Dask fastest, Spark an order of magnitude behind,
//! RADICAL-Pilot plateauing at tens of tasks per second.
//!
//! ```sh
//! cargo run --release --example framework_throughput
//! ```

use mdtask::prelude::*;

type ZeroTask = Box<dyn Fn(&TaskCtx) -> u64 + Send + Sync>;

/// Zero-workload task (`/bin/hostname` in the paper): returns a token.
fn zero_tasks(n: usize) -> Vec<ZeroTask> {
    (0..n)
        .map(|i| Box::new(move |_: &TaskCtx| i as u64) as _)
        .collect()
}

fn main() {
    let cluster = || Cluster::new(wrangler(), 1); // single node, like Fig. 2

    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "tasks", "spark (t/s)", "dask (t/s)", "rp (t/s)"
    );
    for n in [64usize, 256, 1024, 4096] {
        let mut spark = SparkContext::new(cluster());
        let (_, spark_rep) = spark.run_bag(zero_tasks(n)).unwrap();

        let mut dask = DaskClient::new(cluster());
        let (_, dask_rep) = dask.run_bag(zero_tasks(n)).unwrap();

        let mut rp = Session::new(cluster()).unwrap();
        let (_, rp_rep) = rp.run_bag(zero_tasks(n)).unwrap();

        println!(
            "{:>8} {:>14.1} {:>14.1} {:>14.1}",
            n,
            spark_rep.throughput(),
            dask_rep.throughput(),
            rp_rep.throughput()
        );
    }

    // RADICAL-Pilot refuses very large bags outright (§4.1: "we were not
    // able to scale RADICAL-Pilot to 32k or more tasks").
    let mut rp = Session::new(cluster()).unwrap();
    match rp.run_bag(zero_tasks(20_000)) {
        Err(e) => println!("\nRADICAL-Pilot at 20k tasks: {e}"),
        Ok(_) => unreachable!("20k tasks exceed the pilot limit"),
    }
}
