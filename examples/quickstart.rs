//! Quickstart: generate a small trajectory ensemble, compute the
//! all-pairs Hausdorff distance matrix (PSA) on a Dask-like engine over a
//! simulated two-node cluster, and print the result with its execution
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mdtask::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A synthetic ensemble: 8 protein-like trajectories, 102 frames of
    //    200 atoms each (a 1/16-scale stand-in for the paper's "small"
    //    3341-atom trajectories).
    let spec = ChainSpec {
        n_atoms: 200,
        n_frames: 102,
        stride: 1,
        ..ChainSpec::default()
    };
    let ensemble = Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 8, 2024));
    println!(
        "ensemble: {} trajectories × {} frames × {} atoms",
        ensemble.len(),
        ensemble[0].n_frames(),
        ensemble[0].n_atoms()
    );

    // 2. A simulated cluster: 2 laptop-profile nodes (8 cores each),
    //    driven through a Dask-like engine.
    let rc = RunConfig::new(Cluster::new(laptop(), 2), Engine::Dask);

    // 3. PSA with Algorithm 2's 2-D partitioning: 4 groups → 16 tasks.
    let cfg = PsaConfig {
        groups: 4,
        charge_io: true,
    };
    let out = run_psa(&rc, Arc::clone(&ensemble), &cfg).expect("fault-free");

    // 4. The distance matrix is real — inspect a few entries.
    println!("\nHausdorff distance matrix (Å):");
    for i in 0..ensemble.len() {
        let row: Vec<String> = (0..ensemble.len())
            .map(|j| format!("{:6.2}", out.distances.get(i, j)))
            .collect();
        println!("  {}", row.join(" "));
    }

    // 5. The execution report is simulated: virtual makespan on the
    //    2×8-core cluster, not host wall-clock.
    let r = &out.report;
    println!("\nexecution report (virtual time on 2×8 cores):");
    println!("  tasks         : {}", r.tasks);
    println!("  makespan      : {:.3} s", r.makespan_s);
    println!("  task compute  : {:.3} s", r.compute_s);
    println!("  framework ovh : {:.3} s", r.overhead_s);
    println!("  communication : {:.4} s", r.comm_s);

    // 6. Sanity: identical to the serial reference.
    let reference = mdtask::analysis::psa::psa_serial(&ensemble);
    let max_err = (0..ensemble.len())
        .flat_map(|i| (0..ensemble.len()).map(move |j| (i, j)))
        .map(|(i, j)| (out.distances.get(i, j) - reference.get(i, j)).abs())
        .fold(0.0, f64::max);
    println!("\nmax |parallel - serial| = {max_err:.2e}");
    assert!(max_err < 1e-12);
    println!("OK");
}
