//! Engine showdown: the same PSA workload on all four engines (Spark,
//! Dask, RADICAL-Pilot, MPI), verifying they produce identical science and
//! comparing their virtual runtimes — then asking the paper's decision
//! framework (Table 3 / §4.4) which engine it would have recommended.
//!
//! ```sh
//! cargo run --release --example engine_showdown
//! ```

use mdtask::analysis::decision::{self, Workload};
use mdtask::prelude::*;
use std::sync::Arc;

fn main() {
    let spec = ChainSpec {
        n_atoms: 150,
        n_frames: 50,
        stride: 1,
        ..ChainSpec::default()
    };
    let ensemble = Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 8, 99));
    let cfg = PsaConfig {
        groups: 4,
        charge_io: true,
    };
    let cluster = || Cluster::new(comet(), 2);

    let reference = psa_serial(&ensemble);
    let check = |name: &str, d: &DistanceMatrix| {
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                assert!(
                    (d.get(i, j) - reference.get(i, j)).abs() < 1e-12,
                    "{name} diverged at ({i},{j})"
                );
            }
        }
    };

    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "engine", "makespan", "overhead", "comm"
    );

    for engine in Engine::ALL {
        let rc = RunConfig::new(cluster(), engine).mpi_world(16);
        let out = run_psa(&rc, Arc::clone(&ensemble), &cfg).expect("fault-free");
        check(engine.label(), &out.distances);
        print_row(engine.label(), &out.report);
    }

    println!("\nAll four engines computed identical distance matrices.");

    // What would the paper recommend for this workload?
    let workload = Workload {
        embarrassingly_parallel: true,
        ..Default::default()
    };
    println!(
        "decision framework says: {} (embarrassingly parallel → programmability wins)",
        decision::recommend(&workload).label()
    );
    let coupled = Workload {
        needs_shuffle: true,
        ..Default::default()
    };
    println!(
        "…and for shuffle-coupled analyses: {}",
        decision::recommend(&coupled).label()
    );
}

fn print_row(name: &str, r: &SimReport) {
    println!(
        "{:<16} {:>9.2}s {:>11.2}s {:>11.4}s",
        name, r.makespan_s, r.overhead_s, r.comm_s
    );
}
