//! An MD campaign on RADICAL-Pilot's higher-level layers: an EnTK-style
//! pipeline (simulate → analyze) followed by a Pilot-MapReduce
//! aggregation — the workflow shapes the paper attributes to the pilot
//! ecosystem (Fig. 1: EnTK, Pilot-MapReduce; §3.3's ensemble use cases).
//!
//! ```sh
//! cargo run --release --example ensemble_campaign
//! ```

use mdtask::prelude::*;
use mdtask::rp::entk::{Pipeline, Stage};
use mdtask::rp::mapreduce::map_reduce;

fn main() {
    let session = Session::new(Cluster::new(comet(), 2)).expect("pilot boots");

    // Stage 1: an ensemble of short MD "simulations" (each task runs a
    // real Brownian-dynamics integrator and reports its end-to-end RMSD).
    let spec = ChainSpec {
        n_atoms: 64,
        n_frames: 40,
        stride: 2,
        ..ChainSpec::default()
    };
    let mut simulate = Stage::new("simulate");
    for seed in 0..8u64 {
        let spec = spec.clone();
        simulate = simulate.task(move |_, _| {
            let t = mdtask::sim::chain::generate(&spec, seed);
            let drift = mdtask::math::frame_rmsd(&t.frames[0], t.frames.last().unwrap());
            (drift * 1000.0) as u64 // mÅ, as integer payload
        });
    }

    // Stage 2: a quick analysis pass over the ensemble outputs.
    let analyze = Stage::new("analyze").task(|_, _| 0u64);

    let out = Pipeline::new("campaign")
        .stage(simulate)
        .stage(analyze)
        .run(&session)
        .unwrap();
    println!("per-replica drift (mÅ): {:?}", out.stages[0].1);
    println!(
        "pipeline: simulate {:.1}s, analyze {:.1}s (virtual)",
        out.report.phase_total("simulate").unwrap(),
        out.report.phase_total("analyze").unwrap()
    );

    // Aggregate with Pilot-MapReduce: bucket replicas by drift decile.
    let drifts = out.stages[0].1.clone();
    let (mut histogram, report) = map_reduce(
        &session,
        drifts,
        |d: u64| vec![(d / 10_000, 1u64)], // key = drift decile (10 Å bins)
        2,
        |a, b| a + b,
    )
    .unwrap();
    histogram.sort_unstable();
    println!("drift histogram (10 Å bins): {histogram:?}");
    println!(
        "MapReduce over the pilot staged {} bytes through the filesystem — \
         the paper's point about RP's shuffle unsuitability, demonstrated.",
        report.bytes_staged
    );
}
