//! The full PSA use case of §2.1.1: "compute pair-wise distances …
//! between members of an ensemble of trajectories **and cluster the
//! trajectories based on their distance matrix**."
//!
//! Builds a mixed ensemble of two dynamical families, computes the
//! Hausdorff matrix on Spark, and recovers the families by hierarchical
//! clustering.
//!
//! ```sh
//! cargo run --release --example psa_clustering
//! ```

use mdtask::analysis::clustering::{hierarchical, Linkage};
use mdtask::prelude::*;
use std::sync::Arc;

fn main() {
    // Two families exploring different regions of conformation space:
    // the second one is displaced far from the first, so cross-family
    // Hausdorff distances dwarf the within-family spread.
    let spec = ChainSpec {
        n_atoms: 80,
        n_frames: 40,
        stride: 1,
        ..ChainSpec::default()
    };
    let mut ensemble = mdtask::sim::chain::generate_ensemble(&spec, 5, 1);
    let mut displaced = mdtask::sim::chain::generate_ensemble(&spec, 5, 500);
    for t in &mut displaced {
        for f in &mut t.frames {
            f.translate(Vec3::new(800.0, 0.0, 0.0));
        }
    }
    ensemble.extend(displaced);
    let n = ensemble.len();
    println!("ensemble: {n} trajectories (5 native + 5 displaced)");

    // PSA on Spark over a simulated 2-node cluster.
    let rc = RunConfig::new(Cluster::new(comet(), 2), Engine::Spark);
    let out = run_psa(
        &rc,
        Arc::new(ensemble),
        &PsaConfig {
            groups: 5,
            charge_io: true,
        },
    )
    .expect("fault-free");
    println!(
        "Hausdorff matrix computed: {} tasks, {:.2} virtual s",
        out.report.tasks, out.report.makespan_s
    );

    // Cluster the distance matrix (average linkage) and cut into 2.
    let dendrogram = hierarchical(&out.distances, Linkage::Average);
    let labels = dendrogram.cut_into(2);
    println!("cluster labels: {labels:?}");

    let first_family: Vec<usize> = labels[..5].to_vec();
    let second_family: Vec<usize> = labels[5..].to_vec();
    assert!(first_family.iter().all(|&l| l == first_family[0]));
    assert!(second_family.iter().all(|&l| l == second_family[0]));
    assert_ne!(first_family[0], second_family[0]);
    println!("families recovered perfectly.");

    // Show the top of the dendrogram.
    println!("\nlast merges (cluster sizes grow toward the root):");
    for m in dendrogram.merges.iter().rev().take(3) {
        println!("  {:>3} + {:>3} at height {:.2} Å", m.a, m.b, m.height);
    }
}
