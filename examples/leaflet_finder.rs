//! Leaflet Finder: identify the two leaflets of a lipid bilayer with all
//! four architectural approaches of the paper (Table 2) on a Spark-like
//! engine, and compare their task counts, shuffle volumes and virtual
//! runtimes.
//!
//! ```sh
//! cargo run --release --example leaflet_finder
//! ```

use mdtask::prelude::*;
use std::sync::Arc;

fn main() {
    // A 4096-atom bilayer (1/32-scale stand-in for the 131k system). The
    // generator guarantees exactly two leaflets as ground truth.
    let bilayer = mdtask::sim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 4096,
            ..Default::default()
        },
        7,
    );
    let (up, lo) = bilayer.leaflet_sizes();
    println!(
        "bilayer: {} atoms, ground truth leaflets {up}/{lo}, cutoff {:.2} Å",
        bilayer.n_atoms(),
        bilayer.suggested_cutoff
    );
    let positions = Arc::new(bilayer.positions);

    let cfg = LfConfig {
        cutoff: bilayer.suggested_cutoff,
        partitions: 64,
        paper_atoms: 131_072, // memory model pretends this is the 131k system
        charge_io: true,
    };

    println!(
        "\n{:<34} {:>6} {:>9} {:>12} {:>10}",
        "approach", "tasks", "edges", "shuffle (B)", "time (s)"
    );
    for approach in LfApproach::ALL {
        let rc = RunConfig::new(Cluster::new(wrangler(), 2), Engine::Spark).approach(approach);
        match run_lf(&rc, Arc::clone(&positions), &cfg) {
            Ok(out) => {
                assert_eq!(out.n_components, 2, "must find exactly two leaflets");
                assert_eq!(out.leaflet_sizes.iter().sum::<usize>(), positions.len());
                println!(
                    "{:<34} {:>6} {:>9} {:>12} {:>10.2}",
                    approach.label(),
                    out.tasks,
                    out.edges_found,
                    out.shuffle_bytes,
                    out.report.makespan_s
                );
            }
            Err(e) => println!("{:<34} failed: {e}", approach.label()),
        }
    }

    // The broadcast approach's phase breakdown (the subject of Fig. 8).
    let rc = RunConfig::new(Cluster::new(wrangler(), 2), Engine::Spark)
        .approach(LfApproach::Broadcast1D);
    let out = run_lf(&rc, Arc::clone(&positions), &cfg).expect("131k-class system broadcasts fine");
    println!("\nApproach 1 phase breakdown:");
    for p in &out.report.phases {
        println!("  {:<24} {:>8.4} s", p.name, p.duration());
    }
}
