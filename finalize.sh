#!/bin/sh
# End-of-session verification: full test suite and Criterion benches.
# (`cargo bench --workspace` would also invoke libtest bench harnesses,
# which reject criterion's flags — run the criterion targets by name.)
cd "$(dirname "$0")"
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | grep -cE "test result: ok"
: > /root/repo/bench_output.txt
for b in kernels hausdorff neighbor_search graph_components codecs broadcast_models; do
    cargo bench -p bench --bench "$b" -- --quick 2>&1 | tee -a /root/repo/bench_output.txt | tail -1
done
