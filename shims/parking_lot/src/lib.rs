//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns a guard directly (a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's "no poisoning" model).

use std::ops::{Deref, DerefMut};
use std::sync;

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so a `Condvar`
/// can temporarily take ownership during `wait`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut guard = lock.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
