//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the handful of external dependencies are vendored as
//! minimal API-compatible shims. This one provides the [`Buf`] / [`BufMut`]
//! subset the codecs use: little-endian integer/float accessors over
//! `&[u8]` readers and `Vec<u8>` writers.
//!
//! Semantics match the real crate for the implemented subset: reads panic
//! when fewer than the requested bytes remain (callers bounds-check with
//! [`Buf::remaining`] first), and writes grow the underlying vector.

/// Read bytes from a buffer, tracking a cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Move the cursor forward `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Append bytes to a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 3);
        assert!(r.has_remaining());
        r.advance(3);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
