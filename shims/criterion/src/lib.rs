//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the `bench` crate uses — `Criterion`,
//! `benchmark_group`, `bench_with_input` / `bench_function`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop
//! (warmup + `sample_size` timed samples, median reported). No statistical
//! analysis, plots, or baseline comparison.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declared throughput of a benchmark, used to derive rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Measurement driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_median: Duration::ZERO,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: one untimed call, also used to pick an inner batch count
        // so short routines are timed over enough iterations to be visible.
        let t0 = Instant::now();
        hint::black_box(routine());
        let once = t0.elapsed();
        let batch = if once < Duration::from_micros(50) {
            (Duration::from_micros(200).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000)
                as usize
        } else {
            1
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            samples.push(start.elapsed() / batch as u32);
        }
        samples.sort_unstable();
        self.last_median = samples[samples.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |b| f(b))
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input))
    }

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if !filter_matches(&format!("{}/{}", self.name, label)) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let per_iter = bencher.last_median;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if per_iter > Duration::ZERO => {
                format!(
                    "  {:>10.1} MiB/s",
                    b as f64 / per_iter.as_secs_f64() / (1u64 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  {:>10.1} elem/s", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{:<40} {:>12.3?}{}", self.name, label, per_iter, rate);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    fn new() -> Self {
        Criterion { sample_size: 10 }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Real criterion treats positional CLI args as substring filters on the
/// full `group/bench` label and tolerates its own flags (`--quick`,
/// `--bench`, …); mirror that so `cargo bench -- <filter>` selects
/// benches here too. Flags and their obvious values are ignored.
fn filter_matches(full_label: &str) -> bool {
    use std::sync::OnceLock;
    static FILTERS: OnceLock<Vec<String>> = OnceLock::new();
    let filters = FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    });
    filters.is_empty() || filters.iter().any(|f| full_label.contains(f.as_str()))
}

/// Hidden entry point used by [`criterion_main!`].
#[doc(hidden)]
pub fn run_group(fns: &[fn(&mut Criterion)]) {
    let mut c = Criterion::new();
    for f in fns {
        f(&mut c);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $crate::run_group(&[$($target),+]);
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        run_group(&[trivial_bench]);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("naive", 42).to_string(), "naive/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
