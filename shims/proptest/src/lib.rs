//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over named-argument strategies, numeric range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`any`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Cases are generated deterministically (seeded from the test's module
//! path + case index), so failures reproduce across runs. Unlike the real
//! crate there is **no shrinking**: a failure reports the case index and
//! assertion message as-is.

pub mod test_runner {
    /// Runner configuration. `ProptestConfig::with_cases(n)` and
    /// `Default::default()` (64 cases) are supported.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Deterministic per-case RNG: FNV-1a over the test path, mixed with
    /// the case index.
    pub fn rng_for(test_path: &str, case: u32) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        rand::rngs::StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Full-range strategy returned by [`crate::any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: core::marker::PhantomData,
            }
        }
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }
}

/// Uniform over the entire domain of `T` (integers, floats in [0,1), bool).
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// `vec(element_strategy, len_range)`.
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let n = if self.len.start + 1 >= self.len.end {
                    self.len.start
                } else {
                    rng.gen_range(self.len.clone())
                };
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;

        /// Uniform choice from a non-empty vector.
        pub struct Select<T: Clone>(Vec<T>);

        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StdRng) -> T {
                self.0
                    .choose(rng)
                    .expect("non-empty by construction")
                    .clone()
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
    };
}

/// Define property tests. Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]  // optional
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0f32..1.0, 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut executed = 0u32;
                let mut rejected = 0u32;
                let mut case = 0u32;
                while executed < cfg.cases {
                    assert!(
                        rejected <= cfg.cases.saturating_mul(16).max(256),
                        "too many prop_assume! rejections"
                    );
                    let mut rng = $crate::test_runner::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => executed += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed (case {}): {}", case - 1, msg);
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ::core::default::Default::default(); $($rest)*);
    };
}

/// Assert inside a [`proptest!`] body; failure aborts only this case's
/// closure, carrying the message to the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assert_eq failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assert_ne failed: both {:?}: {}",
            l,
            format!($($fmt)*)
        );
    }};
}

/// Discard this case (inputs don't satisfy a precondition) and draw again.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_vecs(
            n in 1usize..10,
            x in -2.0f32..2.0,
            v in prop::collection::vec((0u32..5, 0u32..7), 1..20),
            pick in prop::sample::select(vec![10u8, 20, 30]),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in &v {
                prop_assert!(*a < 5 && *b < 7);
            }
            prop_assert!(pick % 10 == 0, "one of the options: {}", pick);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn any_covers_negatives(v in any::<i64>()) {
            // Statistical smoke check only: full-domain sampling compiles
            // and runs; value is unconstrained.
            prop_assert!(v.count_ones() <= 64);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("x::y", 3);
        let mut b = crate::test_runner::rng_for("x::y", 3);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
