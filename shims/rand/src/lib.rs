//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds in a container without crates.io access, so this
//! shim provides the pieces the MD generators and tests actually use:
//! [`rngs::StdRng`] (SplitMix64 — deterministic, seedable, statistically
//! fine for synthetic trajectories; NOT the real crate's ChaCha12, so
//! streams differ from upstream `rand` for the same seed), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).

pub mod rngs {
    /// Deterministic seedable RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the shim does not distinguish the small-footprint generator.
    pub type SmallRng = StdRng;
}

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_state(seed)
    }
}

/// Types samplable uniformly "at random" via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates) and random choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3.0f32..=3.0);
            assert!((-3.0..=3.0).contains(&v));
            let i = rng.gen_range(5usize..10);
            assert!((5..10).contains(&i));
            let s = rng.gen_range(-7i32..-2);
            assert!((-7..-2).contains(&s));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
