//! # mdtask — Task-parallel Analysis of Molecular Dynamics Trajectories
//!
//! Umbrella crate for the reproduction of Paraskevakos et al.,
//! *"Task-parallel Analysis of Molecular Dynamics Trajectories"*
//! (ICPP 2018): re-exports every workspace crate under one roof and hosts
//! the runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`).
//!
//! ## Layout
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`analysis`] | `mdtask-core` | PSA + Leaflet Finder over all engines, decision framework |
//! | [`math`] | `linalg` | RMSD/dRMS kernels, cdist, Hausdorff distance |
//! | [`sim`] | `mdsim` | synthetic trajectories and lipid bilayers |
//! | [`io`] | `mdio` | MDT/XYZ trajectory formats, staging |
//! | [`search`] | `neighbors` | brute force, BallTree, cell lists |
//! | [`graph`] | `graphops` | union–find, connected components, partial merge |
//! | [`cluster`] | `netsim` | virtual-time cluster simulator, machine profiles |
//! | [`frame`] | `taskframe` | framework profiles, payload accounting |
//! | [`spark`] | `sparklet` | Spark-equivalent engine |
//! | [`dask`] | `dasklet` | Dask-equivalent engine |
//! | [`rp`] | `pilot` | RADICAL-Pilot-equivalent engine |
//! | [`mpi`] | `mpilike` | MPI-equivalent SPMD engine |
//! | [`cpp`] | `cpptraj` | CPPTraj-equivalent baseline |
//! | [`service`] | `mdtaskd` | multi-tenant analysis service: fair share, quotas, backpressure |
//!
//! ## Quickstart
//!
//! ```
//! use mdtask::prelude::*;
//! use std::sync::Arc;
//!
//! // A small ensemble of synthetic trajectories…
//! let spec = ChainSpec { n_atoms: 20, n_frames: 10, stride: 1, ..ChainSpec::default() };
//! let ensemble = Arc::new(mdtask::sim::chain::generate_ensemble(&spec, 4, 42));
//!
//! // …analysed with PSA on a Dask-like engine over a simulated cluster.
//! let run = RunConfig::new(Cluster::new(laptop(), 2), Engine::Dask);
//! let cfg = PsaConfig { groups: 2, charge_io: true };
//! let out = run_psa(&run, ensemble, &cfg).expect("fault-free");
//! assert_eq!(out.distances.rows(), 4);
//! assert!(out.report.makespan_s > 0.0);
//! ```

pub use cpptraj as cpp;
pub use dasklet as dask;
pub use graphops as graph;
pub use linalg as math;
pub use mdio as io;
pub use mdsim as sim;
pub use mdtask_core as analysis;
pub use mdtaskd as service;
pub use mpilike as mpi;
pub use neighbors as search;
pub use netsim as cluster;
pub use pilot as rp;
pub use sparklet as spark;
pub use taskframe as frame;

/// The most common imports in one place.
///
/// The deprecated per-engine free functions (`lf_spark`, `psa_dask`, …)
/// are intentionally *not* re-exported: [`RunConfig`] +
/// [`run_lf`]/[`run_psa`]/[`RunConfig::run_analysis`] are the only
/// supported entry points. The serial references (`lf_serial`,
/// `psa_serial`) remain — they are oracles, not drivers.
pub mod prelude {
    pub use crate::analysis::leaflet::lf_serial;
    pub use crate::analysis::psa::psa_serial;
    pub use crate::analysis::{
        contacts_analysis, lf_frame_value, rmsd_analysis, run_lf, run_lf_stream, run_psa,
        run_workload, AnalysisCost, AnalysisFromFunction, AtomSelection, Engine, EngineKind,
        FrameSeries, Gathered, LfApproach, LfConfig, LfOutput, LfRun, ParallelAnalysis, PsaConfig,
        PsaOutput, PsaRun, ReduceShape, RunConfig, StreamTuning, Workload, WorkloadRun,
    };
    pub use crate::cluster::{
        check_stream_invariants, comet, laptop, wrangler, ChaosConfig, Cluster, CriticalPath,
        DispatchMode, EventKind, FaultPlan, LateDisposition, MachineProfile, Metrics, RetryPolicy,
        SimReport, SourceLog, StreamError, StreamJob, StreamOutput, StreamRun, Threads, Trace,
        TraceEvent, WindowSpec,
    };
    pub use crate::dask::{Bag, DaskClient, Delayed};
    pub use crate::frame::{BagEngine, EngineError, FrameworkProfile, Payload, TaskCtx};
    pub use crate::io::StreamSource;
    pub use crate::math::{DistanceMatrix, Frame, Vec3};
    pub use crate::mpi::Comm;
    pub use crate::rp::{Session, UnitDescription};
    pub use crate::service::{JobRequest, Service, ServiceReport, TenantSpec};
    pub use crate::sim::{BilayerSpec, ChainSpec, LfDatasetId, PsaSize, Trajectory};
    pub use crate::spark::{Rdd, SparkContext};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_line_up() {
        // One symbol per crate, proving the re-export wiring.
        let _ = Vec3::new(0.0, 0.0, 0.0);
        let _ = ChainSpec::default();
        let _ = laptop();
        assert_eq!(EngineKind::ALL.len(), 4);
        assert_eq!(LfApproach::ALL.len(), 4);
    }
}
