#!/bin/sh
# Regenerate every figure/table of the paper at laptop scale.
# Results land in results/exp_*.txt. Run binaries sequentially — the
# harness measures real kernel times, so nothing else should be running.
set -e
cd "$(dirname "$0")"
mkdir -p results
for exp in fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 tab1 tab2 tab3 ablations; do
    if [ -s "results/exp_$exp.txt" ] && [ -f "results/.exp_$exp.ok" ]; then
        echo "=== exp_$exp === (cached)"
        continue
    fi
    echo "=== exp_$exp ==="
    ./target/release/exp_$exp > results/exp_$exp.txt 2>&1 && touch "results/.exp_$exp.ok"
    echo "    done"
done
