//! Neighbor search strategies for the Leaflet Finder edge-discovery stage.
//!
//! Three interchangeable back-ends, all returning the same edges:
//! * [`brute`] — SciPy-`cdist`-style all-pairs scan, O(n·m) (Approaches 1–3);
//! * [`balltree`] — BallTree radius queries, O(n log n) build, O(log n)
//!   query (Approach 4, "Tree-Search", modelled on scikit-learn's BallTree
//!   \[Omohundro 1989\]);
//! * [`celllist`] — uniform-grid cell list, the classic MD short-range
//!   method, included as the "reduce the compute footprint" future-work
//!   item from §6 and as an ablation baseline.
//!
//! Property tests assert all back-ends produce identical edge sets.

pub mod balltree;
pub mod celllist;
pub mod kdtree;

pub use balltree::BallTree;
pub use celllist::CellList;
pub use kdtree::KdTree;

use linalg::Vec3;

/// Brute-force neighbor pairs within `cutoff` (inclusive) between two point
/// sets; re-exported from `linalg` for a uniform interface.
pub mod brute {
    pub use linalg::edges_within_cutoff;
}

/// The edge-discovery strategy used by a Leaflet Finder run — which of the
/// interchangeable back-ends performs stage (a) of Algorithm 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SearchStrategy {
    /// All-pairs distance scan (`cdist`).
    BruteForce,
    /// BallTree radius queries.
    BallTree,
    /// Uniform-grid cell list.
    CellList,
    /// KD-tree radius queries.
    KdTree,
}

/// Find all pairs `(i, j)`, `i < j`, within `cutoff` inside one point set,
/// using the requested strategy. This is the single-partition kernel; the
/// task-parallel pipelines in `mdtask-core` apply it per 2-D block.
pub fn neighbor_pairs(points: &[Vec3], cutoff: f32, strategy: SearchStrategy) -> Vec<(u32, u32)> {
    match strategy {
        SearchStrategy::BruteForce => linalg::edges_within_cutoff(points, points, cutoff, true),
        SearchStrategy::BallTree => {
            let tree = BallTree::build(points, 16);
            let mut edges = Vec::new();
            for (i, &p) in points.iter().enumerate() {
                for j in tree.query_radius(p, cutoff) {
                    if (i as u32) < j {
                        edges.push((i as u32, j));
                    }
                }
            }
            edges.sort_unstable();
            edges
        }
        SearchStrategy::CellList => {
            let grid = CellList::build(points, cutoff);
            let mut edges = grid.neighbor_pairs(points, cutoff);
            edges.sort_unstable();
            edges
        }
        SearchStrategy::KdTree => {
            let tree = KdTree::build(points, 16);
            let mut edges = Vec::new();
            for (i, &p) in points.iter().enumerate() {
                for j in tree.query_radius(p, cutoff) {
                    if (i as u32) < j {
                        edges.push((i as u32, j));
                    }
                }
            }
            edges.sort_unstable();
            edges
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, span: f32, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-span..span),
                    rng.gen_range(-span..span),
                    rng.gen_range(-span..span),
                )
            })
            .collect()
    }

    #[test]
    fn strategies_agree_on_random_cloud() {
        let pts = random_points(300, 10.0, 42);
        let cutoff = 2.5;
        let brute = neighbor_pairs(&pts, cutoff, SearchStrategy::BruteForce);
        let tree = neighbor_pairs(&pts, cutoff, SearchStrategy::BallTree);
        let cells = neighbor_pairs(&pts, cutoff, SearchStrategy::CellList);
        let kd = neighbor_pairs(&pts, cutoff, SearchStrategy::KdTree);
        assert!(!brute.is_empty(), "fixture should produce edges");
        assert_eq!(brute, tree);
        assert_eq!(brute, cells);
        assert_eq!(brute, kd);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        for s in [
            SearchStrategy::BruteForce,
            SearchStrategy::BallTree,
            SearchStrategy::CellList,
            SearchStrategy::KdTree,
        ] {
            assert!(neighbor_pairs(&[], 1.0, s).is_empty());
            assert!(neighbor_pairs(&[Vec3::ZERO], 1.0, s).is_empty());
        }
    }

    proptest! {
        #[test]
        fn all_strategies_equal(
            coords in prop::collection::vec(
                (-20.0f32..20.0, -20.0f32..20.0, -20.0f32..20.0), 0..80),
            cutoff in 0.5f32..6.0,
        ) {
            let pts: Vec<Vec3> = coords.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
            let brute = neighbor_pairs(&pts, cutoff, SearchStrategy::BruteForce);
            let tree = neighbor_pairs(&pts, cutoff, SearchStrategy::BallTree);
            let cells = neighbor_pairs(&pts, cutoff, SearchStrategy::CellList);
            let kd = neighbor_pairs(&pts, cutoff, SearchStrategy::KdTree);
            prop_assert_eq!(&brute, &tree);
            prop_assert_eq!(&brute, &cells);
            prop_assert_eq!(&brute, &kd);
        }
    }
}
