//! KD-tree radius queries — the other spatial index scikit-learn offers
//! next to BallTree (§4.3.4 chose BallTree; the ablation bench compares).
//!
//! Axis-aligned median splits; radius queries prune a subtree when the
//! query sphere lies entirely on one side of its splitting plane.

use linalg::Vec3;

#[derive(Clone, Debug)]
struct Node {
    /// Splitting axis (0/1/2) and coordinate; leaves use `axis == 3`.
    axis: u8,
    split: f32,
    /// Range into `indices` (leaves only; inner nodes cover children).
    start: u32,
    end: u32,
    left: u32,
    right: u32,
}

const NO_CHILD: u32 = u32::MAX;

/// A KD-tree over a fixed point cloud.
#[derive(Clone, Debug)]
pub struct KdTree {
    nodes: Vec<Node>,
    indices: Vec<u32>,
    points: Vec<Vec3>,
}

impl KdTree {
    /// Build over `points`; leaves hold up to `leaf_size` points.
    pub fn build(points: &[Vec3], leaf_size: usize) -> Self {
        assert!(leaf_size >= 1, "leaf_size must be >= 1");
        let mut tree = KdTree {
            nodes: Vec::new(),
            indices: (0..points.len() as u32).collect(),
            points: points.to_vec(),
        };
        if !points.is_empty() {
            tree.build_node(0, points.len(), leaf_size, 0);
        }
        tree
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn build_node(&mut self, start: usize, end: usize, leaf_size: usize, depth: usize) -> u32 {
        let id = self.nodes.len() as u32;
        if end - start <= leaf_size {
            self.nodes.push(Node {
                axis: 3,
                split: 0.0,
                start: start as u32,
                end: end as u32,
                left: NO_CHILD,
                right: NO_CHILD,
            });
            return id;
        }
        // Split along the widest axis (better than round-robin for
        // anisotropic clouds like bilayers).
        let (mut lo, mut hi) = (
            self.points[self.indices[start] as usize],
            self.points[self.indices[start] as usize],
        );
        for &i in &self.indices[start..end] {
            lo = lo.min(self.points[i as usize]);
            hi = hi.max(self.points[i as usize]);
        }
        let spread = hi - lo;
        let mut axis = 0usize;
        if spread.y > spread.axis(axis) {
            axis = 1;
        }
        if spread.z > spread.axis(axis) {
            axis = 2;
        }
        let _ = depth;
        let mid = start + (end - start) / 2;
        self.indices[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            self.points[a as usize]
                .axis(axis)
                .partial_cmp(&self.points[b as usize].axis(axis))
                .expect("NaN coordinate in KdTree input")
        });
        let split = self.points[self.indices[mid] as usize].axis(axis);
        self.nodes.push(Node {
            axis: axis as u8,
            split,
            start: start as u32,
            end: end as u32,
            left: NO_CHILD,
            right: NO_CHILD,
        });
        let left = self.build_node(start, mid, leaf_size, depth + 1);
        let right = self.build_node(mid, end, leaf_size, depth + 1);
        self.nodes[id as usize].left = left;
        self.nodes[id as usize].right = right;
        id
    }

    /// Indices of points within `radius` (inclusive) of `query`, ascending.
    pub fn query_radius(&self, query: Vec3, radius: f32) -> Vec<u32> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let r2 = radius * radius;
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.axis == 3 {
                for &i in &self.indices[node.start as usize..node.end as usize] {
                    if query.dist2(self.points[i as usize]) <= r2 {
                        out.push(i);
                    }
                }
                continue;
            }
            let delta = query.axis(node.axis as usize) - node.split;
            // The median point itself lives in the right child (mid..end).
            if delta <= radius {
                stack.push(node.left);
            }
            if -delta <= radius {
                stack.push(node.right);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_singleton() {
        let t = KdTree::build(&[], 4);
        assert!(t.is_empty());
        assert!(t.query_radius(Vec3::ZERO, 1.0).is_empty());
        let t = KdTree::build(&[Vec3::new(1.0, 0.0, 0.0)], 4);
        assert_eq!(t.query_radius(Vec3::ZERO, 1.0), vec![0]);
        assert!(t.query_radius(Vec3::ZERO, 0.5).is_empty());
    }

    #[test]
    fn duplicate_points_all_found() {
        let pts = vec![Vec3::new(1.0, 1.0, 1.0); 9];
        let t = KdTree::build(&pts, 2);
        assert_eq!(t.query_radius(Vec3::new(1.0, 1.0, 1.0), 0.0).len(), 9);
    }

    proptest! {
        /// KD-tree query == brute-force filter for any cloud/radius/leaf.
        #[test]
        fn matches_brute_force(
            coords in prop::collection::vec(
                (-20.0f32..20.0, -20.0f32..20.0, -20.0f32..20.0), 1..70),
            q in (-20.0f32..20.0, -20.0f32..20.0, -20.0f32..20.0),
            radius in 0.0f32..12.0,
            leaf in 1usize..6,
        ) {
            let pts: Vec<Vec3> = coords.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
            let query = Vec3::new(q.0, q.1, q.2);
            let t = KdTree::build(&pts, leaf);
            let got = t.query_radius(query, radius);
            let want: Vec<u32> = pts.iter().enumerate()
                .filter(|(_, p)| query.dist2(**p) <= radius * radius)
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, want);
        }
    }
}
