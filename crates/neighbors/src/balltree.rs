//! BallTree for fixed-radius neighbor queries.
//!
//! Construction follows the cheapest of Omohundro's five construction
//! algorithms (top-down split along the dimension of greatest spread, the
//! same default scikit-learn uses): O(n log n) build, O(log n + k) radius
//! query. Balls store a centre and radius; a subtree is pruned whenever the
//! query sphere cannot intersect its ball.

use linalg::Vec3;

/// Maximum fan-out imbalance guard: leaves hold up to `leaf_size` points.
#[derive(Clone, Debug)]
pub struct BallTree {
    nodes: Vec<Node>,
    /// Point indices, permuted so each node owns a contiguous range.
    indices: Vec<u32>,
    points: Vec<Vec3>,
}

#[derive(Clone, Debug)]
struct Node {
    center: Vec3,
    radius: f32,
    /// Range into `indices` covered by this node.
    start: u32,
    end: u32,
    /// Child node ids; `u32::MAX` marks a leaf.
    left: u32,
    right: u32,
}

const NO_CHILD: u32 = u32::MAX;

impl BallTree {
    /// Build a tree over `points`. `leaf_size` trades build time against
    /// query pruning (scikit-learn defaults to 40; 16 is better for the
    /// dense radius queries the Leaflet Finder performs).
    ///
    /// Building an empty tree is allowed; all queries return nothing.
    pub fn build(points: &[Vec3], leaf_size: usize) -> Self {
        assert!(leaf_size >= 1, "leaf_size must be >= 1");
        let mut tree = BallTree {
            nodes: Vec::new(),
            indices: (0..points.len() as u32).collect(),
            points: points.to_vec(),
        };
        if !points.is_empty() {
            tree.build_node(0, points.len(), leaf_size);
        }
        tree
    }

    /// Number of points indexed.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Recursively build the node covering `indices[start..end]`; returns
    /// its node id.
    fn build_node(&mut self, start: usize, end: usize, leaf_size: usize) -> u32 {
        let (center, radius) = self.bounding_ball(start, end);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            center,
            radius,
            start: start as u32,
            end: end as u32,
            left: NO_CHILD,
            right: NO_CHILD,
        });
        if end - start > leaf_size {
            let axis = self.spread_axis(start, end);
            let mid = start + (end - start) / 2;
            // Median split along the widest axis: O(n) selection.
            self.indices[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
                let pa = self.points[a as usize].axis(axis);
                let pb = self.points[b as usize].axis(axis);
                pa.partial_cmp(&pb)
                    .expect("NaN coordinate in BallTree input")
            });
            let left = self.build_node(start, mid, leaf_size);
            let right = self.build_node(mid, end, leaf_size);
            self.nodes[id as usize].left = left;
            self.nodes[id as usize].right = right;
        }
        id
    }

    /// Centroid-centred bounding ball of a range.
    fn bounding_ball(&self, start: usize, end: usize) -> (Vec3, f32) {
        let mut c = Vec3::ZERO;
        for &i in &self.indices[start..end] {
            c += self.points[i as usize];
        }
        let c = c / (end - start) as f32;
        let mut r2 = 0.0f32;
        for &i in &self.indices[start..end] {
            r2 = r2.max(c.dist2(self.points[i as usize]));
        }
        (c, r2.sqrt())
    }

    /// Axis (0/1/2) with the greatest coordinate spread in the range.
    fn spread_axis(&self, start: usize, end: usize) -> usize {
        let mut lo = self.points[self.indices[start] as usize];
        let mut hi = lo;
        for &i in &self.indices[start..end] {
            let p = self.points[i as usize];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let spread = hi - lo;
        let mut best = 0;
        if spread.y > spread.axis(best) {
            best = 1;
        }
        if spread.z > spread.axis(best) {
            best = 2;
        }
        best
    }

    /// Indices of all points within `radius` (inclusive) of `query`,
    /// ascending. The query point itself is included if it is a tree member
    /// at distance 0 — callers filter `i < j` when building edge lists.
    pub fn query_radius(&self, query: Vec3, radius: f32) -> Vec<u32> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let r2 = radius * radius;
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            let d = query.dist(node.center);
            if d > node.radius + radius {
                continue; // query sphere cannot reach this ball
            }
            if node.left == NO_CHILD {
                for &i in &self.indices[node.start as usize..node.end as usize] {
                    if query.dist2(self.points[i as usize]) <= r2 {
                        out.push(i);
                    }
                }
            } else {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
        out.sort_unstable();
        out
    }

    /// Count of points within `radius` of `query` (no allocation).
    pub fn count_radius(&self, query: Vec3, radius: f32) -> usize {
        assert!(radius >= 0.0, "radius must be non-negative");
        if self.nodes.is_empty() {
            return 0;
        }
        let r2 = radius * radius;
        let mut count = 0usize;
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            let d = query.dist(node.center);
            if d > node.radius + radius {
                continue;
            }
            // Whole-ball inclusion: every member is within radius.
            if node.left == NO_CHILD {
                for &i in &self.indices[node.start as usize..node.end as usize] {
                    if query.dist2(self.points[i as usize]) <= r2 {
                        count += 1;
                    }
                }
            } else {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
        count
    }

    /// Approximate heap footprint in bytes — used by the memory model to
    /// reproduce the paper's observation that "the tree has a smaller
    /// memory footprint than cdist" (§4.3.4).
    pub fn size_bytes(&self) -> u64 {
        (self.nodes.len() * std::mem::size_of::<Node>()
            + self.indices.len() * 4
            + self.points.len() * std::mem::size_of::<Vec3>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid(n: usize) -> Vec<Vec3> {
        // n³ unit-spaced lattice.
        let mut pts = Vec::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    #[test]
    fn empty_tree() {
        let t = BallTree::build(&[], 16);
        assert!(t.is_empty());
        assert!(t.query_radius(Vec3::ZERO, 5.0).is_empty());
        assert_eq!(t.count_radius(Vec3::ZERO, 5.0), 0);
    }

    #[test]
    fn lattice_neighbors() {
        let pts = grid(4);
        let t = BallTree::build(&pts, 4);
        // Radius 1.0 from an interior point: itself + 6 face neighbors.
        let interior = Vec3::new(1.0, 1.0, 1.0);
        let hits = t.query_radius(interior, 1.0);
        assert_eq!(hits.len(), 7);
        assert_eq!(t.count_radius(interior, 1.0), 7);
    }

    #[test]
    fn radius_zero_finds_exact_point() {
        let pts = grid(3);
        let t = BallTree::build(&pts, 2);
        let hits = t.query_radius(Vec3::new(2.0, 2.0, 2.0), 0.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(pts[hits[0] as usize], Vec3::new(2.0, 2.0, 2.0));
    }

    #[test]
    fn leaf_size_one_works() {
        let pts = grid(3);
        let t = BallTree::build(&pts, 1);
        assert_eq!(t.query_radius(Vec3::ZERO, 1.0).len(), 4);
    }

    #[test]
    fn size_bytes_positive() {
        let t = BallTree::build(&grid(3), 8);
        assert!(t.size_bytes() > 0);
    }

    proptest! {
        /// Tree query == brute-force filter, for any cloud and radius.
        #[test]
        fn tree_matches_brute_force(
            coords in prop::collection::vec(
                (-15.0f32..15.0, -15.0f32..15.0, -15.0f32..15.0), 1..60),
            q in (-15.0f32..15.0, -15.0f32..15.0, -15.0f32..15.0),
            radius in 0.0f32..10.0,
            leaf in 1usize..8,
        ) {
            let pts: Vec<Vec3> = coords.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
            let query = Vec3::new(q.0, q.1, q.2);
            let t = BallTree::build(&pts, leaf);
            let got = t.query_radius(query, radius);
            let want: Vec<u32> = pts.iter().enumerate()
                .filter(|(_, p)| query.dist2(**p) <= radius * radius)
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(t.count_radius(query, radius), want.len());
        }
    }
}
