//! Uniform-grid cell list — the classic MD short-range neighbor method.
//!
//! Space is tiled into cubic cells of edge `>= cutoff`; any two points
//! within `cutoff` necessarily lie in the same or adjacent (27-stencil)
//! cells, so the all-pairs scan collapses to a per-cell local scan. Linear
//! build, near-linear pair enumeration for bounded densities. Included as
//! the paper's "reduce the compute footprint" future-work item and as an
//! ablation alternative to BallTree.

use linalg::Vec3;
use std::collections::HashMap;

/// A hash-grid cell list over a point cloud.
#[derive(Clone, Debug)]
pub struct CellList {
    cell_edge: f32,
    origin: Vec3,
    /// Cell coordinates -> indices of points inside.
    cells: HashMap<(i32, i32, i32), Vec<u32>>,
}

impl CellList {
    /// Build a grid with cell edge exactly `cutoff` (the optimal choice for
    /// a single fixed query radius). `cutoff` must be positive.
    pub fn build(points: &[Vec3], cutoff: f32) -> Self {
        assert!(cutoff > 0.0, "cell list cutoff must be positive");
        let origin = points
            .iter()
            .copied()
            .reduce(Vec3::min)
            .unwrap_or(Vec3::ZERO);
        let mut cells: HashMap<(i32, i32, i32), Vec<u32>> = HashMap::new();
        for (i, &p) in points.iter().enumerate() {
            cells
                .entry(Self::key(p, origin, cutoff))
                .or_default()
                .push(i as u32);
        }
        CellList {
            cell_edge: cutoff,
            origin,
            cells,
        }
    }

    #[inline]
    fn key(p: Vec3, origin: Vec3, edge: f32) -> (i32, i32, i32) {
        let d = p - origin;
        (
            (d.x / edge).floor() as i32,
            (d.y / edge).floor() as i32,
            (d.z / edge).floor() as i32,
        )
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// All pairs `(i, j)`, `i < j`, within `cutoff` (inclusive). `points`
    /// must be the same slice the grid was built from.
    pub fn neighbor_pairs(&self, points: &[Vec3], cutoff: f32) -> Vec<(u32, u32)> {
        assert!(
            cutoff <= self.cell_edge,
            "query cutoff {cutoff} exceeds grid cell edge {}",
            self.cell_edge
        );
        let c2 = cutoff * cutoff;
        let mut edges = Vec::new();
        for (&(cx, cy, cz), members) in &self.cells {
            // Within-cell pairs.
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    if points[i as usize].dist2(points[j as usize]) <= c2 {
                        edges.push(if i < j { (i, j) } else { (j, i) });
                    }
                }
            }
            // Cross-cell pairs: visit each unordered cell pair once by only
            // scanning lexicographically-greater neighbor cells.
            for dx in -1i32..=1 {
                for dy in -1i32..=1 {
                    for dz in -1i32..=1 {
                        if (dx, dy, dz) <= (0, 0, 0) {
                            continue;
                        }
                        let Some(other) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) else {
                            continue;
                        };
                        for &i in members {
                            for &j in other {
                                if points[i as usize].dist2(points[j as usize]) <= c2 {
                                    edges.push(if i < j { (i, j) } else { (j, i) });
                                }
                            }
                        }
                    }
                }
            }
        }
        edges
    }

    /// Indices of all points within `radius` of `query` (radius must not
    /// exceed the grid cell edge), ascending.
    pub fn query_radius(&self, points: &[Vec3], query: Vec3, radius: f32) -> Vec<u32> {
        assert!(
            radius <= self.cell_edge,
            "query radius exceeds grid cell edge"
        );
        let r2 = radius * radius;
        let (cx, cy, cz) = Self::key(query, self.origin, self.cell_edge);
        let mut out = Vec::new();
        for dx in -1i32..=1 {
            for dy in -1i32..=1 {
                for dz in -1i32..=1 {
                    if let Some(members) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &i in members {
                            if query.dist2(points[i as usize]) <= r2 {
                                out.push(i);
                            }
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f32) -> Vec<Vec3> {
        (0..n)
            .map(|i| Vec3::new(i as f32 * spacing, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn chain_pairs() {
        // Points 1.0 apart, cutoff 1.0: consecutive pairs only.
        let pts = line(5, 1.0);
        let g = CellList::build(&pts, 1.0);
        let mut e = g.neighbor_pairs(&pts, 1.0);
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn sparse_points_have_no_pairs() {
        let pts = line(4, 10.0);
        let g = CellList::build(&pts, 1.0);
        assert!(g.neighbor_pairs(&pts, 1.0).is_empty());
    }

    #[test]
    fn query_radius_matches_filter() {
        let pts = line(10, 0.5);
        let g = CellList::build(&pts, 1.2);
        let q = Vec3::new(2.0, 0.0, 0.0);
        let got = g.query_radius(&pts, q, 1.0);
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.dist2(**p) <= 1.0)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn occupied_cells_counts() {
        let pts = line(3, 5.0);
        let g = CellList::build(&pts, 1.0);
        assert_eq!(g.occupied_cells(), 3);
    }

    #[test]
    #[should_panic]
    fn oversized_query_panics() {
        let pts = line(3, 1.0);
        let g = CellList::build(&pts, 1.0);
        g.neighbor_pairs(&pts, 2.0);
    }

    #[test]
    #[should_panic]
    fn zero_cutoff_panics() {
        CellList::build(&[], 0.0);
    }
}
