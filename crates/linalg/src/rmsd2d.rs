//! 2D-RMSD: the all-frames × all-frames RMSD matrix between two
//! trajectories. This is "Algorithm 1 with no min–max operations" (§4.2) —
//! the quantity CPPTraj computes in parallel, from which the Hausdorff
//! distance is then reduced.

use crate::cdist::DistanceMatrix;
use crate::kernels::{frame_rmsd_flavored, KernelFlavor};
use crate::Frame;

/// All-pairs frame RMSD matrix between trajectories `a` (rows) and `b`
/// (columns), using the straightforward kernel.
pub fn rmsd2d(a: &[Frame], b: &[Frame]) -> DistanceMatrix {
    rmsd2d_with(a, b, KernelFlavor::Gnu)
}

/// [`rmsd2d`] with an explicit kernel flavour (GNU vs Intel-O3 builds).
pub fn rmsd2d_with(a: &[Frame], b: &[Frame], flavor: KernelFlavor) -> DistanceMatrix {
    let mut out = DistanceMatrix::zeros(a.len(), b.len());
    for (i, fa) in a.iter().enumerate() {
        for (j, fb) in b.iter().enumerate() {
            out.set(i, j, frame_rmsd_flavored(fa, fb, flavor));
        }
    }
    out
}

/// Frames per tile of the blocked 2-D RMSD sweep. 32 × 32 row/column
/// frames keep both working sets resident in L2 for the paper's frame
/// sizes (≤ ~13k atoms ≈ 160 KiB/frame tiles at 1 frame, smaller systems
/// fit many frames), which is where the CPPTraj-style kernel gets its
/// locality win.
const RMSD2D_TILE: usize = 32;

/// Cache-blocked [`rmsd2d`]: identical cells in tile-major order, so each
/// tile of `b` frames is streamed against a resident tile of `a` frames
/// (CPPTraj's 2D-RMSD loop structure). Every cell is the same
/// `frame_rmsd` evaluation as the naive sweep — the matrices are bitwise
/// identical (proptested below); only the traversal order changes.
pub fn rmsd2d_blocked(a: &[Frame], b: &[Frame]) -> DistanceMatrix {
    rmsd2d_blocked_with(a, b, KernelFlavor::Gnu)
}

/// [`rmsd2d_blocked`] with an explicit kernel flavour.
pub fn rmsd2d_blocked_with(a: &[Frame], b: &[Frame], flavor: KernelFlavor) -> DistanceMatrix {
    let mut out = DistanceMatrix::zeros(a.len(), b.len());
    for i0 in (0..a.len()).step_by(RMSD2D_TILE) {
        let i1 = (i0 + RMSD2D_TILE).min(a.len());
        for j0 in (0..b.len()).step_by(RMSD2D_TILE) {
            let j1 = (j0 + RMSD2D_TILE).min(b.len());
            for (i, fa) in a[i0..i1].iter().enumerate() {
                for (j, fb) in b[j0..j1].iter().enumerate() {
                    out.set(i0 + i, j0 + j, frame_rmsd_flavored(fa, fb, flavor));
                }
            }
        }
    }
    out
}

/// Reduce a 2D-RMSD matrix to the symmetric Hausdorff distance:
/// `max( max_i min_j D[i][j], max_j min_i D[i][j] )`.
///
/// This is the "gather the results and compute the Hausdorff distance"
/// step of the paper's CPPTraj pipeline and must agree with
/// [`crate::hausdorff::hausdorff_naive`] computed directly — a property
/// test in `mdtask-core` checks that end to end.
pub fn hausdorff_from_rmsd2d(d: &DistanceMatrix) -> f64 {
    assert!(
        d.rows() > 0 && d.cols() > 0,
        "hausdorff_from_rmsd2d: empty matrix"
    );
    let mut h_ab = 0.0f64;
    for i in 0..d.rows() {
        let row_min = d.row(i).iter().copied().fold(f64::INFINITY, f64::min);
        h_ab = h_ab.max(row_min);
    }
    let mut h_ba = 0.0f64;
    for j in 0..d.cols() {
        let mut col_min = f64::INFINITY;
        for i in 0..d.rows() {
            col_min = col_min.min(d.get(i, j));
        }
        h_ba = h_ba.max(col_min);
    }
    h_ab.max(h_ba)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hausdorff::hausdorff_naive;
    use crate::kernels::frame_rmsd;
    use crate::Vec3;

    fn traj(xs: &[f32]) -> Vec<Frame> {
        xs.iter()
            .map(|&x| Frame::new(vec![Vec3::new(x, 0.0, 0.0)]))
            .collect()
    }

    #[test]
    fn matrix_shape_and_values() {
        let a = traj(&[0.0, 2.0]);
        let b = traj(&[0.0, 1.0, 3.0]);
        let d = rmsd2d(&a, &b);
        assert_eq!((d.rows(), d.cols()), (2, 3));
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.get(0, 2), 3.0);
        assert_eq!(d.get(1, 1), 1.0);
    }

    #[test]
    fn flavors_agree() {
        let a = traj(&[0.0, 1.5, -2.0, 4.0, 0.25]);
        let b = traj(&[1.0, 1.25, 7.0]);
        let g = rmsd2d_with(&a, &b, KernelFlavor::Gnu);
        let o3 = rmsd2d_with(&a, &b, KernelFlavor::IntelO3);
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                assert!((g.get(i, j) - o3.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hausdorff_reduction_matches_direct() {
        let a = traj(&[0.0, 1.0, 2.5, -3.0]);
        let b = traj(&[0.5, 4.0]);
        let via_matrix = hausdorff_from_rmsd2d(&rmsd2d(&a, &b));
        let direct = hausdorff_naive(&a, &b, frame_rmsd);
        assert!((via_matrix - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_matrix_panics() {
        hausdorff_from_rmsd2d(&DistanceMatrix::zeros(0, 0));
    }

    #[test]
    fn blocked_handles_ragged_tiles() {
        // Sizes straddling the tile boundary: every cell must be written.
        let a = traj(&(0..37).map(|i| i as f32).collect::<Vec<_>>());
        let b = traj(&(0..65).map(|i| 0.5 * i as f32).collect::<Vec<_>>());
        let naive = rmsd2d(&a, &b);
        let blocked = rmsd2d_blocked(&a, &b);
        assert_eq!(naive.as_slice(), blocked.as_slice());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The blocked sweep is a pure reordering: bitwise-identical
            /// matrices, any shape.
            #[test]
            fn blocked_equals_naive(
                xs in prop::collection::vec(-50.0f32..50.0, 1..70),
                ys in prop::collection::vec(-50.0f32..50.0, 1..70),
            ) {
                let a = traj(&xs);
                let b = traj(&ys);
                let naive = rmsd2d(&a, &b);
                let blocked = rmsd2d_blocked(&a, &b);
                prop_assert_eq!(naive.as_slice(), blocked.as_slice());
            }
        }
    }
}
