//! A minimal 3-component vector over `f32`, the coordinate type used for
//! atom positions throughout the workspace.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position or displacement in 3-D space, single precision.
///
/// MD packages near-universally store coordinates in `f32`; accumulations
/// (RMSD sums, centroids) are performed in `f64` by the kernels that need
/// the head-room.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Squared Euclidean norm. Prefer this over `norm()` in cutoff tests:
    /// comparing squared distances avoids the square root entirely.
    #[inline]
    pub fn norm2(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm2().sqrt()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn dist2(self, o: Vec3) -> f32 {
        (self - o).norm2()
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f32 {
        self.dist2(o).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Access a component by axis index (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn axis(self, k: usize) -> f32 {
        match k {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis index {k} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-0.5, 4.0, 0.25);
        assert_eq!(a + b - b, a);
        assert_eq!(a + (-a), Vec3::ZERO);
        assert_eq!(a * 2.0 / 2.0, a);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.norm2(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dot(Vec3::new(0.0, 0.0, 1.0)), 0.0);
    }

    #[test]
    fn distances() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(1.0, 1.0, 4.0);
        assert_eq!(a.dist(b), 3.0);
        assert_eq!(a.dist2(b), 9.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn min_max_axis() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, -5.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, -5.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
        assert_eq!(a.axis(0), 1.0);
        assert_eq!(a.axis(1), 5.0);
        assert_eq!(a.axis(2), -2.0);
    }

    #[test]
    #[should_panic]
    fn axis_out_of_range_panics() {
        Vec3::ZERO.axis(3);
    }
}
