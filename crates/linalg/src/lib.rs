//! Fixed-size 3-D vector math and the numerical kernels used by MD
//! trajectory analysis: coordinate frames, RMSD/dRMS, pairwise distance
//! matrices (`cdist`), 2D-RMSD between trajectories, and the Hausdorff
//! distance (naive and early-break variants).
//!
//! Everything here is scalar Rust with no external dependencies; the
//! "optimized" kernel variants (blocked / unrolled / fused) exist to model
//! the paper's GNU-vs-Intel-O3 CPPTraj comparison (Fig. 6) and are verified
//! against the straightforward implementations by unit and property tests.

pub mod cdist;
pub mod frame;
pub mod hausdorff;
pub mod kernels;
pub mod rmsd2d;
pub mod superpose;
pub mod vec3;

pub use cdist::{cdist, cdist_into, edges_within_cutoff, DistanceMatrix};
pub use frame::Frame;
pub use hausdorff::{
    hausdorff_early_break, hausdorff_naive, hausdorff_rmsd, hausdorff_rmsd_flavored,
    hausdorff_rmsd_pruned, hausdorff_rmsd_pruned_evals, FrameMetric,
};
pub use kernels::{drms, frame_rmsd, frame_rmsd_blocked, frame_rmsd_flavored, KernelFlavor};
pub use rmsd2d::{hausdorff_from_rmsd2d, rmsd2d, rmsd2d_blocked, rmsd2d_blocked_with, rmsd2d_with};
pub use superpose::rmsd_superposed;
pub use vec3::Vec3;
