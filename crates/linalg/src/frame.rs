//! A single trajectory frame: the positions of all atoms at one time step.

use crate::Vec3;

/// One snapshot of an N-atom system.
///
/// Stored as a flat `Vec<Vec3>`; a trajectory is a `Vec<Frame>` (see
/// `mdsim::Trajectory`). The paper's representation is identical: "each
/// trajectory is represented as a two dimensional array \[time frames ×
/// N atom positions in 3-dimensional space\]" (§2.1.1).
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    positions: Vec<Vec3>,
}

impl Frame {
    /// Build a frame from a position list.
    pub fn new(positions: Vec<Vec3>) -> Self {
        Frame { positions }
    }

    /// A frame with `n` atoms at the origin (useful as an accumulation
    /// target or test fixture).
    pub fn zeros(n: usize) -> Self {
        Frame {
            positions: vec![Vec3::ZERO; n],
        }
    }

    /// Number of atoms.
    #[inline]
    pub fn n_atoms(&self) -> usize {
        self.positions.len()
    }

    /// Immutable view of the positions.
    #[inline]
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Mutable view of the positions.
    #[inline]
    pub fn positions_mut(&mut self) -> &mut [Vec3] {
        &mut self.positions
    }

    /// Geometric centre (centroid) of the frame, accumulated in `f64`.
    pub fn centroid(&self) -> Vec3 {
        let n = self.positions.len();
        if n == 0 {
            return Vec3::ZERO;
        }
        let (mut sx, mut sy, mut sz) = (0.0f64, 0.0f64, 0.0f64);
        for p in &self.positions {
            sx += p.x as f64;
            sy += p.y as f64;
            sz += p.z as f64;
        }
        let inv = 1.0 / n as f64;
        Vec3::new((sx * inv) as f32, (sy * inv) as f32, (sz * inv) as f32)
    }

    /// Translate every atom by `d`.
    pub fn translate(&mut self, d: Vec3) {
        for p in &mut self.positions {
            *p += d;
        }
    }

    /// Translate the frame so its centroid sits at the origin. Trajectory
    /// comparison metrics (RMSD without superposition) are sensitive to
    /// rigid-body drift; centring is the standard pre-processing step.
    pub fn center(&mut self) {
        let c = self.centroid();
        self.translate(-c);
    }

    /// Select a subset of atoms by index ("sub-setting" in the paper's
    /// catalogue of analysis operations, §2).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Frame {
        Frame {
            positions: indices.iter().map(|&i| self.positions[i]).collect(),
        }
    }

    /// Axis-aligned bounding box as `(min, max)` corners; `None` for an
    /// empty frame.
    pub fn bounding_box(&self) -> Option<(Vec3, Vec3)> {
        let mut it = self.positions.iter();
        let first = *it.next()?;
        let mut lo = first;
        let mut hi = first;
        for &p in it {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some((lo, hi))
    }
}

impl From<Vec<Vec3>> for Frame {
    fn from(positions: Vec<Vec3>) -> Self {
        Frame::new(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Frame {
        Frame::new(vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
        ])
    }

    #[test]
    fn centroid_of_triangle() {
        assert_eq!(tri().centroid(), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn centroid_of_empty_is_zero() {
        assert_eq!(Frame::zeros(0).centroid(), Vec3::ZERO);
    }

    #[test]
    fn center_moves_centroid_to_origin() {
        let mut f = tri();
        f.center();
        let c = f.centroid();
        assert!(c.norm() < 1e-6, "centroid after centring: {c:?}");
    }

    #[test]
    fn translate_shifts_all() {
        let mut f = tri();
        f.translate(Vec3::new(1.0, -1.0, 2.0));
        assert_eq!(f.positions()[0], Vec3::new(1.0, -1.0, 2.0));
        assert_eq!(f.positions()[1], Vec3::new(4.0, -1.0, 2.0));
    }

    #[test]
    fn subset_picks_indices() {
        let f = tri();
        let s = f.subset(&[2, 0]);
        assert_eq!(s.n_atoms(), 2);
        assert_eq!(s.positions()[0], Vec3::new(0.0, 3.0, 0.0));
        assert_eq!(s.positions()[1], Vec3::new(0.0, 0.0, 0.0));
    }

    #[test]
    fn bounding_box() {
        let f = tri();
        let (lo, hi) = f.bounding_box().unwrap();
        assert_eq!(lo, Vec3::ZERO);
        assert_eq!(hi, Vec3::new(3.0, 3.0, 0.0));
        assert!(Frame::zeros(0).bounding_box().is_none());
    }
}
