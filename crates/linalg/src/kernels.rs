//! Frame-to-frame comparison kernels: RMSD (the `dRMS` of Algorithm 1) in a
//! straightforward and a blocked/optimized build, and the
//! distance-matrix-based dRMS.
//!
//! The two `KernelFlavor`s stand in for the paper's two CPPTraj builds
//! (GNU, no optimization vs Intel `-O3`, Fig. 6): same arithmetic, different
//! code generation quality. Both flavours must agree to within floating
//! point tolerance — a property test enforces this.

use crate::Frame;

/// Which code-generation style to use for a kernel.
///
/// `Gnu` is the textbook loop; `IntelO3` is manually blocked and unrolled
/// (modelling what an optimizing compiler + SIMD does to the same source).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelFlavor {
    /// Straightforward scalar loop (models the unoptimized GNU build).
    Gnu,
    /// Blocked, 4-way unrolled loop with fused accumulation (models the
    /// Intel `-Wall -O3` build).
    IntelO3,
}

/// Root-mean-square deviation between two frames **without** optimal
/// superposition — the per-frame metric Algorithm 1 calls `dRMS`.
///
/// `rmsd(A, B) = sqrt( (1/N) * Σ_i |a_i - b_i|² )`
///
/// # Panics
/// Panics if the frames have different atom counts or are empty.
pub fn frame_rmsd(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.n_atoms(), b.n_atoms(), "frame_rmsd: atom count mismatch");
    assert!(a.n_atoms() > 0, "frame_rmsd: empty frames");
    let mut acc = 0.0f64;
    for (pa, pb) in a.positions().iter().zip(b.positions()) {
        acc += pa.dist2(*pb) as f64;
    }
    (acc / a.n_atoms() as f64).sqrt()
}

/// Blocked/unrolled variant of [`frame_rmsd`]; numerically equivalent.
///
/// Processes atoms in chunks of four with independent accumulators so the
/// compiler can keep them in registers and vectorize — the kind of
/// transformation `-O3` performs on the naive loop.
pub fn frame_rmsd_blocked(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.n_atoms(), b.n_atoms(), "frame_rmsd: atom count mismatch");
    assert!(a.n_atoms() > 0, "frame_rmsd: empty frames");
    let pa = a.positions();
    let pb = b.positions();
    let n = pa.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for c in 0..chunks {
        let i = c * 4;
        s0 += pa[i].dist2(pb[i]) as f64;
        s1 += pa[i + 1].dist2(pb[i + 1]) as f64;
        s2 += pa[i + 2].dist2(pb[i + 2]) as f64;
        s3 += pa[i + 3].dist2(pb[i + 3]) as f64;
    }
    let mut tail = 0.0f64;
    for i in chunks * 4..n {
        tail += pa[i].dist2(pb[i]) as f64;
    }
    (((s0 + s1) + (s2 + s3) + tail) / n as f64).sqrt()
}

/// Dispatch [`frame_rmsd`] / [`frame_rmsd_blocked`] by flavour.
pub fn frame_rmsd_flavored(a: &Frame, b: &Frame, flavor: KernelFlavor) -> f64 {
    match flavor {
        KernelFlavor::Gnu => frame_rmsd(a, b),
        KernelFlavor::IntelO3 => frame_rmsd_blocked(a, b),
    }
}

/// Distance-matrix RMS (`dRMS` proper): compares the *internal* pairwise
/// distance matrices of two conformations, making the metric invariant to
/// rigid-body motion without needing superposition.
///
/// `drms(A, B) = sqrt( 2/(N(N-1)) * Σ_{i<j} (|a_i-a_j| - |b_i-b_j|)² )`
///
/// O(N²) in the atom count — used only on small selections; the Hausdorff
/// path-similarity pipeline uses [`frame_rmsd`], matching MDAnalysis' PSA.
///
/// # Panics
/// Panics if the frames differ in atom count or have fewer than two atoms.
pub fn drms(a: &Frame, b: &Frame) -> f64 {
    let n = a.n_atoms();
    assert_eq!(n, b.n_atoms(), "drms: atom count mismatch");
    assert!(n >= 2, "drms: need at least two atoms");
    let pa = a.positions();
    let pb = b.positions();
    let mut acc = 0.0f64;
    for i in 0..n {
        for j in i + 1..n {
            let da = pa[i].dist(pa[j]) as f64;
            let db = pb[i].dist(pb[j]) as f64;
            let d = da - db;
            acc += d * d;
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (acc / pairs).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;
    use proptest::prelude::*;

    fn frame_of(coords: &[(f32, f32, f32)]) -> Frame {
        Frame::new(coords.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect())
    }

    #[test]
    fn rmsd_identical_frames_is_zero() {
        let f = frame_of(&[(0.0, 0.0, 0.0), (1.0, 2.0, 3.0)]);
        assert_eq!(frame_rmsd(&f, &f), 0.0);
        assert_eq!(frame_rmsd_blocked(&f, &f), 0.0);
    }

    #[test]
    fn rmsd_uniform_shift() {
        // Shift every atom by (3,4,0): each contributes 25, rmsd = 5.
        let a = frame_of(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 0.0, 1.0)]);
        let mut b = a.clone();
        b.translate(Vec3::new(3.0, 4.0, 0.0));
        assert!((frame_rmsd(&a, &b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rmsd_is_symmetric() {
        let a = frame_of(&[(0.0, 1.0, 2.0), (-1.0, 0.5, 3.0)]);
        let b = frame_of(&[(2.0, -1.0, 0.0), (4.0, 0.0, 1.0)]);
        assert_eq!(frame_rmsd(&a, &b), frame_rmsd(&b, &a));
    }

    #[test]
    #[should_panic]
    fn rmsd_mismatched_sizes_panics() {
        frame_rmsd(&Frame::zeros(2), &Frame::zeros(3));
    }

    #[test]
    #[should_panic]
    fn rmsd_empty_panics() {
        frame_rmsd(&Frame::zeros(0), &Frame::zeros(0));
    }

    #[test]
    fn drms_invariant_under_translation() {
        let a = frame_of(&[(0.0, 0.0, 0.0), (1.0, 0.0, 0.0), (0.0, 2.0, 0.0)]);
        let mut b = a.clone();
        b.translate(Vec3::new(10.0, -7.0, 3.0));
        assert!(drms(&a, &b) < 1e-6);
    }

    #[test]
    fn drms_detects_internal_change() {
        let a = frame_of(&[(0.0, 0.0, 0.0), (1.0, 0.0, 0.0)]);
        let b = frame_of(&[(0.0, 0.0, 0.0), (3.0, 0.0, 0.0)]);
        // Only pair distance differs by 2 => drms = 2.
        assert!((drms(&a, &b) - 2.0).abs() < 1e-6);
    }

    proptest! {
        /// The blocked kernel is the naive kernel: same value up to fp
        /// reassociation tolerance, for any frame size including the
        /// unrolling tail cases.
        #[test]
        fn blocked_matches_naive(
            coords in prop::collection::vec((-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0), 1..70),
            shifts in prop::collection::vec((-5.0f32..5.0, -5.0f32..5.0, -5.0f32..5.0), 1..70),
        ) {
            let n = coords.len().min(shifts.len());
            let a = Frame::new(coords[..n].iter().map(|&(x,y,z)| Vec3::new(x,y,z)).collect());
            let b = Frame::new(
                coords[..n].iter().zip(&shifts[..n])
                    .map(|(&(x,y,z), &(dx,dy,dz))| Vec3::new(x+dx, y+dy, z+dz))
                    .collect());
            let naive = frame_rmsd(&a, &b);
            let blocked = frame_rmsd_blocked(&a, &b);
            prop_assert!((naive - blocked).abs() <= 1e-6 * (1.0 + naive.abs()),
                         "naive={naive} blocked={blocked}");
        }

        /// RMSD is non-negative and zero iff comparing a frame to itself
        /// (for the self-comparison direction).
        #[test]
        fn rmsd_nonnegative_and_reflexive(
            coords in prop::collection::vec((-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0), 1..40),
        ) {
            let a = Frame::new(coords.iter().map(|&(x,y,z)| Vec3::new(x,y,z)).collect());
            prop_assert_eq!(frame_rmsd(&a, &a), 0.0);
        }
    }
}
