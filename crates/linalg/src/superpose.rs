//! Optimal-superposition RMSD via the quaternion characteristic
//! polynomial (QCP) method (Theobald 2005) — the minimum RMSD over all
//! rigid-body rotations and translations.
//!
//! §2 lists RMSD among the "commonly used algorithms for analyzing MD
//! trajectories"; MDAnalysis computes it with optimal superposition. The
//! plain (`frame_rmsd`) variant used by the PSA pipeline ignores
//! superposition, matching Algorithm 1's `dRMS`; this module provides the
//! superposed variant for the RMSD-series analysis.
//!
//! QCP: after centring both frames, the minimal RMSD satisfies
//! `rmsd² = (Gₐ + G_b − 2λ_max) / N` where `G` are inner products and
//! `λ_max` is the largest eigenvalue of a 4×4 key matrix built from the
//! cross-covariance — found here by Newton iteration on the quartic
//! characteristic polynomial, exactly as the reference implementation
//! does.

use crate::{Frame, Vec3};

/// Minimum RMSD between two frames over all rigid-body motions.
///
/// # Panics
/// Panics if the frames differ in atom count or are empty.
pub fn rmsd_superposed(a: &Frame, b: &Frame) -> f64 {
    let n = a.n_atoms();
    assert_eq!(n, b.n_atoms(), "rmsd_superposed: atom count mismatch");
    assert!(n > 0, "rmsd_superposed: empty frames");

    // Centre both coordinate sets.
    let ca = a.centroid();
    let cb = b.centroid();

    // Inner products G_a, G_b and the cross-covariance matrix M (f64).
    let mut ga = 0.0f64;
    let mut gb = 0.0f64;
    let mut m = [[0.0f64; 3]; 3];
    for (pa, pb) in a.positions().iter().zip(b.positions()) {
        let x = centred(*pa, ca);
        let y = centred(*pb, cb);
        ga += x[0] * x[0] + x[1] * x[1] + x[2] * x[2];
        gb += y[0] * y[0] + y[1] * y[1] + y[2] * y[2];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &yj) in y.iter().enumerate() {
                m[i][j] += xi * yj;
            }
        }
    }

    let e0 = (ga + gb) * 0.5;
    if e0 < 1e-12 {
        return 0.0; // both frames collapse to a single point
    }

    // Coefficients of the QCP quartic P(λ) = λ⁴ + c2 λ² + c1 λ + c0.
    let (sxx, sxy, sxz) = (m[0][0], m[0][1], m[0][2]);
    let (syx, syy, syz) = (m[1][0], m[1][1], m[1][2]);
    let (szx, szy, szz) = (m[2][0], m[2][1], m[2][2]);

    let sxx2 = sxx * sxx;
    let syy2 = syy * syy;
    let szz2 = szz * szz;
    let sxy2 = sxy * sxy;
    let syz2 = syz * syz;
    let sxz2 = sxz * sxz;
    let syx2 = syx * syx;
    let szy2 = szy * szy;
    let szx2 = szx * szx;

    let syzszymsyyszz2 = 2.0 * (syz * szy - syy * szz);
    let sxx2syy2szz2syz2szy2 = syy2 + szz2 - sxx2 + syz2 + szy2;

    let c2 = -2.0 * (sxx2 + syy2 + szz2 + sxy2 + syx2 + sxz2 + szx2 + syz2 + szy2);
    let c1 = 8.0
        * (sxx * syz * szy + syy * szx * sxz + szz * sxy * syx
            - sxx * syy * szz
            - syz * szx * sxy
            - szy * syx * sxz);

    let d = (sxy2 + sxz2 - syx2 - szx2) * (sxy2 + sxz2 - syx2 - szx2);
    let e = (sxx2syy2szz2syz2szy2 + syzszymsyyszz2) * (sxx2syy2szz2syz2szy2 - syzszymsyyszz2);
    let f = (-(sxz + szx) * (syz - szy) + (sxy - syx) * (sxx - syy - szz))
        * (-(sxz - szx) * (syz + szy) + (sxy - syx) * (sxx - syy + szz));
    let g = (-(sxz + szx) * (syz + szy) - (sxy + syx) * (sxx + syy - szz))
        * (-(sxz - szx) * (syz - szy) - (sxy + syx) * (sxx + syy + szz));
    let h = ((sxy + syx) * (syz + szy) + (sxz + szx) * (sxx - syy + szz))
        * (-(sxy - syx) * (syz - szy) + (sxz + szx) * (sxx + syy + szz));
    let i = ((sxy + syx) * (syz - szy) + (sxz - szx) * (sxx - syy - szz))
        * (-(sxy - syx) * (syz + szy) + (sxz - szx) * (sxx + syy - szz));
    let c0 = d + e + f + g + h + i;

    // Newton iteration from λ = E0 (guaranteed ≥ λ_max start point).
    let mut lambda = e0;
    for _ in 0..64 {
        let l2 = lambda * lambda;
        let p = l2 * l2 + c2 * l2 + c1 * lambda + c0;
        let dp = 4.0 * l2 * lambda + 2.0 * c2 * lambda + c1;
        if dp.abs() < 1e-30 {
            break;
        }
        let step = p / dp;
        lambda -= step;
        if step.abs() < 1e-13 * lambda.abs().max(1.0) {
            break;
        }
    }

    let msd = (2.0 * (e0 - lambda) / n as f64).max(0.0);
    msd.sqrt()
}

#[inline]
fn centred(p: Vec3, c: Vec3) -> [f64; 3] {
    [
        p.x as f64 - c.x as f64,
        p.y as f64 - c.y as f64,
        p.z as f64 - c.z as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame_rmsd;
    use proptest::prelude::*;

    /// Rotate a frame by a quaternion (unit) plus translation.
    fn transform(f: &Frame, q: [f64; 4], t: Vec3) -> Frame {
        let n = (q[0] * q[0] + q[1] * q[1] + q[2] * q[2] + q[3] * q[3]).sqrt();
        let (w, x, y, z) = (q[0] / n, q[1] / n, q[2] / n, q[3] / n);
        let rot = [
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ];
        Frame::new(
            f.positions()
                .iter()
                .map(|p| {
                    let v = [p.x as f64, p.y as f64, p.z as f64];
                    Vec3::new(
                        (rot[0][0] * v[0] + rot[0][1] * v[1] + rot[0][2] * v[2]) as f32 + t.x,
                        (rot[1][0] * v[0] + rot[1][1] * v[1] + rot[1][2] * v[2]) as f32 + t.y,
                        (rot[2][0] * v[0] + rot[2][1] * v[1] + rot[2][2] * v[2]) as f32 + t.z,
                    )
                })
                .collect(),
        )
    }

    fn sample_frame(n: usize, seed: u64) -> Frame {
        // Deterministic pseudo-random coordinates without pulling rand in.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) as f32 * 20.0 - 10.0
        };
        Frame::new((0..n).map(|_| Vec3::new(next(), next(), next())).collect())
    }

    #[test]
    fn identical_frames_zero() {
        let f = sample_frame(30, 1);
        assert!(rmsd_superposed(&f, &f) < 1e-5);
    }

    #[test]
    fn pure_translation_is_zero() {
        let f = sample_frame(25, 2);
        let g = transform(&f, [1.0, 0.0, 0.0, 0.0], Vec3::new(5.0, -3.0, 2.0));
        assert!(rmsd_superposed(&f, &g) < 1e-4);
    }

    #[test]
    fn pure_rotation_is_zero() {
        let f = sample_frame(25, 3);
        let g = transform(&f, [0.6, 0.4, -0.5, 0.2], Vec3::ZERO);
        let plain = frame_rmsd(&f, &g);
        let sup = rmsd_superposed(&f, &g);
        assert!(plain > 1.0, "rotation must move atoms (plain rmsd {plain})");
        assert!(sup < 1e-4, "superposition must cancel rotation (got {sup})");
    }

    #[test]
    fn single_point_frames() {
        let a = Frame::new(vec![Vec3::new(1.0, 2.0, 3.0)]);
        let b = Frame::new(vec![Vec3::new(-4.0, 0.0, 9.0)]);
        assert!(
            rmsd_superposed(&a, &b) < 1e-6,
            "single points always superpose"
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_panic() {
        rmsd_superposed(&Frame::zeros(2), &Frame::zeros(3));
    }

    proptest! {
        /// Superposed RMSD never exceeds plain RMSD and is symmetric.
        #[test]
        fn superposed_bounds_plain(seed in 0u64..500, n in 4usize..40) {
            let a = sample_frame(n, seed);
            let b = sample_frame(n, seed.wrapping_add(777));
            let plain = frame_rmsd(&a, &b);
            let sup = rmsd_superposed(&a, &b);
            prop_assert!(sup <= plain + 1e-6, "sup={sup} plain={plain}");
            let sym = rmsd_superposed(&b, &a);
            prop_assert!((sup - sym).abs() < 1e-6);
        }

        /// Invariance: rotating + translating one frame does not change the
        /// superposed RMSD to another.
        #[test]
        fn invariant_under_rigid_motion(
            seed in 0u64..200,
            q in (0.1f64..1.0, -1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
            t in (-8.0f32..8.0, -8.0f32..8.0, -8.0f32..8.0),
        ) {
            let a = sample_frame(20, seed);
            let b = sample_frame(20, seed.wrapping_add(31));
            let base = rmsd_superposed(&a, &b);
            let moved = transform(&b, [q.0, q.1, q.2, q.3], Vec3::new(t.0, t.1, t.2));
            let after = rmsd_superposed(&a, &moved);
            prop_assert!((base - after).abs() < 1e-3 * (1.0 + base), "base={base} after={after}");
        }
    }
}
