//! Pairwise distance computations between point sets — the Rust equivalent
//! of SciPy's `cdist`, which the paper's Leaflet Finder approaches 1–3 use
//! for edge discovery.
//!
//! Two entry points matter downstream:
//! * [`cdist`] materializes the full M×N distance matrix (`f64`, matching
//!   the paper's note that `cdist` "uses double precision floating point" —
//!   this is exactly what made the 4M-atom dataset blow memory budgets and
//!   forced 42k tasks in the paper);
//! * [`edges_within_cutoff`] fuses the distance computation with the cutoff
//!   filter and never materializes the matrix (the memory-friendly path).

use crate::Vec3;

/// A dense row-major M×N matrix of `f64` distances.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Allocate an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DistanceMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from parts. `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "DistanceMatrix shape mismatch");
        DistanceMatrix { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Bytes this matrix occupies — the quantity the paper's memory limits
    /// are measured against (double precision: 8 bytes per element).
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Maximum element; `NaN`-free inputs assumed. Returns 0.0 for empty.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0f64, f64::max)
    }
}

/// Full pairwise Euclidean distance matrix between two point sets.
pub fn cdist(a: &[Vec3], b: &[Vec3]) -> DistanceMatrix {
    let mut out = DistanceMatrix::zeros(a.len(), b.len());
    cdist_into(a, b, &mut out);
    out
}

/// [`cdist`] into a caller-provided matrix (reuse across tasks avoids
/// per-task allocation — see the perf-book guidance on allocation reuse).
///
/// # Panics
/// Panics if `out` does not have shape `a.len() × b.len()`.
pub fn cdist_into(a: &[Vec3], b: &[Vec3], out: &mut DistanceMatrix) {
    assert_eq!(out.rows, a.len(), "cdist_into: row mismatch");
    assert_eq!(out.cols, b.len(), "cdist_into: col mismatch");
    for (i, pa) in a.iter().enumerate() {
        let row = &mut out.data[i * out.cols..(i + 1) * out.cols];
        for (slot, pb) in row.iter_mut().zip(b) {
            *slot = pa.dist(*pb) as f64;
        }
    }
}

/// Edges `(i, j)` (indices into `a` and `b` respectively, offset by the
/// caller) whose Euclidean distance is `<= cutoff`. The comparison is done
/// on squared distances, so no square roots are taken at all.
///
/// When `a` and `b` are the *same* block the caller is responsible for
/// de-duplicating `(i, j)`/`(j, i)` pairs; the Leaflet Finder planner does
/// this by only enumerating blocks with `row_block <= col_block` and
/// filtering `i < j` on the diagonal.
pub fn edges_within_cutoff(
    a: &[Vec3],
    b: &[Vec3],
    cutoff: f32,
    skip_self_pairs: bool,
) -> Vec<(u32, u32)> {
    assert!(cutoff >= 0.0, "cutoff must be non-negative");
    let c2 = cutoff * cutoff;
    let mut edges = Vec::new();
    for (i, pa) in a.iter().enumerate() {
        let jstart = if skip_self_pairs { i + 1 } else { 0 };
        for (j, pb) in b.iter().enumerate().skip(jstart) {
            if pa.dist2(*pb) <= c2 {
                edges.push((i as u32, j as u32));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f32, f32, f32)]) -> Vec<Vec3> {
        v.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect()
    }

    #[test]
    fn cdist_small() {
        let a = pts(&[(0.0, 0.0, 0.0), (1.0, 0.0, 0.0)]);
        let b = pts(&[(0.0, 0.0, 0.0), (0.0, 3.0, 0.0), (0.0, 0.0, 4.0)]);
        let d = cdist(&a, &b);
        assert_eq!(d.rows(), 2);
        assert_eq!(d.cols(), 3);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.get(0, 1), 3.0);
        assert_eq!(d.get(0, 2), 4.0);
        assert!((d.get(1, 1) - 10.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn cdist_row_access_and_max() {
        let a = pts(&[(0.0, 0.0, 0.0)]);
        let b = pts(&[(1.0, 0.0, 0.0), (5.0, 0.0, 0.0)]);
        let d = cdist(&a, &b);
        assert_eq!(d.row(0), &[1.0, 5.0]);
        assert_eq!(d.max(), 5.0);
    }

    #[test]
    fn size_bytes_counts_doubles() {
        let d = DistanceMatrix::zeros(10, 20);
        assert_eq!(d.size_bytes(), 10 * 20 * 8);
    }

    #[test]
    fn edges_respect_cutoff_boundary() {
        let a = pts(&[(0.0, 0.0, 0.0)]);
        let b = pts(&[(1.0, 0.0, 0.0), (2.0, 0.0, 0.0), (2.1, 0.0, 0.0)]);
        let e = edges_within_cutoff(&a, &b, 2.0, false);
        // Distance exactly == cutoff is included.
        assert_eq!(e, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn edges_skip_self_pairs_gives_upper_triangle() {
        let a = pts(&[(0.0, 0.0, 0.0), (0.5, 0.0, 0.0), (10.0, 0.0, 0.0)]);
        let e = edges_within_cutoff(&a, &a, 1.0, true);
        assert_eq!(e, vec![(0, 1)]);
    }

    #[test]
    fn edges_match_cdist_filter() {
        // Cross-check the fused path against materialize-then-filter.
        let a = pts(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0), (3.0, 0.0, 0.0)]);
        let b = pts(&[(0.5, 0.0, 0.0), (2.0, 2.0, 2.0)]);
        let cutoff = 1.6f32;
        let d = cdist(&a, &b);
        let mut expected = Vec::new();
        for i in 0..a.len() {
            for j in 0..b.len() {
                if d.get(i, j) <= cutoff as f64 + 1e-12 {
                    expected.push((i as u32, j as u32));
                }
            }
        }
        assert_eq!(edges_within_cutoff(&a, &b, cutoff, false), expected);
    }

    #[test]
    #[should_panic]
    fn cdist_into_shape_mismatch_panics() {
        let a = pts(&[(0.0, 0.0, 0.0)]);
        let mut out = DistanceMatrix::zeros(2, 2);
        cdist_into(&a, &a, &mut out);
    }
}
