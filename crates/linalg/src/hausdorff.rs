//! Hausdorff distance between two trajectories (Algorithm 1 of the paper).
//!
//! The directed Hausdorff distance from trajectory `A` to trajectory `B`
//! under a frame metric `d` is `max_{a∈A} min_{b∈B} d(a, b)`; the symmetric
//! Hausdorff distance is the max of the two directed distances. The paper
//! uses the naive O(|A|·|B|) algorithm and cites Taha & Hanbury's
//! early-break algorithm \[34\] as an (unparallelized) speedup — we
//! implement both and property-test their equivalence (an ablation bench
//! compares them).

use crate::kernels::{frame_rmsd, frame_rmsd_flavored, KernelFlavor};
use crate::Frame;

/// A metric between two frames. The PSA pipeline uses RMSD-without-
/// superposition ([`frame_rmsd`]), exactly the `dRMS` of Algorithm 1.
pub type FrameMetric = fn(&Frame, &Frame) -> f64;

/// Naive symmetric Hausdorff distance (Algorithm 1, verbatim): computes all
/// |A|·|B| frame distances in both directions.
pub fn hausdorff_naive(a: &[Frame], b: &[Frame], metric: FrameMetric) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "hausdorff: empty trajectory"
    );
    let d_ab = directed_naive(a, b, metric);
    let d_ba = directed_naive(b, a, metric);
    d_ab.max(d_ba)
}

fn directed_naive(a: &[Frame], b: &[Frame], metric: FrameMetric) -> f64 {
    let mut worst = 0.0f64;
    for fa in a {
        let mut best = f64::INFINITY;
        for fb in b {
            let d = metric(fa, fb);
            if d < best {
                best = d;
            }
        }
        if best > worst {
            worst = best;
        }
    }
    worst
}

/// Early-break Hausdorff distance (Taha & Hanbury 2015): while scanning the
/// inner minimum, abandon a row as soon as some `d(a, b) <= cmax` proves the
/// row cannot raise the running maximum. Identical value to
/// [`hausdorff_naive`], usually far fewer metric evaluations.
pub fn hausdorff_early_break(a: &[Frame], b: &[Frame], metric: FrameMetric) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "hausdorff: empty trajectory"
    );
    let d_ab = directed_early_break(a, b, metric);
    let d_ba = directed_early_break(b, a, metric);
    d_ab.max(d_ba)
}

fn directed_early_break(a: &[Frame], b: &[Frame], metric: FrameMetric) -> f64 {
    let mut cmax = 0.0f64;
    for fa in a {
        let mut cmin = f64::INFINITY;
        let mut broke = false;
        for fb in b {
            let d = metric(fa, fb);
            if d <= cmax {
                // This row's minimum is <= cmax; it cannot change the max.
                broke = true;
                break;
            }
            if d < cmin {
                cmin = d;
            }
        }
        if !broke && cmin > cmax {
            cmax = cmin;
        }
    }
    cmax
}

/// Convenience: Hausdorff with the standard PSA metric (plain RMSD).
pub fn hausdorff_rmsd(a: &[Frame], b: &[Frame]) -> f64 {
    hausdorff_naive(a, b, frame_rmsd)
}

/// Margin protecting the centroid lower bound against floating-point
/// rounding: a candidate frame is skipped only when its bound beats the
/// running minimum by more than `MARGIN · (1 + lb)`. The bound itself is
/// exact in real arithmetic (Jensen: mean ‖pᵢ−qᵢ‖² ≥ ‖mean (pᵢ−qᵢ)‖²);
/// the margin absorbs the ~1e-13 relative error of the f64 evaluation, so
/// the pruned scan can never discard the true minimizer.
const PRUNE_MARGIN: f64 = 1e-9;

/// Spatially-pruned Hausdorff distance under [`frame_rmsd`]: Taha &
/// Hanbury's early break plus a centroid-distance lower bound
/// (`frame_rmsd(a, b) ≥ ‖centroid(a) − centroid(b)‖`) that skips whole
/// frame pairs without touching their coordinates.
///
/// Returns **bitwise** the same value as
/// `hausdorff_naive(a, b, frame_rmsd)`: every value that survives into the
/// min/max reduction is an actually-evaluated `frame_rmsd`, skipped
/// candidates are provably not row minimizers (see [`PRUNE_MARGIN`]), and
/// `f64::max`/`min` over the identical evaluation set reproduce the
/// identical bits. A proptest in this module asserts exact equality.
pub fn hausdorff_rmsd_pruned(a: &[Frame], b: &[Frame]) -> f64 {
    hausdorff_rmsd_pruned_evals(a, b).0
}

/// [`hausdorff_rmsd_pruned`] plus the number of `frame_rmsd` evaluations
/// actually performed — the quantity the kernel bench reports against the
/// naive `2·|A|·|B|`.
pub fn hausdorff_rmsd_pruned_evals(a: &[Frame], b: &[Frame]) -> (f64, u64) {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "hausdorff: empty trajectory"
    );
    let ca = centroids(a);
    let cb = centroids(b);
    let mut evals = 0u64;
    let d_ab = directed_pruned(a, b, &ca, &cb, &mut evals);
    let d_ba = directed_pruned(b, a, &cb, &ca, &mut evals);
    (d_ab.max(d_ba), evals)
}

/// Per-frame centroids accumulated in f64 so the lower bound's own
/// rounding error stays far below [`PRUNE_MARGIN`].
fn centroids(frames: &[Frame]) -> Vec<[f64; 3]> {
    frames
        .iter()
        .map(|f| {
            let mut s = [0.0f64; 3];
            for p in f.positions() {
                s[0] += p.x as f64;
                s[1] += p.y as f64;
                s[2] += p.z as f64;
            }
            let n = f.n_atoms().max(1) as f64;
            [s[0] / n, s[1] / n, s[2] / n]
        })
        .collect()
}

fn directed_pruned(
    a: &[Frame],
    b: &[Frame],
    ca: &[[f64; 3]],
    cb: &[[f64; 3]],
    evals: &mut u64,
) -> f64 {
    let mut cmax = 0.0f64;
    for (fa, pa) in a.iter().zip(ca) {
        let mut cmin = f64::INFINITY;
        let mut broke = false;
        for (fb, pb) in b.iter().zip(cb) {
            let dx = pa[0] - pb[0];
            let dy = pa[1] - pb[1];
            let dz = pa[2] - pb[2];
            let lb = (dx * dx + dy * dy + dz * dz).sqrt();
            // The bound also floors the row minimum: a frame whose centroid
            // is already further than the running minimum cannot improve it.
            if lb - PRUNE_MARGIN * (1.0 + lb) > cmin {
                continue;
            }
            let d = frame_rmsd(fa, fb);
            *evals += 1;
            if d <= cmax {
                // This row's minimum is <= cmax; it cannot change the max.
                broke = true;
                break;
            }
            if d < cmin {
                cmin = d;
            }
        }
        if !broke && cmin > cmax {
            cmax = cmin;
        }
    }
    cmax
}

/// Hausdorff with a flavoured RMSD kernel — used by the CPPTraj-style
/// pipeline where the kernel build (GNU vs Intel-O3) is the variable.
pub fn hausdorff_rmsd_flavored(a: &[Frame], b: &[Frame], flavor: KernelFlavor) -> f64 {
    match flavor {
        KernelFlavor::Gnu => hausdorff_naive(a, b, frame_rmsd),
        KernelFlavor::IntelO3 => hausdorff_naive(a, b, |x, y| {
            frame_rmsd_flavored(x, y, KernelFlavor::IntelO3)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;
    use proptest::prelude::*;

    /// Single-atom frames at scalar positions — lets us compute expected
    /// Hausdorff values by hand.
    fn traj(xs: &[f32]) -> Vec<Frame> {
        xs.iter()
            .map(|&x| Frame::new(vec![Vec3::new(x, 0.0, 0.0)]))
            .collect()
    }

    #[test]
    fn identical_trajectories_have_zero_distance() {
        let t = traj(&[0.0, 1.0, 2.0]);
        assert_eq!(hausdorff_rmsd(&t, &t), 0.0);
        assert_eq!(hausdorff_early_break(&t, &t, frame_rmsd), 0.0);
    }

    #[test]
    fn hand_computed_example() {
        // A = {0, 1}, B = {0, 3}. d(A->B): a=0 -> 0; a=1 -> min(1,2)=1 => 1.
        // d(B->A): b=0 -> 0; b=3 -> min(3,2)=2 => 2. H = 2.
        let a = traj(&[0.0, 1.0]);
        let b = traj(&[0.0, 3.0]);
        assert!((hausdorff_rmsd(&a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = traj(&[0.0, 0.5, 2.5]);
        let b = traj(&[1.0, 4.0]);
        assert_eq!(hausdorff_rmsd(&a, &b), hausdorff_rmsd(&b, &a));
    }

    #[test]
    fn subset_direction_is_bounded() {
        // If A ⊆ B then directed d(A->B) = 0, so H(A,B) = d(B->A).
        let a = traj(&[0.0, 1.0]);
        let b = traj(&[0.0, 1.0, 5.0]);
        assert!((hausdorff_rmsd(&a, &b) - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_trajectory_panics() {
        hausdorff_rmsd(&[], &traj(&[0.0]));
    }

    proptest! {
        /// The pruned kernel must be *bitwise* equal to the naive double
        /// loop — the generic PSA driver relies on exact equality.
        #[test]
        fn pruned_equals_naive_bitwise(
            xs in prop::collection::vec(-50.0f32..50.0, 1..20),
            ys in prop::collection::vec(-50.0f32..50.0, 1..20),
        ) {
            let a = traj(&xs);
            let b = traj(&ys);
            let naive = hausdorff_naive(&a, &b, frame_rmsd);
            let (pruned, evals) = hausdorff_rmsd_pruned_evals(&a, &b);
            prop_assert_eq!(naive.to_bits(), pruned.to_bits(),
                "naive={} pruned={}", naive, pruned);
            prop_assert!(evals <= 2 * (xs.len() as u64) * (ys.len() as u64));
        }

        /// Same bitwise oracle over multi-atom 3-D frames, where the
        /// centroid bound is loose and rounding differs from the metric's.
        #[test]
        fn pruned_equals_naive_multiatom(
            coords in prop::collection::vec(
                prop::collection::vec(-20.0f32..20.0, 9..10), 1..12),
            split in 1usize..11,
        ) {
            let frames: Vec<Frame> = coords.iter().map(|c| {
                Frame::new(c.chunks(3).map(|p| Vec3::new(p[0], p[1], p[2])).collect())
            }).collect();
            let (a, b) = if frames.len() < 2 {
                (&frames[..], &frames[..])
            } else {
                frames.split_at(split.clamp(1, frames.len() - 1))
            };
            let naive = hausdorff_naive(a, b, frame_rmsd);
            let pruned = hausdorff_rmsd_pruned(a, b);
            prop_assert_eq!(naive.to_bits(), pruned.to_bits());
        }

        /// Early-break must compute exactly the same value as the naive
        /// double loop, for arbitrary small trajectories.
        #[test]
        fn early_break_equals_naive(
            xs in prop::collection::vec(-50.0f32..50.0, 1..20),
            ys in prop::collection::vec(-50.0f32..50.0, 1..20),
        ) {
            let a = traj(&xs);
            let b = traj(&ys);
            let naive = hausdorff_naive(&a, &b, frame_rmsd);
            let eb = hausdorff_early_break(&a, &b, frame_rmsd);
            prop_assert!((naive - eb).abs() < 1e-12, "naive={naive} eb={eb}");
        }

        /// Metric axioms that Hausdorff inherits: non-negativity, symmetry,
        /// identity on equal sets.
        #[test]
        fn metric_axioms(
            xs in prop::collection::vec(-50.0f32..50.0, 1..15),
            ys in prop::collection::vec(-50.0f32..50.0, 1..15),
        ) {
            let a = traj(&xs);
            let b = traj(&ys);
            let h = hausdorff_rmsd(&a, &b);
            prop_assert!(h >= 0.0);
            prop_assert_eq!(h, hausdorff_rmsd(&b, &a));
            prop_assert_eq!(hausdorff_rmsd(&a, &a), 0.0);
        }

        /// Triangle inequality over single-atom trajectories (Hausdorff on a
        /// metric space is a metric on compact subsets).
        #[test]
        fn triangle_inequality(
            xs in prop::collection::vec(-20.0f32..20.0, 1..8),
            ys in prop::collection::vec(-20.0f32..20.0, 1..8),
            zs in prop::collection::vec(-20.0f32..20.0, 1..8),
        ) {
            let a = traj(&xs);
            let b = traj(&ys);
            let c = traj(&zs);
            let ab = hausdorff_rmsd(&a, &b);
            let bc = hausdorff_rmsd(&b, &c);
            let ac = hausdorff_rmsd(&a, &c);
            // f32 coordinate rounding can perturb each term by ~|x|·ε_f32.
            prop_assert!(ac <= ab + bc + 1e-4, "ac={ac} ab+bc={}", ab + bc);
        }
    }
}
