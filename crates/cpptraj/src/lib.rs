//! A CPPTraj-equivalent baseline: ensemble 2D-RMSD over MPI with two
//! compiler builds (Fig. 6).
//!
//! CPPTraj (§2.2, §4.2) computes the all-pairs 2D-RMSD between ensemble
//! members in parallel over MPI ("at least one MPI process per ensemble
//! member"), gathers the results, and reduces them to Hausdorff distances.
//! The paper compiled it twice — GNU with no optimization, and Intel with
//! `-Wall -O3` — and measured both against core count.
//!
//! We reproduce the *compiler* contrast with two real kernel builds:
//!
//! * [`KernelBuild::GnuNoOpt`] — a scalar loop threaded through
//!   [`std::hint::black_box`], which suppresses vectorization, unrolling
//!   and fusion exactly the way `-O0` codegen does (the slowness is real,
//!   not a charged constant);
//! * [`KernelBuild::IntelO3`] — the blocked/unrolled kernel from
//!   `linalg`, which the optimizer vectorizes.
//!
//! Both produce identical values (property-tested), differing only in
//! speed, and run under `mpilike`'s virtual-time SPMD communicator.

use linalg::rmsd2d::hausdorff_from_rmsd2d;
use linalg::{DistanceMatrix, Frame};
use mdsim::Trajectory;
use netsim::{Cluster, SimReport};
use std::hint::black_box;

/// Which compiler build of the RMSD kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelBuild {
    /// GNU C++ with no optimization: scalar, no SIMD, no unrolling.
    GnuNoOpt,
    /// Intel `-Wall -O3`: blocked, unrolled, vectorizable.
    IntelO3,
}

impl KernelBuild {
    pub fn label(self) -> &'static str {
        match self {
            KernelBuild::GnuNoOpt => "GNU",
            KernelBuild::IntelO3 => "Intel -Wall -O3",
        }
    }
}

/// Frame RMSD compiled "without optimization": every element access and
/// accumulation passes through `black_box`, pinning values to memory the
/// way `-O0` does and defeating auto-vectorization.
pub fn frame_rmsd_noopt(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.n_atoms(), b.n_atoms(), "frame_rmsd: atom count mismatch");
    assert!(a.n_atoms() > 0, "frame_rmsd: empty frames");
    let pa = a.positions();
    let pb = b.positions();
    let mut acc = 0.0f64;
    for i in 0..pa.len() {
        let dx = black_box(black_box(pa[i].x) - black_box(pb[i].x)) as f64;
        let dy = black_box(black_box(pa[i].y) - black_box(pb[i].y)) as f64;
        let dz = black_box(black_box(pa[i].z) - black_box(pb[i].z)) as f64;
        acc = black_box(acc + dx * dx + dy * dy + dz * dz);
    }
    (acc / pa.len() as f64).sqrt()
}

/// 2D-RMSD between two trajectories with the chosen kernel build.
pub fn rmsd2d_build(a: &[Frame], b: &[Frame], build: KernelBuild) -> DistanceMatrix {
    match build {
        KernelBuild::GnuNoOpt => {
            let mut out = DistanceMatrix::zeros(a.len(), b.len());
            for (i, fa) in a.iter().enumerate() {
                for (j, fb) in b.iter().enumerate() {
                    out.set(i, j, frame_rmsd_noopt(fa, fb));
                }
            }
            out
        }
        KernelBuild::IntelO3 => linalg::rmsd2d_with(a, b, linalg::KernelFlavor::IntelO3),
    }
}

/// Result of a CPPTraj-style PSA run.
pub struct CppTrajOutput {
    /// Symmetric Hausdorff distance matrix over the ensemble.
    pub distances: DistanceMatrix,
    pub report: SimReport,
}

/// All-pairs PSA over an ensemble, CPPTraj-style: trajectory pairs are
/// distributed round-robin over `world` MPI ranks, each rank computes its
/// pairs' 2D-RMSD and reduces them to Hausdorff distances locally, and
/// rank 0 gathers the results into the distance matrix.
pub fn ensemble_psa(
    cluster: Cluster,
    world: usize,
    build: KernelBuild,
    ensemble: &[Trajectory],
) -> CppTrajOutput {
    let n = ensemble.len();
    assert!(n >= 1, "ensemble must not be empty");
    // Upper-triangle pairs (i <= j); diagonal is zero by construction but
    // cheap enough to include, matching CPPTraj's all-pairs mode.
    let pairs: Vec<(usize, usize)> = (0..n).flat_map(|i| (i..n).map(move |j| (i, j))).collect();
    let out = mpilike::run(cluster, world, |comm| {
        let mine: Vec<(usize, usize)> = pairs
            .iter()
            .copied()
            .skip(comm.rank())
            .step_by(comm.world())
            .collect();
        let local: Vec<(u32, u32, f64)> = comm.compute(|| {
            mine.iter()
                .map(|&(i, j)| {
                    let d = rmsd2d_build(&ensemble[i].frames, &ensemble[j].frames, build);
                    (i as u32, j as u32, hausdorff_from_rmsd2d(&d))
                })
                .collect()
        });
        comm.gather(0, local)
    });
    let mut distances = DistanceMatrix::zeros(n, n);
    for rank_result in out.results.into_iter().flatten().flatten() {
        for (i, j, h) in rank_result {
            distances.set(i as usize, j as usize, h);
            distances.set(j as usize, i as usize, h);
        }
    }
    CppTrajOutput {
        distances,
        report: out.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Vec3;
    use mdsim::ChainSpec;
    use netsim::comet;
    use proptest::prelude::*;

    fn small_ensemble(count: usize) -> Vec<Trajectory> {
        let spec = ChainSpec {
            n_atoms: 12,
            n_frames: 6,
            stride: 1,
            ..ChainSpec::default()
        };
        mdsim::chain::generate_ensemble(&spec, count, 7)
    }

    fn cluster() -> Cluster {
        Cluster::new(comet(), 1)
    }

    #[test]
    fn noopt_kernel_matches_optimized() {
        let e = small_ensemble(2);
        let a = &e[0].frames;
        let b = &e[1].frames;
        for fa in a {
            for fb in b {
                let slow = frame_rmsd_noopt(fa, fb);
                let fast = linalg::frame_rmsd_blocked(fa, fb);
                // The builds round differently (f32 vs f64 squaring), just
                // like real -O0 and -O3 binaries of the same source.
                let tol = 1e-5 * (1.0 + fast.abs());
                assert!((slow - fast).abs() < tol, "slow={slow} fast={fast}");
            }
        }
    }

    #[test]
    fn builds_agree_on_full_psa() {
        let e = small_ensemble(4);
        let gnu = ensemble_psa(cluster(), 2, KernelBuild::GnuNoOpt, &e);
        let intel = ensemble_psa(cluster(), 2, KernelBuild::IntelO3, &e);
        for i in 0..4 {
            for j in 0..4 {
                let (g, o) = (gnu.distances.get(i, j), intel.distances.get(i, j));
                assert!(
                    (g - o).abs() < 1e-5 * (1.0 + o.abs()),
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let e = small_ensemble(5);
        let out = ensemble_psa(cluster(), 3, KernelBuild::IntelO3, &e);
        for i in 0..5 {
            assert_eq!(out.distances.get(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(out.distances.get(i, j), out.distances.get(j, i));
            }
        }
    }

    #[test]
    fn matches_direct_hausdorff() {
        let e = small_ensemble(3);
        let out = ensemble_psa(cluster(), 2, KernelBuild::IntelO3, &e);
        for i in 0..3 {
            for j in 0..3 {
                let direct =
                    linalg::hausdorff_naive(&e[i].frames, &e[j].frames, linalg::frame_rmsd);
                assert!(
                    (out.distances.get(i, j) - direct).abs() < 1e-9,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn world_size_does_not_change_answers() {
        let e = small_ensemble(4);
        let w1 = ensemble_psa(cluster(), 1, KernelBuild::IntelO3, &e);
        let w6 = ensemble_psa(cluster(), 6, KernelBuild::IntelO3, &e);
        assert_eq!(w1.distances, w6.distances);
    }

    #[test]
    fn more_ranks_reduce_virtual_time() {
        let spec = ChainSpec {
            n_atoms: 60,
            n_frames: 12,
            stride: 1,
            ..ChainSpec::default()
        };
        let e = mdsim::chain::generate_ensemble(&spec, 8, 3);
        // Pin host execution serial: this test compares *measured* closure
        // durations across world sizes, and an oversubscribed host pool
        // (MDTASK_THREADS > host cores) would pollute them with contention.
        let serial = |world| {
            netsim::parallel::with_degree(netsim::parallel::Threads::Serial, || {
                ensemble_psa(cluster(), world, KernelBuild::IntelO3, &e)
            })
        };
        let t1 = serial(1).report.makespan_s;
        let t8 = serial(8).report.makespan_s;
        // Discount the fixed 0.5 s mpirun startup before comparing.
        assert!(
            t8 - 0.5 < (t1 - 0.5) * 0.5,
            "8 ranks should be much faster: t1={t1} t8={t8}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The de-optimized kernel is numerically identical to the
        /// optimized one for arbitrary frames.
        #[test]
        fn kernels_numerically_equal(
            coords in prop::collection::vec(
                (-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0), 1..40),
            shift in (-3.0f32..3.0, -3.0f32..3.0, -3.0f32..3.0),
        ) {
            let a = Frame::new(coords.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect());
            let b = Frame::new(
                coords.iter()
                    .map(|&(x, y, z)| Vec3::new(x + shift.0, y + shift.1, z + shift.2))
                    .collect());
            let slow = frame_rmsd_noopt(&a, &b);
            let fast = linalg::frame_rmsd(&a, &b);
            prop_assert!((slow - fast).abs() <= 1e-5 * (1.0 + fast.abs()));
        }
    }
}
