//! Disjoint-set forest with path halving and union by rank.

/// A classic union–find over dense `u32` node ids `0..n`.
///
/// `find` uses path halving (a single-pass compression that the
/// perf-oriented literature prefers over two-pass full compression);
/// `union` uses rank. Amortized inverse-Ackermann per operation.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Number of disjoint sets currently represented.
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets, node ids `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "UnionFind supports at most u32::MAX nodes"
        );
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set, halving the path on the way up.
    pub fn find(&mut self, mut x: u32) -> u32 {
        debug_assert!((x as usize) < self.parent.len());
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merge the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (rb, ra)
        } else {
            (ra, rb)
        };
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Canonical labelling: for every node, the smallest node id in its set.
    /// Deterministic regardless of union order — used to compare component
    /// outputs across engines and algorithms.
    pub fn canonical_labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut min_of_root = vec![u32::MAX; n];
        for x in 0..n as u32 {
            let r = self.find(x) as usize;
            if x < min_of_root[r] {
                min_of_root[r] = x;
            }
        }
        (0..n as u32)
            .map(|x| min_of_root[self.find(x) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already joined");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn canonical_labels_are_min_ids() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(3, 1);
        uf.union(0, 4);
        let labels = uf.canonical_labels();
        assert_eq!(labels, vec![0, 1, 2, 1, 0, 1]);
    }

    #[test]
    fn empty_is_fine() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.canonical_labels(), Vec::<u32>::new());
    }
}
