//! Graph substrate for the Leaflet Finder: union–find, connected
//! components (BFS and union–find based), and the *partial connected
//! components + merge* operation that powers the paper's Approach 3
//! ("Parallel Connected Components", Table 2).
//!
//! The merge step implements the paper's reduce phase: "joins the
//! calculated components into one, when there is at least one common node"
//! (§4.3, Approach 3).

pub mod components;
pub mod partial;
pub mod sv;
pub mod union_find;

pub use components::{connected_components_bfs, connected_components_uf, Components};
pub use partial::{merge_partials, partial_components, PartialComponents};
pub use sv::{connected_components_sv, sv_rounds};
pub use union_find::UnionFind;
