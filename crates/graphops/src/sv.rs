//! Shiloach–Vishkin-style connected components: the iterative
//! hook-and-shortcut algorithm used by data-parallel CC implementations
//! (label propagation over edge lists, O(log n) rounds). Included as an
//! ablation against the sequential union–find path — it is the algorithm
//! a pure MapReduce CC would run, with one full edge pass per round.

use crate::components::Components;

/// Connected components by iterated hooking + pointer shortcutting.
///
/// Returns canonical (min-id) labels, identical to
/// [`crate::connected_components_uf`] — property-tested.
pub fn connected_components_sv(n: usize, edges: &[(u32, u32)]) -> Components {
    let mut parent: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return Components {
            labels: parent,
            count: 0,
        };
    }
    loop {
        let mut changed = false;
        // Hook: point the larger root at the smaller across each edge.
        for &(a, b) in edges {
            let (ra, rb) = (parent[a as usize], parent[b as usize]);
            if ra == rb {
                continue;
            }
            // Only hook roots (nodes that are their own parent) to keep
            // the forest well-formed, as SV does per round.
            let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
            if parent[hi as usize] == hi {
                parent[hi as usize] = lo;
                changed = true;
            }
        }
        // Shortcut: halve every path.
        for v in 0..n {
            let p = parent[v];
            let gp = parent[p as usize];
            if parent[v] != gp {
                parent[v] = gp;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final full compression to roots.
    for v in 0..n {
        let mut r = parent[v];
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        parent[v] = r;
    }
    // Roots are minimum ids already (hooking always points to the
    // smaller), so labels are canonical.
    let mut roots: Vec<u32> = parent.clone();
    roots.sort_unstable();
    roots.dedup();
    Components {
        count: roots.len(),
        labels: parent,
    }
}

/// Number of hook/shortcut rounds SV needs on this graph (diagnostic for
/// the ablation bench — O(log n) on typical graphs).
pub fn sv_rounds(n: usize, edges: &[(u32, u32)]) -> usize {
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0;
    loop {
        let mut changed = false;
        for &(a, b) in edges {
            let (ra, rb) = (parent[a as usize], parent[b as usize]);
            if ra != rb {
                let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
                if parent[hi as usize] == hi {
                    parent[hi as usize] = lo;
                    changed = true;
                }
            }
        }
        for v in 0..n {
            let gp = parent[parent[v] as usize];
            if parent[v] != gp {
                parent[v] = gp;
                changed = true;
            }
        }
        if !changed {
            return rounds;
        }
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components_uf;
    use proptest::prelude::*;

    #[test]
    fn matches_union_find_on_small_graphs() {
        let cases: Vec<(usize, Vec<(u32, u32)>)> = vec![
            (0, vec![]),
            (3, vec![]),
            (4, vec![(0, 1), (2, 3)]),
            (6, vec![(0, 1), (1, 2), (3, 4), (4, 5), (2, 3)]),
            (5, vec![(4, 0), (3, 0), (2, 0)]),
        ];
        for (n, edges) in cases {
            assert_eq!(
                connected_components_sv(n, &edges),
                connected_components_uf(n, &edges),
                "n={n} edges={edges:?}"
            );
        }
    }

    #[test]
    fn chain_takes_logarithmic_rounds() {
        // A path graph is SV's classic stress case.
        let n = 1024;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let rounds = sv_rounds(n, &edges);
        assert!(
            rounds <= 2 * (n as f64).log2().ceil() as usize + 2,
            "rounds={rounds}"
        );
        assert_eq!(connected_components_sv(n, &edges).count, 1);
    }

    proptest! {
        #[test]
        fn sv_equals_union_find(
            n in 1usize..80,
            raw in prop::collection::vec((0u32..80, 0u32..80), 0..160),
        ) {
            let edges: Vec<(u32, u32)> = raw.into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            prop_assert_eq!(
                connected_components_sv(n, &edges),
                connected_components_uf(n, &edges)
            );
        }
    }
}
