//! Connected components over an edge list — the second stage of the Leaflet
//! Finder (Algorithm 3, line 7).
//!
//! Two independent implementations (BFS over an adjacency list, and
//! union–find) exist so each can validate the other; the union–find one is
//! what the parallel pipeline uses.

use crate::UnionFind;

/// A components labelling of `n` nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `labels[v]` = smallest node id in v's component (canonical form).
    pub labels: Vec<u32>,
    /// Number of distinct components.
    pub count: usize,
}

impl Components {
    /// Group node ids by component, components ordered by their canonical
    /// (minimum) member, members ascending.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut by_label: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut index_of: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (v, &l) in self.labels.iter().enumerate() {
            let idx = *index_of.entry(l).or_insert_with(|| {
                by_label.push((l, Vec::new()));
                by_label.len() - 1
            });
            by_label[idx].1.push(v as u32);
        }
        by_label.sort_by_key(|(l, _)| *l);
        by_label.into_iter().map(|(_, g)| g).collect()
    }

    /// Sizes of components, descending. For a lipid bilayer the first two
    /// entries are the outer and inner leaflets.
    pub fn sizes_desc(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.groups().iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

/// Connected components via union–find. Edges may repeat or contain
/// self-loops; both are harmless.
pub fn connected_components_uf(n: usize, edges: &[(u32, u32)]) -> Components {
    let mut uf = UnionFind::new(n);
    for &(a, b) in edges {
        uf.union(a, b);
    }
    let labels = uf.canonical_labels();
    Components {
        count: uf.set_count(),
        labels,
    }
}

/// Connected components via BFS over an adjacency list. Reference
/// implementation used to cross-validate the union–find path.
pub fn connected_components_bfs(n: usize, edges: &[(u32, u32)]) -> Components {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        if a != b {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
    }
    let mut labels = vec![u32::MAX; n];
    let mut count = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        count += 1;
        labels[start as usize] = start;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v as usize] {
                if labels[w as usize] == u32::MAX {
                    labels[w as usize] = start;
                    queue.push_back(w);
                }
            }
        }
    }
    Components { labels, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_triangles() {
        let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)];
        let c = connected_components_uf(6, &edges);
        assert_eq!(c.count, 2);
        assert_eq!(c.groups(), vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(c.sizes_desc(), vec![3, 3]);
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let c = connected_components_uf(4, &[(1, 2)]);
        assert_eq!(c.count, 3);
        assert_eq!(c.labels, vec![0, 1, 1, 3]);
    }

    #[test]
    fn self_loops_and_duplicates_ignored() {
        let c = connected_components_uf(3, &[(0, 0), (0, 1), (0, 1), (1, 0)]);
        assert_eq!(c.count, 2);
        assert_eq!(c.labels, vec![0, 0, 2]);
    }

    #[test]
    fn bfs_matches_uf_small() {
        let edges = [(0, 3), (3, 7), (1, 2), (5, 6)];
        assert_eq!(
            connected_components_bfs(8, &edges),
            connected_components_uf(8, &edges)
        );
    }

    #[test]
    fn empty_graph() {
        let c = connected_components_uf(0, &[]);
        assert_eq!(c.count, 0);
        assert!(c.groups().is_empty());
    }

    proptest! {
        /// BFS and union–find must always agree: same canonical labels,
        /// same count.
        #[test]
        fn bfs_equals_union_find(
            n in 1usize..60,
            raw_edges in prop::collection::vec((0u32..60, 0u32..60), 0..120),
        ) {
            let edges: Vec<(u32, u32)> = raw_edges.into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let bfs = connected_components_bfs(n, &edges);
            let uf = connected_components_uf(n, &edges);
            prop_assert_eq!(bfs, uf);
        }

        /// Component count decreases by at most one per edge added.
        #[test]
        fn count_monotone_in_edges(
            n in 1usize..40,
            raw_edges in prop::collection::vec((0u32..40, 0u32..40), 1..60),
        ) {
            let edges: Vec<(u32, u32)> = raw_edges.into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let mut prev = n;
            for k in 0..=edges.len() {
                let c = connected_components_uf(n, &edges[..k]).count;
                prop_assert!(c <= prev && prev - c <= 1);
                prev = c;
            }
        }
    }
}
