//! Partial connected components and their merge — the paper's Approach 3.
//!
//! Each map task sees only the edges of its 2-D block and reduces them to
//! *partial components*: sets of globally-numbered nodes known to be
//! connected using only local evidence. Shuffling these is O(n) instead of
//! the O(E) edge list (Table 2), which is why the paper measured a >50%
//! shuffle-volume reduction. The reduce phase merges partials that share at
//! least one node.

/// Components discovered from a subset of the graph's edges.
///
/// Each inner vec is a sorted, deduplicated list of global node ids. Nodes
/// that appear in no edge of the subset are absent (the driver accounts for
/// isolated nodes at the end).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartialComponents {
    pub components: Vec<Vec<u32>>,
}

impl PartialComponents {
    /// Total node entries (the shuffle payload size is proportional to
    /// this).
    pub fn node_count(&self) -> usize {
        self.components.iter().map(Vec::len).sum()
    }

    /// Serialized payload size in bytes when shipped over the wire as
    /// length-prefixed `u32` lists.
    pub fn wire_bytes(&self) -> u64 {
        // 4 bytes per node id + 4 per component length + 4 for the count.
        (4 * self.node_count() + 4 * self.components.len() + 4) as u64
    }
}

/// Compute partial components from a local edge list. Node ids are global;
/// only nodes incident to a local edge appear in the result.
pub fn partial_components(edges: &[(u32, u32)]) -> PartialComponents {
    // Compress the sparse global ids into a dense local space, run
    // union–find there, then expand back.
    let mut local_of: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut global_of: Vec<u32> = Vec::new();
    let mut dense = Vec::with_capacity(edges.len());
    for &(a, b) in edges {
        let la = *local_of.entry(a).or_insert_with(|| {
            global_of.push(a);
            (global_of.len() - 1) as u32
        });
        let lb = *local_of.entry(b).or_insert_with(|| {
            global_of.push(b);
            (global_of.len() - 1) as u32
        });
        dense.push((la, lb));
    }
    let mut uf = crate::UnionFind::new(global_of.len());
    for (a, b) in dense {
        uf.union(a, b);
    }
    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for l in 0..global_of.len() as u32 {
        groups
            .entry(uf.find(l))
            .or_default()
            .push(global_of[l as usize]);
    }
    let mut components: Vec<Vec<u32>> = groups
        .into_values()
        .map(|mut g| {
            g.sort_unstable();
            g
        })
        .collect();
    components.sort_by_key(|g| g[0]);
    PartialComponents { components }
}

/// Merge partial components: any two partials sharing a node are joined.
/// This is the reduce of Approach 3 and must be associative and commutative
/// (property-tested) because engines merge in arbitrary shuffle order.
pub fn merge_partials(parts: &[PartialComponents]) -> PartialComponents {
    // Union-find over component indices, keyed by first-seen node.
    let total: usize = parts.iter().map(|p| p.components.len()).sum();
    let mut uf = crate::UnionFind::new(total);
    let mut owner_of_node: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut flat: Vec<&Vec<u32>> = Vec::with_capacity(total);
    for p in parts {
        for comp in &p.components {
            let idx = flat.len() as u32;
            flat.push(comp);
            for &node in comp {
                match owner_of_node.entry(node) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        uf.union(*e.get(), idx);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(idx);
                    }
                }
            }
        }
    }
    let mut merged: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for (idx, comp) in flat.iter().enumerate() {
        merged
            .entry(uf.find(idx as u32))
            .or_default()
            .extend_from_slice(comp);
    }
    let mut components: Vec<Vec<u32>> = merged
        .into_values()
        .map(|mut g| {
            g.sort_unstable();
            g.dedup();
            g
        })
        .collect();
    components.sort_by_key(|g| g[0]);
    PartialComponents { components }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components_uf;
    use proptest::prelude::*;

    #[test]
    fn partial_of_disjoint_edges() {
        let p = partial_components(&[(10, 20), (30, 40)]);
        assert_eq!(p.components, vec![vec![10, 20], vec![30, 40]]);
        assert_eq!(p.node_count(), 4);
    }

    #[test]
    fn partial_chains_connect() {
        let p = partial_components(&[(1, 2), (2, 3), (7, 8)]);
        assert_eq!(p.components, vec![vec![1, 2, 3], vec![7, 8]]);
    }

    #[test]
    fn merge_joins_on_shared_node() {
        let a = PartialComponents {
            components: vec![vec![1, 2], vec![5, 6]],
        };
        let b = PartialComponents {
            components: vec![vec![2, 3]],
        };
        let m = merge_partials(&[a, b]);
        assert_eq!(m.components, vec![vec![1, 2, 3], vec![5, 6]]);
    }

    #[test]
    fn merge_of_empty_is_empty() {
        assert_eq!(merge_partials(&[]).components, Vec::<Vec<u32>>::new());
    }

    #[test]
    fn wire_bytes_formula() {
        let p = PartialComponents {
            components: vec![vec![1, 2, 3], vec![4]],
        };
        assert_eq!(p.wire_bytes(), (4 * 4 + 4 * 2 + 4) as u64);
    }

    /// Split an edge list into `k` chunks, compute partials per chunk,
    /// merge, and compare against the global components restricted to
    /// non-isolated nodes.
    fn partition_roundtrip(n: usize, edges: &[(u32, u32)], k: usize) -> bool {
        let chunks: Vec<PartialComponents> = edges
            .chunks(edges.len().div_ceil(k).max(1))
            .map(partial_components)
            .collect();
        let merged = merge_partials(&chunks);
        let global = connected_components_uf(n, edges);
        // Expected: global groups filtered to nodes with at least one edge.
        let mut has_edge = vec![false; n];
        for &(a, b) in edges {
            has_edge[a as usize] = true;
            has_edge[b as usize] = true;
        }
        let expected: Vec<Vec<u32>> = global
            .groups()
            .into_iter()
            .map(|g| {
                g.into_iter()
                    .filter(|&v| has_edge[v as usize])
                    .collect::<Vec<_>>()
            })
            .filter(|g: &Vec<u32>| !g.is_empty())
            .collect();
        merged.components == expected
    }

    #[test]
    fn merge_equals_global_cc_small() {
        let edges = [(0, 1), (1, 2), (4, 5), (2, 4), (8, 9)];
        assert!(partition_roundtrip(10, &edges, 3));
    }

    proptest! {
        /// Partial-CC + merge over any partitioning equals the global CC
        /// (restricted to non-isolated nodes) — the core correctness claim
        /// behind Approach 3.
        #[test]
        fn merge_equals_global_cc(
            n in 2usize..50,
            raw in prop::collection::vec((0u32..50, 0u32..50), 1..100),
            k in 1usize..8,
        ) {
            let edges: Vec<(u32, u32)> = raw.into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .filter(|(a, b)| a != b)
                .collect();
            prop_assume!(!edges.is_empty());
            prop_assert!(partition_roundtrip(n, &edges, k));
        }

        /// Merging is order-insensitive: shuffling the partials yields the
        /// same canonical result.
        #[test]
        fn merge_is_order_insensitive(
            n in 2usize..30,
            raw in prop::collection::vec((0u32..30, 0u32..30), 1..60),
        ) {
            let edges: Vec<(u32, u32)> = raw.into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .filter(|(a, b)| a != b)
                .collect();
            prop_assume!(edges.len() >= 2);
            let mid = edges.len() / 2;
            let p1 = partial_components(&edges[..mid]);
            let p2 = partial_components(&edges[mid..]);
            let ab = merge_partials(&[p1.clone(), p2.clone()]);
            let ba = merge_partials(&[p2, p1]);
            prop_assert_eq!(ab, ba);
        }
    }
}
