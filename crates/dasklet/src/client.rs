//! The distributed client, delayed tasks and the dynamic scheduler.

use netsim::{broadcast_time, Cluster, RetryPolicy, SimExecutor, SimReport};
use parking_lot::Mutex;
use std::sync::Arc;
use taskframe::{dask_profile, EngineError, FrameworkProfile, Payload, TaskCtx};

/// Dask's worker memory-manager thresholds (fractions of the node budget,
/// mirroring `distributed.worker.memory.{target,spill,pause,terminate}`).
/// Crossing `spill` writes managed keys to disk down to `target`; a worker
/// above `pause` stalls new tasks behind that write; a working set no
/// spill can make room for terminates the task with a typed error.
const MEM_TARGET_FRAC: f64 = 0.6;
const MEM_SPILL_FRAC: f64 = 0.7;
const MEM_PAUSE_FRAC: f64 = 0.8;
const MEM_TERMINATE_FRAC: f64 = 0.95;

struct DaskState {
    exec: SimExecutor,
    /// The central scheduler's serial timeline: each task submission passes
    /// through it once.
    sched_free: f64,
    next_task: usize,
    /// Recovery policy the scheduler applies when a worker's heartbeat
    /// stops: bounded reschedules with detection delay and backoff.
    policy: RetryPolicy,
}

/// Spill the node's managed memory down to the `target` fraction if it
/// sits above the `spill` threshold. Returns the disk time the write
/// took (0.0 when no spill was needed).
fn spill_down(st: &mut DaskState, cluster: &Cluster, node: usize, at_s: f64) -> f64 {
    let budget = st.exec.mem_budget(node, at_s);
    let threshold = (budget as f64 * MEM_SPILL_FRAC) as u64;
    let resident = st.exec.mem_resident(node);
    if resident <= threshold {
        return 0.0;
    }
    let target = (budget as f64 * MEM_TARGET_FRAC) as u64;
    let spill = resident - target.min(resident);
    let dt = cluster.profile.disk_time(spill);
    st.exec.record_spill(node, spill, at_s, at_s + dt);
    st.exec.release_memory(node, spill);
    dt
}

struct Inner {
    cluster: Cluster,
    profile: FrameworkProfile,
    state: Mutex<DaskState>,
}

/// Client connected to a Dask-Distributed-style cluster.
#[derive(Clone)]
pub struct DaskClient {
    inner: Arc<Inner>,
}

/// A computed task result carrying its virtual completion time.
///
/// Because the scheduler is purely dependency-driven (no barriers),
/// executing tasks eagerly while tracking `ready_at` is timing-equivalent
/// to building the graph first and calling `compute()`.
pub struct Delayed<T> {
    value: T,
    ready: f64,
    /// Node holding this future's key in worker memory (its bytes stay
    /// resident there until gathered); `None` for futures that never
    /// landed on a worker (errors, broadcast replicas).
    node: Option<usize>,
    /// Poisoned futures: the simulated task (or one of its dependencies)
    /// failed for good — the error propagates through dependents and
    /// surfaces at [`DaskClient::try_gather`], mirroring how a dask future
    /// holds an exception.
    error: Option<EngineError>,
}

impl<T> Delayed<T> {
    /// The task's (real) result.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Consume into the result.
    pub fn into_value(self) -> T {
        self.value
    }

    /// Virtual time at which this result became available.
    pub fn ready_at(&self) -> f64 {
        self.ready
    }

    /// The simulated failure this future carries, if any.
    pub fn error(&self) -> Option<&EngineError> {
        self.error.as_ref()
    }
}

impl DaskClient {
    /// Connect to a cluster (charges dask-ssh/scheduler startup).
    pub fn new(cluster: Cluster) -> Self {
        Self::with_profile(cluster, dask_profile())
    }

    pub fn with_profile(cluster: Cluster, profile: FrameworkProfile) -> Self {
        let mut exec = SimExecutor::new(cluster.clone());
        exec.report_mut().overhead_s += profile.startup_s;
        exec.advance_makespan(profile.startup_s);
        let startup = profile.startup_s;
        let policy = profile.retry_policy();
        DaskClient {
            inner: Arc::new(Inner {
                cluster,
                profile,
                state: Mutex::new(DaskState {
                    exec,
                    sched_free: startup,
                    next_task: 0,
                    policy,
                }),
            }),
        }
    }

    /// Override the recovery policy (defaults to
    /// [`FrameworkProfile::retry_policy`]).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.inner.state.lock().policy = policy;
    }

    /// The recovery policy currently in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.state.lock().policy
    }

    pub fn cluster(&self) -> &Cluster {
        &self.inner.cluster
    }

    /// Run an event-time windowed streaming job over a delivery schedule.
    ///
    /// Dask's posture is per-frame tasks: every accepted frame becomes its
    /// own barrier-free task through the central scheduler (one dispatch
    /// overhead each). Window close, watermarks, late-frame disposition,
    /// backpressure, and per-window lineage replay follow
    /// [`netsim::stream::run_stream`]; the retry policy is the client's
    /// ([`DaskClient::set_retry_policy`]).
    pub fn run_stream(
        &self,
        source: &netsim::stream::SourceLog,
        job: &netsim::stream::StreamJob,
        frame_value: &mut dyn FnMut(usize) -> u64,
    ) -> Result<netsim::stream::StreamRun, EngineError> {
        use netsim::stream::{run_stream, DispatchMode, StreamRun};
        let overhead = self.inner.profile.central_dispatch_s + self.inner.profile.worker_overhead_s;
        let spec = job.spec(DispatchMode::PerFrame, overhead);
        let mut st = self.inner.state.lock();
        let policy = st.policy;
        st.exec.set_phase("stream");
        let output = run_stream(&mut st.exec, source, &spec, &policy, frame_value)
            .map_err(EngineError::from)?;
        st.sched_free = st.sched_free.max(st.exec.all_idle_at());
        let report = st.exec.report().clone();
        Ok(StreamRun { output, report })
    }

    /// Core scheduling path: run `f` as a task whose dependencies complete
    /// at `deps_ready` and whose inputs need `dep_transfer_bytes` moved to
    /// the worker.
    fn submit_inner<T: Payload>(
        &self,
        deps_ready: f64,
        dep_transfer_bytes: u64,
        n_deps: usize,
        dep_error: Option<EngineError>,
        f: impl FnOnce(&TaskCtx) -> T,
    ) -> Delayed<T> {
        let mut st = self.inner.state.lock();
        let tctx = TaskCtx::new(st.next_task, st.next_task);
        st.next_task += 1;
        let (out, host_s) = netsim::measure(|| f(&tctx));
        let charged = tctx.charged();
        self.schedule_measured(
            &mut st,
            deps_ready,
            dep_transfer_bytes,
            n_deps,
            dep_error,
            out,
            host_s,
            charged,
        )
    }

    /// The scheduling half of [`Self::submit_inner`]: consumes a task whose
    /// real closure already executed (result `out`, measured `host_s`,
    /// virtual-time charges `charged`) and walks it through the serial
    /// scheduler timeline, placement, retries and the worker memory
    /// manager. Splitting execution from scheduling lets
    /// [`Self::delayed_many`] run closures across host threads while this
    /// pass — the one that touches every piece of shared virtual-time
    /// state — stays serial, in submission order.
    #[allow(clippy::too_many_arguments)]
    fn schedule_measured<T: Payload>(
        &self,
        st: &mut DaskState,
        deps_ready: f64,
        dep_transfer_bytes: u64,
        n_deps: usize,
        dep_error: Option<EngineError>,
        out: T,
        host_s: f64,
        charged: f64,
    ) -> Delayed<T> {
        let profile = &self.inner.profile;
        let policy = st.policy;
        let net = self.inner.cluster.profile.network;
        // Scheduler handles this task once its deps are done.
        let dispatch = st.sched_free.max(deps_ready) + profile.central_dispatch_s;
        st.sched_free = dispatch;
        // Worker fetches remote inputs (single-node clusters fetch locally).
        let same_node = self.inner.cluster.nodes == 1;
        let fetch = if n_deps > 0 {
            // Dependency transfers ride the scheduler-to-worker link;
            // scripted degradation of that link inflates them. (Identity
            // multiply when the plan degrades nothing.)
            net.transfer_time(dep_transfer_bytes, same_node)
                * self
                    .inner
                    .cluster
                    .faults()
                    .link_latency_factor(0, 1, dispatch)
                + profile.per_transfer_overhead_s * n_deps as f64
        } else {
            0.0
        };
        // Worker overhead runs on the executing core: scale it too.
        let dur = self
            .inner
            .cluster
            .scale_compute(host_s + profile.worker_overhead_s)
            + charged
            + profile.ser_time(out.wire_bytes());
        // A poisoned dependency fails this task without scheduling it —
        // the scheduler cancels dependents of a failed key.
        if let Some(e) = dep_error {
            return Delayed {
                value: out,
                ready: deps_ready,
                node: None,
                error: Some(e),
            };
        }
        // The dynamic scheduler reschedules a dead worker's tasks on the
        // survivors once the heartbeat loss is noticed, backing off between
        // reschedules and blacklisting the dead core, up to the policy's
        // attempt budget.
        let mut release = dispatch + fetch;
        let mut attempts: u32 = 1;
        let mut first_died: Option<f64> = None;
        let mut avoid = None;
        let mut error = None;
        let placement = loop {
            let opts = netsim::TaskOpts {
                avoid_core: avoid,
                ..Default::default()
            };
            match st
                .exec
                .run_task_attempt_detected(release, dur, opts, &policy)
            {
                Err(e) => {
                    error = Some(EngineError::from(e));
                    break None;
                }
                Ok(netsim::TaskAttempt::Done(p)) => break Some(p),
                // A partitioned worker the scheduler's detector gave up
                // on: the key was rescheduled, but the original worker is
                // alive and completes behind the cut. When it reconnects
                // its result carries a superseded transition epoch and the
                // scheduler ignores it — exactly once, never double-set.
                Ok(netsim::TaskAttempt::Zombie {
                    core,
                    suspected_at,
                    deliver_at,
                    ..
                }) => {
                    if attempts >= policy.max_attempts {
                        error = Some(EngineError::RetriesExhausted {
                            attempts,
                            last_failure_s: suspected_at,
                        });
                        break None;
                    }
                    let redispatch = release.max(
                        suspected_at
                            + policy.backoff_before(attempts + 1)
                            + profile.central_dispatch_s,
                    );
                    if let Err(e) = policy.deadline_gate(suspected_at, redispatch) {
                        error = Some(EngineError::from(e));
                        break None;
                    }
                    attempts += 1;
                    avoid = Some(core);
                    first_died.get_or_insert(suspected_at);
                    st.exec
                        .record_fenced("superseded-key", suspected_at, deliver_at);
                    let rep = st.exec.report_mut();
                    rep.retries += 1;
                    rep.overhead_s += profile.central_dispatch_s;
                    release = redispatch;
                }
                Ok(netsim::TaskAttempt::Killed { died_at, core, .. }) => {
                    if attempts >= policy.max_attempts {
                        error = Some(EngineError::RetriesExhausted {
                            attempts,
                            last_failure_s: died_at + policy.detection_delay_s,
                        });
                        break None;
                    }
                    // Gate the reschedule against the deadline *before*
                    // the backoff sleep: a re-dispatch that would land
                    // past the deadline fails now, typed, instead of
                    // burning virtual time on a doomed attempt.
                    let observed = died_at + policy.detection_delay_s;
                    let redispatch = release.max(
                        observed + policy.backoff_before(attempts + 1) + profile.central_dispatch_s,
                    );
                    if let Err(e) = policy.deadline_gate(observed, redispatch) {
                        error = Some(EngineError::from(e));
                        break None;
                    }
                    attempts += 1;
                    avoid = Some(core);
                    first_died.get_or_insert(died_at);
                    let rep = st.exec.report_mut();
                    rep.retries += 1;
                    rep.overhead_s += profile.central_dispatch_s;
                    release = redispatch;
                }
            }
        };
        let Some(placement) = placement else {
            return Delayed {
                value: out,
                ready: release,
                node: None,
                error,
            };
        };
        if let Some(deadline) = policy.deadline_s {
            if placement.end > deadline {
                return Delayed {
                    value: out,
                    ready: placement.end,
                    node: None,
                    error: Some(EngineError::DeadlineExceeded {
                        deadline_s: deadline,
                        at_s: placement.start,
                    }),
                };
            }
        }
        // --- Worker memory manager (Dask's spill/pause/terminate) ---
        // The task's inputs plus its result form its working set on the
        // node it landed on; the result key stays resident afterwards.
        let node = self.inner.cluster.node_of_core(placement.core);
        let ws = dep_transfer_bytes.saturating_add(out.wire_bytes());
        let budget = st.exec.mem_budget(node, placement.start);
        if ws as f64 > budget as f64 * MEM_TERMINATE_FRAC {
            // Beyond the terminate threshold no spill can make room: the
            // nanny kills the worker and the future holds a typed error.
            st.exec.record_oom_kill(node, placement.end);
            return Delayed {
                value: out,
                ready: placement.end,
                node: None,
                error: Some(EngineError::MemoryExhausted {
                    node,
                    budget,
                    required: ws,
                    at_s: placement.start,
                    what: "task working set".into(),
                }),
            };
        }
        let paused = st.exec.mem_resident(node) as f64 >= budget as f64 * MEM_PAUSE_FRAC;
        st.exec.force_reserve_memory(node, ws);
        let mut ready = placement.end;
        let spill_s = spill_down(st, &self.inner.cluster, node, placement.end);
        if spill_s > 0.0 {
            st.exec.report_mut().overhead_s += spill_s;
            if paused {
                // A paused worker admits the task only once the spill has
                // brought managed memory back under the threshold.
                ready += spill_s;
                st.exec.advance_makespan(ready);
            }
        }
        // Transient input copies drop when the task finishes; only the
        // result key stays resident (released at gather).
        st.exec.release_memory(node, dep_transfer_bytes);
        if let Some(died_at) = first_died {
            st.exec
                .record_recovery("reschedule", died_at, placement.end);
            st.exec
                .report_mut()
                .push_phase("recovery", died_at, placement.end);
        }
        if fetch > 0.0 {
            // Inputs stream from wherever the deps live — approximated as
            // node 0 — to the node the task actually landed on.
            let to_node = self.inner.cluster.node_of_core(placement.core);
            st.exec
                .record_fetch(0, to_node, dep_transfer_bytes, dispatch, dispatch + fetch);
        }
        let rep = st.exec.report_mut();
        rep.overhead_s += profile.worker_overhead_s + profile.central_dispatch_s;
        rep.comm_s += fetch;
        Delayed {
            value: out,
            ready,
            node: Some(node),
            error: None,
        }
    }

    /// Submit a leaf task (no dependencies) — `dask.delayed(f)()`.
    pub fn delayed<T: Payload>(&self, f: impl FnOnce(&TaskCtx) -> T) -> Delayed<T> {
        self.submit_inner(0.0, 0, 0, None, f)
    }

    /// Submit a batch of independent leaf tasks — semantically identical to
    /// calling [`Self::delayed`] in a loop (same task ids, same scheduler
    /// timeline, same memory-manager decisions, all in input order), but
    /// the real closures execute across host threads
    /// ([`SimExecutor::host_threads`] of them) before the serial
    /// scheduling pass consumes the measurements in submission order.
    pub fn delayed_many<T, F>(&self, fs: Vec<F>) -> Vec<Delayed<T>>
    where
        T: Payload + Send,
        F: FnOnce(&TaskCtx) -> T + Send,
    {
        let (base, host_threads) = {
            let mut st = self.inner.state.lock();
            let base = st.next_task;
            st.next_task += fs.len();
            (base, st.exec.host_threads())
        };
        let measured = netsim::parallel::run_owned_with(host_threads, fs, |i, f| {
            let tctx = TaskCtx::new(base + i, base + i);
            let (out, host_s) = netsim::measure(|| f(&tctx));
            let charged = tctx.charged();
            (out, host_s, charged)
        });
        let mut st = self.inner.state.lock();
        measured
            .into_iter()
            .map(|(out, host_s, charged)| {
                self.schedule_measured(&mut st, 0.0, 0, 0, None, out, host_s, charged)
            })
            .collect()
    }

    /// Submit a task depending on several inputs.
    pub fn combine<T: Payload, U: Payload>(
        &self,
        deps: &[&Delayed<T>],
        f: impl FnOnce(&[&T], &TaskCtx) -> U,
    ) -> Delayed<U> {
        let deps_ready = deps.iter().map(|d| d.ready).fold(0.0, f64::max);
        let bytes = deps.iter().map(|d| d.value.wire_bytes()).sum();
        let values: Vec<&T> = deps.iter().map(|d| &d.value).collect();
        let dep_error = deps.iter().find_map(|d| d.error.clone());
        self.submit_inner(deps_ready, bytes, deps.len(), dep_error, move |ctx| {
            f(&values, ctx)
        })
    }

    /// Submit a task that depends on `dep` but needs no data transfer —
    /// the dependency is already resident on every worker (a broadcast
    /// value).
    pub fn delayed_after<T: Payload, U: Payload>(
        &self,
        dep: &Delayed<T>,
        f: impl FnOnce(&T, &TaskCtx) -> U,
    ) -> Delayed<U> {
        self.submit_inner(dep.ready, 0, 0, dep.error.clone(), |ctx| f(&dep.value, ctx))
    }

    /// Batch form of [`Self::delayed_after`]: every task reads the same
    /// broadcast dependency. Task ids, scheduler timeline and
    /// memory-manager decisions match a serial loop of `delayed_after`
    /// calls; only the real closure execution fans out across host
    /// threads.
    pub fn delayed_after_many<T, U, F>(&self, dep: &Delayed<T>, fs: Vec<F>) -> Vec<Delayed<U>>
    where
        T: Payload + Sync,
        U: Payload + Send,
        F: FnOnce(&T, &TaskCtx) -> U + Send,
    {
        let (base, host_threads) = {
            let mut st = self.inner.state.lock();
            let base = st.next_task;
            st.next_task += fs.len();
            (base, st.exec.host_threads())
        };
        let value = &dep.value;
        let measured = netsim::parallel::run_owned_with(host_threads, fs, |i, f| {
            let tctx = TaskCtx::new(base + i, base + i);
            let (out, host_s) = netsim::measure(|| f(value, &tctx));
            let charged = tctx.charged();
            (out, host_s, charged)
        });
        let mut st = self.inner.state.lock();
        measured
            .into_iter()
            .map(|(out, host_s, charged)| {
                self.schedule_measured(
                    &mut st,
                    dep.ready,
                    0,
                    0,
                    dep.error.clone(),
                    out,
                    host_s,
                    charged,
                )
            })
            .collect()
    }

    /// Pull results back to the client, in input order, surfacing the
    /// first poisoned future's error.
    pub fn try_gather<T: Payload + Clone>(
        &self,
        ds: &[Delayed<T>],
    ) -> Result<(Vec<T>, f64), EngineError> {
        if let Some(e) = ds.iter().find_map(|d| d.error.clone()) {
            return Err(e);
        }
        Ok(self.gather_unchecked(ds))
    }

    /// Pull results back to the client, in input order. Returns the values
    /// and the virtual time at which the gather completed.
    ///
    /// Panics if any future is poisoned (use [`Self::try_gather`] under
    /// fault plans that can exhaust the retry policy).
    pub fn gather<T: Payload + Clone>(&self, ds: &[Delayed<T>]) -> (Vec<T>, f64) {
        self.try_gather(ds).expect("dasklet job failed")
    }

    fn gather_unchecked<T: Payload + Clone>(&self, ds: &[Delayed<T>]) -> (Vec<T>, f64) {
        let mut st = self.inner.state.lock();
        let net = self.inner.cluster.profile.network;
        let profile = &self.inner.profile;
        let mut t = ds.iter().map(|d| d.ready).fold(st.sched_free, f64::max);
        for d in ds {
            t += net.transfer_time(d.value.wire_bytes(), self.inner.cluster.nodes == 1)
                + profile.per_transfer_overhead_s;
        }
        let base = ds.iter().map(|d| d.ready).fold(0.0, f64::max);
        st.exec.report_mut().comm_s += t - base.max(st.sched_free.min(t));
        st.exec.advance_makespan(t);
        // The gathered keys move to the client; their worker-side bytes
        // are released.
        for d in ds {
            if let Some(node) = d.node {
                st.exec.release_memory(node, d.value.wire_bytes());
            }
        }
        (ds.iter().map(|d| d.value.clone()).collect(), t)
    }

    /// Distribute per-partition data to workers (`client.scatter(list)`).
    pub fn scatter<T: Payload>(&self, parts: Vec<T>) -> Result<Vec<Delayed<T>>, EngineError> {
        let mut out = Vec::with_capacity(parts.len());
        let mut st = self.inner.state.lock();
        let net = self.inner.cluster.profile.network;
        let profile = &self.inner.profile;
        let mut t = st.sched_free;
        for (i, p) in parts.into_iter().enumerate() {
            let bytes = p.wire_bytes();
            t += net.transfer_time(bytes, self.inner.cluster.nodes == 1)
                + profile.per_transfer_overhead_s;
            // Scattered partitions live round-robin in worker memory until
            // a gather pulls them back.
            let node = i % self.inner.cluster.nodes;
            st.exec.force_reserve_memory(node, bytes);
            out.push(Delayed {
                value: p,
                ready: t,
                node: Some(node),
                error: None,
            });
        }
        let base = st.sched_free;
        let mut spill_t = 0.0f64;
        for node in 0..self.inner.cluster.nodes {
            spill_t = spill_t.max(spill_down(&mut st, &self.inner.cluster, node, t));
        }
        t += spill_t;
        st.sched_free = t;
        st.exec.advance_makespan(t);
        let rep = st.exec.report_mut();
        rep.comm_s += t - base - spill_t;
        rep.overhead_s += spill_t;
        Ok(out)
    }

    /// Replicate one value to every worker — `scatter(..., broadcast=True)`.
    ///
    /// Pays Dask's list-wise handling (per-element time, Fig. 8) and
    /// per-element scheduler state against the *worker* memory budget
    /// (`mem_per_node / cores_per_node`), reproducing the paper's failure
    /// to broadcast the 524k-atom system (§4.3.1).
    pub fn broadcast<T: Payload>(&self, value: T) -> Result<Delayed<T>, EngineError> {
        let bytes = value.wire_bytes();
        let items = value.item_count();
        let worker_mem = self.inner.cluster.profile.mem_per_node
            / self.inner.cluster.profile.cores_per_node as u64;
        let required = bytes + items * crate::LISTWISE_STATE_BYTES_PER_ITEM;
        if required > worker_mem {
            return Err(EngineError::OutOfMemory {
                node_mem: worker_mem,
                required,
                what: format!("list-wise broadcast of {items} elements"),
            });
        }
        let mut st = self.inner.state.lock();
        let dests = self.inner.cluster.nodes.saturating_sub(1);
        let t = broadcast_time(
            &self.inner.cluster.profile.network,
            self.inner.profile.broadcast,
            bytes,
            items,
            dests,
        );
        let start = st.sched_free;
        st.sched_free += t;
        // Every worker node holds a replica; a node pushed over the spill
        // threshold writes managed keys to disk, stretching the broadcast
        // until the slowest node has made room.
        let replicated_at = st.sched_free;
        let mut spill_t = 0.0f64;
        for node in 0..self.inner.cluster.nodes {
            st.exec.force_reserve_memory(node, bytes);
            spill_t = spill_t.max(spill_down(
                &mut st,
                &self.inner.cluster,
                node,
                replicated_at,
            ));
        }
        st.sched_free += spill_t;
        let end = st.sched_free;
        st.exec.advance_makespan(end);
        st.exec.record_broadcast(bytes, dests, start, end);
        let rep = st.exec.report_mut();
        rep.comm_s += t;
        rep.overhead_s += spill_t;
        rep.bytes_broadcast += bytes * dests.max(1) as u64;
        rep.push_phase("broadcast", start, end);
        Ok(Delayed {
            value,
            ready: end,
            node: None,
            error: None,
        })
    }

    /// Charge client-side work (e.g. a final reduction on gathered
    /// results) to the virtual clock, recorded as a named phase.
    pub fn charge_driver(&self, phase: &str, secs: f64) {
        assert!(secs >= 0.0, "cannot charge negative time");
        let mut st = self.inner.state.lock();
        // Client work begins after everything finished so far (gathers
        // advance the makespan but not the scheduler timeline).
        let start = st.sched_free.max(st.exec.report().makespan_s);
        st.sched_free = start + secs;
        let end = st.sched_free;
        st.exec.advance_makespan(end);
        st.exec.report_mut().push_phase(phase, start, end);
    }

    /// Record a named phase without advancing the clock.
    pub fn note_phase(&self, phase: &str, start: f64, end: f64) {
        let mut st = self.inner.state.lock();
        st.exec.report_mut().push_phase(phase, start, end);
    }

    /// Start recording a typed event trace (carried in [`Self::report`]).
    pub fn enable_trace(&self) {
        self.inner.state.lock().exec.enable_trace();
    }

    /// Start recording a *sampled* trace: keep only every `stride`-th task
    /// attempt (network/memory events stay complete). See
    /// [`netsim::SimExecutor::enable_trace_sampled`].
    pub fn enable_trace_sampled(&self, stride: u32) {
        self.inner.state.lock().exec.enable_trace_sampled(stride);
    }

    /// Name the phase (and default task label) stamped onto subsequently
    /// traced events.
    pub fn set_phase(&self, phase: &str) {
        let mut st = self.inner.state.lock();
        st.exec.set_phase(phase);
        st.exec.set_task_label(phase);
    }

    /// Current virtual frontier.
    pub fn now(&self) -> f64 {
        self.inner.state.lock().sched_free
    }

    /// Snapshot the simulated execution report.
    pub fn report(&self) -> SimReport {
        let st = self.inner.state.lock();
        let mut r = st.exec.report().clone();
        r.makespan_s = r.makespan_s.max(st.sched_free);
        r
    }
}

impl<T: Payload> Delayed<T> {
    /// Chain a dependent task — `dask.delayed(f)(self)`.
    pub fn then<U: Payload>(
        &self,
        client: &DaskClient,
        f: impl FnOnce(&T, &TaskCtx) -> U,
    ) -> Delayed<U> {
        client.submit_inner(
            self.ready,
            self.value.wire_bytes(),
            1,
            self.error.clone(),
            |ctx| f(&self.value, ctx),
        )
    }
}
