//! Dask Bags: partitioned collections on top of delayed tasks.
//!
//! "Dask Bags are similar to Spark RDDs and are used to analyze
//! semi-structured data" (§3.2). A `Bag<T>` is a vector of delayed
//! partitions; `map`/`filter` submit one task per partition as soon as that
//! partition is ready (no barrier), and `fold` builds a binary tree of
//! combine tasks.

use crate::client::{DaskClient, Delayed};
use taskframe::Payload;

/// A partitioned collection.
pub struct Bag<T> {
    client: DaskClient,
    partitions: Vec<Delayed<Vec<T>>>,
}

impl<T> Bag<T>
where
    T: Payload + Clone + Send + Sync + 'static,
{
    /// Partition `data` into `n_partitions` and load it as a bag
    /// (`dask.bag.from_sequence`).
    pub fn from_vec(client: &DaskClient, data: Vec<T>, n_partitions: usize) -> Self {
        assert!(n_partitions >= 1, "need at least one partition");
        let len = data.len();
        let base = len / n_partitions;
        let extra = len % n_partitions;
        let mut it = data.into_iter();
        let mut partitions = Vec::with_capacity(n_partitions);
        for i in 0..n_partitions {
            let take = base + usize::from(i < extra);
            let chunk: Vec<T> = it.by_ref().take(take).collect();
            partitions.push(client.delayed(move |_| chunk));
        }
        Bag {
            client: client.clone(),
            partitions,
        }
    }

    /// Build a bag from already-delayed partitions (used by the analysis
    /// pipelines to make one task per pre-partitioned block).
    pub fn from_delayed(client: &DaskClient, partitions: Vec<Delayed<Vec<T>>>) -> Self {
        Bag {
            client: client.clone(),
            partitions,
        }
    }

    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn map<U>(&self, f: impl Fn(&T) -> U + Clone) -> Bag<U>
    where
        U: Payload + Clone + Send + Sync + 'static,
    {
        self.map_partitions(move |part| part.iter().map(&f).collect())
    }

    pub fn filter(&self, f: impl Fn(&T) -> bool + Clone) -> Bag<T> {
        self.map_partitions(move |part| part.iter().filter(|x| f(x)).cloned().collect())
    }

    /// Per-partition transformation: one dependent task per partition,
    /// each starting as soon as *its* input partition is done.
    pub fn map_partitions<U>(&self, f: impl Fn(&Vec<T>) -> Vec<U> + Clone) -> Bag<U>
    where
        U: Payload + Clone + Send + Sync + 'static,
    {
        let partitions = self
            .partitions
            .iter()
            .map(|d| {
                let f = f.clone();
                d.then(&self.client, move |part, _| f(part))
            })
            .collect();
        Bag {
            client: self.client.clone(),
            partitions,
        }
    }

    /// Reduce the bag: `per_part` folds each partition to one value, then a
    /// binary tree of `combine` tasks merges them (Dask's `fold`/
    /// `reduction` shape — log-depth, no barrier). `None` for an empty bag.
    pub fn fold<U>(
        &self,
        per_part: impl Fn(&Vec<T>) -> U + Clone,
        combine: impl Fn(&U, &U) -> U + Clone,
    ) -> Option<Delayed<U>>
    where
        U: Payload + Clone + Send + Sync + 'static,
    {
        let mut level: Vec<Delayed<U>> = self
            .partitions
            .iter()
            .map(|d| {
                let f = per_part.clone();
                d.then(&self.client, move |part, _| f(part))
            })
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let c = combine.clone();
                        next.push(
                            self.client
                                .combine(&[&a, &b], move |vals, _| c(vals[0], vals[1])),
                        );
                    }
                    None => next.push(a),
                }
            }
            level = next;
        }
        level.into_iter().next()
    }

    /// Gather all partitions to the client, flattened in partition order.
    pub fn compute(&self) -> Vec<T> {
        let (parts, _t) = self.client.gather(&self.partitions);
        parts.into_iter().flatten().collect()
    }
}

impl<T> Bag<T>
where
    T: taskframe::Payload + Clone + Send + Sync + 'static,
{
    /// Count occurrences of each distinct element (`dask.bag.frequencies`):
    /// per-partition counting, then a tree merge of count maps.
    pub fn frequencies(&self) -> Vec<(T, u64)>
    where
        T: Eq + std::hash::Hash + Ord,
    {
        let folded = self.fold(
            |part| {
                let mut counts: Vec<(T, u64)> = Vec::new();
                for x in part {
                    match counts.iter_mut().find(|(y, _)| y == x) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((x.clone(), 1)),
                    }
                }
                counts
            },
            |a, b| {
                let mut merged = a.clone();
                for (x, c) in b {
                    match merged.iter_mut().find(|(y, _)| y == x) {
                        Some((_, acc)) => *acc += c,
                        None => merged.push((x.clone(), *c)),
                    }
                }
                merged
            },
        );
        let mut out = folded.map(Delayed::into_value).unwrap_or_default();
        out.sort();
        out
    }

    /// The `k` largest elements by a key function (`dask.bag.topk`):
    /// per-partition top-k, then a tree merge keeping k.
    pub fn topk(&self, k: usize, key: impl Fn(&T) -> i64 + Clone) -> Vec<T> {
        assert!(k >= 1, "k must be at least 1");
        let select = {
            let key = key.clone();
            move |mut items: Vec<T>| -> Vec<T> {
                items.sort_by_key(|x| std::cmp::Reverse(key(x)));
                items.truncate(k);
                items
            }
        };
        let per_part = {
            let select = select.clone();
            move |part: &Vec<T>| select(part.clone())
        };
        let combine = move |a: &Vec<T>, b: &Vec<T>| {
            let mut all = a.clone();
            all.extend(b.iter().cloned());
            select(all)
        };
        self.fold(per_part, combine)
            .map(Delayed::into_value)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod ext_tests {
    use super::*;
    use netsim::{laptop, Cluster};

    fn client() -> DaskClient {
        DaskClient::new(Cluster::new(laptop(), 1))
    }

    #[test]
    fn frequencies_counts_across_partitions() {
        let c = client();
        let bag = Bag::from_vec(&c, vec![1u32, 2, 1, 3, 1, 2], 3);
        assert_eq!(bag.frequencies(), vec![(1, 3), (2, 2), (3, 1)]);
    }

    #[test]
    fn topk_keeps_largest() {
        let c = client();
        let bag = Bag::from_vec(&c, (0..50u32).collect(), 7);
        let top = bag.topk(3, |x| *x as i64);
        assert_eq!(top, vec![49, 48, 47]);
    }

    #[test]
    fn topk_with_fewer_items_than_k() {
        let c = client();
        let bag = Bag::from_vec(&c, vec![5u32, 9], 2);
        assert_eq!(bag.topk(10, |x| *x as i64), vec![9, 5]);
    }
}
