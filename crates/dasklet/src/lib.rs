//! A Dask-equivalent task-parallel engine.
//!
//! `dasklet` reproduces the architecture the paper describes for Dask +
//! Distributed (§3.2, Table 1):
//!
//! * **Low-level `delayed` task graphs** — arbitrary DAGs of tasks; a task
//!   becomes ready the moment its dependencies finish. There is **no stage
//!   barrier**: unlike `sparklet`, downstream work starts per-dependency,
//!   which is why Dask's scheduler "does not rely on synchronization
//!   points that Spark's stage-oriented scheduler introduces" (§3.4).
//! * **A lightweight central scheduler** — per-task dispatch cost an order
//!   of magnitude below Spark's (Fig. 2's throughput gap).
//! * **Bags** — partitioned collections with `map` / `filter` /
//!   `fold`-style reductions built from delayed tasks (tree reduce, no
//!   barrier).
//! * **Weak broadcast** — `scatter(broadcast=true)` handles the payload as
//!   a *list*, paying per-element scheduler state and time; large arrays
//!   exhaust worker memory, which is why the paper could not broadcast the
//!   524k-atom system with Dask (§4.3.1).
//!
//! Execution is real; time is virtual (see `netsim`). Because the task
//! graph is dynamic, `Delayed<T>` carries its value *and* its virtual
//! completion time — building the graph eagerly executes it, which is
//! timing-equivalent for a dependency-driven scheduler.

mod array;
mod bag;
mod client;

pub use array::{Chunk, DaskArray};
pub use bag::Bag;
pub use client::{DaskClient, Delayed};

/// Per-element scheduler/comm state for list-wise broadcast (bytes). The
/// 2017-era `scatter(broadcast=True)` registered every list element as its
/// own key; ~11 KiB of tracking state per element is what reproduces the
/// paper's "could not broadcast 524k atoms" failure against a 128 GB node
/// running 24 workers (524288 × 11 KiB ≈ 5.9 GB > 5.7 GB per worker,
/// while 262144 × 11 KiB ≈ 2.9 GB still fits).
pub const LISTWISE_STATE_BYTES_PER_ITEM: u64 = 11 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{laptop, Cluster};

    fn client() -> DaskClient {
        DaskClient::new(Cluster::new(laptop(), 2))
    }

    #[test]
    fn delayed_and_then() {
        let c = client();
        let a = c.delayed(|_| 21u64);
        let b = a.then(&c, |v, _| v * 2);
        assert_eq!(*b.value(), 42);
        assert!(b.ready_at() > a.ready_at());
    }

    #[test]
    fn combine_waits_for_all_deps() {
        let c = client();
        let xs: Vec<Delayed<u64>> = (0..5).map(|i| c.delayed(move |_| i)).collect();
        let slowest = xs.iter().map(Delayed::ready_at).fold(0.0, f64::max);
        let refs: Vec<&Delayed<u64>> = xs.iter().collect();
        let sum = c.combine(&refs, |vals, _| vals.iter().copied().sum::<u64>());
        assert_eq!(*sum.value(), 10);
        assert!(sum.ready_at() > slowest);
    }

    #[test]
    fn no_stage_barrier_between_generations() {
        // Chain B_i = f(A_i) where A_0 is fast and A_1 takes 10 virtual
        // seconds. A dynamic scheduler runs B_0 as soon as A_0 is done;
        // a stage-oriented one would hold B_0 until A_1 finished.
        let c = client();
        let a: Vec<Delayed<u64>> = (0..2)
            .map(|i| {
                c.delayed(move |ctx: &taskframe::TaskCtx| {
                    ctx.charge(if i == 1 { 10.0 } else { 0.0 });
                    i
                })
            })
            .collect();
        let b: Vec<Delayed<u64>> = a.iter().map(|d| d.then(&c, |v, _| v + 1)).collect();
        let last_a = a.iter().map(Delayed::ready_at).fold(0.0, f64::max);
        assert!(last_a >= 10.0);
        assert!(
            b[0].ready_at() < last_a,
            "B_0 ({}) must not wait for A_1 ({last_a})",
            b[0].ready_at()
        );
    }

    #[test]
    fn gather_returns_values_in_order() {
        let c = client();
        let xs: Vec<Delayed<u32>> = (0..8).map(|i| c.delayed(move |_| i * i)).collect();
        let (vals, _t) = c.gather(&xs);
        assert_eq!(vals, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn bag_map_filter_compute() {
        let c = client();
        let bag = Bag::from_vec(&c, (0..100u32).collect(), 8);
        let out = bag.map(|x| x * 2).filter(|x| x % 10 == 0).compute();
        assert_eq!(out, (0..20).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn bag_fold_tree_reduce() {
        let c = client();
        let bag = Bag::from_vec(&c, (1..=100u64).collect(), 7);
        let total = bag.fold(|part| part.iter().sum::<u64>(), |a, b| a + b);
        assert_eq!(total.map(|d| *d.value()), Some(5050));
    }

    #[test]
    fn bag_map_partitions() {
        let c = client();
        let bag = Bag::from_vec(&c, (0..10u32).collect(), 3);
        let lens = bag.map_partitions(|p| vec![p.len() as u32]).compute();
        assert_eq!(lens.iter().sum::<u32>(), 10);
        assert_eq!(lens.len(), 3);
    }

    #[test]
    fn scatter_spreads_partitions() {
        let c = client();
        let parts = c.scatter(vec![vec![1u32], vec![2, 3], vec![4]]).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(*parts[1].value(), vec![2, 3]);
    }

    #[test]
    fn listwise_broadcast_charges_per_item() {
        let c = client();
        let small = c.broadcast(vec![1u32; 10]).unwrap();
        let t_small = small.ready_at();
        let c2 = client();
        let big = c2.broadcast(vec![1u32; 100_000]).unwrap();
        let t_big = big.ready_at();
        // 100k items at 50 µs each ≈ 5 s of list handling.
        assert!(t_big - t_small > 3.0, "t_small={t_small} t_big={t_big}");
    }

    #[test]
    fn oversized_broadcast_fails_like_524k_atoms() {
        // 600k elements × 10 KiB scheduler state ≈ 6 GB > a 2 GiB-worker
        // budget: the paper's 524k-atom failure mode.
        // 8 workers on a 16 GiB node: worker budget = 2 GiB
        let c = DaskClient::new(
            Cluster::builder()
                .cores_per_node(8)
                .mem_budget(16 * (1 << 30))
                .build(),
        );
        let res = c.broadcast(vec![0u32; 600_000]);
        match res {
            Err(e) => assert!(e.to_string().contains("out of memory")),
            Ok(_) => panic!("broadcast of 600k items should exhaust worker memory"),
        }
    }

    #[test]
    fn memory_pressure_spills_but_results_survive() {
        // 64 KiB node budget, ~8 KiB results that stay resident until the
        // gather: the worker memory manager must spill past the 70%
        // threshold instead of failing, and the gathered values must be
        // exactly what the tasks computed.
        let c = DaskClient::new(Cluster::builder().mem_budget(64 * 1024).build());
        let xs: Vec<Delayed<Vec<u64>>> = (0..10)
            .map(|i| c.delayed(move |_| vec![i as u64; 1024]))
            .collect();
        let (vals, _t) = c.try_gather(&xs).expect("spill, don't fail");
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(v, &vec![i as u64; 1024]);
        }
        let r = c.report();
        assert!(r.bytes_spilled > 0, "spill threshold must have tripped");
        assert_eq!(r.oom_kills, 0);
        assert!(r.mem_high_water.iter().any(|&b| b > 0));
    }

    #[test]
    fn oversized_working_set_fails_typed_not_panicking() {
        // A single result bigger than the terminate threshold of the node
        // budget: nothing can be spilled to make room, so the future holds
        // a typed MemoryExhausted error (never a panic or hang).
        let c = DaskClient::new(Cluster::builder().mem_budget(16 * 1024).build());
        let d = c.delayed(|_| vec![0u64; 64 * 1024]);
        let err = c
            .try_gather(&[d])
            .expect_err("512 KiB cannot fit in 16 KiB");
        assert!(err.to_string().contains("out of memory"), "{err}");
        assert!(matches!(
            err,
            taskframe::EngineError::MemoryExhausted { node: 0, .. }
        ));
        assert!(c.report().oom_kills >= 1);
    }

    #[test]
    fn mem_shrink_fault_pauses_and_spills_mid_run() {
        // A fault plan shrinks node 0's budget to 32 KiB at t=0: resident
        // results cross the shrunken pause threshold and later tasks wait
        // behind the spill, but every value still comes back intact.
        let plan = netsim::FaultPlan::none().shrink_memory(0, 0.0, 32 * 1024);
        let c = DaskClient::new(
            Cluster::builder()
                .mem_budget(1 << 30)
                .fault_plan(plan)
                .build(),
        );
        let xs: Vec<Delayed<Vec<u64>>> = (0..12)
            .map(|i| c.delayed(move |_| vec![i as u64; 1024]))
            .collect();
        let (vals, _t) = c.try_gather(&xs).expect("degrade, don't fail");
        assert_eq!(vals.len(), 12);
        let r = c.report();
        assert!(r.bytes_spilled > 0);
        assert_eq!(r.oom_kills, 0);
    }

    #[test]
    fn report_counts_tasks_and_makespan() {
        let c = client();
        let xs: Vec<Delayed<u32>> = (0..10).map(|i| c.delayed(move |_| i)).collect();
        c.gather(&xs);
        let r = c.report();
        assert_eq!(r.tasks, 10);
        assert!(r.makespan_s >= 0.2, "startup (0.2s) included");
    }

    #[test]
    fn empty_bag_and_empty_gather() {
        let c = client();
        let bag = Bag::from_vec(&c, Vec::<u32>::new(), 3);
        assert_eq!(bag.compute(), Vec::<u32>::new());
        assert!(bag.fold(|p| p.len(), |a, b| a + b).map(|d| *d.value()) == Some(0));
        let (vals, _) = c.gather::<u32>(&[]);
        assert!(vals.is_empty());
    }
}

mod bag_engine {
    //! [`taskframe::BagEngine`] adapter: one delayed function per task
    //! ("tasks were defined as delayed functions executed by the
    //! Distributed scheduler", §4.1).

    use crate::{DaskClient, Delayed};
    use taskframe::{BagEngine, BagTask, EngineError};

    impl BagEngine for DaskClient {
        fn name(&self) -> &'static str {
            "dask"
        }

        fn run_bag(
            &mut self,
            tasks: Vec<BagTask>,
        ) -> Result<(Vec<u64>, netsim::SimReport), EngineError> {
            let ds: Vec<Delayed<u64>> = tasks
                .into_iter()
                .map(|t| self.delayed(move |ctx| t(ctx)))
                .collect();
            let (vals, _t) = self.gather(&ds);
            Ok((vals, self.report()))
        }
    }
}
