//! Dask Arrays: "a collection of NumPy arrays organized as a grid" (§3.2)
//! — a 2-D blocked array of `f64` whose chunks are delayed tasks.
//!
//! Supports the operations the paper's discussion touches: element-wise
//! `map_blocks`, block-wise binary ops, whole-array reductions, and a 2-D
//! block partitioning view. It also carries Dask 0.14's documented
//! limitation (Table 1): **"Dask Array can not deal with dynamic output
//! shapes"** — `map_blocks` closures must preserve the chunk's element
//! count, and this is enforced at runtime, which is precisely why the
//! paper's Leaflet Finder returns adjacency lists through the *task* API
//! instead ("While Dask's array supports 2-D block partitioning, it was
//! not used for this implementation. We return the adjacency list of the
//! graph instead of an array to fully use the capabilities of the
//! abstraction", §4.3.2).

use crate::client::{DaskClient, Delayed};
use taskframe::TaskCtx;

/// A dense row-major chunk.
#[derive(Clone, Debug, PartialEq)]
pub struct Chunk {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl taskframe::Payload for Chunk {
    fn wire_bytes(&self) -> u64 {
        8 + 8 * self.data.len() as u64
    }
    fn item_count(&self) -> u64 {
        self.data.len() as u64
    }
}

/// A 2-D blocked array: `grid_rows × grid_cols` delayed chunks.
pub struct DaskArray {
    client: DaskClient,
    grid_rows: usize,
    grid_cols: usize,
    /// Row-major grid of chunks.
    chunks: Vec<Delayed<Chunk>>,
}

impl DaskArray {
    /// Build from a dense row-major matrix, splitting into a
    /// `grid_rows × grid_cols` grid of near-equal chunks.
    pub fn from_dense(
        client: &DaskClient,
        rows: usize,
        cols: usize,
        data: Vec<f64>,
        grid_rows: usize,
        grid_cols: usize,
    ) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        assert!(grid_rows >= 1 && grid_cols >= 1);
        assert!(
            grid_rows <= rows.max(1) && grid_cols <= cols.max(1),
            "more blocks than elements"
        );
        let row_bounds = bounds(rows, grid_rows);
        let col_bounds = bounds(cols, grid_cols);
        let mut chunks = Vec::with_capacity(grid_rows * grid_cols);
        for (r0, r1) in row_bounds.iter().copied() {
            for (c0, c1) in col_bounds.iter().copied() {
                let mut block = Vec::with_capacity((r1 - r0) * (c1 - c0));
                for r in r0..r1 {
                    block.extend_from_slice(&data[r * cols + c0..r * cols + c1]);
                }
                let chunk = Chunk {
                    rows: r1 - r0,
                    cols: c1 - c0,
                    data: block,
                };
                chunks.push(client.delayed(move |_: &TaskCtx| chunk));
            }
        }
        DaskArray {
            client: client.clone(),
            grid_rows,
            grid_cols,
            chunks,
        }
    }

    pub fn grid_shape(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }

    /// Apply `f` to every chunk as an independent task.
    ///
    /// # Panics
    /// Panics (when the result is computed) if `f` changes a chunk's
    /// shape — the "dynamic output shapes" limitation of Table 1.
    pub fn map_blocks(&self, f: impl Fn(&Chunk) -> Chunk + Clone) -> DaskArray {
        let chunks = self
            .chunks
            .iter()
            .map(|d| {
                let f = f.clone();
                d.then(&self.client, move |chunk, _| {
                    let out = f(chunk);
                    assert_eq!(
                        (out.rows, out.cols),
                        (chunk.rows, chunk.cols),
                        "Dask Array cannot deal with dynamic output shapes (Table 1)"
                    );
                    out
                })
            })
            .collect();
        DaskArray {
            client: self.client.clone(),
            grid_rows: self.grid_rows,
            grid_cols: self.grid_cols,
            chunks,
        }
    }

    /// Element-wise binary operation between equally-chunked arrays.
    pub fn zip_with(&self, other: &DaskArray, f: impl Fn(f64, f64) -> f64 + Clone) -> DaskArray {
        assert_eq!(self.grid_shape(), other.grid_shape(), "grid shape mismatch");
        let chunks = self
            .chunks
            .iter()
            .zip(&other.chunks)
            .map(|(a, b)| {
                let f = f.clone();
                self.client.combine(&[a, b], move |vals: &[&Chunk], _| {
                    let (x, y) = (vals[0], vals[1]);
                    assert_eq!((x.rows, x.cols), (y.rows, y.cols), "chunk shape mismatch");
                    Chunk {
                        rows: x.rows,
                        cols: x.cols,
                        data: x.data.iter().zip(&y.data).map(|(&p, &q)| f(p, q)).collect(),
                    }
                })
            })
            .collect();
        DaskArray {
            client: self.client.clone(),
            grid_rows: self.grid_rows,
            grid_cols: self.grid_cols,
            chunks,
        }
    }

    /// Reduce every element with an associative `f` (tree reduction over
    /// per-chunk partials). `None` for an empty array.
    pub fn reduce(&self, f: impl Fn(f64, f64) -> f64 + Clone) -> Option<f64> {
        let mut level: Vec<Delayed<Option<f64>>> = self
            .chunks
            .iter()
            .map(|d| {
                let f = f.clone();
                d.then(&self.client, move |chunk, _| {
                    chunk.data.iter().copied().reduce(&f)
                })
            })
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let f = f.clone();
                        next.push(self.client.combine(&[&a, &b], move |vals, _| {
                            match (*vals[0], *vals[1]) {
                                (Some(x), Some(y)) => Some(f(x, y)),
                                (x, y) => x.or(y),
                            }
                        }))
                    }
                    None => next.push(a),
                }
            }
            level = next;
        }
        let head = level.into_iter().next()?;
        let (vals, _) = self.client.gather(std::slice::from_ref(&head));
        vals.into_iter().next().flatten()
    }

    /// Materialize back into a dense row-major matrix.
    pub fn compute(&self, rows: usize, cols: usize) -> Vec<f64> {
        let (chunks, _) = self.client.gather(&self.chunks);
        let row_bounds = bounds(rows, self.grid_rows);
        let col_bounds = bounds(cols, self.grid_cols);
        let mut out = vec![0.0; rows * cols];
        let mut it = chunks.into_iter();
        for (r0, r1) in row_bounds.iter().copied() {
            for (c0, c1) in col_bounds.iter().copied() {
                let chunk = it.next().expect("grid complete");
                assert_eq!((chunk.rows, chunk.cols), (r1 - r0, c1 - c0), "stale shape");
                for (ri, r) in (r0..r1).enumerate() {
                    out[r * cols + c0..r * cols + c1]
                        .copy_from_slice(&chunk.data[ri * chunk.cols..(ri + 1) * chunk.cols]);
                }
            }
        }
        out
    }
}

/// Split `len` into `parts` contiguous `(start, end)` bounds.
fn bounds(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < extra);
        out.push((start, start + sz));
        start += sz;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{laptop, Cluster};

    fn client() -> DaskClient {
        DaskClient::new(Cluster::new(laptop(), 1))
    }

    fn iota(rows: usize, cols: usize) -> Vec<f64> {
        (0..rows * cols).map(|i| i as f64).collect()
    }

    #[test]
    fn dense_roundtrip() {
        let c = client();
        let a = DaskArray::from_dense(&c, 6, 8, iota(6, 8), 2, 3);
        assert_eq!(a.grid_shape(), (2, 3));
        assert_eq!(a.compute(6, 8), iota(6, 8));
    }

    #[test]
    fn map_blocks_elementwise() {
        let c = client();
        let a = DaskArray::from_dense(&c, 4, 4, iota(4, 4), 2, 2);
        let b = a.map_blocks(|ch| Chunk {
            rows: ch.rows,
            cols: ch.cols,
            data: ch.data.iter().map(|x| x * 2.0).collect(),
        });
        let want: Vec<f64> = iota(4, 4).into_iter().map(|x| x * 2.0).collect();
        assert_eq!(b.compute(4, 4), want);
    }

    #[test]
    #[should_panic(expected = "dynamic output shapes")]
    fn dynamic_output_shapes_rejected() {
        let c = client();
        let a = DaskArray::from_dense(&c, 4, 4, iota(4, 4), 2, 2);
        // Shrinking a chunk (e.g. returning only the edges found in it) is
        // exactly what the Leaflet Finder would need — and cannot have.
        a.map_blocks(|ch| Chunk {
            rows: 1,
            cols: 1,
            data: vec![ch.data[0]],
        });
    }

    #[test]
    fn zip_with_adds() {
        let c = client();
        let a = DaskArray::from_dense(&c, 3, 5, iota(3, 5), 1, 2);
        let b = DaskArray::from_dense(&c, 3, 5, vec![1.0; 15], 1, 2);
        let sum = a.zip_with(&b, |x, y| x + y);
        let want: Vec<f64> = iota(3, 5).into_iter().map(|x| x + 1.0).collect();
        assert_eq!(sum.compute(3, 5), want);
    }

    #[test]
    fn reduce_sums_everything() {
        let c = client();
        let a = DaskArray::from_dense(&c, 7, 3, iota(7, 3), 3, 2);
        let total = a.reduce(|x, y| x + y).unwrap();
        assert_eq!(total, (0..21).sum::<usize>() as f64);
    }

    #[test]
    fn single_chunk_array() {
        let c = client();
        let a = DaskArray::from_dense(&c, 2, 2, iota(2, 2), 1, 1);
        assert_eq!(a.reduce(f64::max), Some(3.0));
        assert_eq!(a.compute(2, 2), iota(2, 2));
    }
}
