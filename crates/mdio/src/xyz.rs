//! Text XYZ trajectory format (multi-frame).
//!
//! Per frame:
//! ```text
//! <n_atoms>
//! <comment line>
//! EL x y z        (n_atoms lines)
//! ```
//! Element symbols are written as `C` and ignored on read (positions are
//! all the analysis algorithms consume).

use crate::{IoError, Result};
use linalg::{Frame, Vec3};
use std::fmt::Write as _;
use std::path::Path;

/// Serialize frames as multi-frame XYZ text.
pub fn encode_xyz(frames: &[Frame]) -> String {
    let mut out = String::new();
    for (k, f) in frames.iter().enumerate() {
        let _ = writeln!(out, "{}", f.n_atoms());
        let _ = writeln!(out, "frame {k}");
        for p in f.positions() {
            let _ = writeln!(out, "C {} {} {}", p.x, p.y, p.z);
        }
    }
    out
}

/// Parse multi-frame XYZ text.
pub fn decode_xyz(text: &str) -> Result<Vec<Frame>> {
    let mut lines = text.lines().enumerate().peekable();
    let mut frames = Vec::new();
    while let Some((lno, header)) = lines.next() {
        let header = header.trim();
        if header.is_empty() {
            continue;
        }
        let n: usize = header
            .parse()
            .map_err(|_| IoError::Format(format!("line {}: expected atom count", lno + 1)))?;
        let _comment = lines
            .next()
            .ok_or_else(|| IoError::Format("missing comment line".into()))?;
        let mut pos = Vec::with_capacity(n);
        for _ in 0..n {
            let (lno, line) = lines
                .next()
                .ok_or_else(|| IoError::Format("truncated frame".into()))?;
            let mut parts = line.split_whitespace();
            let _el = parts
                .next()
                .ok_or_else(|| IoError::Format(format!("line {}: empty atom line", lno + 1)))?;
            let mut coord = |what: &str| -> Result<f32> {
                parts
                    .next()
                    .ok_or_else(|| IoError::Format(format!("line {}: missing {what}", lno + 1)))?
                    .parse()
                    .map_err(|_| IoError::Format(format!("line {}: bad {what}", lno + 1)))
            };
            let (x, y, z) = (coord("x")?, coord("y")?, coord("z")?);
            pos.push(Vec3::new(x, y, z));
        }
        frames.push(Frame::new(pos));
    }
    Ok(frames)
}

/// Write frames to an XYZ file.
pub fn write_xyz(path: &Path, frames: &[Frame]) -> Result<()> {
    std::fs::write(path, encode_xyz(frames))?;
    Ok(())
}

/// Read an XYZ file.
pub fn read_xyz(path: &Path) -> Result<Vec<Frame>> {
    decode_xyz(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(coords: &[(f32, f32, f32)]) -> Frame {
        Frame::new(coords.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect())
    }

    #[test]
    fn roundtrip_two_frames() {
        let frames = vec![
            frame(&[(0.0, 1.0, 2.0), (3.25, -4.5, 5.0)]),
            frame(&[(9.0, 8.0, 7.0), (1.0, 1.0, 1.0)]),
        ];
        let text = encode_xyz(&frames);
        assert_eq!(decode_xyz(&text).unwrap(), frames);
    }

    #[test]
    fn empty_input_gives_no_frames() {
        assert!(decode_xyz("").unwrap().is_empty());
        assert!(decode_xyz("\n\n").unwrap().is_empty());
    }

    #[test]
    fn garbage_header_rejected() {
        assert!(decode_xyz("notanumber\ncomment\n").is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        assert!(decode_xyz("2\ncomment\nC 0 0 0\n").is_err());
    }

    #[test]
    fn bad_coordinate_rejected() {
        assert!(decode_xyz("1\nc\nC 0 zero 0\n").is_err());
        assert!(decode_xyz("1\nc\nC 0 0\n").is_err());
    }

    #[test]
    fn interoperates_with_mdt() {
        let frames = vec![frame(&[(1.0, 2.0, 3.0)])];
        let bytes = crate::mdt::encode_mdt(&frames).unwrap();
        let back = crate::mdt::decode_mdt(&bytes).unwrap();
        assert_eq!(decode_xyz(&encode_xyz(&back)).unwrap(), frames);
    }
}
