//! Streaming trajectory delivery: a seeded producer/transport model.
//!
//! Batch analysis opens a finished trajectory file; in-situ analysis
//! subscribes to one being written. [`StreamSource`] models that producer
//! side: frame `i` is stamped with event time `i·interval_s` (the MD
//! engine's own clock), emitted on a schedule perturbed by the fault
//! plan's producer stalls, and delivered through a transport that adds
//! latency, seeded jitter, scripted per-frame delays, loss, and duplicate
//! delivery. The output is a [`SourceLog`] — the ground-truth delivery
//! schedule the `netsim::stream` runner consumes and its chaos oracles
//! audit against.
//!
//! Everything is deterministic in the plan's seed: the same
//! `(StreamSource, FaultPlan)` pair always produces the same schedule, so
//! counterexamples found by the chaos harness replay exactly.

use netsim::stream::{SourceLog, StreamEvent};
use netsim::FaultPlan;

/// A simulated trajectory producer plus the transport between it and the
/// analysis pipeline.
#[derive(Clone, Debug)]
pub struct StreamSource {
    /// Frames the producer will generate (the trajectory length).
    pub n_frames: usize,
    /// Event-time spacing between frames — the MD engine's output cadence.
    pub interval_s: f64,
    /// Base transport latency applied to every delivery.
    pub latency_s: f64,
    /// Maximum seeded per-frame jitter added on top of the base latency
    /// (uniform in `[0, jitter_s)`), the source of mild reordering.
    pub jitter_s: f64,
    plan: FaultPlan,
}

impl StreamSource {
    pub fn new(n_frames: usize, interval_s: f64) -> Self {
        assert!(interval_s > 0.0, "frame interval must be positive");
        StreamSource {
            n_frames,
            interval_s,
            latency_s: 0.0,
            jitter_s: 0.0,
            plan: FaultPlan::none(),
        }
    }

    pub fn with_latency(mut self, latency_s: f64) -> Self {
        assert!(latency_s >= 0.0, "latency must be non-negative");
        self.latency_s = latency_s;
        self
    }

    pub fn with_jitter(mut self, jitter_s: f64) -> Self {
        assert!(jitter_s >= 0.0, "jitter must be non-negative");
        self.jitter_s = jitter_s;
        self
    }

    /// Attach the fault plan whose stream faults (producer stalls/crash,
    /// drops, delays, duplicates) and seed perturb the schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// How long a lost delivery takes to be re-sent: the transport's
    /// retransmission lag, also used for duplicate deliveries.
    fn redelivery_lag(&self) -> f64 {
        self.latency_s.max(self.interval_s)
    }

    /// Materialize the delivery schedule.
    ///
    /// The producer emits frame `i` at `i·interval_s` shifted right by
    /// every stall that began before the (already-shifted) emission time —
    /// a stalled MD engine pushes *all* later frames back. A crash stall
    /// stops emission for good: remaining frames land in `undelivered` and
    /// the log records `crashed_at`, which tells the consumer no EOS
    /// marker will ever arrive. If the producer finished every frame
    /// before crashing, the stream completed and `crashed_at` stays
    /// `None`.
    pub fn schedule(&self) -> SourceLog {
        let mut stalls = self.plan.producer_stalls().to_vec();
        stalls.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        let mut events = Vec::new();
        let mut dropped = Vec::new();
        let mut undelivered = Vec::new();
        let mut crashed_at = None;
        let mut shift = 0.0;
        let mut next_stall = 0;
        for frame in 0..self.n_frames {
            let event_s = frame as f64 * self.interval_s;
            let mut emit_s = event_s + shift;
            while next_stall < stalls.len() && stalls[next_stall].at_s < emit_s {
                if stalls[next_stall].is_crash() {
                    crashed_at = Some(stalls[next_stall].at_s);
                    break;
                }
                shift += stalls[next_stall].for_s;
                emit_s = event_s + shift;
                next_stall += 1;
            }
            if crashed_at.is_some() {
                undelivered.push(frame);
                continue;
            }
            let scripted_drop = self.plan.frame_drops().iter().any(|d| d.frame == frame);
            if scripted_drop || self.plan.frame_dropped(frame) {
                dropped.push(frame);
                continue;
            }
            let arrive_s = emit_s
                + self.latency_s
                + self.plan.frame_jitter(frame, self.jitter_s)
                + self.plan.frame_delay(frame);
            events.push(StreamEvent {
                frame,
                event_s,
                arrive_s,
                duplicate: false,
            });
            if self.plan.frame_duplicated(frame) {
                events.push(StreamEvent {
                    frame,
                    event_s,
                    arrive_s: arrive_s + self.redelivery_lag(),
                    duplicate: true,
                });
            }
        }
        if undelivered.is_empty() {
            // The producer got every frame out before (or without) dying:
            // the stream completed and the EOS marker was sent.
            crashed_at = None;
        }
        events.sort_by(|a, b| {
            a.arrive_s
                .total_cmp(&b.arrive_s)
                .then(a.frame.cmp(&b.frame))
                .then(a.duplicate.cmp(&b.duplicate))
        });
        SourceLog {
            events,
            dropped,
            crashed_at,
            undelivered,
            n_frames: self.n_frames,
            interval_s: self.interval_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_schedule_is_ordered_and_complete() {
        let log = StreamSource::new(10, 0.5).with_latency(0.1).schedule();
        assert_eq!(log.events.len(), 10);
        assert!(log.dropped.is_empty() && log.undelivered.is_empty());
        assert_eq!(log.crashed_at, None);
        for (i, e) in log.events.iter().enumerate() {
            assert_eq!(e.frame, i);
            assert_eq!(e.event_s, i as f64 * 0.5);
            assert!((e.arrive_s - (e.event_s + 0.1)).abs() < 1e-12);
            assert!(!e.duplicate);
        }
    }

    #[test]
    fn stalls_push_later_frames_back() {
        // Producer stalls for 2s at t=1.2: frames stamped ≥ ~1.2 emit 2s
        // later; earlier frames are untouched.
        let plan = FaultPlan::none().stall_producer(1.2, 2.0);
        let log = StreamSource::new(8, 0.5).with_faults(plan).schedule();
        let arrive: Vec<f64> = log.events.iter().map(|e| e.arrive_s).collect();
        assert_eq!(&arrive[..3], &[0.0, 0.5, 1.0], "pre-stall frames on time");
        assert_eq!(arrive[3], 3.5, "frame 3 (event 1.5s) slid past the stall");
        assert_eq!(arrive[7], 5.5, "the shift persists");
        assert!(log.events.iter().all(|e| e.event_s == e.frame as f64 * 0.5));
    }

    #[test]
    fn crash_truncates_and_marks_the_log() {
        let plan = FaultPlan::none().crash_producer(1.2);
        let log = StreamSource::new(8, 0.5).with_faults(plan).schedule();
        assert_eq!(log.events.len(), 3, "frames 0..2 emitted before 1.2s");
        assert_eq!(log.crashed_at, Some(1.2));
        assert_eq!(log.undelivered, vec![3, 4, 5, 6, 7]);
        // A crash after the last frame is not a stream failure.
        let plan = FaultPlan::none().crash_producer(100.0);
        let log = StreamSource::new(8, 0.5).with_faults(plan).schedule();
        assert_eq!(log.crashed_at, None);
        assert_eq!(log.events.len(), 8);
    }

    #[test]
    fn drops_delays_and_duplicates_are_deterministic() {
        let plan = FaultPlan::none()
            .seeded(42)
            .drop_frame(1)
            .delay_frame(2, 3.0)
            .drop_frames(0.2)
            .duplicate_frames(0.2);
        let src = StreamSource::new(40, 0.25).with_latency(0.05);
        let a = src.clone().with_faults(plan.clone()).schedule();
        let b = src.with_faults(plan).schedule();
        assert_eq!(a, b, "schedules replay exactly");
        assert!(a.dropped.contains(&1), "scripted drop");
        assert!(a.dropped.len() > 1, "seeded drops fired at p=0.2 over 40");
        assert!(a.events.iter().any(|e| e.duplicate), "duplicates delivered");
        let f2 = a.events.iter().find(|e| e.frame == 2 && !e.duplicate);
        if let Some(e) = f2 {
            assert!(e.arrive_s >= 3.0, "scripted delay applied");
        }
        // Arrival order is what the consumer sees: sorted.
        for w in a.events.windows(2) {
            assert!(w[1].arrive_s >= w[0].arrive_s);
        }
    }

    #[test]
    fn jitter_reorders_but_preserves_event_stamps() {
        let plan = FaultPlan::none().seeded(7);
        let log = StreamSource::new(50, 0.1)
            .with_latency(0.02)
            .with_jitter(0.35)
            .with_faults(plan)
            .schedule();
        let frames: Vec<usize> = log.events.iter().map(|e| e.frame).collect();
        let mut sorted = frames.clone();
        sorted.sort_unstable();
        assert_ne!(frames, sorted, "jitter larger than the interval reorders");
        assert_eq!(sorted, (0..50).collect::<Vec<_>>(), "nothing lost");
    }
}
