//! XTCQ: a quantized, delta-compressed trajectory format in the spirit of
//! GROMACS' XTC.
//!
//! Coordinates are quantized to a fixed-point grid (default 10⁻³ Å, XTC's
//! precision), then encoded as zig-zag varints of per-atom deltas within a
//! frame and per-frame deltas across time. MD coordinates are spatially
//! and temporally correlated, so this typically compresses 2–4× against
//! raw `f32` — which matters when a µs simulation emits hundreds of GB
//! (§1: "a typical µsec MD simulation … can produce from O(10) to O(1000)
//! GBs of data").
//!
//! Layout:
//! ```text
//! magic    b"XTQ1"          4 bytes
//! n_atoms  u32
//! n_frames u32
//! inv_prec f32              (quantization steps per Å, e.g. 1000)
//! frame 0  varint stream    (delta within frame, from previous atom)
//! frame k  varint stream    (delta from the same atom in frame k-1)
//! ```

use crate::{IoError, Result};
use bytes::{Buf, BufMut};
use linalg::{Frame, Vec3};
use std::path::Path;

const MAGIC: &[u8; 4] = b"XTQ1";

/// Default precision: 1000 steps per Å (XTC's `prec=1000`).
pub const DEFAULT_PRECISION: f32 = 1000.0;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(data: &mut &[u8]) -> Result<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if !data.has_remaining() {
            return Err(IoError::Format("truncated varint".into()));
        }
        let byte = data.get_u8();
        out |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift >= 64 {
            return Err(IoError::Format("varint overflow".into()));
        }
    }
}

fn quantize(frames: &[Frame], inv_prec: f32) -> Vec<Vec<[i64; 3]>> {
    frames
        .iter()
        .map(|f| {
            f.positions()
                .iter()
                .map(|p| {
                    [
                        (p.x * inv_prec).round() as i64,
                        (p.y * inv_prec).round() as i64,
                        (p.z * inv_prec).round() as i64,
                    ]
                })
                .collect()
        })
        .collect()
}

/// Encode frames with the given quantization (`inv_prec` steps per Å).
pub fn encode_xtcq(frames: &[Frame], inv_prec: f32) -> Result<Vec<u8>> {
    assert!(inv_prec > 0.0, "precision must be positive");
    let n_atoms = frames.first().map_or(0, Frame::n_atoms);
    for (k, f) in frames.iter().enumerate() {
        if f.n_atoms() != n_atoms {
            return Err(IoError::Format(format!("frame {k} atom count mismatch")));
        }
    }
    let q = quantize(frames, inv_prec);
    let mut buf = Vec::with_capacity(16 + frames.len() * n_atoms * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(n_atoms as u32);
    buf.put_u32_le(frames.len() as u32);
    buf.put_f32_le(inv_prec);
    for (k, frame) in q.iter().enumerate() {
        let mut prev = [0i64; 3];
        for (a, atom) in frame.iter().enumerate() {
            let reference = if k == 0 {
                // Within-frame delta from the previous atom (chain
                // topology keeps neighbours close).
                prev
            } else {
                // Across-frame delta from the same atom one frame ago
                // (thermal motion is small per step).
                q[k - 1][a]
            };
            for d in 0..3 {
                put_varint(&mut buf, zigzag(atom[d] - reference[d]));
            }
            prev = *atom;
        }
    }
    Ok(buf)
}

/// Decode an XTCQ byte stream. Coordinates are exact multiples of the
/// stored precision (lossy by at most `0.5 / inv_prec` per axis relative
/// to the original).
pub fn decode_xtcq(mut data: &[u8]) -> Result<Vec<Frame>> {
    if data.remaining() < 16 {
        return Err(IoError::Format("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Format(format!("bad magic {magic:?}")));
    }
    let n_atoms = data.get_u32_le() as usize;
    let n_frames = data.get_u32_le() as usize;
    let inv_prec = data.get_f32_le();
    if inv_prec.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(IoError::Format("non-positive precision".into()));
    }
    let mut frames: Vec<Vec<[i64; 3]>> = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        let mut frame = Vec::with_capacity(n_atoms);
        let mut prev = [0i64; 3];
        for a in 0..n_atoms {
            let reference = frames.last().map_or(prev, |pf| pf[a]);
            let mut atom = [0i64; 3];
            for (d, slot) in atom.iter_mut().enumerate() {
                *slot = reference[d] + unzigzag(get_varint(&mut data)?);
            }
            prev = atom;
            frame.push(atom);
        }
        frames.push(frame);
    }
    if data.has_remaining() {
        return Err(IoError::Format("trailing bytes".into()));
    }
    let prec = 1.0 / inv_prec;
    Ok(frames
        .into_iter()
        .map(|frame| {
            Frame::new(
                frame
                    .into_iter()
                    .map(|[x, y, z]| Vec3::new(x as f32 * prec, y as f32 * prec, z as f32 * prec))
                    .collect(),
            )
        })
        .collect())
}

/// Write frames to an XTCQ file with the default precision.
pub fn write_xtcq(path: &Path, frames: &[Frame]) -> Result<()> {
    std::fs::write(path, encode_xtcq(frames, DEFAULT_PRECISION)?)?;
    Ok(())
}

/// Read an XTCQ file.
pub fn read_xtcq(path: &Path) -> Result<Vec<Frame>> {
    decode_xtcq(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: &Frame, b: &Frame, tol: f32) -> bool {
        a.n_atoms() == b.n_atoms()
            && a.positions().iter().zip(b.positions()).all(|(p, q)| {
                (p.x - q.x).abs() <= tol && (p.y - q.y).abs() <= tol && (p.z - q.z).abs() <= tol
            })
    }

    #[test]
    fn roundtrip_within_precision() {
        let spec = mdsim_fixture(40, 12);
        let bytes = encode_xtcq(&spec, DEFAULT_PRECISION).unwrap();
        let back = decode_xtcq(&bytes).unwrap();
        assert_eq!(back.len(), spec.len());
        for (a, b) in spec.iter().zip(&back) {
            assert!(close(a, b, 0.5 / DEFAULT_PRECISION + 1e-4));
        }
    }

    /// A correlated random walk standing in for an MD trajectory (mdsim is
    /// a dev-dependency; generate inline to keep the fixture local).
    fn mdsim_fixture(n_atoms: usize, n_frames: usize) -> Vec<Frame> {
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) as f32 - 0.5
        };
        let mut pos: Vec<Vec3> = (0..n_atoms)
            .map(|i| Vec3::new(i as f32 * 3.8 + next(), next() * 5.0, next() * 5.0))
            .collect();
        (0..n_frames)
            .map(|_| {
                for p in &mut pos {
                    *p += Vec3::new(next() * 0.3, next() * 0.3, next() * 0.3);
                }
                Frame::new(pos.clone())
            })
            .collect()
    }

    #[test]
    fn compresses_correlated_trajectories() {
        let frames = mdsim_fixture(200, 50);
        let raw = crate::mdt::encode_mdt(&frames).unwrap();
        let packed = encode_xtcq(&frames, DEFAULT_PRECISION).unwrap();
        assert!(
            (packed.len() as f64) < 0.6 * raw.len() as f64,
            "expected >40% compression: raw {} packed {}",
            raw.len(),
            packed.len()
        );
    }

    #[test]
    fn empty_and_single_frame() {
        assert!(decode_xtcq(&encode_xtcq(&[], 1000.0).unwrap())
            .unwrap()
            .is_empty());
        let one = vec![Frame::new(vec![Vec3::new(1.2345, -2.5, 0.0)])];
        let back = decode_xtcq(&encode_xtcq(&one, 1000.0).unwrap()).unwrap();
        assert!(close(&one[0], &back[0], 6e-4));
    }

    #[test]
    fn corrupted_input_rejected() {
        let mut bytes = encode_xtcq(&mdsim_fixture(3, 2), 1000.0).unwrap();
        bytes[0] = b'Z';
        assert!(decode_xtcq(&bytes).is_err());
        let bytes = encode_xtcq(&mdsim_fixture(3, 2), 1000.0).unwrap();
        assert!(decode_xtcq(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_xtcq(&bytes[..10]).is_err());
    }

    #[test]
    fn on_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mdio-xtcq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.xtcq");
        let frames = mdsim_fixture(10, 4);
        write_xtcq(&path, &frames).unwrap();
        let back = read_xtcq(&path).unwrap();
        assert_eq!(back.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        /// Lossy round trip: every coordinate within half a quantum.
        #[test]
        fn quantization_error_bounded(
            coords in prop::collection::vec(
                (-500.0f32..500.0, -500.0f32..500.0, -500.0f32..500.0), 1..40),
            frames in 1usize..5,
            prec in prop::sample::select(vec![100.0f32, 1000.0, 10000.0]),
        ) {
            let base: Vec<Vec3> = coords.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
            let traj: Vec<Frame> = (0..frames)
                .map(|k| Frame::new(base.iter().map(|p| *p + Vec3::new(k as f32 * 0.1, 0.0, 0.0)).collect()))
                .collect();
            let back = decode_xtcq(&encode_xtcq(&traj, prec).unwrap()).unwrap();
            let tol = 0.5 / prec + 500.0 * f32::EPSILON * 8.0;
            for (a, b) in traj.iter().zip(&back) {
                prop_assert!(close(a, b, tol));
            }
        }

        /// Varint zig-zag primitives round-trip any i64.
        #[test]
        fn varint_roundtrip(v in any::<i64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, zigzag(v));
            let mut slice = buf.as_slice();
            prop_assert_eq!(unzigzag(get_varint(&mut slice).unwrap()), v);
            prop_assert!(slice.is_empty());
        }
    }
}
