//! MDT: a minimal binary trajectory format.
//!
//! Layout (all little-endian):
//! ```text
//! magic   b"MDT1"           4 bytes
//! n_atoms u32               4 bytes
//! n_frames u32              4 bytes
//! frames  n_frames × n_atoms × 3 × f32
//! ```
//! Dense, seekable (frame k starts at `12 + k * n_atoms * 12`), and the
//! per-atom payload (12 bytes) matches what a real single-precision DCD
//! stores, so file sizes — and therefore simulated read times — are
//! realistic.

use crate::{IoError, Result};
use bytes::{Buf, BufMut};
use linalg::{Frame, Vec3};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MDT1";

/// Serialize frames to the MDT byte layout.
pub fn encode_mdt(frames: &[Frame]) -> Result<Vec<u8>> {
    let n_atoms = frames.first().map_or(0, Frame::n_atoms);
    for (k, f) in frames.iter().enumerate() {
        if f.n_atoms() != n_atoms {
            return Err(IoError::Format(format!(
                "frame {k} has {} atoms, expected {n_atoms}",
                f.n_atoms()
            )));
        }
    }
    let mut buf = Vec::with_capacity(12 + frames.len() * n_atoms * 12);
    buf.put_slice(MAGIC);
    buf.put_u32_le(n_atoms as u32);
    buf.put_u32_le(frames.len() as u32);
    for f in frames {
        for p in f.positions() {
            buf.put_f32_le(p.x);
            buf.put_f32_le(p.y);
            buf.put_f32_le(p.z);
        }
    }
    Ok(buf)
}

/// Parse MDT bytes into frames.
pub fn decode_mdt(mut data: &[u8]) -> Result<Vec<Frame>> {
    if data.len() < 12 {
        return Err(IoError::Format("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Format(format!("bad magic {magic:?}")));
    }
    let n_atoms = data.get_u32_le() as usize;
    let n_frames = data.get_u32_le() as usize;
    let need = n_frames
        .checked_mul(n_atoms)
        .and_then(|x| x.checked_mul(12))
        .ok_or_else(|| IoError::Format("size overflow".into()))?;
    if data.remaining() != need {
        return Err(IoError::Format(format!(
            "payload is {} bytes, header implies {need}",
            data.remaining()
        )));
    }
    let mut frames = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        let mut pos = Vec::with_capacity(n_atoms);
        for _ in 0..n_atoms {
            let x = data.get_f32_le();
            let y = data.get_f32_le();
            let z = data.get_f32_le();
            pos.push(Vec3::new(x, y, z));
        }
        frames.push(Frame::new(pos));
    }
    Ok(frames)
}

/// Write frames to an MDT file.
pub fn write_mdt(path: &Path, frames: &[Frame]) -> Result<()> {
    let bytes = encode_mdt(frames)?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Read an MDT file.
pub fn read_mdt(path: &Path) -> Result<Vec<Frame>> {
    let mut f = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    decode_mdt(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn frames_of(data: &[Vec<(f32, f32, f32)>]) -> Vec<Frame> {
        data.iter()
            .map(|f| Frame::new(f.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect()))
            .collect()
    }

    #[test]
    fn roundtrip_in_memory() {
        let frames = frames_of(&[
            vec![(0.0, 1.0, 2.0), (3.0, 4.0, 5.0)],
            vec![(-1.0, 0.5, 9.0), (0.0, 0.0, 0.0)],
        ]);
        let bytes = encode_mdt(&frames).unwrap();
        assert_eq!(bytes.len(), 12 + 2 * 2 * 12);
        assert_eq!(decode_mdt(&bytes).unwrap(), frames);
    }

    #[test]
    fn roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("mdio_test_mdt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.mdt");
        let frames = frames_of(&[vec![(1.5, 2.5, 3.5)]]);
        write_mdt(&path, &frames).unwrap();
        assert_eq!(read_mdt(&path).unwrap(), frames);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trajectory_roundtrips() {
        let bytes = encode_mdt(&[]).unwrap();
        assert_eq!(decode_mdt(&bytes).unwrap(), Vec::<Frame>::new());
    }

    #[test]
    fn mismatched_frames_rejected() {
        let frames = frames_of(&[
            vec![(0.0, 0.0, 0.0)],
            vec![(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)],
        ]);
        assert!(encode_mdt(&frames).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_mdt(&frames_of(&[vec![(0.0, 0.0, 0.0)]])).unwrap();
        bytes[0] = b'X';
        assert!(decode_mdt(&bytes).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = encode_mdt(&frames_of(&[vec![(0.0, 0.0, 0.0)]])).unwrap();
        assert!(decode_mdt(&bytes[..bytes.len() - 4]).is_err());
        assert!(decode_mdt(&bytes[..8]).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_any_trajectory(
            n_atoms in 1usize..20,
            n_frames in 0usize..8,
            seed_vals in prop::collection::vec(-1e6f32..1e6, 0..480),
        ) {
            let mut vals = seed_vals.iter().cycle();
            let frames: Vec<Frame> = (0..n_frames).map(|_| {
                Frame::new((0..n_atoms).map(|_| Vec3::new(
                    *vals.next().unwrap_or(&0.0),
                    *vals.next().unwrap_or(&0.0),
                    *vals.next().unwrap_or(&0.0),
                )).collect())
            }).collect();
            let bytes = encode_mdt(&frames).unwrap();
            prop_assert_eq!(decode_mdt(&bytes).unwrap(), frames);
        }
    }
}
