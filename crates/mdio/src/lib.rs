//! Trajectory file I/O.
//!
//! The paper's pipelines read trajectory files from a parallel filesystem
//! (Lustre); each PSA task "reads its respective input files in parallel"
//! (§4.2) and RADICAL-Pilot exchanges *all* data through files (§3.3).
//! This crate provides that code path on a local filesystem:
//!
//! * [`mdt`] — a compact binary trajectory format (magic, atom/frame
//!   counts, little-endian `f32` coordinates);
//! * [`xyz`] — the ubiquitous text XYZ format, for interoperability and
//!   debugging;
//! * [`staging`] — numbered per-task partition files, used by the pilot
//!   engine's stage-in/stage-out.

pub mod mdt;
pub mod staging;
pub mod stream;
pub mod xtcq;
pub mod xyz;

pub use mdt::{read_mdt, write_mdt};
pub use staging::StagingArea;
pub use stream::StreamSource;
pub use xtcq::{read_xtcq, write_xtcq};
pub use xyz::{read_xyz, write_xyz};

/// Errors from trajectory I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file exists but is not a valid trajectory of the expected format.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, IoError>;
