//! Per-task file staging — the data-exchange path of pilot-job systems.
//!
//! RADICAL-Pilot has "no shuffle; filesystem-based communication"
//! (Table 1): tasks communicate exclusively by writing output files that
//! downstream tasks (or the client) read back. `StagingArea` provides that
//! pattern: a directory of numbered binary blobs with byte accounting, so
//! engines can charge realistic staging I/O to the simulated clock.

use crate::Result;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A directory used for task input/output staging.
#[derive(Debug)]
pub struct StagingArea {
    root: PathBuf,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl StagingArea {
    /// Create (or reuse) a staging directory.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(StagingArea {
            root,
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    /// A unique staging area under the system temp dir.
    pub fn temp(tag: &str) -> Result<Self> {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("mdtask-stage-{tag}-{}-{id}", std::process::id()));
        Self::new(root)
    }

    /// Directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path for task `task_id`'s file named `name`.
    pub fn task_path(&self, task_id: usize, name: &str) -> PathBuf {
        self.root.join(format!("task-{task_id:06}-{name}.bin"))
    }

    /// Stage a blob in for a task (write it to the shared filesystem).
    pub fn stage_in(&self, task_id: usize, name: &str, data: &[u8]) -> Result<PathBuf> {
        let path = self.task_path(task_id, name);
        std::fs::write(&path, data)?;
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(path)
    }

    /// Read a task's staged blob back.
    pub fn stage_out(&self, task_id: usize, name: &str) -> Result<Vec<u8>> {
        let data = std::fs::read(self.task_path(task_id, name))?;
        self.bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    /// Total bytes written through this area.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read through this area.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Remove the staging directory and its contents.
    pub fn cleanup(self) -> Result<()> {
        std::fs::remove_dir_all(&self.root)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_roundtrip_and_accounting() {
        let area = StagingArea::temp("roundtrip").unwrap();
        area.stage_in(0, "input", b"hello").unwrap();
        area.stage_in(1, "input", b"world!").unwrap();
        assert_eq!(area.stage_out(0, "input").unwrap(), b"hello");
        assert_eq!(area.stage_out(1, "input").unwrap(), b"world!");
        assert_eq!(area.bytes_written(), 11);
        assert_eq!(area.bytes_read(), 11);
        area.cleanup().unwrap();
    }

    #[test]
    fn task_paths_are_distinct() {
        let area = StagingArea::temp("paths").unwrap();
        assert_ne!(area.task_path(0, "a"), area.task_path(0, "b"));
        assert_ne!(area.task_path(0, "a"), area.task_path(1, "a"));
        area.cleanup().unwrap();
    }

    #[test]
    fn missing_blob_is_an_error() {
        let area = StagingArea::temp("missing").unwrap();
        assert!(area.stage_out(42, "nothing").is_err());
        area.cleanup().unwrap();
    }

    #[test]
    fn temp_areas_do_not_collide() {
        let a = StagingArea::temp("same").unwrap();
        let b = StagingArea::temp("same").unwrap();
        assert_ne!(a.root(), b.root());
        a.cleanup().unwrap();
        b.cleanup().unwrap();
    }
}
