//! The execution context handed to every task closure.

use std::cell::Cell;

/// Per-task context: identity plus a channel for charging *modelled* time
/// (e.g. "this task read an 8 MB trajectory file from Lustre") on top of
/// the measured compute time.
#[derive(Debug)]
pub struct TaskCtx {
    /// Task id unique within the job.
    pub task_id: usize,
    /// Partition index this task processes (== `task_id` for flat bags).
    pub partition: usize,
    extra_s: Cell<f64>,
}

impl TaskCtx {
    pub fn new(task_id: usize, partition: usize) -> Self {
        TaskCtx {
            task_id,
            partition,
            extra_s: Cell::new(0.0),
        }
    }

    /// Charge `secs` of modelled (not measured) time to this task — I/O
    /// waits, license stalls, anything the host cannot reproduce.
    pub fn charge(&self, secs: f64) {
        assert!(secs >= 0.0, "cannot charge negative time");
        self.extra_s.set(self.extra_s.get() + secs);
    }

    /// Total modelled time charged so far.
    pub fn charged(&self) -> f64 {
        self.extra_s.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let ctx = TaskCtx::new(3, 1);
        assert_eq!(ctx.charged(), 0.0);
        ctx.charge(0.5);
        ctx.charge(0.25);
        assert_eq!(ctx.charged(), 0.75);
        assert_eq!(ctx.task_id, 3);
        assert_eq!(ctx.partition, 1);
    }

    #[test]
    #[should_panic]
    fn negative_charge_panics() {
        TaskCtx::new(0, 0).charge(-1.0);
    }
}
