//! Per-framework overhead profiles.
//!
//! These constants are the quantitative heart of the reproduction: each is
//! derived from a measurement the paper reports, and the experiment
//! harness (Fig. 2/3/8) recovers the paper's curves *from* these mechanisms
//! rather than hard-coding the curves.
//!
//! Calibration sources:
//! * Fig. 2 — single Wrangler node, zero-workload tasks: Dask sustains
//!   ~2,000 tasks/s, Spark roughly an order of magnitude less, RADICAL-Pilot
//!   tens of tasks/s and cannot reach 32k tasks; Dask/Spark have sub-second
//!   to second job startup, RP tens of seconds (pilot bootstrap).
//! * Fig. 3 — throughput grows ≈linearly with nodes for Dask and Spark
//!   (worker-side dispatch dominates) while RP plateaus below 100 tasks/s
//!   (every state transition serializes through MongoDB).
//! * Fig. 8 — broadcast time is 3–15% of edge-discovery time for Spark
//!   (tree/torrent), 40–65% for Dask (list-wise scatter), <1–10% for MPI
//!   (linear but cheap).
//! * §4.4.1 — "integration of Python tools [with Spark] often causes
//!   overheads due to the frequent need for serialization and copying data
//!   between the Python and Java space": Spark pays a per-byte tax on task
//!   results and shuffle data.

use netsim::BroadcastAlgo;

/// Overhead constants for one framework on one machine.
#[derive(Clone, Debug)]
pub struct FrameworkProfile {
    pub name: &'static str,
    /// One-time job/cluster/pilot startup before any task may run.
    pub startup_s: f64,
    /// Per-task cost serialized through the *central* scheduler (driver,
    /// scheduler process, or database). Caps whole-job throughput at
    /// `1 / central_dispatch_s` no matter how many nodes are added.
    pub central_dispatch_s: f64,
    /// Per-task cost charged on the executing core (worker-side spawn,
    /// interpreter dispatch, result pickling). Scales out with cores.
    pub worker_overhead_s: f64,
    /// Serialization tax per byte of task result / shuffled record —
    /// models PySpark's Python↔JVM copies; ~0 for native-Python Dask and
    /// for MPI buffers.
    pub result_ser_s_per_byte: f64,
    /// Software overhead added to every inter-task transfer on top of the
    /// raw network cost — connection handling, framing, event loop. This
    /// is where Dask's "communication layer weaknesses … particularly
    /// visible during broadcast and shuffle" (§4.4.2) live: Dask's
    /// per-message cost is ~5× Spark's, while MPI's native transport adds
    /// nothing measurable.
    pub per_transfer_overhead_s: f64,
    /// Broadcast algorithm (Fig. 8).
    pub broadcast: BroadcastAlgo,
    /// Maximum times a failed task is attempted before the engine gives up
    /// on the job (Spark's `spark.task.maxFailures`, Dask/RP retry loops;
    /// 1 for MPI — any rank failure aborts the communicator).
    pub max_attempts: usize,
    /// How long after a node dies the framework *notices*: the driver's
    /// executor-heartbeat interval for Spark-class systems, the scheduler's
    /// worker heartbeat for Dask, the agent's database poll interval for
    /// RADICAL-Pilot, and the MPI runtime noticing a broken communicator.
    /// Recovery cannot begin before detection.
    pub detection_delay_s: f64,
}

impl FrameworkProfile {
    /// Serialization charge for a result of `bytes` bytes.
    pub fn ser_time(&self, bytes: u64) -> f64 {
        self.result_ser_s_per_byte * bytes as f64
    }

    /// The framework's default recovery policy: bounded attempts with this
    /// profile's heartbeat detection delay and a central-dispatch-scale
    /// exponential backoff (re-dispatch is never cheaper than going back
    /// through the scheduler once).
    pub fn retry_policy(&self) -> netsim::RetryPolicy {
        let policy = netsim::RetryPolicy::new(self.max_attempts as u32)
            .with_detection_delay(self.detection_delay_s)
            .with_backoff(self.central_dispatch_s, 2.0, 64.0 * self.central_dispatch_s);
        if self.detection_delay_s > 0.0 {
            // Suspicion-based detection for split-brain scenarios: workers
            // heartbeat at the profile's detection cadence, and a node is
            // suspected after two silent beats. Only consulted when the
            // fault plan scripts network partitions — fail-stop plans
            // never reach the detector.
            policy.with_suspicion(self.detection_delay_s, 2.0 * self.detection_delay_s)
        } else {
            policy
        }
    }
}

/// Spark 2.2-class profile (via PySpark, as the paper used).
pub fn spark_profile() -> FrameworkProfile {
    FrameworkProfile {
        name: "spark",
        startup_s: 1.0,
        central_dispatch_s: 5e-4, // stage-oriented DAGScheduler: ~2k tasks/s cap
        worker_overhead_s: 0.10,  // executor JVM->Python worker round trip
        result_ser_s_per_byte: 8e-9, // ~125 MB/s pickle + JVM copy
        per_transfer_overhead_s: 5e-5, // netty-based block transfer service
        broadcast: BroadcastAlgo::Tree,
        max_attempts: 4,         // spark.task.maxFailures default
        detection_delay_s: 0.25, // driver-side executor heartbeat window
    }
}

/// Dask 0.14 + Distributed 1.16-class profile.
pub fn dask_profile() -> FrameworkProfile {
    FrameworkProfile {
        name: "dask",
        startup_s: 0.2,
        central_dispatch_s: 5e-5, // lightweight scheduler: ~20k tasks/s cap
        worker_overhead_s: 0.010, // pure-Python direct dispatch
        result_ser_s_per_byte: 1e-9,
        per_transfer_overhead_s: 1e-4, // tornado event loop, per-message python framing
        // Dask's scatter(broadcast=True) in this era tracked every list
        // element as its own scheduler key: ~50 µs of handling per element
        // is what makes its broadcast 40–65% of edge-discovery time in
        // Fig. 8 (vs 3–15% for Spark's torrent broadcast).
        broadcast: BroadcastAlgo::ListWise { per_item_s: 5e-5 },
        max_attempts: 3,
        detection_delay_s: 0.25, // scheduler's worker-heartbeat interval
    }
}

/// RADICAL-Pilot 0.46-class profile. The `central_dispatch_s` here is the
/// *aggregate* of the MongoDB round-trips each Compute-Unit performs; the
/// `pilot` engine charges them transition-by-transition against a single
/// database timeline, which is what produces the plateau.
pub fn pilot_profile() -> FrameworkProfile {
    FrameworkProfile {
        name: "radical-pilot",
        startup_s: 35.0,                  // pilot bootstrap on the allocation
        central_dispatch_s: 12e-3,        // ≈4 DB round-trips × ~3 ms each
        worker_overhead_s: 0.15,          // agent exec spawn (fork/exec per CU)
        result_ser_s_per_byte: 0.0,       // exchanges data via files, not sockets
        per_transfer_overhead_s: 2e-3,    // shared-filesystem open/close per blob
        broadcast: BroadcastAlgo::Linear, // no broadcast primitive; unused
        max_attempts: 3,                  // CU retry via DB re-enqueue
        detection_delay_s: 2.0,           // agent heartbeat via MongoDB poll
    }
}

/// MPI (mpi4py) profile: SPMD, so there is no per-task scheduling at all —
/// the "tasks" are loop iterations inside ranks.
pub fn mpi_profile() -> FrameworkProfile {
    FrameworkProfile {
        name: "mpi4py",
        startup_s: 0.5, // mpirun launch
        central_dispatch_s: 0.0,
        worker_overhead_s: 0.0,
        result_ser_s_per_byte: 1e-9, // mpi4py pickles non-buffer objects
        per_transfer_overhead_s: 0.0,
        broadcast: BroadcastAlgo::Linear,
        max_attempts: 1,        // SPMD: a lost rank aborts the whole job
        detection_delay_s: 1.0, // mpirun noticing the broken communicator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_dispatch_costs_matches_paper() {
        let (s, d, p) = (spark_profile(), dask_profile(), pilot_profile());
        // Dask < Spark < RP in per-task overhead, both central and worker.
        assert!(d.central_dispatch_s < s.central_dispatch_s);
        assert!(s.central_dispatch_s < p.central_dispatch_s);
        assert!(d.worker_overhead_s < s.worker_overhead_s);
        assert!(s.worker_overhead_s < p.worker_overhead_s);
        // RP's plateau: central cap below 100 tasks/s.
        assert!(1.0 / p.central_dispatch_s < 100.0);
        // Dask and Spark caps high enough that workers dominate at <= 10
        // nodes (24 cores each), giving near-linear node scaling.
        assert!(1.0 / d.central_dispatch_s > 4.0 * 24.0 / d.worker_overhead_s * 0.5);
    }

    #[test]
    fn startup_ordering() {
        assert!(dask_profile().startup_s < spark_profile().startup_s);
        assert!(spark_profile().startup_s < pilot_profile().startup_s);
    }

    #[test]
    fn ser_time_is_linear() {
        let s = spark_profile();
        assert_eq!(s.ser_time(0), 0.0);
        assert!((s.ser_time(2_000_000) - 2.0 * s.ser_time(1_000_000)).abs() < 1e-12);
    }

    #[test]
    fn transfer_overheads_rank_spark_below_dask() {
        // §4.4.2: Spark's communication subsystem beats Dask's.
        assert!(spark_profile().per_transfer_overhead_s < dask_profile().per_transfer_overhead_s);
        assert_eq!(mpi_profile().per_transfer_overhead_s, 0.0);
    }

    #[test]
    fn retry_policy_mirrors_the_profile() {
        let p = spark_profile().retry_policy();
        assert_eq!(p.max_attempts, 4);
        assert_eq!(p.detection_delay_s, 0.25);
        assert_eq!(p.backoff_before(2), spark_profile().central_dispatch_s);
        // The pilot's DB poll dominates failure-detection latency.
        assert!(
            pilot_profile().detection_delay_s > dask_profile().detection_delay_s,
            "a database poll is slower than a socket heartbeat"
        );
        // MPI gets exactly one attempt: the policy exists but never retries.
        assert_eq!(mpi_profile().retry_policy().max_attempts, 1);
    }

    #[test]
    fn mpi_has_no_task_overhead() {
        let m = mpi_profile();
        assert_eq!(m.central_dispatch_s, 0.0);
        assert_eq!(m.worker_overhead_s, 0.0);
    }
}
