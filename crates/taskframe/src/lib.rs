//! Shared substrate for the four task-parallel engines (`sparklet`,
//! `dasklet`, `pilot`, `mpilike`):
//!
//! * [`payload`] — byte-accurate size accounting for everything that
//!   crosses a simulated node boundary (broadcast, shuffle, staging);
//! * [`profile`] — per-framework overhead constants (startup, central
//!   dispatch, worker overhead, serialization tax, broadcast algorithm),
//!   calibrated against the paper's Figures 2, 3 and 8;
//! * [`ctx`] — the task execution context handed to task closures;
//! * [`engine`] — a minimal object-safe trait all engines implement for
//!   uniform task-throughput benchmarking (Fig. 2/3); the MD analysis
//!   pipelines use each engine's native API instead, exactly as the paper
//!   wrote one implementation per framework.

pub mod ctx;
pub mod engine;
pub mod payload;
pub mod profile;

pub use ctx::TaskCtx;
pub use engine::{BagEngine, BagTask, Engine, EngineError};
pub use payload::Payload;
pub use profile::{dask_profile, mpi_profile, pilot_profile, spark_profile, FrameworkProfile};
