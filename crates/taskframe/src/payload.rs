//! Wire-size accounting for task inputs and outputs.
//!
//! Every value an engine moves between simulated nodes implements
//! [`Payload`]: `wire_bytes` drives the network-model charge and the
//! shuffle/broadcast byte counters; `item_count` drives Dask's list-wise
//! broadcast tax (per logical element, see
//! `netsim::BroadcastAlgo::ListWise`).
//!
//! Sizes follow a simple length-prefixed binary encoding: scalars are their
//! memory width, sequences add a 4-byte length prefix. They deliberately
//! match what `mdio`'s formats and a compact pickle would produce, so the
//! paper's shuffle-volume observations (e.g. "~100 MB edge list for 524k
//! atoms, reduced >50% by shuffling partial components") reproduce.

use linalg::{Frame, Vec3};

/// A value whose serialized size (and logical element count) is known.
pub trait Payload {
    /// Serialized size in bytes.
    fn wire_bytes(&self) -> u64;

    /// Number of logical elements (1 for scalars; length for sequences).
    fn item_count(&self) -> u64 {
        1
    }
}

macro_rules! scalar_payload {
    ($($t:ty),*) => {$(
        impl Payload for $t {
            fn wire_bytes(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        }
    )*};
}

scalar_payload!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl Payload for () {
    fn wire_bytes(&self) -> u64 {
        0
    }
    fn item_count(&self) -> u64 {
        0
    }
}

impl Payload for String {
    fn wire_bytes(&self) -> u64 {
        4 + self.len() as u64
    }
}

impl Payload for Vec3 {
    fn wire_bytes(&self) -> u64 {
        12
    }
}

impl Payload for Frame {
    fn wire_bytes(&self) -> u64 {
        4 + 12 * self.n_atoms() as u64
    }
    fn item_count(&self) -> u64 {
        self.n_atoms() as u64
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn wire_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, Payload::wire_bytes)
    }
    fn item_count(&self) -> u64 {
        self.as_ref().map_or(0, Payload::item_count)
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn wire_bytes(&self) -> u64 {
        4 + self.iter().map(Payload::wire_bytes).sum::<u64>()
    }
    fn item_count(&self) -> u64 {
        self.len() as u64
    }
}

impl<T: Payload> Payload for &T {
    fn wire_bytes(&self) -> u64 {
        (**self).wire_bytes()
    }
    fn item_count(&self) -> u64 {
        (**self).item_count()
    }
}

impl<T: Payload> Payload for &[T] {
    fn wire_bytes(&self) -> u64 {
        4 + self.iter().map(Payload::wire_bytes).sum::<u64>()
    }
    fn item_count(&self) -> u64 {
        self.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(3u32.wire_bytes(), 4);
        assert_eq!(3.0f64.wire_bytes(), 8);
        assert_eq!(true.wire_bytes(), 1);
        assert_eq!(().wire_bytes(), 0);
        assert_eq!(7u32.item_count(), 1);
    }

    #[test]
    fn sequences_add_prefix() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.wire_bytes(), 4 + 12);
        assert_eq!(v.item_count(), 3);
        assert_eq!(Vec::<u32>::new().wire_bytes(), 4);
    }

    #[test]
    fn edge_lists_are_8_bytes_per_edge() {
        // The paper's ~100 MB edge list for 3.52M edges implies ~28 B/edge
        // in pickled Python; our compact encoding is 8 B/edge + prefix,
        // preserving the *relative* shuffle-volume comparison.
        let edges: Vec<(u32, u32)> = vec![(0, 1); 1000];
        assert_eq!(edges.wire_bytes(), 4 + 8 * 1000);
    }

    #[test]
    fn nested_vectors() {
        let parts: Vec<Vec<u32>> = vec![vec![1, 2], vec![3]];
        assert_eq!(parts.wire_bytes(), 4 + (4 + 8) + (4 + 4));
        assert_eq!(parts.item_count(), 2);
    }

    #[test]
    fn frames_count_atoms() {
        let f = Frame::zeros(10);
        assert_eq!(f.wire_bytes(), 4 + 120);
        assert_eq!(f.item_count(), 10);
        let traj = vec![Frame::zeros(10), Frame::zeros(10)];
        assert_eq!(traj.wire_bytes(), 4 + 2 * 124);
    }

    #[test]
    fn options_and_strings() {
        assert_eq!(Some(1u64).wire_bytes(), 9);
        assert_eq!(None::<u64>.wire_bytes(), 1);
        assert_eq!("abc".to_string().wire_bytes(), 7);
    }
}
