//! The minimal cross-engine interface.
//!
//! The throughput experiments (Fig. 2/3) run the *same* bag of independent
//! tasks on every engine; [`BagEngine`] is that common denominator. The MD
//! analysis pipelines do **not** go through this trait — they are written
//! against each engine's native API (RDDs, delayed graphs, Compute-Units,
//! communicators), mirroring how the paper implemented each algorithm per
//! framework.

use crate::TaskCtx;
use netsim::stream::StreamError;
use netsim::{PolicyError, SimReport};

/// The four reproduced execution frameworks, as data — what a
/// `RunConfig`-style API selects between (the paper's §4 comparison axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// `sparklet`: RDDs, lineage, torrent broadcast (PySpark).
    Spark,
    /// `dasklet`: eager delayed graphs, distributed memory manager
    /// (Dask-distributed).
    Dask,
    /// `pilot`: Compute-Units through a MongoDB-coordinated pilot agent
    /// (RADICAL-Pilot).
    Pilot,
    /// `mpilike`: rank threads + collectives (mpi4py).
    Mpi,
}

impl Engine {
    /// All engines, in the paper's presentation order.
    pub const ALL: [Engine; 4] = [Engine::Spark, Engine::Dask, Engine::Pilot, Engine::Mpi];

    /// Short lowercase name (CLI values, JSON keys, trace labels).
    pub fn label(self) -> &'static str {
        match self {
            Engine::Spark => "spark",
            Engine::Dask => "dask",
            Engine::Pilot => "pilot",
            Engine::Mpi => "mpi",
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "spark" | "sparklet" => Ok(Engine::Spark),
            "dask" | "dasklet" => Ok(Engine::Dask),
            "pilot" | "rp" => Ok(Engine::Pilot),
            "mpi" | "mpilike" => Ok(Engine::Mpi),
            other => Err(format!(
                "unknown engine {other:?} (want spark|dask|pilot|mpi)"
            )),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A task in a flat bag: runs with a context, returns a small result.
pub type BagTask = Box<dyn Fn(&TaskCtx) -> u64 + Send + Sync>;

/// Errors an engine can surface mid-job.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A task (or the engine's own data structures) exceeded a simulated
    /// node's memory — reproduces the paper's cdist / broadcast failures.
    OutOfMemory {
        node_mem: u64,
        required: u64,
        what: String,
    },
    /// A per-node memory budget (possibly shrunk mid-run by a fault plan)
    /// left the engine no degradation path: nothing further to spill,
    /// evict, chunk, or queue. Unlike [`EngineError::OutOfMemory`] — a
    /// single structure that never fits — this is pressure exhausting the
    /// engine's coping machinery, and it must surface typed, never as a
    /// panic or hang.
    MemoryExhausted {
        node: usize,
        budget: u64,
        required: u64,
        at_s: f64,
        what: String,
    },
    /// The engine refused the workload (e.g. RADICAL-Pilot beyond 16k
    /// tasks, §4.1: "we were not able to scale RADICAL-Pilot to 32k or
    /// more tasks").
    Unsupported(String),
    /// A worker/node died and the engine could not (or by design does not)
    /// recover — MPI aborts the communicator; task engines surface this
    /// only after exhausting `max_attempts`.
    WorkerLost { node: usize, at_s: f64 },
    /// Every attempt allowed by the engine's
    /// [`RetryPolicy`](netsim::RetryPolicy) was killed by a node death.
    RetriesExhausted { attempts: u32, last_failure_s: f64 },
    /// The engine's per-attempt watchdog killed the final allowed attempt.
    TaskTimeout {
        attempt: u32,
        timeout_s: f64,
        at_s: f64,
    },
    /// No attempt could finish before the policy's absolute deadline.
    DeadlineExceeded { deadline_s: f64, at_s: f64 },
    /// Every node that could host work is dead.
    NoSurvivingWorkers { at_s: f64 },
    /// The service refused the submission outright — backpressure, a
    /// tenant quota, or a job no cluster could ever host. Unlike the
    /// recovery errors above, nothing was attempted: rejection is the
    /// admission layer's typed alternative to unbounded queueing.
    Rejected {
        tenant: usize,
        reason: String,
        at_s: f64,
    },
    /// A streaming pipeline stopped making progress — the producer crashed
    /// with windows still open, or backpressure dead-locked with no
    /// scheduled budget change to wait for — and the
    /// [`RetryPolicy`](netsim::RetryPolicy) watchdog fired at `at_s`
    /// instead of letting the run hang. `open_windows` is how many
    /// event-time windows were still waiting on frames.
    StreamStalled { at_s: f64, open_windows: usize },
}

impl From<PolicyError> for EngineError {
    fn from(e: PolicyError) -> Self {
        match e {
            PolicyError::RetriesExhausted {
                attempts,
                last_failure_s,
            } => EngineError::RetriesExhausted {
                attempts,
                last_failure_s,
            },
            PolicyError::Timeout {
                attempt,
                timeout_s,
                at_s,
            } => EngineError::TaskTimeout {
                attempt,
                timeout_s,
                at_s,
            },
            PolicyError::DeadlineExceeded { deadline_s, at_s } => {
                EngineError::DeadlineExceeded { deadline_s, at_s }
            }
            PolicyError::NoSurvivingCore { at_s } => EngineError::NoSurvivingWorkers { at_s },
        }
    }
}

impl From<StreamError> for EngineError {
    fn from(e: StreamError) -> Self {
        match e {
            StreamError::Stalled { at_s, open_windows } => {
                EngineError::StreamStalled { at_s, open_windows }
            }
            StreamError::Policy(p) => p.into(),
            StreamError::Memory {
                node,
                budget,
                required,
                at_s,
            } => EngineError::MemoryExhausted {
                node,
                budget,
                required,
                at_s,
                what: "stream window state".into(),
            },
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::OutOfMemory {
                node_mem,
                required,
                what,
            } => write!(
                f,
                "out of memory: {what} needs {required} bytes, node has {node_mem}"
            ),
            EngineError::MemoryExhausted {
                node,
                budget,
                required,
                at_s,
                what,
            } => write!(
                f,
                "memory exhausted (out of memory): {what} needs {required} bytes on node \
                 {node} but only {budget} remain at {at_s:.3}s"
            ),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::WorkerLost { node, at_s } => {
                write!(f, "worker lost: node {node} died at {at_s}s")
            }
            EngineError::RetriesExhausted {
                attempts,
                last_failure_s,
            } => write!(
                f,
                "retries exhausted: task failed after {attempts} attempts \
                 (last failure at {last_failure_s:.3}s)"
            ),
            EngineError::TaskTimeout {
                attempt,
                timeout_s,
                at_s,
            } => write!(
                f,
                "task timeout: attempt {attempt} exceeded {timeout_s:.3}s at {at_s:.3}s"
            ),
            EngineError::DeadlineExceeded { deadline_s, at_s } => write!(
                f,
                "deadline exceeded: cannot finish by {deadline_s:.3}s (checked at {at_s:.3}s)"
            ),
            EngineError::NoSurvivingWorkers { at_s } => {
                write!(f, "no surviving workers at {at_s:.3}s (all nodes dead)")
            }
            EngineError::Rejected {
                tenant,
                reason,
                at_s,
            } => write!(f, "rejected: tenant {tenant} at {at_s:.3}s: {reason}"),
            EngineError::StreamStalled { at_s, open_windows } => write!(
                f,
                "stream stalled: no progress possible at {at_s:.3}s with \
                 {open_windows} window(s) still open"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Uniform "run a bag of independent tasks" interface for throughput
/// benchmarking.
pub trait BagEngine {
    fn name(&self) -> &'static str;

    /// Execute all tasks, returning their results (in task order) and the
    /// simulated execution report.
    fn run_bag(&mut self, tasks: Vec<BagTask>) -> Result<(Vec<u64>, SimReport), EngineError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_labels_round_trip() {
        for e in Engine::ALL {
            assert_eq!(e.label().parse::<Engine>().unwrap(), e);
            assert_eq!(e.to_string(), e.label());
        }
        assert_eq!("mpilike".parse::<Engine>().unwrap(), Engine::Mpi);
        assert!("ray".parse::<Engine>().is_err());
    }

    #[test]
    fn error_display() {
        let e = EngineError::OutOfMemory {
            node_mem: 10,
            required: 20,
            what: "cdist".into(),
        };
        assert!(e.to_string().contains("cdist"));
        let u = EngineError::Unsupported("too many tasks".into());
        assert!(u.to_string().contains("too many tasks"));
        let m = EngineError::MemoryExhausted {
            node: 1,
            budget: 512,
            required: 1024,
            at_s: 2.5,
            what: "collective buffer".into(),
        };
        let shown = m.to_string();
        assert!(shown.contains("memory exhausted"));
        assert!(shown.contains("out of memory"));
        assert!(shown.contains("collective buffer"));
    }
}
