//! Edge-discovery ablation (the heart of Fig. 7's approach 3 vs 4):
//! brute-force `cdist` vs BallTree vs cell list on bilayer systems of
//! increasing size. The paper's crossover — brute force wins small, trees
//! win large — should be visible in the scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdsim::BilayerSpec;
use neighbors::{neighbor_pairs, SearchStrategy};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("edge_discovery");
    g.sample_size(10);
    for n in [1024usize, 4096, 16384] {
        let b = mdsim::bilayer::generate(
            &BilayerSpec {
                n_atoms: n,
                ..Default::default()
            },
            7,
        );
        let cutoff = b.suggested_cutoff;
        for (label, strategy) in [
            ("brute", SearchStrategy::BruteForce),
            ("balltree", SearchStrategy::BallTree),
            ("celllist", SearchStrategy::CellList),
        ] {
            // O(n²) brute force on 16k atoms is slow; keep it but only there.
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bch, _| {
                bch.iter(|| neighbor_pairs(black_box(&b.positions), cutoff, strategy))
            });
        }
    }
    g.finish();
}

fn bench_tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("balltree_build");
    g.sample_size(20);
    for n in [4096usize, 16384] {
        let b = mdsim::bilayer::generate(
            &BilayerSpec {
                n_atoms: n,
                ..Default::default()
            },
            3,
        );
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| neighbors::BallTree::build(black_box(&b.positions), 16))
        });
    }
    g.finish();
}

/// The Leaflet-Finder block kernels the generic analysis API dispatches:
/// brute `block_edges` vs `block_edges_tree` on a full diagonal block.
fn bench_lf_block_kernels(c: &mut Criterion) {
    use mdtask_core::leaflet::{block_edges, block_edges_tree};
    use mdtask_core::partition::Block;
    let mut g = c.benchmark_group("lf_block_kernels");
    g.sample_size(10);
    for n in [4096usize, 16384] {
        let b = mdsim::bilayer::generate(
            &BilayerSpec {
                n_atoms: n,
                ..Default::default()
            },
            17,
        );
        let cutoff = b.suggested_cutoff;
        let block = Block {
            row: (0, b.positions.len() as u32),
            col: (0, b.positions.len() as u32),
        };
        g.bench_with_input(BenchmarkId::new("brute", n), &n, |bch, _| {
            bch.iter(|| block_edges(black_box(&b.positions), block, cutoff))
        });
        g.bench_with_input(BenchmarkId::new("tree", n), &n, |bch, _| {
            bch.iter(|| block_edges_tree(black_box(&b.positions), block, cutoff))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_tree_build,
    bench_lf_block_kernels
);
criterion_main!(benches);
