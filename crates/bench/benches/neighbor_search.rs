//! Edge-discovery ablation (the heart of Fig. 7's approach 3 vs 4):
//! brute-force `cdist` vs BallTree vs cell list on bilayer systems of
//! increasing size. The paper's crossover — brute force wins small, trees
//! win large — should be visible in the scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdsim::BilayerSpec;
use neighbors::{neighbor_pairs, SearchStrategy};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("edge_discovery");
    g.sample_size(10);
    for n in [1024usize, 4096, 16384] {
        let b = mdsim::bilayer::generate(
            &BilayerSpec {
                n_atoms: n,
                ..Default::default()
            },
            7,
        );
        let cutoff = b.suggested_cutoff;
        for (label, strategy) in [
            ("brute", SearchStrategy::BruteForce),
            ("balltree", SearchStrategy::BallTree),
            ("celllist", SearchStrategy::CellList),
        ] {
            // O(n²) brute force on 16k atoms is slow; keep it but only there.
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bch, _| {
                bch.iter(|| neighbor_pairs(black_box(&b.positions), cutoff, strategy))
            });
        }
    }
    g.finish();
}

fn bench_tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("balltree_build");
    g.sample_size(20);
    for n in [4096usize, 16384] {
        let b = mdsim::bilayer::generate(
            &BilayerSpec {
                n_atoms: n,
                ..Default::default()
            },
            3,
        );
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| neighbors::BallTree::build(black_box(&b.positions), 16))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_tree_build);
criterion_main!(benches);
