//! Hausdorff ablation: the naive Algorithm 1 vs the early-break algorithm
//! the paper cites as an available speedup (§2.1.1, ref [34]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::{frame_rmsd, hausdorff_early_break, hausdorff_naive};
use mdsim::ChainSpec;
use std::hint::black_box;

fn bench_hausdorff(c: &mut Criterion) {
    let mut g = c.benchmark_group("hausdorff");
    g.sample_size(20);
    for frames in [20usize, 60] {
        let spec = ChainSpec {
            n_atoms: 100,
            n_frames: frames,
            stride: 1,
            ..ChainSpec::default()
        };
        let a = mdsim::chain::generate(&spec, 1);
        let b = mdsim::chain::generate(&spec, 2);
        g.bench_with_input(BenchmarkId::new("naive", frames), &frames, |bch, _| {
            bch.iter(|| hausdorff_naive(black_box(&a.frames), black_box(&b.frames), frame_rmsd))
        });
        g.bench_with_input(
            BenchmarkId::new("early_break", frames),
            &frames,
            |bch, _| {
                bch.iter(|| {
                    hausdorff_early_break(black_box(&a.frames), black_box(&b.frames), frame_rmsd)
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("pruned", frames), &frames, |bch, _| {
            bch.iter(|| linalg::hausdorff_rmsd_pruned(black_box(&a.frames), black_box(&b.frames)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hausdorff);
criterion_main!(benches);
