//! Connected-components ablation: union–find vs BFS on bilayer cutoff
//! graphs, plus the partial-components merge (Approach 3's reduce).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphops::{
    connected_components_bfs, connected_components_uf, merge_partials, partial_components,
};
use mdsim::BilayerSpec;
use std::hint::black_box;

fn bilayer_edges(n: usize) -> (usize, Vec<(u32, u32)>) {
    let b = mdsim::bilayer::generate(
        &BilayerSpec {
            n_atoms: n,
            ..Default::default()
        },
        7,
    );
    let edges = neighbors::neighbor_pairs(
        &b.positions,
        b.suggested_cutoff,
        neighbors::SearchStrategy::CellList,
    );
    (n, edges)
}

fn bench_cc(c: &mut Criterion) {
    let mut g = c.benchmark_group("connected_components");
    g.sample_size(20);
    for n in [4096usize, 16384] {
        let (n, edges) = bilayer_edges(n);
        g.bench_with_input(BenchmarkId::new("union_find", n), &n, |bch, _| {
            bch.iter(|| connected_components_uf(n, black_box(&edges)))
        });
        g.bench_with_input(BenchmarkId::new("bfs", n), &n, |bch, _| {
            bch.iter(|| connected_components_bfs(n, black_box(&edges)))
        });
    }
    g.finish();
}

fn bench_partial_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("partial_cc");
    g.sample_size(20);
    let (_, edges) = bilayer_edges(8192);
    for chunks in [16usize, 64] {
        let parts: Vec<_> = edges
            .chunks(edges.len().div_ceil(chunks))
            .map(partial_components)
            .collect();
        g.bench_with_input(BenchmarkId::new("merge", chunks), &chunks, |bch, _| {
            bch.iter(|| merge_partials(black_box(&parts)))
        });
    }
    g.bench_function("partial_of_full_edge_list", |bch| {
        bch.iter(|| partial_components(black_box(&edges)))
    });
    g.finish();
}

criterion_group!(benches, bench_cc, bench_partial_merge);
criterion_main!(benches);
