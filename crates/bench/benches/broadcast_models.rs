//! Broadcast-algorithm ablation (the mechanism behind Fig. 8): linear vs
//! tree vs list-wise distribution cost, as pure model evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::{broadcast_time, BroadcastAlgo, NetworkModel};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let net = NetworkModel::infiniband();
    let mut g = c.benchmark_group("broadcast_models");
    for dests in [1usize, 7, 15] {
        g.bench_with_input(BenchmarkId::new("eval", dests), &dests, |bch, &d| {
            bch.iter(|| {
                let bytes = black_box(1u64 << 20);
                let items = black_box(131_072u64);
                (
                    broadcast_time(&net, BroadcastAlgo::Linear, bytes, items, d),
                    broadcast_time(&net, BroadcastAlgo::Tree, bytes, items, d),
                    broadcast_time(
                        &net,
                        BroadcastAlgo::ListWise { per_item_s: 5e-5 },
                        bytes,
                        items,
                        d,
                    ),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
