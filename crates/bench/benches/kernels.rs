//! Kernel micro-benchmarks: the GNU-vs-Intel-O3 contrast of Fig. 6 at the
//! single-frame level, plus the dRMS ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::{drms, frame_rmsd, frame_rmsd_blocked, Frame, Vec3};
use std::hint::black_box;

fn frame_pair(n: usize) -> (Frame, Frame) {
    let a: Vec<Vec3> = (0..n)
        .map(|i| Vec3::new(i as f32 * 0.37, (i % 17) as f32, (i % 5) as f32 * 1.3))
        .collect();
    let b: Vec<Vec3> = a
        .iter()
        .map(|p| Vec3::new(p.x + 0.5, p.y - 0.25, p.z + 0.125))
        .collect();
    (Frame::new(a), Frame::new(b))
}

fn bench_rmsd(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_rmsd");
    for n in [334usize, 3341, 13364] {
        let (a, b) = frame_pair(n);
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| frame_rmsd(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| frame_rmsd_blocked(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("noopt(gnu)", n), &n, |bch, _| {
            bch.iter(|| cpptraj::frame_rmsd_noopt(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_drms(c: &mut Criterion) {
    let mut g = c.benchmark_group("drms");
    for n in [64usize, 256] {
        let (a, b) = frame_pair(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| drms(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rmsd, bench_drms);
criterion_main!(benches);
