//! Serialization benches: MDT encode/decode (the staging path every
//! RADICAL-Pilot unit pays) and XYZ text round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdsim::ChainSpec;
use std::hint::black_box;

fn bench_mdt(c: &mut Criterion) {
    let mut g = c.benchmark_group("mdt_codec");
    for atoms in [334usize, 3341] {
        let spec = ChainSpec {
            n_atoms: atoms,
            n_frames: 102,
            stride: 1,
            ..ChainSpec::default()
        };
        let t = mdsim::chain::generate(&spec, 1);
        let bytes = mdio::mdt::encode_mdt(&t.frames).unwrap();
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", atoms), &atoms, |bch, _| {
            bch.iter(|| mdio::mdt::encode_mdt(black_box(&t.frames)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("decode", atoms), &atoms, |bch, _| {
            bch.iter(|| mdio::mdt::decode_mdt(black_box(&bytes)).unwrap())
        });
    }
    g.finish();
}

fn bench_xyz(c: &mut Criterion) {
    let mut g = c.benchmark_group("xyz_codec");
    g.sample_size(20);
    let spec = ChainSpec {
        n_atoms: 334,
        n_frames: 20,
        stride: 1,
        ..ChainSpec::default()
    };
    let t = mdsim::chain::generate(&spec, 1);
    let text = mdio::xyz::encode_xyz(&t.frames);
    g.bench_function("encode", |bch| {
        bch.iter(|| mdio::xyz::encode_xyz(black_box(&t.frames)))
    });
    g.bench_function("decode", |bch| {
        bch.iter(|| mdio::xyz::decode_xyz(black_box(&text)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_mdt, bench_xyz);
criterion_main!(benches);
