//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary gets the same four flags for free:
//!
//! * `--engine spark|dask|pilot|mpi` — restrict an engine sweep;
//! * `--threads 1|N|auto` — host-parallelism degree, installed as the
//!   process default (`netsim::parallel::set_default_threads`) before
//!   `parse` returns, so engines pick it up without further plumbing;
//! * `--trace-out PATH` — Chrome-trace JSON of a traced run;
//! * `--metrics-out PATH` — metrics-summary JSON.
//!
//! Binary-specific flags are declared with [`Cli::value`] /
//! [`Cli::switch`] and read back from [`Args`]. Unknown flags abort with
//! the full flag list, and `--help` prints it.

use netsim::Threads;
use std::collections::BTreeMap;
use taskframe::Engine;

struct Spec {
    flag: &'static str,
    /// Placeholder for a value-taking flag (`None` = boolean switch).
    value: Option<&'static str>,
    help: &'static str,
}

/// Flag-set builder: common flags plus the binary's own.
pub struct Cli {
    specs: Vec<Spec>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli::new()
    }
}

impl Cli {
    pub fn new() -> Cli {
        Cli { specs: Vec::new() }
    }

    /// Declare a binary-specific flag that takes a value.
    pub fn value(
        mut self,
        flag: &'static str,
        placeholder: &'static str,
        help: &'static str,
    ) -> Cli {
        self.specs.push(Spec {
            flag,
            value: Some(placeholder),
            help,
        });
        self
    }

    /// Declare a binary-specific boolean switch.
    pub fn switch(mut self, flag: &'static str, help: &'static str) -> Cli {
        self.specs.push(Spec {
            flag,
            value: None,
            help,
        });
        self
    }

    fn usage(&self) -> String {
        let mut lines = vec![
            "  --engine spark|dask|pilot|mpi   restrict to one engine".to_string(),
            "  --threads 1|N|auto              host threads for real compute".to_string(),
            "  --trace-out PATH                write a Chrome-trace JSON".to_string(),
            "  --metrics-out PATH              write a metrics-summary JSON".to_string(),
        ];
        for s in &self.specs {
            let head = match s.value {
                Some(v) => format!("  {} {v}", s.flag),
                None => format!("  {}", s.flag),
            };
            lines.push(format!("{head:<34}{}", s.help));
        }
        lines.join("\n")
    }

    /// Parse `std::env::args`. `--help`/`-h` prints the flag list and
    /// exits; unknown flags panic with the same list.
    pub fn parse(self) -> Args {
        self.parse_from(std::env::args().skip(1))
    }

    /// Parse an explicit argument stream (testable entry point).
    pub fn parse_from(self, args: impl Iterator<Item = String>) -> Args {
        fn take(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        }
        let mut out = Args {
            engine: None,
            threads: None,
            trace_out: None,
            metrics_out: None,
            values: BTreeMap::new(),
            switches: Vec::new(),
        };
        let mut args = args;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--engine" => {
                    let v = take(&mut args, "--engine");
                    out.engine = Some(
                        v.parse::<Engine>()
                            .unwrap_or_else(|e| panic!("--engine: {e}")),
                    );
                }
                "--threads" => {
                    let v = take(&mut args, "--threads");
                    let t = v
                        .parse::<Threads>()
                        .unwrap_or_else(|e| panic!("--threads: {e}"));
                    netsim::parallel::set_default_threads(t);
                    out.threads = Some(t);
                }
                "--trace-out" => out.trace_out = Some(take(&mut args, "--trace-out")),
                "--metrics-out" => out.metrics_out = Some(take(&mut args, "--metrics-out")),
                "--help" | "-h" => {
                    eprintln!("flags:\n{}", self.usage());
                    std::process::exit(0);
                }
                other => match self.specs.iter().find(|s| s.flag == other) {
                    Some(spec) if spec.value.is_some() => {
                        let v = take(&mut args, spec.flag);
                        out.values.insert(spec.flag, v);
                    }
                    Some(spec) => out.switches.push(spec.flag),
                    None => panic!("unknown flag {other}\nflags:\n{}", self.usage()),
                },
            }
        }
        out
    }
}

/// Parsed arguments: the common flags as fields, binary-specific flags
/// behind typed accessors.
pub struct Args {
    pub engine: Option<Engine>,
    pub threads: Option<Threads>,
    pub trace_out: Option<String>,
    pub metrics_out: Option<String>,
    values: BTreeMap<&'static str, String>,
    switches: Vec<&'static str>,
}

impl Args {
    /// Raw value of a binary-specific flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// Was a boolean switch given?
    pub fn has(&self, flag: &str) -> bool {
        self.switches.contains(&flag)
    }

    pub fn usize_or(&self, flag: &str, default: usize) -> usize {
        self.parsed_or(flag, default)
    }

    pub fn u64_or(&self, flag: &str, default: u64) -> u64 {
        self.parsed_or(flag, default)
    }

    pub fn f64_or(&self, flag: &str, default: f64) -> f64 {
        self.parsed_or(flag, default)
    }

    pub fn str_or(&self, flag: &str, default: &str) -> String {
        self.get(flag).unwrap_or(default).to_string()
    }

    fn parsed_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.get(flag) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("{flag}: invalid value {v:?}")),
        }
    }

    /// The engines a sweep should cover: the `--engine` filter, or all.
    pub fn engines(&self) -> Vec<Engine> {
        match self.engine {
            Some(e) => vec![e],
            None => Engine::ALL.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn common_and_extra_flags_parse() {
        let args = Cli::new()
            .value("--plans", "N", "plan count")
            .switch("--fast", "skip slow parts")
            .parse_from(argv(&[
                "--engine",
                "dask",
                "--plans",
                "42",
                "--fast",
                "--metrics-out",
                "m.json",
            ]));
        assert_eq!(args.engine, Some(Engine::Dask));
        assert_eq!(args.usize_or("--plans", 7), 42);
        assert!(args.has("--fast"));
        assert_eq!(args.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(args.trace_out, None);
        assert_eq!(args.engines(), vec![Engine::Dask]);
    }

    #[test]
    fn defaults_apply_when_flags_absent() {
        let args = Cli::new()
            .value("--out", "PATH", "output path")
            .parse_from(argv(&[]));
        assert_eq!(args.engine, None);
        assert_eq!(args.str_or("--out", "results/x.json"), "results/x.json");
        assert_eq!(args.engines().len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        Cli::new().parse_from(argv(&["--nope"]));
    }

    #[test]
    fn threads_flag_parses() {
        let args = Cli::new().parse_from(argv(&["--threads", "2"]));
        assert_eq!(args.threads, Some(Threads::Fixed(2)));
    }
}
