//! Shared harness for the experiment binaries (`exp_fig2` … `exp_tab3`).
//!
//! Every binary regenerates one figure or table from the paper's
//! evaluation section, printing the same rows/series the paper reports.
//! Times are **virtual** (simulated cluster seconds — see `netsim`);
//! computation is real.
//!
//! Common flags:
//! * `--scale N` — divide dataset sizes by `N` (default 32 for Leaflet
//!   Finder systems, 16 for PSA ensembles; frame counts and task layouts
//!   are never scaled). The memory model always reasons at paper scale.
//! * `--full` — paper-sized datasets (`scale = 1`). Expect hours.
//! * `--machine comet|wrangler` — machine profile where the paper varies
//!   it.
//! * `--trace-out PATH` — write a Chrome-trace JSON (open in Perfetto) of
//!   a traced run to `PATH`.
//! * `--metrics-out PATH` — write the run's metrics summary JSON to
//!   `PATH`.

use netsim::{comet, wrangler, MachineProfile, Metrics, SimReport};

pub mod cli;

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Opts {
    pub scale: usize,
    pub machine: MachineProfile,
    pub trace_out: Option<String>,
    pub metrics_out: Option<String>,
    /// `--engine` filter: `None` means every engine the binary covers.
    pub engine: Option<taskframe::Engine>,
    /// `--threads` as given (already installed as the process default).
    pub threads: Option<netsim::Threads>,
}

impl Opts {
    /// Parse `std::env::args`, with a default scale divisor.
    pub fn parse(default_scale: usize) -> Opts {
        let args = cli::Cli::new()
            .value("--scale", "N", "divide dataset sizes by N")
            .switch("--full", "paper-sized datasets (scale = 1)")
            .value("--machine", "comet|wrangler", "machine profile")
            .parse();
        let scale = if args.has("--full") {
            1
        } else {
            let s = args.usize_or("--scale", default_scale);
            assert!(s >= 1, "--scale must be >= 1");
            s
        };
        let machine = match args.get("--machine") {
            None | Some("wrangler") => wrangler(),
            Some("comet") => comet(),
            Some(other) => panic!("unknown machine {other:?}"),
        };
        Opts {
            scale,
            machine,
            trace_out: args.trace_out.clone(),
            metrics_out: args.metrics_out.clone(),
            engine: args.engine,
            threads: args.threads,
        }
    }

    /// Did the user ask for any observability artifact?
    pub fn wants_observability(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }
}

/// Write the artifacts requested by `--trace-out` / `--metrics-out` from a
/// traced run's report, creating parent directories as needed.
pub fn write_observability(opts: &Opts, report: &SimReport, n_cores: usize) {
    if let Some(path) = &opts.trace_out {
        let trace = report
            .trace
            .as_ref()
            .expect("--trace-out needs a traced run (enable_trace)");
        write_artifact(path, &trace.to_chrome_json());
    }
    if let Some(path) = &opts.metrics_out {
        write_artifact(path, &Metrics::from_report(report, n_cores).to_json());
    }
}

fn write_artifact(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    std::fs::write(path, contents).expect("write artifact");
    eprintln!("wrote {path}");
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Format seconds compactly.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

/// The paper's "Cores/Nodes" axis for Wrangler-class nodes (24/node).
pub fn cores_nodes_label(cores: usize, profile: &MachineProfile) -> String {
    format!("{}/{}", cores, cores.div_ceil(profile.cores_per_node))
}

/// Zero-workload tasks (the paper's `/bin/hostname`).
pub fn zero_tasks(n: usize) -> Vec<taskframe::BagTask> {
    (0..n)
        .map(|i| Box::new(move |_: &taskframe::TaskCtx| i as u64) as taskframe::BagTask)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(secs(0.1234), "0.1234");
    }

    #[test]
    fn cores_nodes() {
        // Matches the paper's Wrangler axis labels (32 HT slots per node).
        let w = wrangler();
        assert_eq!(cores_nodes_label(256, &w), "256/8");
        assert_eq!(cores_nodes_label(32, &w), "32/1");
        assert_eq!(cores_nodes_label(16, &w), "16/1");
    }
}
