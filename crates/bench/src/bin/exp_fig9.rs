//! Figure 9 — RADICAL-Pilot Task API and 2-D Partitioned Leaflet Finder
//! (Approach 2).
//!
//! "Runtime for multiple system sizes over different number of cores.
//! Overheads dominate since execution times are similar despite the system
//! size" — and performance improves dramatically once more than 64 cores
//! are available.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_fig9
//! ```

use bench::{cores_nodes_label, secs, Opts};
use mdsim::{lf_dataset, LfDatasetId};
use mdtask_core::leaflet::LfConfig;
use mdtask_core::run::{run_lf, RunConfig};
use netsim::Cluster;
use std::sync::Arc;
use taskframe::Engine;

fn main() {
    let opts = Opts::parse(32);
    let cores_axis = [32usize, 64, 128, 256];
    println!(
        "Fig. 9: Leaflet Finder approach 2 on RADICAL-Pilot, {} (atoms ÷{})",
        opts.machine.name, opts.scale
    );
    println!(
        "\n{:>9} | {:>12} {:>12} {:>12}",
        "cores/nd", "131k (s)", "262k (s)", "524k (s)"
    );

    let datasets: Vec<_> = [
        LfDatasetId::Atoms131k,
        LfDatasetId::Atoms262k,
        LfDatasetId::Atoms524k,
    ]
    .into_iter()
    .map(|id| {
        let system = lf_dataset(id, opts.scale, 7);
        let cfg = LfConfig {
            cutoff: system.suggested_cutoff,
            partitions: 1024,
            paper_atoms: id.paper_atoms(),
            charge_io: true,
        };
        (Arc::new(system.positions), cfg)
    })
    .collect();

    for &cores in &cores_axis {
        let mut row: Vec<String> = Vec::new();
        for (positions, cfg) in &datasets {
            let rc = RunConfig::new(
                Cluster::with_cores(opts.machine.clone(), cores),
                Engine::Pilot,
            );
            let out = run_lf(&rc, Arc::clone(positions), cfg).expect("RP runs approach 2");
            row.push(secs(out.report.makespan_s));
        }
        println!(
            "{:>9} | {:>12} {:>12} {:>12}",
            cores_nodes_label(cores, &opts.machine),
            row[0],
            row[1],
            row[2]
        );
    }
    println!(
        "\npaper shape: runtimes are similar across system sizes because\n\
         RADICAL-Pilot's task-management overhead (DB round-trips for 1035\n\
         units) dominates the actual edge-discovery compute."
    );
}
