//! Figure 6 — Hausdorff Distance using CPPTraj.
//!
//! "Runtimes and Speedup over different number of cores" for 128 small
//! trajectories on 20-core Haswell nodes, 1–240 cores, two builds: GNU
//! with no optimization vs Intel `-Wall -O3`. Near-linear speedups; the
//! optimized build is several times faster in absolute terms.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_fig6
//! ```

use bench::{secs, Opts};
use cpptraj::{ensemble_psa, KernelBuild};
use mdsim::{psa_ensemble, PsaSize};
use netsim::{Cluster, MachineProfile, NetworkModel};

/// The paper's CPPTraj testbed: 20-core Haswell nodes.
fn haswell20() -> MachineProfile {
    MachineProfile {
        name: "haswell-20".into(),
        cores_per_node: 20,
        core_efficiency: 1.0,
        mem_per_node: 128 * (1 << 30),
        disk_bandwidth_bps: 5.0e8,
        network: NetworkModel::infiniband(),
    }
}

fn main() {
    let opts = Opts::parse(4);
    let count = if opts.scale == 1 { 128 } else { 32 };
    let ensemble = psa_ensemble(PsaSize::Small, count, opts.scale, 42);
    println!(
        "Fig. 6: CPPTraj 2D-RMSD/Hausdorff, {count} small trajectories (atoms ÷{})",
        opts.scale
    );

    let cores_axis = [1usize, 20, 60, 120, 240];
    println!(
        "\n{:>6} | {:>12} {:>9} | {:>12} {:>9}",
        "cores", "GNU (s)", "speedup", "IntelO3 (s)", "speedup"
    );
    // Sweep points are independent simulations, so they fan out across
    // host threads (`--threads`); results come back in axis order.
    let rows = netsim::parallel::run_indexed(cores_axis.len(), |i| {
        let cores = cores_axis[i];
        let run = |build: KernelBuild| {
            ensemble_psa(
                Cluster::with_cores(haswell20(), cores),
                cores,
                build,
                &ensemble,
            )
            .report
            .makespan_s
        };
        (run(KernelBuild::GnuNoOpt), run(KernelBuild::IntelO3))
    });
    let base = rows[0];
    for (&cores, &(gnu, intel)) in cores_axis.iter().zip(&rows) {
        println!(
            "{:>6} | {:>12} {:>9.1} | {:>12} {:>9.1}",
            cores,
            secs(gnu),
            base.0 / gnu,
            secs(intel),
            base.1 / intel
        );
    }
    println!(
        "\npaper shape: the optimized build is several times faster at every\n\
         core count; both builds speed up near-linearly until task\n\
         granularity runs out around 100–200 cores."
    );
}
