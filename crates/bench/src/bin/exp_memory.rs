//! Memory-pressure sweep (PR-4): per-node memory limit vs runtime and
//! degradation cost for every engine.
//!
//! A fixed Leaflet Finder job runs fault-free once per engine to measure
//! its peak resident footprint (the memory ledger's high-water mark; for
//! MPI, which holds no resident state, the bytes its collectives move).
//! The job then re-runs with both nodes capped at a sweep of fractions
//! of that footprint, applied through `FaultPlan::shrink_memory` at t=0
//! — the same mechanism chaos plans use for mid-run shrinks. Each point
//! records the makespan inflation and the engine's degradation counters
//! (`bytes_spilled`, `bytes_evicted`, `recomputed_partitions`,
//! `oom_kills`), or the typed error once the cap leaves the engine no
//! coping path.
//!
//! The expected shapes: Spark/Dask degrade smoothly (spill and recompute
//! cost time, never correctness), Pilot serializes admission (longer
//! makespan, no spills), MPI chunks its collectives (latency grows) and
//! falls off a cliff into `MemoryExhausted` once a replica outgrows the
//! fixed per-rank buffers.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_memory
//! cargo run -p bench --release --bin exp_memory -- --out results/memory.json
//! ```

use bench::secs;
use mdsim::BilayerSpec;
use mdtask_core::leaflet::{LfApproach, LfConfig};
use mdtask_core::run::{run_lf, RunConfig};
use netsim::{laptop, Cluster, FaultPlan, SimReport};
use std::sync::Arc;
use taskframe::Engine;

/// Caps swept, as fractions of the fault-free peak footprint.
const MEM_FRACS: [f64; 6] = [1.0, 0.75, 0.5, 0.35, 0.25, 0.15];
/// MPI's footprint proxy (bytes its collectives move) understates the
/// real requirement — the node budget is sliced into per-core rank
/// buffers, so the gather root needs cores_per_node x its inbound bytes.
/// Sweep higher fractions so the chunking regime (complete, extra
/// latency) is visible before the MemoryExhausted cliff.
const MPI_MEM_FRACS: [f64; 6] = [4.0, 3.0, 2.0, 1.6, 1.0, 0.5];
const MPI_WORLD: usize = 16;

/// One sweep point: both nodes capped at `cap_bytes` and what it cost.
struct Point {
    mem_frac: f64,
    cap_bytes: u64,
    outcome: Outcome,
}

enum Outcome {
    Completed {
        makespan_s: f64,
        overhead_s: f64,
        bytes_spilled: u64,
        bytes_evicted: u64,
        recomputed_partitions: usize,
        oom_kills: usize,
        mem_high_water: u64,
    },
    Failed(String),
}

struct Series {
    engine: &'static str,
    degradation: &'static str,
    clean_makespan_s: f64,
    footprint_bytes: u64,
    points: Vec<Point>,
}

fn cluster(plan: FaultPlan) -> Cluster {
    Cluster::new(laptop(), 2).with_faults(plan)
}

/// Cap every node of the 2-node cluster to `cap` bytes from t=0.
fn cap_plan(cap: u64) -> FaultPlan {
    FaultPlan::none()
        .shrink_memory(0, 0.0, cap)
        .shrink_memory(1, 0.0, cap)
}

/// Peak resident footprint of the fault-free run; for engines that never
/// engage the ledger (MPI), the bytes their collectives move.
fn footprint(clean: &SimReport) -> u64 {
    let peak = clean.mem_high_water.iter().copied().max().unwrap_or(0);
    if peak > 0 {
        peak
    } else {
        (clean.bytes_broadcast + clean.bytes_shuffled).max(64 * 1024)
    }
}

fn high_water(rep: &SimReport) -> u64 {
    rep.mem_high_water.iter().copied().max().unwrap_or(0)
}

/// Sweep one engine: `run(plan)` returns the report of a capped run.
/// Sweep points are independent, so they fan out across host threads
/// (`--threads`); results come back in frac order regardless of degree.
fn sweep<F>(
    engine: &'static str,
    degradation: &'static str,
    clean: &SimReport,
    fracs: &[f64],
    run: F,
) -> Series
where
    F: Fn(FaultPlan) -> Result<SimReport, String> + Sync,
{
    let fp = footprint(clean);
    let points = netsim::parallel::run_indexed(fracs.len(), |i| {
        let frac = fracs[i];
        let cap = ((fp as f64 * frac) as u64).max(1);
        let outcome = match run(cap_plan(cap)) {
            Ok(rep) => Outcome::Completed {
                makespan_s: rep.makespan_s,
                overhead_s: rep.makespan_s - clean.makespan_s,
                bytes_spilled: rep.bytes_spilled,
                bytes_evicted: rep.bytes_evicted,
                recomputed_partitions: rep.recomputed_partitions,
                oom_kills: rep.oom_kills,
                mem_high_water: high_water(&rep),
            },
            Err(e) => Outcome::Failed(e),
        };
        Point {
            mem_frac: frac,
            cap_bytes: cap,
            outcome,
        }
    });
    Series {
        engine,
        degradation,
        clean_makespan_s: clean.makespan_s,
        footprint_bytes: fp,
        points,
    }
}

fn lf_workload() -> (Arc<Vec<linalg::Vec3>>, LfConfig) {
    let b = mdsim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 1000,
            ..Default::default()
        },
        17,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 32,
            paper_atoms: 1000,
            charge_io: true,
        },
    )
}

/// The paper-faithful degradation path each engine takes under pressure.
fn degradation(engine: Engine) -> &'static str {
    match engine {
        Engine::Spark => "evict+lineage-recompute+spill",
        Engine::Dask => "pause+spill",
        Engine::Pilot => "admission-control",
        Engine::Mpi => "chunk-or-fail",
    }
}

fn engine_series(engine: Engine, positions: &Arc<Vec<linalg::Vec3>>, cfg: &LfConfig) -> Series {
    let run = |plan: FaultPlan| {
        let rc = RunConfig::new(cluster(plan), engine)
            .approach(LfApproach::Broadcast1D)
            .mpi_world(MPI_WORLD);
        run_lf(&rc, Arc::clone(positions), cfg)
            .map(|o| o.report)
            .map_err(|e| format!("{e:?}"))
    };
    let clean = run(FaultPlan::none()).expect("fault-free");
    let fracs: &[f64] = if engine == Engine::Mpi {
        &MPI_MEM_FRACS
    } else {
        &MEM_FRACS
    };
    sweep(engine.label(), degradation(engine), &clean, fracs, run)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(series: &[Series]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"memory-pressure sweep\",\n");
    out.push_str("  \"machine\": \"laptop x2 nodes\",\n  \"series\": [\n");
    for (i, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"degradation\": \"{}\", \
             \"clean_makespan_s\": {:.6}, \"footprint_bytes\": {}, \"points\": [\n",
            s.engine, s.degradation, s.clean_makespan_s, s.footprint_bytes
        ));
        for (j, p) in s.points.iter().enumerate() {
            let body = match &p.outcome {
                Outcome::Completed {
                    makespan_s,
                    overhead_s,
                    bytes_spilled,
                    bytes_evicted,
                    recomputed_partitions,
                    oom_kills,
                    mem_high_water,
                } => format!(
                    "\"makespan_s\": {makespan_s:.6}, \"overhead_s\": {overhead_s:.6}, \
                     \"bytes_spilled\": {bytes_spilled}, \"bytes_evicted\": {bytes_evicted}, \
                     \"recomputed_partitions\": {recomputed_partitions}, \
                     \"oom_kills\": {oom_kills}, \"mem_high_water\": {mem_high_water}"
                ),
                Outcome::Failed(e) => format!("\"error\": \"{}\"", json_escape(e)),
            };
            out.push_str(&format!(
                "      {{\"mem_frac\": {:.2}, \"cap_bytes\": {}, {body}}}{}\n",
                p.mem_frac,
                p.cap_bytes,
                if j + 1 < s.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn print_series(s: &Series) {
    println!(
        "\n--- {} / {} (clean {}, footprint {} B) ---",
        s.engine,
        s.degradation,
        secs(s.clean_makespan_s),
        s.footprint_bytes
    );
    println!(
        "{:>6} {:>12} | {:>10} {:>10} {:>10} {:>10} {:>7} {:>4} {:>12}",
        "frac", "cap", "makespan", "overhead", "spilled", "evicted", "recomp", "oom", "high-water"
    );
    for p in &s.points {
        match &p.outcome {
            Outcome::Completed {
                makespan_s,
                overhead_s,
                bytes_spilled,
                bytes_evicted,
                recomputed_partitions,
                oom_kills,
                mem_high_water,
            } => println!(
                "{:>6.2} {:>12} | {:>10} {:>10} {:>10} {:>10} {:>7} {:>4} {:>12}",
                p.mem_frac,
                p.cap_bytes,
                secs(*makespan_s),
                secs(*overhead_s),
                bytes_spilled,
                bytes_evicted,
                recomputed_partitions,
                oom_kills,
                mem_high_water
            ),
            Outcome::Failed(e) => {
                println!("{:>6.2} {:>12} | failed: {e}", p.mem_frac, p.cap_bytes)
            }
        }
    }
}

fn main() {
    let args = bench::cli::Cli::new()
        .value("--out", "PATH", "output path (default results/memory.json)")
        .parse();
    let out_path = args.str_or("--out", "results/memory.json");

    println!(
        "Memory sweep: both nodes capped at {MEM_FRACS:?} of each engine's \
         fault-free peak footprint ({MPI_MEM_FRACS:?} for MPI's per-rank \
         buffers; LF, 1000 atoms, 2 laptop nodes)"
    );
    let (positions, cfg) = lf_workload();
    let series: Vec<Series> = args
        .engines()
        .into_iter()
        .map(|engine| engine_series(engine, &positions, &cfg))
        .collect();
    for s in &series {
        print_series(s);
    }

    let json = to_json(&series);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write memory.json");
    eprintln!("wrote {out_path}");
}
