//! Optimized per-frame kernels vs their naive references — the kernel
//! half of the generic-analysis-API PR, tracked the way `sim_throughput`
//! tracks the simulator's hot path.
//!
//! Three kernel families, each with a differential check before any
//! timing (a speedup is only meaningful if the fast path is exact):
//!
//! * **Leaflet-Finder edge discovery** — `block_edges_tree` (BallTree)
//!   against the brute-force `block_edges`, on generated bilayers at the
//!   paper's atom counts. The brute leg is O(n²) and is skipped above
//!   `--brute-max` atoms; the tree leg always runs and its throughput
//!   (atoms/s) is the CI floor (`--min-atoms-per-sec`). At the largest
//!   size where both legs ran, `--min-speedup` gates the ratio.
//! * **Hausdorff / PSA** — `hausdorff_rmsd_pruned` (early-abandon +
//!   centroid spatial pruning, bitwise-equal by construction and
//!   proptest) against `hausdorff_naive`, with the fraction of frame-RMSD
//!   evaluations actually performed.
//! * **2-D RMSD** — the cache-blocked `rmsd2d_blocked` against the
//!   row-major `rmsd2d`.
//!
//! Results land in `--out` (default `results/kernels.json`).
//!
//! ```sh
//! cargo run -p bench --release --bin exp_kernels
//! cargo run -p bench --release --bin exp_kernels -- \
//!     --brute-max 32768 --min-speedup 5 --min-atoms-per-sec 1000000
//! ```

use linalg::{
    hausdorff_naive, hausdorff_rmsd_pruned, hausdorff_rmsd_pruned_evals, rmsd2d, rmsd2d_blocked,
};
use mdsim::{BilayerSpec, ChainSpec};
use mdtask_core::leaflet::{block_edges, block_edges_tree};
use mdtask_core::partition::Block;
use std::time::Instant;

/// Canonical undirected edge set for the equality check.
fn canon(mut edges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    for e in edges.iter_mut() {
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed().as_secs_f64())
}

struct LfPoint {
    atoms: usize,
    edges: u64,
    tree_s: f64,
    tree_atoms_per_s: f64,
    brute_s: Option<f64>,
}

impl LfPoint {
    fn speedup(&self) -> Option<f64> {
        self.brute_s.map(|b| b / self.tree_s)
    }
}

fn main() {
    let args = bench::cli::Cli::new()
        .value(
            "--brute-max",
            "N",
            "largest atom count for the O(n^2) brute leg (default 32768)",
        )
        .value(
            "--min-speedup",
            "X",
            "fail unless tree beats brute by Xx at the largest compared size (default: record only)",
        )
        .value(
            "--min-atoms-per-sec",
            "X",
            "fail unless the tree leg sustains X atoms/s at the largest size (default: record only)",
        )
        .value("--out", "PATH", "output path (default results/kernels.json)")
        .parse();
    let brute_max = args.usize_or("--brute-max", 32_768);
    let min_speedup = args.f64_or("--min-speedup", 0.0);
    let min_aps = args.f64_or("--min-atoms-per-sec", 0.0);
    let out_path = args.str_or("--out", "results/kernels.json");

    // --- Leaflet-Finder edge discovery -------------------------------
    let sizes = [8_192usize, 32_768, 131_072];
    println!("exp_kernels: tree vs brute edge discovery, brute capped at {brute_max} atoms");
    let mut lf_points = Vec::new();
    for &atoms in &sizes {
        let b = mdsim::bilayer::generate(
            &BilayerSpec {
                n_atoms: atoms,
                ..Default::default()
            },
            17,
        );
        let n = b.positions.len() as u32;
        let block = Block {
            row: (0, n),
            col: (0, n),
        };
        let (tree_edges, tree_s) =
            time(|| block_edges_tree(&b.positions, block, b.suggested_cutoff));
        let brute_s = (atoms <= brute_max).then(|| {
            let (brute_edges, s) = time(|| block_edges(&b.positions, block, b.suggested_cutoff));
            assert_eq!(
                canon(tree_edges.clone()),
                canon(brute_edges),
                "tree and brute edge sets diverged at {atoms} atoms"
            );
            s
        });
        let p = LfPoint {
            atoms,
            edges: tree_edges.len() as u64,
            tree_s,
            tree_atoms_per_s: atoms as f64 / tree_s,
            brute_s,
        };
        println!(
            "{:>7} atoms: tree {:>8.4}s ({:>12.0} atoms/s), {}",
            p.atoms,
            p.tree_s,
            p.tree_atoms_per_s,
            match p.brute_s {
                Some(b) => format!(
                    "brute {:>8.4}s, speedup {:.1}x (edge sets identical)",
                    b,
                    b / p.tree_s
                ),
                None => "brute skipped".into(),
            }
        );
        lf_points.push(p);
    }
    let gate_point = lf_points
        .iter()
        .rfind(|p| p.brute_s.is_some())
        .expect("at least one compared size");
    let gate_speedup = gate_point.speedup().unwrap();
    let largest = lf_points.last().unwrap();
    let largest_aps = largest.tree_atoms_per_s;
    println!(
        "gate: {:.1}x at {} atoms, tree throughput {:.0} atoms/s at {} atoms",
        gate_speedup, gate_point.atoms, largest_aps, largest.atoms
    );

    // --- Hausdorff (PSA metric) --------------------------------------
    let spec = ChainSpec {
        n_atoms: 64,
        n_frames: 96,
        stride: 1,
        ..Default::default()
    };
    let e = mdsim::chain::generate_ensemble(&spec, 2, 23);
    let (naive_d, naive_s) =
        time(|| hausdorff_naive(&e[0].frames, &e[1].frames, linalg::frame_rmsd));
    let (pruned_d, pruned_s) = time(|| hausdorff_rmsd_pruned(&e[0].frames, &e[1].frames));
    assert_eq!(
        naive_d.to_bits(),
        pruned_d.to_bits(),
        "pruned Hausdorff diverged from naive"
    );
    let (_, evals) = hausdorff_rmsd_pruned_evals(&e[0].frames, &e[1].frames);
    let full = (e[0].frames.len() * e[1].frames.len() * 2) as u64;
    let hausdorff_speedup = naive_s / pruned_s;
    println!(
        "hausdorff: naive {naive_s:.4}s, pruned {pruned_s:.4}s ({hausdorff_speedup:.1}x), \
         {evals}/{full} frame-RMSD evals (bitwise identical)"
    );

    // --- 2-D RMSD ----------------------------------------------------
    let (d_naive, rmsd2d_naive_s) = time(|| rmsd2d(&e[0].frames, &e[1].frames));
    let (d_blocked, rmsd2d_blocked_s) = time(|| rmsd2d_blocked(&e[0].frames, &e[1].frames));
    assert_eq!(
        d_naive.as_slice(),
        d_blocked.as_slice(),
        "blocked 2-D RMSD diverged from row-major"
    );
    let rmsd2d_speedup = rmsd2d_naive_s / rmsd2d_blocked_s;
    println!(
        "rmsd2d: row-major {rmsd2d_naive_s:.4}s, blocked {rmsd2d_blocked_s:.4}s \
         ({rmsd2d_speedup:.2}x, matrices identical)"
    );

    // --- JSON --------------------------------------------------------
    let mut json = String::from("{\n  \"lf_edge_discovery\": {\n    \"points\": [\n");
    for (i, p) in lf_points.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"atoms\": {}, \"edges\": {}, \"tree_s\": {:.6}, \
             \"tree_atoms_per_s\": {:.0}{}}}{}\n",
            p.atoms,
            p.edges,
            p.tree_s,
            p.tree_atoms_per_s,
            match p.brute_s {
                Some(b) => format!(
                    ", \"brute_s\": {:.6}, \"speedup\": {:.2}",
                    b,
                    p.speedup().unwrap()
                ),
                None => String::new(),
            },
            if i + 1 < lf_points.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"gate_atoms\": {},\n    \"gate_speedup\": {:.2},\n    \
         \"tree_atoms_per_s_at_largest\": {:.0},\n    \
         \"min_speedup_required\": {min_speedup},\n    \
         \"min_atoms_per_sec_required\": {min_aps}\n  }},\n",
        gate_point.atoms, gate_speedup, largest_aps
    ));
    json.push_str(&format!(
        "  \"hausdorff\": {{\"frames\": {}, \"naive_s\": {naive_s:.6}, \
         \"pruned_s\": {pruned_s:.6}, \"speedup\": {hausdorff_speedup:.2}, \
         \"evals\": {evals}, \"evals_full\": {full}, \"bitwise_identical\": true}},\n",
        e[0].frames.len()
    ));
    json.push_str(&format!(
        "  \"rmsd2d\": {{\"frames\": {}, \"naive_s\": {rmsd2d_naive_s:.6}, \
         \"blocked_s\": {rmsd2d_blocked_s:.6}, \"speedup\": {rmsd2d_speedup:.2}, \
         \"identical\": true}}\n}}\n",
        e[0].frames.len()
    ));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write kernels.json");
    eprintln!("wrote {out_path}");

    let mut failed = false;
    if min_speedup > 0.0 && gate_speedup < min_speedup {
        eprintln!(
            "FAIL: tree beat brute by {gate_speedup:.1}x at {} atoms, below the {min_speedup:.1}x floor",
            gate_point.atoms
        );
        failed = true;
    }
    if min_aps > 0.0 && largest_aps < min_aps {
        eprintln!(
            "FAIL: tree leg sustained {largest_aps:.0} atoms/s at {} atoms, below the {min_aps:.0} floor",
            largest.atoms
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
