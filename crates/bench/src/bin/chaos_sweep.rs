//! Fixed-seed chaos sweep for CI (PR-3): run every engine's Leaflet
//! Finder under a battery of seeded random fault plans and check the
//! invariant oracles (`netsim::chaos`). Exit code 1 on any violation.
//!
//! On failure the binary writes replayable artifacts under `--out-dir`:
//!
//! * `chaos_failures_<engine>.json` — the full `FuzzReport` (every
//!   violation with its original and shrunk `FaultPlan`);
//! * `chaos_failure_<engine>.trace.json` — a Chrome trace of the first
//!   shrunk plan replayed with tracing enabled (engines that trace).
//!
//! Replay a shrunk plan locally with
//! `Cluster::with_faults(FaultPlan::from_json(..))`.
//!
//! ```sh
//! cargo run -p bench --release --bin chaos_sweep
//! cargo run -p bench --release --bin chaos_sweep -- --plans 200 --seed 7
//! ```

use dasklet::DaskClient;
use mdsim::BilayerSpec;
use mdtask_core::leaflet::{
    lf_dask, lf_mpi_with_policy, lf_pilot, lf_spark, LfApproach, LfConfig, LfOutput,
};
use netsim::chaos::{fuzz, ChaosConfig, ChaosOutcome, Fingerprint, FuzzReport};
use netsim::{laptop, Cluster, FaultPlan, RetryPolicy};
use pilot::Session;
use sparklet::SparkContext;
use std::sync::Arc;

const MPI_WORLD: usize = 16;

fn lf_workload() -> (Arc<Vec<linalg::Vec3>>, LfConfig) {
    let b = mdsim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 200,
            ..Default::default()
        },
        7,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 8,
            paper_atoms: 200,
            charge_io: false,
        },
    )
}

/// Hash the *data* an LF run produced — the oracle compares this against
/// the fault-free baseline.
fn fingerprint(out: &LfOutput) -> u64 {
    let mut fp = Fingerprint::new();
    for &s in &out.leaflet_sizes {
        fp.write_usize(s);
    }
    fp.write_usize(out.n_components);
    fp.write_u64(out.edges_found);
    fp.finish()
}

struct Engine {
    name: &'static str,
    /// Deaths must land inside the engine's live window (startup + job).
    death_window_s: (f64, f64),
}

const ENGINES: [Engine; 4] = [
    Engine {
        name: "spark",
        death_window_s: (0.0, 3.0),
    },
    Engine {
        name: "dask",
        death_window_s: (0.0, 3.0),
    },
    Engine {
        name: "pilot",
        death_window_s: (0.0, 40.0),
    },
    Engine {
        name: "mpi",
        death_window_s: (0.0, 1.5),
    },
];

/// One LF run under `plan`; `traced` turns on the event trace (for the
/// failure-replay artifact).
fn run_engine(
    name: &str,
    plan: &FaultPlan,
    positions: &Arc<Vec<linalg::Vec3>>,
    cfg: &LfConfig,
    traced: bool,
) -> Result<ChaosOutcome, String> {
    let cluster = Cluster::new(laptop(), 2).with_faults(plan.clone());
    let out = match name {
        "spark" => {
            let sc = SparkContext::new(cluster);
            if traced {
                sc.enable_trace();
            }
            lf_spark(&sc, Arc::clone(positions), LfApproach::ParallelCC, cfg)
        }
        "dask" => {
            let client = DaskClient::new(cluster);
            if traced {
                client.enable_trace();
            }
            lf_dask(&client, Arc::clone(positions), LfApproach::Task2D, cfg)
        }
        "pilot" => Session::new(cluster).and_then(|s| {
            if traced {
                s.enable_trace();
            }
            lf_pilot(&s, positions, cfg)
        }),
        "mpi" => lf_mpi_with_policy(
            cluster,
            MPI_WORLD,
            positions,
            LfApproach::Broadcast1D,
            cfg,
            &RetryPolicy::new(4).with_detection_delay(0.25),
            true,
        ),
        other => panic!("unknown engine {other}"),
    }
    .map_err(|e| format!("{e:?}"))?;
    Ok(ChaosOutcome {
        fingerprint: fingerprint(&out),
        report: out.report,
    })
}

fn write_artifact(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    std::fs::write(path, contents).expect("write artifact");
    eprintln!("wrote {path}");
}

fn dump_failure_artifacts(
    engine: &Engine,
    report: &FuzzReport,
    out_dir: &str,
    positions: &Arc<Vec<linalg::Vec3>>,
    cfg: &LfConfig,
) {
    write_artifact(
        &format!("{out_dir}/chaos_failures_{}.json", engine.name),
        &report.to_json(),
    );
    // Replay the first shrunk counterexample with the event trace on, so
    // the CI artifact shows the recovery timeline that broke the oracle.
    if let Some(v) = report.violations.first() {
        if let Ok(outcome) = run_engine(engine.name, &v.shrunk, positions, cfg, true) {
            if let Some(trace) = &outcome.report.trace {
                write_artifact(
                    &format!("{out_dir}/chaos_failure_{}.trace.json", engine.name),
                    &trace.to_chrome_json(),
                );
            }
        }
    }
}

fn main() {
    let mut plans = 200usize;
    let mut base_seed = 0u64;
    let mut out_dir = String::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--plans" => {
                plans = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--plans needs a positive integer");
            }
            "--seed" => {
                base_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--out-dir" => out_dir = args.next().expect("--out-dir needs a path"),
            "--help" | "-h" => {
                eprintln!("flags: --plans N | --seed S | --out-dir PATH");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let (positions, cfg) = lf_workload();
    println!(
        "chaos sweep: {plans} seeded plans per engine (base seed {base_seed}), \
         LF 200 atoms on 2 laptop nodes"
    );
    let mut failed = false;
    for engine in &ENGINES {
        let mut ccfg = ChaosConfig::new(2, 8);
        ccfg.plans = plans;
        ccfg.base_seed = base_seed;
        ccfg.death_window_s = engine.death_window_s;
        // These workloads re-measure real closure durations each run, so
        // empty-plan reports carry µs-scale jitter; the data fingerprint
        // still must match exactly.
        ccfg.check_empty_plan_determinism = false;
        let report = fuzz(&ccfg, |plan| {
            run_engine(engine.name, plan, &positions, &cfg, false)
        });
        if report.passed() {
            println!(
                "  {:<6} {} plans, all oracles held",
                engine.name, report.plans_run
            );
        } else {
            failed = true;
            println!(
                "  {:<6} {} plans, {} VIOLATIONS",
                engine.name,
                report.plans_run,
                report.violations.len()
            );
            for v in &report.violations {
                println!("         seed {}: {}", v.seed, v.message);
            }
            dump_failure_artifacts(engine, &report, &out_dir, &positions, &cfg);
        }
    }
    if failed {
        eprintln!("chaos sweep FAILED — artifacts under {out_dir}/");
        std::process::exit(1);
    }
    println!("chaos sweep passed.");
}
