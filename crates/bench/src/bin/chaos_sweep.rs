//! Fixed-seed chaos sweep for CI (PR-3, memory battery PR-4): run every
//! engine's Leaflet Finder under a battery of seeded random fault plans
//! and check the invariant oracles (`netsim::chaos`). Exit code 1 on any
//! violation.
//!
//! Two batteries run per engine:
//!
//! 1. the mixed battery (deaths + stragglers + lost fetches + the odd
//!    memory shrink against a roomy 16 GiB budget), and
//! 2. a *memory* battery: pure mem-shrink plans scaled to the engine's
//!    own fault-free peak footprint, so caps genuinely bite and the
//!    spill/evict/recompute/OOM degradation paths are exercised.
//!
//! `--metrics-out` writes the memory battery's aggregate pressure
//! counters (spilled/evicted bytes, recomputes, OOM kills, high-water)
//! as JSON — CI uploads it as an artifact on every run.
//!
//! On failure the binary writes replayable artifacts under `--out-dir`:
//!
//! * `chaos_failures_<engine>.json` / `chaos_mem_failures_<engine>.json`
//!   — the full `FuzzReport` (every violation with its original and
//!   shrunk `FaultPlan`);
//! * `chaos_failure_<engine>.trace.json` — a Chrome trace of the first
//!   shrunk plan replayed with tracing enabled (engines that trace).
//!
//! Replay a shrunk plan locally with
//! `Cluster::with_faults(FaultPlan::from_json(..))`.
//!
//! ```sh
//! cargo run -p bench --release --bin chaos_sweep
//! cargo run -p bench --release --bin chaos_sweep -- --plans 200 --seed 7 \
//!     --mem-plans 100 --metrics-out results/chaos_mem_metrics.json
//! ```

use mdsim::BilayerSpec;
use mdtask_core::leaflet::{LfApproach, LfConfig, LfOutput};
use mdtask_core::run::{run_lf, RunConfig};
use netsim::chaos::{fuzz, ChaosConfig, ChaosOutcome, Fingerprint, FuzzReport};
use netsim::{laptop, Cluster, FaultPlan, RetryPolicy, SimReport};
use std::sync::{Arc, Mutex};
use taskframe::Engine;

const MPI_WORLD: usize = 16;

fn lf_workload() -> (Arc<Vec<linalg::Vec3>>, LfConfig) {
    let b = mdsim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 200,
            ..Default::default()
        },
        7,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 8,
            paper_atoms: 200,
            charge_io: false,
        },
    )
}

/// Hash the *data* an LF run produced — the oracle compares this against
/// the fault-free baseline.
fn fingerprint(out: &LfOutput) -> u64 {
    let mut fp = Fingerprint::new();
    for &s in &out.leaflet_sizes {
        fp.write_usize(s);
    }
    fp.write_usize(out.n_components);
    fp.write_u64(out.edges_found);
    fp.finish()
}

/// Deaths must land inside the engine's live window (startup + job).
fn death_window(engine: Engine) -> (f64, f64) {
    match engine {
        Engine::Spark | Engine::Dask => (0.0, 3.0),
        Engine::Pilot => (0.0, 40.0),
        Engine::Mpi => (0.0, 1.5),
    }
}

/// One LF run under `plan`; `traced` turns on the event trace (for the
/// failure-replay artifact). `mem_battery` switches spark to the
/// Broadcast1D approach, whose per-node replica reservations actually
/// engage the memory ledger (ParallelCC neither broadcasts nor persists).
fn run_engine(
    engine: Engine,
    plan: &FaultPlan,
    positions: &Arc<Vec<linalg::Vec3>>,
    cfg: &LfConfig,
    traced: bool,
    mem_battery: bool,
) -> Result<ChaosOutcome, String> {
    let cluster = Cluster::new(laptop(), 2).with_faults(plan.clone());
    let approach = match engine {
        Engine::Spark if !mem_battery => LfApproach::ParallelCC,
        Engine::Dask => LfApproach::Task2D,
        _ => LfApproach::Broadcast1D,
    };
    let mut rc = RunConfig::new(cluster, engine)
        .approach(approach)
        .trace(traced)
        .mpi_world(MPI_WORLD);
    if engine == Engine::Mpi {
        rc = rc.retry_policy(RetryPolicy::new(4).with_detection_delay(0.25));
    }
    let out = run_lf(&rc, Arc::clone(positions), cfg).map_err(|e| format!("{e:?}"))?;
    Ok(ChaosOutcome {
        fingerprint: fingerprint(&out),
        report: out.report,
    })
}

/// Aggregate memory-pressure counters over one engine's memory battery.
#[derive(Default)]
struct MemAgg {
    runs: usize,
    typed_errors: usize,
    bytes_spilled: u64,
    bytes_evicted: u64,
    recomputed_partitions: usize,
    oom_kills: usize,
    mem_high_water_max: u64,
}

impl MemAgg {
    fn absorb(&mut self, report: &SimReport) {
        self.runs += 1;
        self.bytes_spilled += report.bytes_spilled;
        self.bytes_evicted += report.bytes_evicted;
        self.recomputed_partitions += report.recomputed_partitions;
        self.oom_kills += report.oom_kills;
        let hw = report.mem_high_water.iter().copied().max().unwrap_or(0);
        self.mem_high_water_max = self.mem_high_water_max.max(hw);
    }

    fn to_json(&self, engine: &str, footprint: u64) -> String {
        format!(
            concat!(
                "    {{\"engine\": \"{}\", \"fault_free_footprint_bytes\": {}, ",
                "\"runs\": {}, \"typed_errors\": {}, \"bytes_spilled\": {}, ",
                "\"bytes_evicted\": {}, \"recomputed_partitions\": {}, ",
                "\"oom_kills\": {}, \"mem_high_water_max\": {}}}"
            ),
            engine,
            footprint,
            self.runs,
            self.typed_errors,
            self.bytes_spilled,
            self.bytes_evicted,
            self.recomputed_partitions,
            self.oom_kills,
            self.mem_high_water_max,
        )
    }
}

/// The fault-free peak footprint memory plans are scaled against. MPI
/// keeps no resident ledger, so its proxy is the bytes its collectives
/// move (which is what the fixed per-rank buffers must hold).
fn fault_free_footprint(engine: Engine, positions: &Arc<Vec<linalg::Vec3>>, cfg: &LfConfig) -> u64 {
    let outcome = run_engine(engine, &FaultPlan::none(), positions, cfg, false, true)
        .expect("fault-free footprint probe must succeed");
    let r = &outcome.report;
    let peak = r.mem_high_water.iter().copied().max().unwrap_or(0);
    if peak > 0 {
        peak
    } else {
        (r.bytes_broadcast + r.bytes_shuffled).max(64 * 1024)
    }
}

fn write_artifact(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    std::fs::write(path, contents).expect("write artifact");
    eprintln!("wrote {path}");
}

fn dump_failure_artifacts(
    engine: Engine,
    report: &FuzzReport,
    out_dir: &str,
    positions: &Arc<Vec<linalg::Vec3>>,
    cfg: &LfConfig,
) {
    write_artifact(
        &format!("{out_dir}/chaos_failures_{}.json", engine.label()),
        &report.to_json(),
    );
    // Replay the first shrunk counterexample with the event trace on, so
    // the CI artifact shows the recovery timeline that broke the oracle.
    if let Some(v) = report.violations.first() {
        if let Ok(outcome) = run_engine(engine, &v.shrunk, positions, cfg, true, false) {
            if let Some(trace) = &outcome.report.trace {
                write_artifact(
                    &format!("{out_dir}/chaos_failure_{}.trace.json", engine.label()),
                    &trace.to_chrome_json(),
                );
            }
        }
    }
}

fn main() {
    let args = bench::cli::Cli::new()
        .value(
            "--plans",
            "N",
            "mixed-battery plans per engine (default 200)",
        )
        .value(
            "--mem-plans",
            "N",
            "memory-battery plans per engine (default 100)",
        )
        .value("--seed", "S", "base seed (default 0)")
        .value(
            "--out-dir",
            "PATH",
            "failure-artifact directory (default results)",
        )
        .parse();
    let plans = args.usize_or("--plans", 200);
    let mem_plans = args.usize_or("--mem-plans", 100);
    let base_seed = args.u64_or("--seed", 0);
    let out_dir = args.str_or("--out-dir", "results");
    let metrics_out = args.metrics_out.clone();
    let engines = args.engines();

    let (positions, cfg) = lf_workload();
    println!(
        "chaos sweep: {plans} seeded plans per engine (base seed {base_seed}), \
         LF 200 atoms on 2 laptop nodes, {} host threads",
        netsim::parallel::current_degree()
    );
    let mut failed = false;
    for &engine in &engines {
        let mut ccfg = ChaosConfig::new(2, 8);
        ccfg.plans = plans;
        ccfg.base_seed = base_seed;
        ccfg.death_window_s = death_window(engine);
        // These workloads re-measure real closure durations each run, so
        // empty-plan reports carry µs-scale jitter; the data fingerprint
        // still must match exactly.
        ccfg.check_empty_plan_determinism = false;
        // `fuzz` fans the plans out across host threads internally.
        let report = fuzz(&ccfg, |plan| {
            run_engine(engine, plan, &positions, &cfg, false, false)
        });
        if report.passed() {
            println!(
                "  {:<6} {} plans, all oracles held",
                engine.label(),
                report.plans_run
            );
        } else {
            failed = true;
            println!(
                "  {:<6} {} plans, {} VIOLATIONS",
                engine.label(),
                report.plans_run,
                report.violations.len()
            );
            for v in &report.violations {
                println!("         seed {}: {}", v.seed, v.message);
            }
            dump_failure_artifacts(engine, &report, &out_dir, &positions, &cfg);
        }
    }
    // Memory battery: pure mem-shrink plans scaled to each engine's own
    // fault-free footprint, so a 16 GiB default budget doesn't render
    // every shrink a no-op against KB-scale CI workloads.
    let mut metric_rows: Vec<String> = Vec::new();
    if mem_plans > 0 {
        println!(
            "memory battery: {mem_plans} seeded mem-shrink plans per engine \
             (base seed {base_seed}), caps scaled to fault-free footprints"
        );
        for &engine in &engines {
            let footprint = fault_free_footprint(engine, &positions, &cfg);
            let mut ccfg = ChaosConfig::new(2, 8);
            ccfg.plans = mem_plans;
            ccfg.base_seed = base_seed;
            ccfg.max_deaths = 0;
            ccfg.max_stragglers = 0;
            ccfg.lost_fetch_prob_max = 0.0;
            ccfg.max_mem_shrinks = 2;
            // Shrinks land inside the engine's live window, like deaths.
            ccfg.mem_shrink_window_s = death_window(engine);
            ccfg.mem_per_node = footprint;
            ccfg.mem_shrink_frac = (0.25, 1.0);
            ccfg.check_empty_plan_determinism = false;
            let agg = Mutex::new(MemAgg::default());
            let report = fuzz(&ccfg, |plan| {
                let res = run_engine(engine, plan, &positions, &cfg, false, true);
                let mut a = agg.lock().unwrap();
                match &res {
                    Ok(outcome) => a.absorb(&outcome.report),
                    Err(_) => a.typed_errors += 1,
                }
                res
            });
            let agg = agg.into_inner().unwrap();
            metric_rows.push(agg.to_json(engine.label(), footprint));
            if report.passed() {
                println!(
                    "  {:<6} {} plans, all oracles held \
                     (spilled {} B, evicted {} B, {} recomputes, {} OOM, {} typed errors)",
                    engine.label(),
                    report.plans_run,
                    agg.bytes_spilled,
                    agg.bytes_evicted,
                    agg.recomputed_partitions,
                    agg.oom_kills,
                    agg.typed_errors,
                );
            } else {
                failed = true;
                println!(
                    "  {:<6} {} plans, {} VIOLATIONS",
                    engine.label(),
                    report.plans_run,
                    report.violations.len()
                );
                for v in &report.violations {
                    println!("         seed {}: {}", v.seed, v.message);
                }
                write_artifact(
                    &format!("{out_dir}/chaos_mem_failures_{}.json", engine.label()),
                    &report.to_json(),
                );
            }
        }
    }
    if let Some(path) = &metrics_out {
        let body = format!(
            "{{\n  \"mem_plans_per_engine\": {mem_plans},\n  \"base_seed\": {base_seed},\n  \
             \"engines\": [\n{}\n  ]\n}}\n",
            metric_rows.join(",\n")
        );
        write_artifact(path, &body);
    }

    if failed {
        eprintln!("chaos sweep FAILED — artifacts under {out_dir}/");
        std::process::exit(1);
    }
    println!("chaos sweep passed.");
}
