//! Figure 2 — Task Throughput by Framework (Single Node).
//!
//! "Time/Throughput executing a given number of zero-workload tasks on
//! Wrangler. Dask performs best; Dask and Spark have very small delays for
//! few tasks. RADICAL-Pilot offers the smallest throughput" — and could
//! not scale to 32k or more tasks.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_fig2            # up to 16k tasks
//! cargo run -p bench --release --bin exp_fig2 -- --full  # up to 131k
//! ```

use bench::{secs, section, zero_tasks, Opts};
use dasklet::DaskClient;
use netsim::Cluster;
use pilot::Session;
use sparklet::SparkContext;
use taskframe::BagEngine;

fn main() {
    let opts = Opts::parse(8); // default: stop at 131072/8 = 16384 tasks
    let max_tasks = 131_072 / opts.scale;
    let cluster = || Cluster::new(opts.machine.clone(), 1);

    section("Fig. 2: zero-workload task throughput, single node");
    println!(
        "{:>8} | {:>11} {:>11} {:>11} | {:>10} {:>10} {:>10}",
        "tasks", "spark (s)", "dask (s)", "rp (s)", "spark t/s", "dask t/s", "rp t/s"
    );
    let mut n = 16usize;
    while n <= max_tasks {
        let mut spark = SparkContext::new(cluster());
        let (_, rs) = spark.run_bag(zero_tasks(n)).expect("spark runs");

        let mut dask = DaskClient::new(cluster());
        let (_, rd) = dask.run_bag(zero_tasks(n)).expect("dask runs");

        let rp = Session::new(cluster()).and_then(|mut s| s.run_bag(zero_tasks(n)));
        let (rp_time, rp_tp) = match &rp {
            Ok((_, r)) => (secs(r.makespan_s), format!("{:.1}", r.throughput())),
            Err(_) => ("FAIL".into(), "-".into()),
        };

        println!(
            "{:>8} | {:>11} {:>11} {:>11} | {:>10.1} {:>10.1} {:>10}",
            n,
            secs(rs.makespan_s),
            secs(rd.makespan_s),
            rp_time,
            rs.throughput(),
            rd.throughput(),
            rp_tp,
        );
        n *= 2;
    }
    println!(
        "\npaper shape: Dask fastest and ~10x Spark; RP slowest, plateauing and\n\
         failing beyond 16k tasks (it refuses 32k+ submissions outright)."
    );

    if opts.wants_observability() {
        // A traced zero-workload run for the requested artifacts.
        let mut sc = SparkContext::new(cluster());
        sc.enable_trace();
        sc.set_phase("zero-workload");
        let (_, report) = sc
            .run_bag(zero_tasks(256.min(max_tasks)))
            .expect("traced spark run");
        bench::write_observability(&opts, &report, sc.cluster().total_cores());
    }
}
