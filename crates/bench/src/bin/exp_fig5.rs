//! Figure 5 — Hausdorff Distance on Comet and Wrangler.
//!
//! "Runtime and Speedup for 128 large trajectories" across {16, 64, 256}
//! cores on both machines, all four frameworks. Wrangler's hyper-threaded
//! slots yield visibly smaller speedups than Comet's physical cores.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_fig5
//! ```

use bench::{cores_nodes_label, secs, Opts};
use mdsim::{psa_ensemble, PsaSize};
use mdtask_core::psa::PsaConfig;
use mdtask_core::run::{run_psa, RunConfig};
use netsim::{comet, wrangler, Cluster, MachineProfile};
use std::sync::Arc;
use taskframe::Engine;

struct Series {
    name: &'static str,
    runtimes: Vec<f64>,
}

fn run_machine(profile: MachineProfile, scale: usize, count: usize) {
    assert!(count >= 1);
    let ensemble = Arc::new(psa_ensemble(PsaSize::Large, count, scale, 42));
    let cores_axis = [16usize, 64, 256];
    let mut series: Vec<Series> = vec![
        Series {
            name: "mpi4py",
            runtimes: Vec::new(),
        },
        Series {
            name: "spark",
            runtimes: Vec::new(),
        },
        Series {
            name: "dask",
            runtimes: Vec::new(),
        },
        Series {
            name: "rp",
            runtimes: Vec::new(),
        },
    ];
    for &cores in &cores_axis {
        let mut cfg = PsaConfig::for_cores(cores);
        // Cannot have more groups than ensemble members (Algorithm 2).
        cfg.groups = cfg.groups.min(count);
        let time = |engine| {
            let rc = RunConfig::new(Cluster::with_cores(profile.clone(), cores), engine)
                .mpi_world(cores);
            run_psa(&rc, Arc::clone(&ensemble), &cfg)
                .map(|o| o.report.makespan_s)
                .unwrap_or(f64::NAN)
        };
        series[0].runtimes.push(time(Engine::Mpi));
        series[1].runtimes.push(time(Engine::Spark));
        series[2].runtimes.push(time(Engine::Dask));
        series[3].runtimes.push(time(Engine::Pilot));
    }

    println!("\n--- {} ---", profile.name);
    print!("{:<8}", "cores");
    for &c in &cores_axis {
        print!(" {:>12}", cores_nodes_label(c, &profile));
    }
    println!();
    for s in &series {
        print!("{:<8}", s.name);
        for t in &s.runtimes {
            print!(" {:>12}", secs(*t));
        }
        print!("   speedup:");
        for t in &s.runtimes {
            print!(" {:>5.2}", s.runtimes[0] / t);
        }
        println!();
    }
}

fn main() {
    let opts = Opts::parse(16);
    let count = if opts.scale == 1 { 128 } else { 8 };
    println!(
        "Fig. 5: PSA, {count} large trajectories (atoms ÷{}) — Comet vs Wrangler",
        opts.scale
    );
    run_machine(comet(), opts.scale, count);
    run_machine(wrangler(), opts.scale, count);
    println!(
        "\npaper shape: similar per-framework performance on both systems, but\n\
         Comet reaches higher speedups than Wrangler at equal core counts\n\
         (hyper-threading halves Wrangler's effective parallelism)."
    );
}
