//! Figure 3 — Task Throughput by Framework (Multiple Nodes).
//!
//! "Task throughput for 100k zero-workload tasks on different numbers of
//! nodes for each framework. Dask has the largest throughput, followed by
//! Spark and RADICAL-Pilot" — Dask/Spark grow ≈linearly with nodes, RP
//! plateaus below 100 tasks/s. Run for both Comet and Wrangler.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_fig3
//! cargo run -p bench --release --bin exp_fig3 -- --full   # 100k tasks
//! ```

use bench::{section, zero_tasks, Opts};
use dasklet::DaskClient;
use netsim::{comet, wrangler, Cluster, MachineProfile};
use pilot::Session;
use sparklet::SparkContext;
use taskframe::BagEngine;

fn run_machine(profile: MachineProfile, n_tasks: usize) {
    section(&format!(
        "Fig. 3: {} — throughput of {n_tasks} tasks vs nodes",
        profile.name
    ));
    println!(
        "{:>6} | {:>12} {:>12} {:>12}",
        "nodes", "spark t/s", "dask t/s", "rp t/s"
    );
    for nodes in 1..=4 {
        let cluster = || Cluster::new(profile.clone(), nodes);

        let mut spark = SparkContext::new(cluster());
        let (_, rs) = spark.run_bag(zero_tasks(n_tasks)).expect("spark runs");

        let mut dask = DaskClient::new(cluster());
        let (_, rd) = dask.run_bag(zero_tasks(n_tasks)).expect("dask runs");

        // RP refuses >16384 tasks; run its cap and report the throughput it
        // achieves there, as the paper's plateau plots do.
        let rp_tasks = n_tasks.min(pilot::MAX_UNITS);
        let rp = Session::new(cluster())
            .and_then(|mut s| s.run_bag(zero_tasks(rp_tasks)))
            .map(|(_, r)| r.throughput());
        let rp_tp = rp.map(|t| format!("{t:.1}")).unwrap_or_else(|_| "-".into());

        println!(
            "{:>6} | {:>12.1} {:>12.1} {:>12}",
            nodes,
            rs.throughput(),
            rd.throughput(),
            rp_tp
        );
    }
}

fn main() {
    let opts = Opts::parse(4); // default 25k tasks; --full = 100k
    let n_tasks = 100_000 / opts.scale;
    run_machine(comet(), n_tasks);
    run_machine(wrangler(), n_tasks);
    println!(
        "\npaper shape: Dask ≈linear in nodes and an order of magnitude above\n\
         Spark (also ≈linear); RP flat below 100 tasks/s on every node count;\n\
         Comet slightly outperforms Wrangler."
    );
}
