//! `mdtaskd` service experiment: multi-tenant scale, overload behaviour,
//! and host-thread invariance, in one artifact.
//!
//! Three legs:
//!
//! 1. **scale**: `--tenants` tenants (≥ 8) submit `--jobs` jobs (≥ 1200)
//!    in a tight burst against two large simulated clusters. The run must
//!    reach ≥ 1000 simultaneously-executing jobs, complete everything,
//!    and hold every tenant quota; exact p50/p99 submit-to-completion
//!    latencies come from the sorted latency vector.
//! 2. **overload**: the same tenants aim a burst at a 2-slot cluster with
//!    a tiny `max_pending`. The service must shed load with typed
//!    `EngineError::Rejected` errors — never queue without bound.
//! 3. **threads**: one fault-heavy scenario (node death + budget shrink
//!    followed by a scripted grow) runs with workload measurement fanned
//!    over 1, 2 and 8 host threads; the three `ServiceReport`s must be
//!    bit-identical (virtual time owes nothing to host scheduling).
//!
//! Results land in `--out` (default `results/service.json`). The binary
//! exits 1 if any leg misses its contract, so CI can run it as a gate.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_service
//! cargo run -p bench --release --bin exp_service -- --jobs 2000 --tenants 10
//! ```

use mdtask_core::run::Workload;
use mdtaskd::{JobRequest, Service, ServiceReport, TenantSpec};
use netsim::parallel::with_degree;
use netsim::{Cluster, FaultPlan, RetryPolicy, Threads};
use taskframe::{Engine, EngineError};

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

fn workload_pool() -> Vec<Workload> {
    vec![
        Workload::Lf {
            n_atoms: 200,
            partitions: 4,
            seed: 31,
        },
        Workload::Lf {
            n_atoms: 300,
            partitions: 8,
            seed: 32,
        },
        Workload::Psa {
            n_traj: 4,
            n_frames: 6,
            groups: 2,
            seed: 33,
        },
    ]
}

fn big_cluster() -> Cluster {
    Cluster::builder()
        .nodes(32)
        .cores_per_node(24)
        .mem_budget(64 * GIB)
        .build()
}

/// Leg 1: the tenant burst. Everything completes, concurrency crosses
/// 1000, quotas hold.
fn scale_leg(n_tenants: usize, n_jobs: usize) -> (ServiceReport, Vec<TenantSpec>) {
    let service = Service::new(vec![big_cluster(), big_cluster()], Engine::Dask);
    let tenants: Vec<TenantSpec> = (0..n_tenants)
        .map(|t| TenantSpec::new(&format!("tenant-{t}"), 1 + (t % 4) as u32, 8 * GIB, n_jobs))
        .collect();
    let pool = workload_pool();
    // A tight burst: all submissions land before the first completion,
    // so admissions stack to the full job count.
    let jobs: Vec<JobRequest> = (0..n_jobs)
        .map(|i| {
            JobRequest::new(i % n_tenants, i as f64 * 1e-6, pool[i % pool.len()])
                .working_set(16 * MIB)
                .priority((i % 3) as u8)
                .policy(RetryPolicy::new(2))
        })
        .collect();
    let report = service.run(&tenants, &jobs).expect("valid batch");
    (report, tenants)
}

/// Leg 2: overload a 2-slot cluster through a tiny queue bound.
fn overload_leg() -> ServiceReport {
    let cluster = Cluster::builder()
        .nodes(1)
        .cores_per_node(2)
        .mem_budget(GIB)
        .build();
    let service = Service::new(vec![cluster], Engine::Dask);
    let tenants = [
        TenantSpec::new("a", 2, GIB, 4),
        TenantSpec::new("b", 1, GIB, 4),
    ];
    let pool = workload_pool();
    let jobs: Vec<JobRequest> = (0..40)
        .map(|i| JobRequest::new(i % 2, 0.0, pool[i % pool.len()]).working_set(8 * MIB))
        .collect();
    service.run(&tenants, &jobs).expect("valid batch")
}

/// Leg 3: a fault-heavy scenario under 1 / 2 / 8 host threads.
fn thread_leg() -> (ServiceReport, ServiceReport, ServiceReport) {
    // Workload makespans are ~0.2s of virtual time: the burst below keeps
    // jobs resident through the death (0.1s) and the shrink (0.08s); the
    // scripted grow at 5.0s lets the stalled big jobs finish.
    let plan = FaultPlan::none()
        .kill_node(2, 0.1)
        .shrink_memory(0, 0.08, 256 * MIB)
        .set_memory(0, 5.0, 4 * GIB);
    let cluster = Cluster::builder()
        .nodes(3)
        .cores_per_node(4)
        .mem_budget(4 * GIB)
        .fault_plan(plan)
        .build();
    let service = Service::new(vec![cluster], Engine::Dask);
    let tenants = [
        TenantSpec::new("alpha", 3, 2 * GIB, 64),
        TenantSpec::new("beta", 1, GIB, 64),
    ];
    let pool = workload_pool();
    let jobs: Vec<JobRequest> = (0..24)
        .map(|i| {
            JobRequest::new(i % 2, (i as f64) * 0.005, pool[i % pool.len()])
                .working_set(((1 + i % 4) as u64) * 128 * MIB)
                .policy(RetryPolicy::new(4).with_detection_delay(0.5))
        })
        .collect();
    let run = |t: Threads| with_degree(t, || service.run(&tenants, &jobs).expect("valid batch"));
    (
        run(Threads::Serial),
        run(Threads::Fixed(2)),
        run(Threads::Fixed(8)),
    )
}

fn main() {
    let args = bench::cli::Cli::new()
        .value("--jobs", "N", "jobs in the scale leg (default 1200)")
        .value("--tenants", "N", "tenants in the scale leg (default 8)")
        .value(
            "--out",
            "PATH",
            "output path (default results/service.json)",
        )
        .parse();
    let n_jobs = args.usize_or("--jobs", 1200);
    let n_tenants = args.usize_or("--tenants", 8).max(2);
    let out_path = args.str_or("--out", "results/service.json");
    let mut failed = false;

    println!("service experiment: {n_tenants} tenants x {n_jobs} jobs");
    let (scale, tenants) = scale_leg(n_tenants, n_jobs);
    let completed = scale.jobs.iter().filter(|j| j.result.is_ok()).count();
    let p50 = scale.latency_quantile(0.50).unwrap_or(f64::NAN);
    let p99 = scale.latency_quantile(0.99).unwrap_or(f64::NAN);
    let quotas_held = scale
        .tenants
        .iter()
        .zip(&tenants)
        .all(|(st, spec)| st.mem_high_water <= spec.quota_bytes);
    println!(
        "  scale: {completed}/{n_jobs} completed, peak concurrency {}, \
         p50 {p50:.3}s, p99 {p99:.3}s, makespan {:.3}s",
        scale.peak_concurrent, scale.makespan_s
    );
    if completed != n_jobs {
        eprintln!("FAILED: {} jobs did not complete", n_jobs - completed);
        failed = true;
    }
    if scale.peak_concurrent < 1000.min(n_jobs) {
        eprintln!(
            "FAILED: peak concurrency {} never reached {}",
            scale.peak_concurrent,
            1000.min(n_jobs)
        );
        failed = true;
    }
    if !quotas_held {
        eprintln!("FAILED: a tenant exceeded its quota");
        failed = true;
    }

    let overload = overload_leg();
    let rejected = overload
        .jobs
        .iter()
        .filter(|j| matches!(j.result, Err(EngineError::Rejected { .. })))
        .count();
    let resolved = overload.jobs.iter().all(|j| j.end_s.is_some());
    println!(
        "  overload: {rejected}/40 shed with typed rejection, {} completed",
        overload.jobs.iter().filter(|j| j.result.is_ok()).count()
    );
    if rejected == 0 || !resolved {
        eprintln!("FAILED: overload must shed load typed and resolve every job");
        failed = true;
    }

    let (t1, t2, t8) = thread_leg();
    let identical = t1 == t2 && t2 == t8;
    println!(
        "  threads: reports at 1/2/8 host threads {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    if !identical {
        eprintln!("FAILED: service reports must not depend on host threads");
        failed = true;
    }

    let retries: u32 = t1.jobs.iter().map(|j| j.retries).sum();
    let json = format!(
        "{{\n  \"tenants\": {n_tenants},\n  \"jobs\": {n_jobs},\n  \
         \"completed\": {completed},\n  \"peak_concurrent\": {},\n  \
         \"latency_p50_s\": {p50:.6},\n  \"latency_p99_s\": {p99:.6},\n  \
         \"throughput_jobs_per_s\": {:.3},\n  \"makespan_s\": {:.3},\n  \
         \"quotas_held\": {quotas_held},\n  \"overload_submitted\": 40,\n  \
         \"overload_rejected_typed\": {rejected},\n  \
         \"fault_leg_retries\": {retries},\n  \
         \"reports_identical_at_threads\": [1, 2, 8],\n  \
         \"thread_invariance_held\": {identical}\n}}\n",
        scale.peak_concurrent,
        scale.throughput_jobs_per_s(),
        scale.makespan_s,
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write service.json");
    eprintln!("wrote {out_path}");
    if failed {
        std::process::exit(1);
    }
}
