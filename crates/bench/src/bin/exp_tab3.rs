//! Table 3 — Decision Framework: criteria and ranking for framework
//! selection, plus the recommendation logic applied to the paper's two
//! applications.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_tab3
//! ```

use mdtask_core::decision::{rank, recommend, Criterion, Workload};
use mdtask_core::EngineKind;

fn main() {
    println!("Table 3: Decision Framework — criteria and ranking");
    println!("(-: unsupported/low performance, o: minor, +: supported, ++: major)\n");
    let engines = [
        EngineKind::RadicalPilot,
        EngineKind::Spark,
        EngineKind::Dask,
    ];
    println!(
        "{:<28} {:>14} {:>8} {:>8}",
        "", "RADICAL-Pilot", "Spark", "Dask"
    );
    println!("Task Management");
    for c in Criterion::ALL.iter().filter(|c| c.is_task_management()) {
        print_row(*c, &engines);
    }
    println!("Application Characteristics");
    for c in Criterion::ALL.iter().filter(|c| !c.is_task_management()) {
        print_row(*c, &engines);
    }

    println!("\nRecommendations (§4.4.1):");
    let psa = Workload {
        embarrassingly_parallel: true,
        ..Default::default()
    };
    println!(
        "  PSA (embarrassingly parallel)      → {}",
        recommend(&psa).label()
    );
    let lf = Workload {
        needs_shuffle: true,
        ..Default::default()
    };
    println!(
        "  Leaflet Finder (map+reduce/shuffle) → {}",
        recommend(&lf).label()
    );
    let ensemble = Workload {
        mixes_mpi_tasks: true,
        ..Default::default()
    };
    println!(
        "  MD ensembles of MPI simulations     → {}",
        recommend(&ensemble).label()
    );
}

fn print_row(c: Criterion, engines: &[EngineKind; 3]) {
    println!(
        "  {:<26} {:>14} {:>8} {:>8}",
        c.label(),
        rank(engines[0], c).symbol(),
        rank(engines[1], c).symbol(),
        rank(engines[2], c).symbol()
    );
}
