//! Raw simulator speed: simulated task placements per host-second.
//!
//! ROADMAP item 2 ("fast at 1000× paper scale") is about the *simulator's*
//! own hot path, not the modelled makespans — this bench tracks it across
//! PRs the way the experiment binaries track makespan. For each cluster
//! shape (256 / 4k / 100k cores by default) it drives a saturated task
//! backlog straight into a `SimExecutor` — every task released at t=0, so
//! each placement must search the busy core timeline, the regime engines
//! hit between stage barriers — and measures wall-clock per leg:
//!
//! * **index** — the earliest-free-core tournament tree (production path),
//!   untraced: the hot path allocates nothing per task.
//! * **linear** — the retired O(cores) scan (`set_linear_pick`), kept
//!   compiled as the differential baseline. At the largest shape the leg
//!   caps its task count (`--linear-cap`) to stay affordable; throughput
//!   is per-task, so the numbers stay comparable.
//! * **traced** — the index path with a full trace on, at the smallest
//!   shape only: the cost ceiling of observability.
//!
//! Before timing anything, both pick paths replay an identical faulty
//! workload (deaths + stragglers + admission limits) and their
//! `SimReport`s are asserted byte-equal — the speedup is only meaningful
//! if the fast path is exact.
//!
//! Results land in `--out` (default `results/sim_throughput.json`),
//! including the index/linear speedup at each shape. With
//! `--min-tasks-per-sec X` the binary exits 1 if the 4k-core index leg
//! places fewer than X tasks per host-second — the CI floor, analogous to
//! `host_parallel`'s `--min-speedup`.
//!
//! ```sh
//! cargo run -p bench --release --bin sim_throughput
//! cargo run -p bench --release --bin sim_throughput -- \
//!     --tasks 1000000 --min-tasks-per-sec 100000
//! ```

use netsim::{Cluster, FaultPlan, SimExecutor};
use std::time::Instant;

const CORES_PER_NODE: usize = 32;

/// Deterministic per-task duration in (0.5, 1.5]s — varied so placements
/// spread unevenly across cores and the pick is never degenerate.
fn dur(i: usize) -> f64 {
    0.5 + ((i as u64).wrapping_mul(2654435761) % 1000 + 1) as f64 * 1e-3
}

fn cluster(cores: usize, plan: FaultPlan) -> Cluster {
    assert_eq!(cores % CORES_PER_NODE, 0);
    Cluster::builder()
        .nodes(cores / CORES_PER_NODE)
        .cores_per_node(CORES_PER_NODE)
        .fault_plan(plan)
        .build()
}

/// Place `tasks` saturated tasks; returns (host seconds, final makespan).
fn drive(exec: &mut SimExecutor, tasks: usize) -> (f64, f64) {
    let t = Instant::now();
    for i in 0..tasks {
        exec.run_task(0.0, dur(i));
    }
    (t.elapsed().as_secs_f64(), exec.report().makespan_s)
}

/// Replay one faulty workload through both pick paths and require
/// byte-identical reports (trace included).
fn assert_paths_identical(cores: usize, tasks: usize) {
    let plan = FaultPlan::none()
        .kill_node(1, 40.0)
        .slow_core(3, 3.0)
        .slow_core(cores / 2, 6.0);
    let run = |linear: bool| {
        let mut e = SimExecutor::new(cluster(cores, plan.clone()));
        e.set_linear_pick(linear);
        e.enable_trace();
        e.set_node_core_limit(0, CORES_PER_NODE / 2);
        for i in 0..tasks {
            e.run_task(0.0, dur(i));
        }
        e.into_report()
    };
    assert_eq!(
        run(false),
        run(true),
        "index and linear paths diverged at {cores} cores"
    );
}

struct Point {
    cores: usize,
    tasks: usize,
    index_tps: f64,
    linear_tasks: usize,
    linear_tps: f64,
    traced_tps: Option<f64>,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.index_tps / self.linear_tps
    }
}

fn main() {
    let args = bench::cli::Cli::new()
        .value("--tasks", "N", "tasks per shape (default 1000000)")
        .value(
            "--linear-cap",
            "N",
            "max tasks for the linear leg at >= 100k cores (default 20000)",
        )
        .value(
            "--min-tasks-per-sec",
            "X",
            "fail unless the 4k-core index leg reaches X tasks/s (default: record only)",
        )
        .value(
            "--out",
            "PATH",
            "output path (default results/sim_throughput.json)",
        )
        .parse();
    let tasks = args.usize_or("--tasks", 1_000_000);
    let linear_cap = args.usize_or("--linear-cap", 20_000);
    let min_tps = args.f64_or("--min-tasks-per-sec", 0.0);
    let out_path = args.str_or("--out", "results/sim_throughput.json");

    println!("sim_throughput: {tasks} saturated tasks per shape, {CORES_PER_NODE} cores/node");
    println!("cross-checking index vs linear placement equality...");
    assert_paths_identical(256, 20_000);
    assert_paths_identical(4096, 20_000);
    println!("  identical (reports byte-equal, faults + admission included)");

    let shapes = [256usize, 4096, 100_000 - 100_000 % CORES_PER_NODE];
    let mut points = Vec::new();
    for (si, &cores) in shapes.iter().enumerate() {
        // The linear leg is O(cores) per placement: affordable in full at
        // the small shapes, capped at the largest.
        let linear_tasks = if cores > 10_000 {
            tasks.min(linear_cap)
        } else {
            tasks
        };
        let (index_s, makespan) = drive(
            &mut SimExecutor::new(cluster(cores, FaultPlan::none())),
            tasks,
        );
        let mut lin = SimExecutor::new(cluster(cores, FaultPlan::none()));
        lin.set_linear_pick(true);
        let (linear_s, _) = drive(&mut lin, linear_tasks);
        // Full tracing only at the smallest shape: its event vector is the
        // bench's memory ceiling.
        let traced_tps = (si == 0).then(|| {
            let mut e = SimExecutor::new(cluster(cores, FaultPlan::none()));
            e.enable_trace();
            let (s, _) = drive(&mut e, tasks);
            tasks as f64 / s
        });
        let p = Point {
            cores,
            tasks,
            index_tps: tasks as f64 / index_s,
            linear_tasks,
            linear_tps: linear_tasks as f64 / linear_s,
            traced_tps,
        };
        println!(
            "{:>7} cores: index {:>12.0} tasks/s, linear {:>12.0} tasks/s \
             ({} tasks), speedup {:>8.1}x, makespan {makespan:.1}s{}",
            p.cores,
            p.index_tps,
            p.linear_tps,
            p.linear_tasks,
            p.speedup(),
            p.traced_tps
                .map_or(String::new(), |t| format!(", traced {t:.0} tasks/s")),
        );
        points.push(p);
    }

    let at_4k = points.iter().find(|p| p.cores == 4096).expect("4k point");
    let speedup_4k = at_4k.speedup();
    let index_tps_4k = at_4k.index_tps;
    println!("4k-core point: {index_tps_4k:.0} tasks/s, {speedup_4k:.1}x over the linear scan");

    let mut json = format!(
        "{{\n  \"cores_per_node\": {CORES_PER_NODE},\n  \"tasks_per_shape\": {tasks},\n  \
         \"equality_checked\": true,\n  \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"cores\": {}, \"tasks\": {}, \"index_tasks_per_s\": {:.0}, \
             \"linear_tasks\": {}, \"linear_tasks_per_s\": {:.0}, \"speedup\": {:.2}{}}}{}\n",
            p.cores,
            p.tasks,
            p.index_tps,
            p.linear_tasks,
            p.linear_tps,
            p.speedup(),
            p.traced_tps.map_or(String::new(), |t| format!(
                ", \"traced_tasks_per_s\": {t:.0}"
            )),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"speedup_at_4k\": {speedup_4k:.2},\n  \
         \"index_tasks_per_s_at_4k\": {index_tps_4k:.0},\n  \
         \"min_tasks_per_sec_required\": {min_tps}\n}}\n"
    ));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write sim_throughput.json");
    eprintln!("wrote {out_path}");

    if min_tps > 0.0 && index_tps_4k < min_tps {
        eprintln!(
            "FAIL: 4k-core index leg placed {index_tps_4k:.0} tasks/s, \
             below the {min_tps:.0} floor"
        );
        std::process::exit(1);
    }
}
