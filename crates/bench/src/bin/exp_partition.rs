//! Partition/split-brain experiment: what a false-positive failure
//! detector costs, per engine, in one artifact.
//!
//! Two legs:
//!
//! 1. **sweep**: partition duration × detector timeout, per engine. A
//!    scripted cut isolates node 1 mid-execution while its tasks keep
//!    running. A detector timeout shorter than the cut false-positively
//!    declares the node dead: work is rescheduled (wasted as
//!    `zombie_time_s`) and the stale results are fenced at heal. A
//!    timeout longer than the cut rides it out: nothing is rescheduled,
//!    the job merely stalls. Every run must still match the fault-free
//!    results bit-for-bit, and fences must conserve zombies.
//! 2. **chaos**: `--plans` seeded partition plans (cuts + link
//!    degradation stacked on deaths/stragglers) run on every engine.
//!    Each run completes with fault-free results and a balanced
//!    zombie/fence ledger or fails typed. Violations are shrunk to a
//!    minimal plan, written to `--violations-dir` for CI to upload, and
//!    fail the binary.
//!
//! Results land in `--out` (default `results/partition.json`). Exits 1
//! on any violated contract, so CI runs it as a gate.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_partition
//! cargo run -p bench --release --bin exp_partition -- --plans 200
//! ```

use mdtask_core::run::{run_lf, RunConfig};
use mdtask_core::{LfApproach, LfConfig, LfOutput};
use netsim::chaos::{plan_for_seed, shrink, ChaosConfig};
use netsim::{laptop, Cluster, FaultPlan, RetryPolicy};
use std::sync::Arc;
use taskframe::{Engine, EngineError};

const HEARTBEAT_S: f64 = 0.25;
/// Cut durations crossed with detector timeouts in the sweep.
const DURATIONS_S: [f64; 4] = [0.3, 0.75, 1.5, 3.0];
const TIMEOUTS_S: [f64; 4] = [0.25, 0.5, 1.0, 2.0];

fn system() -> (Arc<Vec<linalg::Vec3>>, LfConfig) {
    let b = mdsim::bilayer::generate(
        &mdsim::BilayerSpec {
            n_atoms: 200,
            ..Default::default()
        },
        7,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            // More partitions than one node's 8 cores, so node 1 hosts
            // in-flight tasks for every cut to strand.
            partitions: 16,
            cutoff: b.suggested_cutoff,
            paper_atoms: 200,
            charge_io: false,
        },
    )
}

fn policy(timeout_s: f64) -> RetryPolicy {
    RetryPolicy::new(4)
        .with_detection_delay(HEARTBEAT_S)
        .with_suspicion(HEARTBEAT_S, timeout_s)
        .with_deadline(10_000.0)
}

fn rc(engine: Engine, plan: FaultPlan, timeout_s: f64) -> RunConfig {
    RunConfig::new(Cluster::new(laptop(), 2).with_faults(plan), engine)
        .approach(LfApproach::Broadcast1D)
        .mpi_world(16)
        .retry_policy(policy(timeout_s))
}

/// Virtual time guaranteed to land among in-flight tasks: the middle of
/// the engine's execution window.
fn cut_time(engine: Engine, clean: &LfOutput) -> f64 {
    match engine {
        // Past the 35 s pilot bootstrap / 0.5 s mpirun startup.
        Engine::Pilot => 0.5 * (35.0 + clean.report.makespan_s),
        Engine::Mpi => 0.5 * (0.5 + clean.report.makespan_s),
        _ => clean
            .report
            .phases
            .iter()
            .find(|p| p.name == "edge-discovery")
            .map(|p| 0.5 * (p.start_s + p.end_s))
            .expect("edge-discovery phase"),
    }
}

fn matches(clean: &LfOutput, got: &LfOutput) -> bool {
    got.leaflet_sizes == clean.leaflet_sizes
        && got.n_components == clean.n_components
        && got.edges_found == clean.edges_found
}

struct SweepPoint {
    engine: Engine,
    duration_s: f64,
    timeout_s: f64,
    false_positive: bool,
    zombie_attempts: usize,
    zombie_time_s: f64,
    fenced_results: usize,
    reschedules: usize,
    makespan_s: f64,
    clean_makespan_s: f64,
}

fn main() {
    let args = bench::cli::Cli::new()
        .value("--plans", "N", "seeded partition chaos plans (default 100)")
        .value(
            "--out",
            "PATH",
            "output path (default results/partition.json)",
        )
        .value(
            "--violations-dir",
            "PATH",
            "where shrunk violating plans land (default results)",
        )
        .parse();
    let n_plans = args.usize_or("--plans", 100);
    let out_path = args.str_or("--out", "results/partition.json");
    let viol_dir = args.str_or("--violations-dir", "results");
    let mut failed = false;

    let (positions, cfg) = system();
    println!(
        "partition experiment: {}x{} duration x timeout sweep x 4 engines + {n_plans} chaos plans",
        DURATIONS_S.len(),
        TIMEOUTS_S.len()
    );

    let mut points: Vec<SweepPoint> = Vec::new();
    for engine in Engine::ALL {
        let clean = run_lf(
            &rc(engine, FaultPlan::none(), TIMEOUTS_S[0]),
            Arc::clone(&positions),
            &cfg,
        )
        .expect("fault-free run");
        let t_cut = cut_time(engine, &clean);
        for &duration in &DURATIONS_S {
            for &timeout in &TIMEOUTS_S {
                let plan = FaultPlan::none().partition(vec![vec![1]], t_cut, t_cut + duration);
                let out = run_lf(&rc(engine, plan, timeout), Arc::clone(&positions), &cfg)
                    .unwrap_or_else(|e| panic!("{engine:?} dur {duration} to {timeout}: {e}"));
                if !matches(&clean, &out) {
                    eprintln!(
                        "FAILED: {engine:?} dur {duration}s timeout {timeout}s \
                         diverged from the fault-free results"
                    );
                    failed = true;
                }
                if out.report.fenced_results != out.report.zombie_attempts {
                    eprintln!(
                        "FAILED: {engine:?} dur {duration}s timeout {timeout}s: \
                         {} zombies but {} fences — stale results not rejected exactly once",
                        out.report.zombie_attempts, out.report.fenced_results
                    );
                    failed = true;
                }
                points.push(SweepPoint {
                    engine,
                    duration_s: duration,
                    timeout_s: timeout,
                    false_positive: out.report.zombie_attempts > 0,
                    zombie_attempts: out.report.zombie_attempts,
                    zombie_time_s: out.report.zombie_time_s,
                    fenced_results: out.report.fenced_results,
                    reschedules: out.report.retries,
                    makespan_s: out.report.makespan_s,
                    clean_makespan_s: clean.report.makespan_s,
                });
            }
        }
    }
    for p in &points {
        println!(
            "  sweep: {:?} cut {:5.2}s timeout {:5.2}s -> {} zombies, \
             {:7.4}s wasted, {} reschedules{}",
            p.engine,
            p.duration_s,
            p.timeout_s,
            p.zombie_attempts,
            p.zombie_time_s,
            p.reschedules,
            if p.false_positive {
                " (false positive)"
            } else {
                " (rode it out)"
            }
        );
    }
    // The trade-off must actually show: per engine, the longest cut under
    // the hairiest trigger false-positives (wasted work > 0) while the
    // shortest cut under the laziest timeout rides it out (nothing
    // rescheduled, nothing fenced).
    for engine in Engine::ALL {
        let at = |d: f64, t: f64| {
            points
                .iter()
                .find(|p| p.engine == engine && p.duration_s == d && p.timeout_s == t)
                .unwrap()
        };
        let hasty = at(DURATIONS_S[3], TIMEOUTS_S[0]);
        if !hasty.false_positive || hasty.zombie_time_s <= 0.0 {
            eprintln!(
                "FAILED: {engine:?}: a {}s cut under a {}s timeout must \
                 false-positive and waste work",
                DURATIONS_S[3], TIMEOUTS_S[0]
            );
            failed = true;
        }
        let patient = at(DURATIONS_S[0], TIMEOUTS_S[3]);
        if patient.false_positive || patient.fenced_results > 0 {
            eprintln!(
                "FAILED: {engine:?}: a {}s cut under a {}s timeout must be \
                 waited out (no zombies, no fences)",
                DURATIONS_S[0], TIMEOUTS_S[3]
            );
            failed = true;
        }
    }

    // Chaos leg: generated cuts + link degradation stacked on the usual
    // deaths/stragglers, on every engine.
    let mut completed = 0usize;
    let mut typed = 0usize;
    let mut violations = 0usize;
    let mut chaos_zombies = 0usize;
    let mut chaos_fences = 0usize;
    for engine in Engine::ALL {
        let clean = run_lf(
            &rc(engine, FaultPlan::none(), 0.5),
            Arc::clone(&positions),
            &cfg,
        )
        .expect("fault-free run");
        let chaos_cfg = {
            let mut c = ChaosConfig::new(2, 8).with_partitions(2);
            c.death_window_s = match engine {
                Engine::Spark | Engine::Dask => (0.0, 3.0),
                Engine::Pilot => (0.0, 40.0),
                Engine::Mpi => (0.0, 1.5),
            };
            // Aim the cuts at the engine's busy window so they land
            // among in-flight tasks.
            let busy_lo = if engine == Engine::Pilot { 34.0 } else { 0.05 };
            c.partition_window_s = (busy_lo, clean.report.makespan_s);
            c.partition_len_s = (0.5, 3.0);
            c
        };
        let run_plan =
            |plan: FaultPlan| run_lf(&rc(engine, plan, 0.5), Arc::clone(&positions), &cfg);
        let verdict = |plan: &FaultPlan| -> Result<Option<String>, EngineError> {
            let out = run_plan(plan.clone())?;
            if !matches(&clean, &out) {
                return Ok(Some("results diverged from the fault-free run".into()));
            }
            if out.report.zombie_attempts > 0 && out.report.fenced_results == 0 {
                return Ok(Some("zombie results were not fenced".into()));
            }
            if !out.report.makespan_s.is_finite() {
                return Ok(Some("non-finite makespan".into()));
            }
            Ok(None)
        };
        for seed in 0..n_plans as u64 {
            let plan = plan_for_seed(&chaos_cfg, seed);
            match verdict(&plan) {
                Ok(None) => {
                    completed += 1;
                    let r = run_plan(plan.clone()).expect("just ran").report;
                    chaos_zombies += r.zombie_attempts;
                    chaos_fences += r.fenced_results;
                }
                Ok(Some(msg)) => {
                    eprintln!("VIOLATION seed {seed} {engine:?}: {msg}");
                    let shrunk = shrink(&plan, |cand| matches!(verdict(cand), Ok(Some(_))));
                    let path = format!(
                        "{viol_dir}/partition_violation_{seed}_{}.json",
                        format!("{engine:?}").to_lowercase()
                    );
                    std::fs::create_dir_all(&viol_dir).ok();
                    std::fs::write(&path, shrunk.to_json()).expect("write violating plan");
                    eprintln!("  shrunk plan written to {path}");
                    violations += 1;
                    failed = true;
                }
                Err(
                    EngineError::RetriesExhausted { .. }
                    | EngineError::DeadlineExceeded { .. }
                    | EngineError::WorkerLost { .. }
                    | EngineError::NoSurvivingWorkers { .. },
                ) => typed += 1,
                Err(other) => {
                    eprintln!("VIOLATION seed {seed} {engine:?}: untyped failure {other:?}");
                    violations += 1;
                    failed = true;
                }
            }
        }
    }
    println!(
        "  chaos: {completed} completed, {typed} typed failures, {violations} violations, \
         {chaos_zombies} zombies all fenced ({chaos_fences} fences) over {} runs",
        n_plans * 4
    );
    if chaos_zombies == 0 {
        eprintln!(
            "FAILED: no chaos plan produced a zombie — the battery is not exercising fencing"
        );
        failed = true;
    }

    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        rows.push_str(&format!(
            "    {{\"engine\": \"{:?}\", \"duration_s\": {}, \"timeout_s\": {}, \
             \"false_positive\": {}, \"zombie_attempts\": {}, \"zombie_time_s\": {:.6}, \
             \"fenced_results\": {}, \"reschedules\": {}, \"makespan_s\": {:.6}, \
             \"clean_makespan_s\": {:.6}}}{}\n",
            p.engine,
            p.duration_s,
            p.timeout_s,
            p.false_positive,
            p.zombie_attempts,
            p.zombie_time_s,
            p.fenced_results,
            p.reschedules,
            p.makespan_s,
            p.clean_makespan_s,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    let json = format!(
        "{{\n  \"heartbeat_s\": {HEARTBEAT_S},\n  \
         \"durations_s\": {DURATIONS_S:?},\n  \"timeouts_s\": {TIMEOUTS_S:?},\n  \
         \"sweep\": [\n{rows}  ],\n  \
         \"chaos_plans\": {n_plans},\n  \"chaos_runs\": {},\n  \
         \"chaos_completed\": {completed},\n  \"chaos_typed_failures\": {typed},\n  \
         \"chaos_violations\": {violations},\n  \
         \"chaos_zombie_attempts\": {chaos_zombies},\n  \
         \"chaos_fenced_results\": {chaos_fences}\n}}\n",
        n_plans * 4,
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write partition.json");
    eprintln!("wrote {out_path}");
    if failed {
        std::process::exit(1);
    }
}
