//! Host-parallel speedup measurement (PR-5 tentpole): wall-clock of the
//! chaos battery and a PSA block sweep, serial vs parallel, with the
//! determinism oracle checked in both modes.
//!
//! Two batteries:
//!
//! 1. **chaos**: the chaos-fuzzing harness (`netsim::chaos::fuzz`, which
//!    fans its plans out across host threads) runs `--plans` seeded fault
//!    plans against every engine's Leaflet Finder, once with the pool
//!    forced serial and once at `--threads` (default: one per host core).
//! 2. **psa-blocks**: a sweep of independent PSA runs (group-count ×
//!    seed grid) fanned out with `netsim::parallel::run_indexed`; the
//!    per-point Hausdorff fingerprints must be identical in both modes.
//!
//! Results land in `--out` (default `results/host_parallel.json`) with
//! the host core count, per-battery wall-clocks and speedups. With
//! `--min-speedup X` the binary exits 1 if the combined speedup falls
//! below X — the CI smoke runs it on the full battery with X = 1.0 to
//! assert parallel execution actually beats serial.
//!
//! ```sh
//! cargo run -p bench --release --bin host_parallel
//! cargo run -p bench --release --bin host_parallel -- \
//!     --plans 200 --min-speedup 1.0 --out results/host_parallel.json
//! ```

use mdsim::{BilayerSpec, ChainSpec};
use mdtask_core::leaflet::{LfApproach, LfConfig, LfOutput};
use mdtask_core::psa::PsaConfig;
use mdtask_core::run::{run_lf, run_psa, RunConfig};
use netsim::chaos::{fuzz, ChaosConfig, ChaosOutcome, Fingerprint};
use netsim::parallel::with_degree;
use netsim::{laptop, Cluster, RetryPolicy, Threads};
use std::sync::Arc;
use std::time::Instant;
use taskframe::Engine;

const MPI_WORLD: usize = 16;

fn lf_workload() -> (Arc<Vec<linalg::Vec3>>, LfConfig) {
    let b = mdsim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 200,
            ..Default::default()
        },
        7,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 8,
            paper_atoms: 200,
            charge_io: false,
        },
    )
}

fn fingerprint(out: &LfOutput) -> u64 {
    let mut fp = Fingerprint::new();
    for &s in &out.leaflet_sizes {
        fp.write_usize(s);
    }
    fp.write_usize(out.n_components);
    fp.write_u64(out.edges_found);
    fp.finish()
}

fn death_window(engine: Engine) -> (f64, f64) {
    match engine {
        Engine::Spark | Engine::Dask => (0.0, 3.0),
        Engine::Pilot => (0.0, 40.0),
        Engine::Mpi => (0.0, 1.5),
    }
}

/// The chaos battery: `plans` seeded fault plans against each engine.
/// Returns the number of fuzz violations (must be 0 in both modes).
fn chaos_battery(
    engines: &[Engine],
    plans: usize,
    positions: &Arc<Vec<linalg::Vec3>>,
    cfg: &LfConfig,
) -> usize {
    let mut violations = 0;
    for &engine in engines {
        let mut ccfg = ChaosConfig::new(2, 8);
        ccfg.plans = plans;
        ccfg.death_window_s = death_window(engine);
        ccfg.check_empty_plan_determinism = false;
        let report = fuzz(&ccfg, |plan| {
            let cluster = Cluster::new(laptop(), 2).with_faults(plan.clone());
            let approach = match engine {
                Engine::Spark => LfApproach::ParallelCC,
                Engine::Dask => LfApproach::Task2D,
                _ => LfApproach::Broadcast1D,
            };
            let mut rc = RunConfig::new(cluster, engine)
                .approach(approach)
                .mpi_world(MPI_WORLD);
            if engine == Engine::Mpi {
                rc = rc.retry_policy(RetryPolicy::new(4).with_detection_delay(0.25));
            }
            let out = run_lf(&rc, Arc::clone(positions), cfg).map_err(|e| format!("{e:?}"))?;
            Ok(ChaosOutcome {
                fingerprint: fingerprint(&out),
                report: out.report,
            })
        });
        violations += report.violations.len();
    }
    violations
}

/// The PSA block sweep: a grid of independent (groups, seed) runs fanned
/// out with `run_indexed`. Returns per-point data fingerprints.
fn psa_block_sweep(points: usize) -> Vec<u64> {
    let spec = ChainSpec {
        n_atoms: 10,
        n_frames: 5,
        stride: 1,
        ..ChainSpec::default()
    };
    netsim::parallel::run_indexed(points, |i| {
        let groups = 1 + i % 4;
        let seed = (i / 4) as u64;
        let ensemble = Arc::new(mdsim::chain::generate_ensemble(&spec, 4, seed));
        let cfg = PsaConfig {
            groups,
            charge_io: true,
        };
        let rc = RunConfig::new(Cluster::new(laptop(), 2), Engine::Spark);
        let out = run_psa(&rc, ensemble, &cfg).expect("fault-free");
        let mut fp = Fingerprint::new();
        for &d in out.distances.as_slice() {
            fp.write_f64(d);
        }
        fp.finish()
    })
}

struct Battery {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
}

impl Battery {
    fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s
    }
}

fn main() {
    let args = bench::cli::Cli::new()
        .value("--plans", "N", "chaos plans per engine (default 200)")
        .value("--psa-points", "N", "PSA sweep points (default 64)")
        .value(
            "--min-speedup",
            "X",
            "fail unless combined speedup >= X (default: record only)",
        )
        .value(
            "--out",
            "PATH",
            "output path (default results/host_parallel.json)",
        )
        .parse();
    let plans = args.usize_or("--plans", 200);
    let psa_points = args.usize_or("--psa-points", 64);
    let min_speedup = args.f64_or("--min-speedup", 0.0);
    let out_path = args.str_or("--out", "results/host_parallel.json");
    let engines = args.engines();

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let parallel_threads = args.threads.unwrap_or(Threads::Auto);
    let degree = parallel_threads.resolve();
    // The modelled virtual time must not depend on the pool: keep the
    // measured host durations out of the task-cost feedback so both legs
    // simulate the identical schedule and the fuzz oracles stay exact.
    netsim::set_deterministic_timing(true);
    println!(
        "host-parallel benchmark: {host_cores} host cores, parallel leg at \
         {degree} threads; chaos {plans} plans x {} engines, PSA {psa_points} points",
        engines.len()
    );

    let (positions, cfg) = lf_workload();
    let mut batteries = Vec::new();

    let t = Instant::now();
    let serial_viol = with_degree(Threads::Serial, || {
        chaos_battery(&engines, plans, &positions, &cfg)
    });
    let serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let par_viol = with_degree(parallel_threads, || {
        chaos_battery(&engines, plans, &positions, &cfg)
    });
    let parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(
        serial_viol, 0,
        "chaos battery must pass its oracles serially"
    );
    assert_eq!(
        par_viol, 0,
        "chaos battery must pass its oracles in parallel"
    );
    batteries.push(Battery {
        name: "chaos_sweep",
        serial_s,
        parallel_s,
    });

    let t = Instant::now();
    let serial_fps = with_degree(Threads::Serial, || psa_block_sweep(psa_points));
    let serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let par_fps = with_degree(parallel_threads, || psa_block_sweep(psa_points));
    let parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(
        serial_fps, par_fps,
        "PSA sweep fingerprints must be identical serial vs parallel"
    );
    batteries.push(Battery {
        name: "psa_block_sweep",
        serial_s,
        parallel_s,
    });

    let total_serial: f64 = batteries.iter().map(|b| b.serial_s).sum();
    let total_parallel: f64 = batteries.iter().map(|b| b.parallel_s).sum();
    let combined = total_serial / total_parallel;

    println!(
        "\n{:<16} {:>10} {:>10} {:>8}",
        "battery", "serial", "parallel", "speedup"
    );
    for b in &batteries {
        println!(
            "{:<16} {:>9.2}s {:>9.2}s {:>7.2}x",
            b.name,
            b.serial_s,
            b.parallel_s,
            b.speedup()
        );
    }
    println!(
        "{:<16} {total_serial:>9.2}s {total_parallel:>9.2}s {combined:>7.2}x",
        "combined"
    );

    let mut json = format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"parallel_threads\": {degree},\n  \
         \"chaos_plans_per_engine\": {plans},\n  \"engines\": {},\n  \
         \"psa_points\": {psa_points},\n  \"determinism_checked\": true,\n  \"batteries\": [\n",
        engines.len()
    );
    for (i, b) in batteries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.3}, \"parallel_s\": {:.3}, \
             \"speedup\": {:.3}}}{}\n",
            b.name,
            b.serial_s,
            b.parallel_s,
            b.speedup(),
            if i + 1 < batteries.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"combined_speedup\": {combined:.3},\n  \"min_speedup_required\": {min_speedup}\n}}\n"
    ));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write host_parallel.json");
    eprintln!("wrote {out_path}");

    if combined < min_speedup {
        eprintln!(
            "FAILED: combined speedup {combined:.2}x below required {min_speedup:.2}x \
             ({host_cores} host cores)"
        );
        std::process::exit(1);
    }
}
