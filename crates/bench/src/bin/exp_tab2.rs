//! Table 2 — MapReduce Operations used by the Leaflet Finder, with
//! *measured* shuffle volumes per approach (the quantities behind the
//! paper's "reduces the amount of shuffle data by more than 50%" claim).
//!
//! ```sh
//! cargo run -p bench --release --bin exp_tab2
//! ```

use bench::Opts;
use mdsim::{lf_dataset, LfDatasetId};
use mdtask_core::leaflet::{LfApproach, LfConfig};
use mdtask_core::run::{run_lf, RunConfig};
use netsim::Cluster;
use std::sync::Arc;
use taskframe::Engine;

fn main() {
    let opts = Opts::parse(32);
    let system = lf_dataset(LfDatasetId::Atoms131k, opts.scale, 7);
    let positions = Arc::new(system.positions);
    let cfg = LfConfig {
        cutoff: system.suggested_cutoff,
        partitions: 1024,
        paper_atoms: LfDatasetId::Atoms131k.paper_atoms(),
        charge_io: true,
    };

    println!("Table 2: MapReduce operations per Leaflet Finder approach");
    println!(
        "(measured on the 131k-class system ÷{}, Spark engine)\n",
        opts.scale
    );
    println!(
        "{:<34} {:<6} {:<38} {:>12} {:>9} | {:>14}",
        "approach", "part.", "map", "shuffle (B)", "tasks", "reduce"
    );
    let static_rows = [
        (
            LfApproach::Broadcast1D,
            "1-D",
            "edges via pairwise distance",
            "connected components",
        ),
        (
            LfApproach::Task2D,
            "2-D",
            "edges via pairwise distance",
            "connected components",
        ),
        (
            LfApproach::ParallelCC,
            "2-D",
            "edges via pairwise distance + partial CC",
            "join partial components",
        ),
        (
            LfApproach::TreeSearch,
            "2-D",
            "edges via BallTree + partial CC",
            "join partial components",
        ),
    ];
    for (approach, part, map, reduce) in static_rows {
        let rc =
            RunConfig::new(Cluster::new(opts.machine.clone(), 4), Engine::Spark).approach(approach);
        match run_lf(&rc, Arc::clone(&positions), &cfg) {
            Ok(out) => println!(
                "{:<34} {:<6} {:<38} {:>12} {:>9} | {:>14}",
                approach.label(),
                part,
                map,
                out.shuffle_bytes,
                out.tasks,
                reduce
            ),
            Err(e) => println!("{:<34} {e}", approach.label()),
        }
    }
    println!(
        "\npaper shape: approaches 1–2 shuffle the O(E) edge list (pickled\n\
         tuples, ~28 B/edge); approaches 3–4 shuffle O(n) partial components\n\
         (compact integer arrays) — \"reduces the amount of shuffle data by\n\
         more than 50%\" (§4.3.3), reproduced above."
    );
}
