//! Figure 7 — Leaflet Finder: performance of the four architectural
//! approaches on Spark, Dask and MPI4py.
//!
//! "Runtimes and Speedups for different system sizes over different number
//! of cores for all approaches and frameworks." Grid: 4 approaches ×
//! {Spark, Dask, MPI4py} × {131k, 262k, 524k, 4M atoms} × cores
//! {32, 64, 128, 256}. Missing paper bars (memory failures) appear here as
//! `OOM` — produced by the memory model, not hard-coded.
//!
//! Default scale ÷32 (131k→4k … 4M→125k atoms); the memory model still
//! reasons at paper scale via `LfConfig::paper_atoms`.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_fig7
//! cargo run -p bench --release --bin exp_fig7 -- --scale 64   # faster
//! ```

use bench::{cores_nodes_label, secs, Opts};
use mdsim::{lf_dataset, LfDatasetId};
use mdtask_core::leaflet::{LfApproach, LfConfig};
use mdtask_core::run::{run_lf, RunConfig};
use netsim::Cluster;
use std::sync::Arc;
use taskframe::Engine;

fn main() {
    let opts = Opts::parse(32);
    let cores_axis = [32usize, 64, 128, 256];
    println!(
        "Fig. 7: Leaflet Finder on {} (atoms ÷{})",
        opts.machine.name, opts.scale
    );

    for approach in LfApproach::ALL {
        println!("\n--- {} ---", approach.label());
        println!(
            "{:<6} {:>9} | {:>12} {:>12} {:>12}",
            "atoms", "cores/nd", "spark (s)", "dask (s)", "mpi4py (s)"
        );
        for id in LfDatasetId::ALL {
            let system = lf_dataset(id, opts.scale, 7);
            let positions = Arc::new(system.positions);
            let cfg = LfConfig {
                cutoff: system.suggested_cutoff,
                partitions: 1024,
                paper_atoms: id.paper_atoms(),
                charge_io: true,
            };
            for &cores in &cores_axis {
                let time = |engine| {
                    let rc =
                        RunConfig::new(Cluster::with_cores(opts.machine.clone(), cores), engine)
                            .approach(approach)
                            .mpi_world(cores);
                    run_lf(&rc, Arc::clone(&positions), &cfg)
                        .map(|o| secs(o.report.makespan_s))
                        .unwrap_or_else(|_| "OOM".into())
                };
                let spark = time(Engine::Spark);
                let dask = time(Engine::Dask);
                let mpi = time(Engine::Mpi);

                println!(
                    "{:<6} {:>9} | {:>12} {:>12} {:>12}",
                    id.label(),
                    cores_nodes_label(cores, &opts.machine),
                    spark,
                    dask,
                    mpi
                );
            }
        }
    }
    println!(
        "\npaper shape: approach 1 worst and memory-capped (Dask ≤262k,\n\
         Spark/MPI ≤524k); approach 2 beats 1 but cannot run 4M; approach 3\n\
         ~20% faster than 2 for Spark/Dask and reaches 4M for Spark/MPI;\n\
         tree-search wins on the large systems and runs 4M everywhere;\n\
         MPI speedups ≈8 at 256 cores vs ≈4.5–5 for Spark/Dask."
    );
}
