//! Ablation sweep over the repository's design choices (DESIGN.md §6):
//! quick wall-clock comparisons complementing the Criterion micro-benches.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_ablations
//! ```

use bench::{secs, section};
use mdsim::{BilayerSpec, ChainSpec};
use std::hint::black_box;
use std::time::Instant;

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn main() {
    // 1. RMSD kernel builds (the Fig. 6 mechanism).
    section("dRMS kernel: naive vs blocked vs black_box-pinned (GNU -O0)");
    let spec = ChainSpec {
        n_atoms: 3341,
        n_frames: 40,
        stride: 1,
        ..ChainSpec::default()
    };
    let a = mdsim::chain::generate(&spec, 1);
    let b = mdsim::chain::generate(&spec, 2);
    let pairs = 200usize;
    let (_, t_naive) = time(|| {
        black_box(
            (0..pairs)
                .map(|i| linalg::frame_rmsd(&a.frames[i % 40], &b.frames[(i * 7) % 40]))
                .sum::<f64>(),
        )
    });
    let (_, t_blocked) = time(|| {
        black_box(
            (0..pairs)
                .map(|i| linalg::frame_rmsd_blocked(&a.frames[i % 40], &b.frames[(i * 7) % 40]))
                .sum::<f64>(),
        )
    });
    let (_, t_noopt) = time(|| {
        black_box(
            (0..pairs)
                .map(|i| cpptraj::frame_rmsd_noopt(&a.frames[i % 40], &b.frames[(i * 7) % 40]))
                .sum::<f64>(),
        )
    });
    println!("naive   {:>10}s", secs(t_naive));
    println!(
        "blocked {:>10}s  ({:.2}x faster than naive)",
        secs(t_blocked),
        t_naive / t_blocked
    );
    println!(
        "noopt   {:>10}s  ({:.2}x slower than blocked)",
        secs(t_noopt),
        t_noopt / t_blocked
    );

    // 2. Hausdorff: naive vs early-break (§2.1.1's cited speedup).
    section("Hausdorff: naive (Algorithm 1) vs early-break [Taha & Hanbury]");
    let spec = ChainSpec {
        n_atoms: 200,
        n_frames: 102,
        stride: 1,
        ..ChainSpec::default()
    };
    let ta = mdsim::chain::generate(&spec, 3);
    let tb = mdsim::chain::generate(&spec, 4);
    let (h1, t_full) = time(|| linalg::hausdorff_naive(&ta.frames, &tb.frames, linalg::frame_rmsd));
    let (h2, t_eb) =
        time(|| linalg::hausdorff_early_break(&ta.frames, &tb.frames, linalg::frame_rmsd));
    assert!((h1 - h2).abs() < 1e-12);
    println!("naive       {:>10}s", secs(t_full));
    println!(
        "early-break {:>10}s  ({:.2}x faster, identical value)",
        secs(t_eb),
        t_full / t_eb
    );

    // 3. Edge discovery strategies (Fig. 7 approach 3 vs 4 mechanism).
    section("edge discovery: cdist vs BallTree vs cell list");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "atoms", "brute (s)", "tree (s)", "cells (s)"
    );
    for n in [2048usize, 8192, 32768] {
        let bl = mdsim::bilayer::generate(
            &BilayerSpec {
                n_atoms: n,
                ..Default::default()
            },
            7,
        );
        let cutoff = bl.suggested_cutoff;
        use neighbors::{neighbor_pairs, SearchStrategy::*};
        let (e1, t_brute) = time(|| neighbor_pairs(&bl.positions, cutoff, BruteForce));
        let (e2, t_tree) = time(|| neighbor_pairs(&bl.positions, cutoff, BallTree));
        let (e3, t_cells) = time(|| neighbor_pairs(&bl.positions, cutoff, CellList));
        assert_eq!(e1, e2);
        assert_eq!(e1, e3);
        println!(
            "{:>8} {:>12} {:>12} {:>12}",
            n,
            secs(t_brute),
            secs(t_tree),
            secs(t_cells)
        );
    }
    println!("(paper: brute force wins small systems, trees win large — §4.3.4)");

    // 4. Connected components algorithms.
    section("connected components: union-find vs BFS vs Shiloach-Vishkin");
    let bl = mdsim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 32768,
            ..Default::default()
        },
        9,
    );
    let edges = neighbors::neighbor_pairs(
        &bl.positions,
        bl.suggested_cutoff,
        neighbors::SearchStrategy::CellList,
    );
    let n = bl.n_atoms();
    let (c1, t_uf) = time(|| graphops::connected_components_uf(n, &edges));
    let (c2, t_bfs) = time(|| graphops::connected_components_bfs(n, &edges));
    let (c3, t_sv) = time(|| graphops::connected_components_sv(n, &edges));
    assert_eq!(c1, c2);
    assert_eq!(c1, c3);
    println!(
        "union-find       {:>10}s  ({} components)",
        secs(t_uf),
        c1.count
    );
    println!("bfs              {:>10}s", secs(t_bfs));
    println!(
        "shiloach-vishkin {:>10}s  ({} rounds)",
        secs(t_sv),
        graphops::sv_rounds(n, &edges)
    );

    // 5. Trajectory codecs.
    section("trajectory codecs: MDT (raw f32) vs XTCQ (quantized varint)");
    let spec = ChainSpec {
        n_atoms: 3341,
        n_frames: 102,
        stride: 1,
        ..ChainSpec::default()
    };
    let t = mdsim::chain::generate(&spec, 5);
    let (raw, t_mdt) = time(|| mdio::mdt::encode_mdt(&t.frames).unwrap());
    let (packed, t_xtcq) =
        time(|| mdio::xtcq::encode_xtcq(&t.frames, mdio::xtcq::DEFAULT_PRECISION).unwrap());
    println!("MDT  {:>10} bytes in {}s", raw.len(), secs(t_mdt));
    println!(
        "XTCQ {:>10} bytes in {}s  ({:.2}x smaller)",
        packed.len(),
        secs(t_xtcq),
        raw.len() as f64 / packed.len() as f64
    );
}
