//! Figure 8 — Broadcast and 1-D Partitioned Leaflet Finder (Approach 1):
//! runtime and broadcast-time breakdown.
//!
//! "Broadcast times are about 3%–15% of the edge discovery time for Spark,
//! 40%–65% for Dask, and <1%–10% for MPI4py. MPI's broadcast times
//! increase linearly as the number of processes increases, while Spark's
//! and Dask's remain relatively constant for each dataset."
//!
//! ```sh
//! cargo run -p bench --release --bin exp_fig8
//! ```

use bench::{cores_nodes_label, secs, Opts};
use mdsim::{lf_dataset, LfDatasetId};
use mdtask_core::leaflet::{LfApproach, LfConfig};
use mdtask_core::run::{run_lf, RunConfig};
use netsim::Cluster;
use std::sync::Arc;
use taskframe::Engine;

fn main() {
    let opts = Opts::parse(32);
    let cores_axis = [32usize, 64, 128, 256];
    println!(
        "Fig. 8: Leaflet Finder approach 1 broadcast breakdown on {} (atoms ÷{})",
        opts.machine.name, opts.scale
    );

    for id in [LfDatasetId::Atoms131k, LfDatasetId::Atoms262k] {
        let system = lf_dataset(id, opts.scale, 7);
        let positions = Arc::new(system.positions);
        let cfg = LfConfig {
            cutoff: system.suggested_cutoff,
            partitions: 1024,
            paper_atoms: id.paper_atoms(),
            charge_io: true,
        };
        println!("\n--- {} atoms ---", id.label());
        println!(
            "{:>9} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>6}",
            "cores/nd", "spark", "bcast", "%", "dask", "bcast", "%", "mpi", "bcast", "%"
        );
        for &cores in &cores_axis {
            let mut cells: Vec<String> = Vec::new();
            for engine in [Engine::Spark, Engine::Dask, Engine::Mpi] {
                let rc = RunConfig::new(Cluster::with_cores(opts.machine.clone(), cores), engine)
                    .approach(LfApproach::Broadcast1D)
                    .mpi_world(cores);
                let out =
                    run_lf(&rc, Arc::clone(&positions), &cfg).expect("approach1 fits 131k/262k");
                push_cells(&mut cells, &out.report);
            }

            println!(
                "{:>9} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>6}",
                cores_nodes_label(cores, &opts.machine),
                cells[0],
                cells[1],
                cells[2],
                cells[3],
                cells[4],
                cells[5],
                cells[6],
                cells[7],
                cells[8],
            );
        }
    }
    println!(
        "\npaper shape: broadcast is a small share for Spark (3–15%) and MPI\n\
         (<1–10%, but growing linearly with process count) and dominant for\n\
         Dask (40–65% of edge-discovery time)."
    );

    if opts.wants_observability() {
        // Traced Dask run of the broadcast-heavy approach: the critical
        // path shows *why* broadcast dominates (Fig. 8's mechanism).
        let system = lf_dataset(LfDatasetId::Atoms131k, opts.scale, 7);
        let cfg = LfConfig {
            cutoff: system.suggested_cutoff,
            partitions: 1024,
            paper_atoms: LfDatasetId::Atoms131k.paper_atoms(),
            charge_io: true,
        };
        let cores = 64;
        let rc = RunConfig::new(
            Cluster::with_cores(opts.machine.clone(), cores),
            Engine::Dask,
        )
        .approach(LfApproach::Broadcast1D)
        .trace(true);
        let d = run_lf(&rc, Arc::new(system.positions), &cfg).expect("traced dask run");
        let trace = d.report.trace.as_ref().expect("trace enabled");
        println!("\ncritical path (dask, approach 1, {cores} cores):");
        print!("{}", netsim::CriticalPath::from_trace(trace).render());
        bench::write_observability(&opts, &d.report, cores);
    }
}

fn push_cells(cells: &mut Vec<String>, report: &netsim::SimReport) {
    let bcast = report.phase_total("broadcast").unwrap_or(0.0);
    let edges = report.phase_total("edge-discovery").unwrap_or(f64::NAN);
    cells.push(secs(report.makespan_s));
    cells.push(secs(bcast));
    cells.push(format!("{:.0}%", 100.0 * bcast / edges));
}
