//! Streaming/in-situ experiment: the latency-vs-throughput frontier of
//! the four engine postures plus a stream-chaos gate, in one artifact.
//!
//! Three legs:
//!
//! 1. **frontier**: the Leaflet-Finder per-frame kernel streamed at
//!    increasing arrival rates (shrinking frame intervals). Per
//!    (engine, rate): achieved throughput (frames per virtual second up
//!    to the last window close) against mean and worst window staleness
//!    (close time minus window end — how far behind the live edge the
//!    emitted result runs). Dispatch overhead separates the postures:
//!    per-frame tasking saturates first, micro-batching and ring
//!    collectives amortize, the continuous pilot unit pays nothing per
//!    frame but closes whole windows at once.
//! 2. **chaos**: `--plans` seeded stream-fault plans (producer
//!    stalls/crashes, drops, delays, duplicates, node deaths, memory
//!    shrinks) run on every engine. Each run must either complete with
//!    the stream oracles intact (no silent loss, watermark monotone,
//!    bounded staleness) or fail with a typed error. Any violation is
//!    shrunk to a minimal plan, written to `--violations-dir` for CI to
//!    upload, and fails the binary.
//! 3. **threads**: one fault-heavy plan at 1/2/8 host threads; the
//!    three `SimReport`s must be bit-identical.
//!
//! Results land in `--out` (default `results/stream.json`). Exits 1 on
//! any violated contract, so CI runs it as a gate.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_stream
//! cargo run -p bench --release --bin exp_stream -- --plans 200
//! ```

use mdtask_core::run::{run_lf_stream, RunConfig};
use mdtask_core::LfConfig;
use netsim::chaos::{plan_for_seed, shrink, ChaosConfig};
use netsim::stream::{check_stream_invariants, DispatchMode, StreamJob, StreamRun, WindowSpec};
use netsim::{laptop, Cluster, FaultPlan, RetryPolicy, Threads};
use std::sync::Arc;
use taskframe::{Engine, EngineError};

/// Frames in the chaos and thread legs (0.25s cadence).
const FRAMES: usize = 96;
/// Event-time span of every frontier run: frame count scales with the
/// offered rate so each run streams the same virtual duration.
const SPAN_S: f64 = 24.0;
/// Event-time window layout, fixed across the sweep (2s tumbling,
/// 0.25s allowed lateness) so staleness is comparable between rates.
const WINDOW_S: f64 = 2.0;
const LATENESS_S: f64 = 0.25;

fn trajectory() -> Arc<mdsim::Trajectory> {
    let spec = mdsim::ChainSpec {
        n_atoms: 30,
        n_frames: 96,
        stride: 1,
        ..mdsim::ChainSpec::default()
    };
    Arc::new(mdsim::chain::generate_ensemble(&spec, 1, 11).remove(0))
}

fn lf_cfg() -> LfConfig {
    LfConfig {
        cutoff: 8.0,
        partitions: 4,
        paper_atoms: 30,
        charge_io: false,
    }
}

fn rc(engine: Engine, plan: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::new(Cluster::new(laptop(), 2).with_faults(plan), engine)
        .streaming(WINDOW_S, WINDOW_S, LATENESS_S)
        .stream_costs(0.05, 1 << 20)
        .retry_policy(
            RetryPolicy::new(4)
                .with_detection_delay(0.25)
                .with_deadline(10_000.0),
        );
    if engine == Engine::Mpi {
        cfg = cfg.mpi_world(8);
    }
    cfg
}

fn source(n_frames: usize, interval_s: f64, plan: FaultPlan) -> mdio::StreamSource {
    mdio::StreamSource::new(n_frames, interval_s)
        .with_latency(0.02)
        .with_jitter(0.05)
        .with_faults(plan)
}

fn run_one(
    engine: Engine,
    n_frames: usize,
    interval_s: f64,
    plan: FaultPlan,
) -> Result<StreamRun, EngineError> {
    run_lf_stream(
        &rc(engine, plan.clone()),
        trajectory(),
        &lf_cfg(),
        &source(n_frames, interval_s, plan),
    )
}

fn mode_for(engine: Engine) -> DispatchMode {
    match engine {
        Engine::Spark => DispatchMode::MicroBatch(4),
        Engine::Dask => DispatchMode::PerFrame,
        Engine::Pilot => DispatchMode::UnitPerWindow,
        Engine::Mpi => DispatchMode::RingCollective(4),
    }
}

fn oracle_message(
    engine: Engine,
    n_frames: usize,
    interval_s: f64,
    plan: &FaultPlan,
    run: &StreamRun,
) -> Option<String> {
    let spec = StreamJob::new(WindowSpec::sliding(WINDOW_S, WINDOW_S, LATENESS_S))
        .frame_cost(0.05)
        .spec(mode_for(engine), 0.0);
    let log = source(n_frames, interval_s, plan.clone()).schedule();
    // Slack covers dispatch overheads, buffering, compute backlog at
    // saturation, and death-detection delays.
    check_stream_invariants(&log, &spec, &run.output, 600.0)
}

struct FrontierPoint {
    engine: Engine,
    interval_s: f64,
    offered_fps: f64,
    achieved_fps: f64,
    staleness_mean_s: f64,
    staleness_max_s: f64,
    backpressure_pauses: usize,
}

fn frontier_leg() -> Vec<FrontierPoint> {
    let mut points = Vec::new();
    for engine in Engine::ALL {
        for &interval in &[0.8, 0.2, 0.05, 0.0125, 0.0025] {
            let frames = (SPAN_S / interval).round() as usize;
            let r = run_one(engine, frames, interval, FaultPlan::none())
                .unwrap_or_else(|e| panic!("{engine:?}@{interval}: clean stream failed: {e}"));
            let last_close = r
                .output
                .windows
                .iter()
                .map(|w| w.close_s)
                .fold(0.0f64, f64::max);
            let stale: Vec<f64> = r
                .output
                .windows
                .iter()
                .map(|w| (w.close_s - w.end_s).max(0.0))
                .collect();
            points.push(FrontierPoint {
                engine,
                interval_s: interval,
                offered_fps: frames as f64 / SPAN_S,
                achieved_fps: r.output.frames_accepted as f64 / last_close.max(1e-9),
                staleness_mean_s: stale.iter().sum::<f64>() / stale.len().max(1) as f64,
                staleness_max_s: stale.iter().copied().fold(0.0, f64::max),
                backpressure_pauses: r.output.backpressure_pauses,
            });
        }
    }
    points
}

fn main() {
    let args = bench::cli::Cli::new()
        .value("--plans", "N", "seeded chaos plans (default 100)")
        .value("--out", "PATH", "output path (default results/stream.json)")
        .value(
            "--violations-dir",
            "PATH",
            "where shrunk violating plans land (default results)",
        )
        .parse();
    let n_plans = args.usize_or("--plans", 100);
    let out_path = args.str_or("--out", "results/stream.json");
    let viol_dir = args.str_or("--violations-dir", "results");
    let mut failed = false;

    println!("stream experiment: frontier sweep + {n_plans} chaos plans x 4 engines");
    let points = frontier_leg();
    for p in &points {
        println!(
            "  frontier: {:?} offered {:7.2} f/s achieved {:7.2} f/s \
             staleness mean {:6.3}s max {:6.3}s",
            p.engine, p.offered_fps, p.achieved_fps, p.staleness_mean_s, p.staleness_max_s
        );
    }
    // The frontier must actually bend: for every engine the worst
    // staleness at the highest offered rate exceeds the lowest rate's.
    for engine in Engine::ALL {
        let of: Vec<&FrontierPoint> = points.iter().filter(|p| p.engine == engine).collect();
        let (first, last) = (of.first().unwrap(), of.last().unwrap());
        if last.staleness_max_s <= first.staleness_max_s {
            eprintln!(
                "FAILED: {engine:?} frontier never bent \
                 ({:.3}s at {:.1} f/s vs {:.3}s at {:.1} f/s)",
                first.staleness_max_s, first.offered_fps, last.staleness_max_s, last.offered_fps
            );
            failed = true;
        }
    }

    let mut chaos_cfg = ChaosConfig::new(2, 8).with_stream(FRAMES);
    chaos_cfg.death_window_s = (0.0, 20.0);
    chaos_cfg.mem_shrink_window_s = (0.0, 20.0);
    chaos_cfg.mem_per_node = 16 << 30;
    let chaos_interval = 0.25;
    let mut completed = 0usize;
    let mut typed = 0usize;
    let mut violations = 0usize;
    for seed in 0..n_plans as u64 {
        let plan = plan_for_seed(&chaos_cfg, seed);
        for engine in Engine::ALL {
            match run_one(engine, FRAMES, chaos_interval, plan.clone()) {
                Ok(r) => {
                    if let Some(msg) = oracle_message(engine, FRAMES, chaos_interval, &plan, &r) {
                        eprintln!("VIOLATION seed {seed} {engine:?}: {msg}");
                        // Shrink to a minimal plan that still trips the
                        // oracle (or fails), and persist it for CI.
                        let shrunk = shrink(&plan, |cand| {
                            match run_one(engine, FRAMES, chaos_interval, cand.clone()) {
                                Ok(r) => oracle_message(engine, FRAMES, chaos_interval, cand, &r)
                                    .is_some(),
                                Err(_) => false,
                            }
                        });
                        let path = format!(
                            "{viol_dir}/stream_violation_{seed}_{}.json",
                            format!("{engine:?}").to_lowercase()
                        );
                        std::fs::create_dir_all(&viol_dir).ok();
                        std::fs::write(&path, shrunk.to_json()).expect("write violating plan");
                        eprintln!("  shrunk plan written to {path}");
                        violations += 1;
                        failed = true;
                    } else {
                        completed += 1;
                    }
                }
                Err(
                    EngineError::StreamStalled { .. }
                    | EngineError::DeadlineExceeded { .. }
                    | EngineError::MemoryExhausted { .. }
                    | EngineError::OutOfMemory { .. }
                    | EngineError::WorkerLost { .. }
                    | EngineError::NoSurvivingWorkers { .. }
                    | EngineError::RetriesExhausted { .. },
                ) => typed += 1,
                Err(other) => {
                    eprintln!("VIOLATION seed {seed} {engine:?}: untyped failure {other:?}");
                    violations += 1;
                    failed = true;
                }
            }
        }
    }
    println!(
        "  chaos: {completed} completed, {typed} typed failures, \
         {violations} violations over {} runs",
        n_plans * 4
    );
    if completed == 0 {
        eprintln!("FAILED: no chaos plan completed — the battery is not exercising recovery");
        failed = true;
    }

    let heavy = FaultPlan::none()
        .seeded(5)
        .kill_node(0, 3.1)
        .stall_producer(6.0, 2.0)
        .duplicate_frames(0.1);
    let at = |threads: Threads| {
        netsim::parallel::with_degree(threads, || {
            run_one(Engine::Dask, FRAMES, chaos_interval, heavy.clone())
                .map_err(|e| format!("{e:?}"))
        })
    };
    let (t1, t2, t8) = (
        at(Threads::Serial),
        at(Threads::Fixed(2)),
        at(Threads::Fixed(8)),
    );
    let identical = match (&t1, &t2, &t8) {
        (Ok(a), Ok(b), Ok(c)) => a.output == b.output && a.report == b.report && b == c,
        (a, b, c) => a == b && b == c,
    };
    println!(
        "  threads: stream reports at 1/2/8 host threads {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    if !identical {
        eprintln!("FAILED: stream reports must not depend on host threads");
        failed = true;
    }

    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        rows.push_str(&format!(
            "    {{\"engine\": \"{:?}\", \"interval_s\": {}, \"offered_fps\": {:.4}, \
             \"achieved_fps\": {:.4}, \"staleness_mean_s\": {:.6}, \
             \"staleness_max_s\": {:.6}, \"backpressure_pauses\": {}}}{}\n",
            p.engine,
            p.interval_s,
            p.offered_fps,
            p.achieved_fps,
            p.staleness_mean_s,
            p.staleness_max_s,
            p.backpressure_pauses,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    let json = format!(
        "{{\n  \"span_s\": {SPAN_S},\n  \"chaos_frames\": {FRAMES},\n  \
         \"frontier\": [\n{rows}  ],\n  \
         \"chaos_plans\": {n_plans},\n  \"chaos_runs\": {},\n  \
         \"chaos_completed\": {completed},\n  \"chaos_typed_failures\": {typed},\n  \
         \"chaos_violations\": {violations},\n  \
         \"reports_identical_at_threads\": [1, 2, 8],\n  \
         \"thread_invariance_held\": {identical}\n}}\n",
        n_plans * 4,
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write stream.json");
    eprintln!("wrote {out_path}");
    if failed {
        std::process::exit(1);
    }
}
