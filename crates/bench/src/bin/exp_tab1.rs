//! Table 1 — Frameworks Comparison: descriptive properties of
//! RADICAL-Pilot, Spark and Dask (plus the MPI baseline).
//!
//! ```sh
//! cargo run -p bench --release --bin exp_tab1
//! ```

use mdtask_core::decision::framework_properties;
use mdtask_core::EngineKind;

fn main() {
    println!("Table 1: Frameworks Comparison\n");
    let engines = [
        EngineKind::RadicalPilot,
        EngineKind::Spark,
        EngineKind::Dask,
        EngineKind::Mpi,
    ];
    let rows = framework_properties(engines[0]);
    print!("{:<26}", "");
    for e in engines {
        print!("| {:<42}", e.label());
    }
    println!();
    for (i, (key, _)) in rows.iter().enumerate() {
        print!("{key:<26}");
        for e in engines {
            let props = framework_properties(e);
            print!("| {:<42}", props[i].1);
        }
        println!();
    }
}
