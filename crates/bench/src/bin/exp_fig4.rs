//! Figure 4 — Hausdorff Distance (PSA) on Wrangler.
//!
//! "Runtimes over different number of cores, trajectory sizes, and number
//! of trajectories. All frameworks scaled by a factor of 6 from 16 to 256
//! cores." Grid: {128, 256} trajectories × {small, medium, large} ×
//! cores {16, 64, 256} × {MPI4py, Spark, Dask, RADICAL-Pilot}.
//!
//! Defaults are laptop-scaled: trajectory count ÷8, atoms ÷16 (frames stay
//! at the paper's 102). `--full` runs paper sizes.
//!
//! ```sh
//! cargo run -p bench --release --bin exp_fig4
//! ```

use bench::{cores_nodes_label, secs, Opts};
use mdsim::{psa_ensemble, PsaSize};
use mdtask_core::psa::PsaConfig;
use mdtask_core::run::{run_psa, RunConfig};
use netsim::Cluster;
use std::sync::Arc;
use taskframe::Engine;

fn main() {
    let opts = Opts::parse(16);
    let traj_scale = if opts.scale == 1 { 1 } else { 8 };
    let cores_axis = [16usize, 64, 256];

    println!(
        "Fig. 4: PSA/Hausdorff on {} (atoms ÷{}, trajectories ÷{traj_scale})",
        opts.machine.name, opts.scale
    );
    println!(
        "\n{:<8} {:<7} {:>9} | {:>10} {:>10} {:>10} {:>10}",
        "size", "trajs", "cores/nd", "mpi4py", "spark", "dask", "rp"
    );

    for &count in &[128usize, 256] {
        let count = count / traj_scale;
        for size in PsaSize::ALL {
            let ensemble = Arc::new(psa_ensemble(size, count, opts.scale, 42));
            for &cores in &cores_axis {
                let cfg = PsaConfig::for_cores(cores);
                let time = |engine| {
                    let rc =
                        RunConfig::new(Cluster::with_cores(opts.machine.clone(), cores), engine)
                            .mpi_world(cores);
                    run_psa(&rc, Arc::clone(&ensemble), &cfg).map(|o| o.report.makespan_s)
                };
                let mpi = time(Engine::Mpi).expect("fault-free");
                let spark = time(Engine::Spark).expect("fault-free");
                let dask = time(Engine::Dask).expect("fault-free");
                let rp = time(Engine::Pilot).map(secs).unwrap_or_else(|_| "-".into());

                println!(
                    "{:<8} {:<7} {:>9} | {:>10} {:>10} {:>10} {:>10}",
                    size.label(),
                    count,
                    cores_nodes_label(cores, &opts.machine),
                    secs(mpi),
                    secs(spark),
                    secs(dask),
                    rp
                );
            }
        }
    }
    println!(
        "\npaper shape: all four frameworks within a small factor of each other;\n\
         every framework speeds up ≈6x from 16 to 256 cores; MPI4py fastest,\n\
         RADICAL-Pilot carries its pilot-bootstrap overhead."
    );
}
