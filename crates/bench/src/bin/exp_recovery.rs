//! Recovery-overhead sweep (PR-3): node-death time vs recovery cost for
//! every engine, with and without checkpointing.
//!
//! A fixed Leaflet Finder job runs fault-free once per engine to measure
//! its clean execution window (first recorded phase start → makespan, so
//! the sweep skips the engine's startup floor — 1 s for Spark, 35 s for
//! RP — where a death costs nothing), then re-runs with node 1 killed at
//! a sweep of fractions of that window. Each point records the makespan
//! inflation,
//! the `"recovery"` phase time, and the engine's recovery-cost counters
//! (`retries`, `recomputed_partitions`, `lost_time_s`). Two engines have a
//! checkpointing axis:
//!
//! * **Spark** — a two-shuffle RDD pipeline with and without
//!   `checkpoint()` on the intermediate RDD (lineage truncation);
//! * **MPI** — `run_lf` with `.checkpoint_restart(true)` restarting from
//!   the last collective barrier vs from scratch.
//!
//! Times are virtual; closures are re-measured each run, so cross-run
//! makespan deltas carry µs-scale measurement jitter (negligible against
//! detection delays and re-executed work, which dominate overheads).
//!
//! ```sh
//! cargo run -p bench --release --bin exp_recovery
//! cargo run -p bench --release --bin exp_recovery -- --out results/recovery.json
//! ```

use bench::secs;
use mdsim::BilayerSpec;
use mdtask_core::leaflet::{LfApproach, LfConfig};
use mdtask_core::run::{run_lf, RunConfig};
use netsim::{laptop, Cluster, FaultPlan, RetryPolicy, SimReport};
use sparklet::SparkContext;
use std::sync::Arc;
use taskframe::Engine;

const DEATH_FRACS: [f64; 5] = [0.15, 0.35, 0.55, 0.75, 0.95];
const MPI_WORLD: usize = 16;

/// One sweep point: a node death at `t_kill_s` and what it cost.
struct Point {
    death_frac: f64,
    t_kill_s: f64,
    outcome: Outcome,
}

enum Outcome {
    Recovered {
        makespan_s: f64,
        overhead_s: f64,
        recovery_s: f64,
        retries: usize,
        recomputed_partitions: usize,
        lost_time_s: f64,
    },
    Failed(String),
}

struct Series {
    engine: &'static str,
    variant: &'static str,
    clean_makespan_s: f64,
    points: Vec<Point>,
}

fn cluster(plan: FaultPlan) -> Cluster {
    Cluster::new(laptop(), 2).with_faults(plan)
}

/// The window worth killing in: from the first recorded phase (i.e. after
/// the engine's startup floor) to the end of the job.
fn execution_window(clean: &SimReport) -> (f64, f64) {
    let start = clean
        .phases
        .iter()
        .map(|p| p.start_s)
        .fold(f64::INFINITY, f64::min);
    let start = if start.is_finite() { start } else { 0.0 };
    (start, clean.makespan_s)
}

fn point(frac: f64, t_kill_s: f64, clean: f64, got: Result<&SimReport, String>) -> Point {
    let outcome = match got {
        Ok(rep) => Outcome::Recovered {
            makespan_s: rep.makespan_s,
            overhead_s: rep.makespan_s - clean,
            recovery_s: rep.phase_total("recovery").unwrap_or(0.0),
            retries: rep.retries,
            recomputed_partitions: rep.recomputed_partitions,
            lost_time_s: rep.lost_time_s,
        },
        Err(e) => Outcome::Failed(e),
    };
    Point {
        death_frac: frac,
        t_kill_s,
        outcome,
    }
}

/// The envelope of all `"shuffle"` phases: where map outputs are at risk
/// and a checkpoint can truncate lineage recompute.
fn shuffle_window(clean: &SimReport) -> (f64, f64) {
    let (mut start, mut end) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in clean.phases.iter().filter(|p| p.name == "shuffle") {
        start = start.min(p.start_s);
        end = end.max(p.end_s);
    }
    if start.is_finite() {
        (start, end)
    } else {
        execution_window(clean)
    }
}

/// Sweep one engine: `run(plan)` returns the report of a faulty run.
/// Deaths land at `DEATH_FRACS` fractions of `window`. Sweep points are
/// independent, so they fan out across host threads (`--threads`).
fn sweep<F>(
    engine: &'static str,
    variant: &'static str,
    clean: &SimReport,
    window: (f64, f64),
    run: F,
) -> Series
where
    F: Fn(FaultPlan) -> Result<SimReport, String> + Sync,
{
    let (win_start, win_end) = window;
    let points = netsim::parallel::run_indexed(DEATH_FRACS.len(), |i| {
        let frac = DEATH_FRACS[i];
        let t_kill = win_start + frac * (win_end - win_start);
        let rep = run(FaultPlan::none().kill_node(1, t_kill));
        point(
            frac,
            t_kill,
            clean.makespan_s,
            rep.as_ref().map_err(Clone::clone),
        )
    });
    Series {
        engine,
        variant,
        clean_makespan_s: clean.makespan_s,
        points,
    }
}

fn lf_workload() -> (Arc<Vec<linalg::Vec3>>, LfConfig) {
    let b = mdsim::bilayer::generate(
        &BilayerSpec {
            n_atoms: 1000,
            ..Default::default()
        },
        17,
    );
    (
        Arc::new(b.positions),
        LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 32,
            paper_atoms: 1000,
            charge_io: true,
        },
    )
}

/// One engine's recovery series. MPI gets a checkpointing axis
/// (`from_barrier`), which the task engines ignore.
fn engine_series(
    engine: Engine,
    positions: &Arc<Vec<linalg::Vec3>>,
    cfg: &LfConfig,
    from_barrier: bool,
) -> Series {
    let run = |plan: FaultPlan| {
        let mut rc = RunConfig::new(cluster(plan), engine)
            .approach(LfApproach::Broadcast1D)
            .mpi_world(MPI_WORLD)
            .checkpoint_restart(from_barrier);
        if engine == Engine::Mpi {
            rc = rc.retry_policy(RetryPolicy::new(5).with_detection_delay(0.25));
        }
        run_lf(&rc, Arc::clone(positions), cfg)
            .map(|o| o.report)
            .map_err(|e| format!("{e:?}"))
    };
    let clean = run(FaultPlan::none()).expect("fault-free");
    let variant = match engine {
        Engine::Spark => "lineage",
        Engine::Dask => "reschedule",
        Engine::Pilot => "re-enqueue",
        Engine::Mpi if from_barrier => "barrier-checkpoint",
        Engine::Mpi => "from-scratch",
    };
    // The pilot's phase bookkeeping sits at the tail of the run; the
    // at-risk window is the whole span after the 35 s bootstrap.
    let window = if engine == Engine::Pilot {
        (taskframe::pilot_profile().startup_s, clean.makespan_s)
    } else {
        execution_window(&clean)
    };
    sweep(engine.label(), variant, &clean, window, run)
}

/// The checkpoint axis for Spark: two chained shuffles over bulky records,
/// optionally checkpointing the intermediate RDD (same pipeline the
/// recovery-policy tests pin).
fn spark_checkpoint_series(checkpointed: bool) -> Series {
    let data: Vec<(u32, Vec<u32>)> = (0..64).map(|i| (i % 16, vec![i; 4096])).collect();
    let run = |plan: FaultPlan| {
        let sc = SparkContext::new(cluster(plan));
        let mid = sc
            .parallelize(data.clone(), 16)
            .group_by_key(16)
            .map(|(k, vs)| (k % 4, vs));
        let mid = if checkpointed { mid.checkpoint() } else { mid };
        mid.group_by_key(4)
            .try_collect()
            .map(|_| sc.report())
            .map_err(|e| format!("{e:?}"))
    };
    let clean = run(FaultPlan::none()).expect("fault-free");
    let variant = if checkpointed {
        "two-shuffle checkpointed"
    } else {
        "two-shuffle lineage"
    };
    // Kill inside the shuffle-fetch envelope, where map outputs are lost
    // and the checkpoint axis actually bites.
    let window = shuffle_window(&clean);
    sweep("spark-rdd", variant, &clean, window, run)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(series: &[Series]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"recovery-overhead sweep\",\n");
    out.push_str("  \"machine\": \"laptop x2 nodes\",\n  \"series\": [\n");
    for (i, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"variant\": \"{}\", \
             \"clean_makespan_s\": {:.6}, \"points\": [\n",
            s.engine, s.variant, s.clean_makespan_s
        ));
        for (j, p) in s.points.iter().enumerate() {
            let body = match &p.outcome {
                Outcome::Recovered {
                    makespan_s,
                    overhead_s,
                    recovery_s,
                    retries,
                    recomputed_partitions,
                    lost_time_s,
                } => format!(
                    "\"makespan_s\": {makespan_s:.6}, \"overhead_s\": {overhead_s:.6}, \
                     \"recovery_s\": {recovery_s:.6}, \"retries\": {retries}, \
                     \"recomputed_partitions\": {recomputed_partitions}, \
                     \"lost_time_s\": {lost_time_s:.6}"
                ),
                Outcome::Failed(e) => format!("\"error\": \"{}\"", json_escape(e)),
            };
            out.push_str(&format!(
                "      {{\"death_frac\": {:.2}, \"t_kill_s\": {:.6}, {body}}}{}\n",
                p.death_frac,
                p.t_kill_s,
                if j + 1 < s.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn print_series(s: &Series) {
    println!(
        "\n--- {} / {} (clean {} s) ---",
        s.engine,
        s.variant,
        secs(s.clean_makespan_s)
    );
    println!(
        "{:>6} {:>10} | {:>10} {:>10} {:>10} {:>4} {:>7} {:>10}",
        "frac", "t_kill", "makespan", "overhead", "recovery", "try", "recomp", "lost"
    );
    for p in &s.points {
        match &p.outcome {
            Outcome::Recovered {
                makespan_s,
                overhead_s,
                recovery_s,
                retries,
                recomputed_partitions,
                lost_time_s,
            } => println!(
                "{:>6.2} {:>10} | {:>10} {:>10} {:>10} {:>4} {:>7} {:>10}",
                p.death_frac,
                secs(p.t_kill_s),
                secs(*makespan_s),
                secs(*overhead_s),
                secs(*recovery_s),
                retries,
                recomputed_partitions,
                secs(*lost_time_s)
            ),
            Outcome::Failed(e) => println!(
                "{:>6.2} {:>10} | failed: {e}",
                p.death_frac,
                secs(p.t_kill_s)
            ),
        }
    }
}

fn main() {
    let args = bench::cli::Cli::new()
        .value(
            "--out",
            "PATH",
            "output path (default results/recovery.json)",
        )
        .parse();
    let out_path = args.str_or("--out", "results/recovery.json");

    println!(
        "Recovery sweep: node 1 killed at {DEATH_FRACS:?} of each engine's \
         clean execution window (LF Broadcast1D, 1000 atoms, 2 laptop nodes)"
    );
    let (positions, cfg) = lf_workload();
    let mut series = Vec::new();
    for engine in args.engines() {
        series.push(engine_series(engine, &positions, &cfg, true));
        if engine == Engine::Mpi {
            // MPI's checkpointing axis: restart from scratch as well.
            series.push(engine_series(engine, &positions, &cfg, false));
        }
    }
    if args.engine.is_none() || args.engine == Some(Engine::Spark) {
        series.push(spark_checkpoint_series(false));
        series.push(spark_checkpoint_series(true));
    }
    for s in &series {
        print_series(s);
    }

    let json = to_json(&series);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write recovery.json");
    eprintln!("wrote {out_path}");
}
