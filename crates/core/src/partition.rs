//! Data partitioning: Algorithm 2 for PSA and the memory-aware 2-D block
//! planner for the Leaflet Finder.

/// A half-open index range `[start, end)`.
pub type Range = (u32, u32);

/// One 2-D block of an all-pairs computation: compare every element of
/// `row` against every element of `col`. Planners only emit blocks with
/// `row.start <= col.start` (upper triangle); diagonal blocks are
/// self-comparisons and consumers must filter `i < j` there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    pub row: Range,
    pub col: Range,
}

impl Block {
    /// Is this a diagonal (self-comparison) block?
    pub fn is_diagonal(&self) -> bool {
        self.row == self.col
    }

    /// Bytes a double-precision `cdist` matrix over this block occupies —
    /// the quantity that forced the paper to split the 4M-atom dataset
    /// into 42k tasks.
    pub fn cdist_bytes(&self) -> u64 {
        let r = (self.row.1 - self.row.0) as u64;
        let c = (self.col.1 - self.col.0) as u64;
        r * c * 8
    }
}

/// Split `[0, n)` into `parts` contiguous, nearly-equal ranges (used by
/// the Leaflet Finder's Approach 1, "Broadcast and 1-D Partitioning").
pub fn plan_1d(n: usize, parts: usize) -> Vec<Range> {
    assert!(parts >= 1, "need at least one part");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0u32;
    for i in 0..parts {
        let len = (base + usize::from(i < extra)) as u32;
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Algorithm 2 (PSA): group `n` trajectories into `k` groups; every
/// ordered group pair becomes one task comparing `n/k × n/k` trajectory
/// pairs serially. Returns the `k²` blocks of the paper's formulation.
pub fn plan_psa_2d(n: usize, k: usize) -> Vec<Block> {
    assert!(
        k >= 1 && k <= n,
        "group count {k} out of range for {n} trajectories"
    );
    let ranges = plan_1d(n, k);
    let mut out = Vec::with_capacity(k * k);
    for &row in &ranges {
        for &col in &ranges {
            out.push(Block { row, col });
        }
    }
    out
}

/// Upper-triangle 2-D grid over `[0, n)` with `g` row/column groups:
/// `g(g+1)/2` blocks covering every unordered pair exactly once.
pub fn plan_2d_grid(n: usize, g: usize) -> Vec<Block> {
    assert!(g >= 1, "need at least one group");
    let ranges = plan_1d(n, g);
    let mut out = Vec::with_capacity(g * (g + 1) / 2);
    for i in 0..g {
        for j in i..g {
            out.push(Block {
                row: ranges[i],
                col: ranges[j],
            });
        }
    }
    out
}

/// Smallest grid dimension `g` whose upper triangle has at least
/// `target_tasks` blocks.
pub fn grid_for_tasks(target_tasks: usize) -> usize {
    let mut g = (((8.0 * target_tasks as f64 + 1.0).sqrt() - 1.0) / 2.0).floor() as usize;
    g = g.max(1);
    while g * (g + 1) / 2 < target_tasks {
        g += 1;
    }
    g
}

/// Memory-aware Leaflet Finder planner (Approaches 2 and 3): start from
/// the grid implied by `target_tasks`, then grow it until a
/// double-precision `cdist` block over the **paper-scale** system
/// (`paper_n` atoms) fits in `task_mem_budget` bytes. Blocks are emitted
/// in the *actual* (possibly scaled-down) index space `[0, n)`.
///
/// This reproduces §4.3's "data partitioning of the 4M atom dataset
/// resulted to 42k tasks … due to memory limitations from using cdist".
pub fn plan_2d_mem(
    n: usize,
    paper_n: usize,
    target_tasks: usize,
    task_mem_budget: u64,
) -> Vec<Block> {
    assert!(task_mem_budget > 0, "need a positive memory budget");
    let mut g = grid_for_tasks(target_tasks);
    // Paper-scale block edge for grid g is ceil(paper_n / g).
    let block_bytes = |g: usize| {
        let edge = (paper_n as u64).div_ceil(g as u64);
        edge * edge * 8
    };
    while block_bytes(g) > task_mem_budget {
        g += 1;
    }
    let g = g.min(n); // cannot have more groups than elements
    plan_2d_grid(n, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plan_1d_covers_exactly() {
        let parts = plan_1d(10, 3);
        assert_eq!(parts, vec![(0, 4), (4, 7), (7, 10)]);
        let even = plan_1d(8, 4);
        assert!(even.iter().all(|&(a, b)| b - a == 2));
    }

    #[test]
    fn plan_1d_more_parts_than_items() {
        let parts = plan_1d(2, 5);
        assert_eq!(parts.iter().filter(|&&(a, b)| b > a).count(), 2);
        assert_eq!(parts.last(), Some(&(2, 2)));
    }

    #[test]
    fn psa_2d_is_k_squared() {
        let blocks = plan_psa_2d(8, 4);
        assert_eq!(blocks.len(), 16);
        // Paper example: N² distances mapped to k² tasks of n1×n1 each.
        assert!(blocks
            .iter()
            .all(|b| b.row.1 - b.row.0 == 2 && b.col.1 - b.col.0 == 2));
    }

    #[test]
    fn grid_for_tasks_bounds() {
        assert_eq!(grid_for_tasks(1), 1);
        assert_eq!(grid_for_tasks(3), 2);
        let g = grid_for_tasks(1024);
        assert!(g * (g + 1) / 2 >= 1024);
        assert!((g - 1) * g / 2 < 1024);
    }

    #[test]
    fn grid_blocks_cover_upper_triangle() {
        let n = 20;
        let blocks = plan_2d_grid(n, 4);
        // Every unordered pair (i < j) plus self-pairs on the diagonal is
        // covered by exactly one block.
        let mut cover = vec![vec![0u8; n]; n];
        for b in &blocks {
            for i in b.row.0..b.row.1 {
                for j in b.col.0..b.col.1 {
                    let (i, j) = (i as usize, j as usize);
                    if b.is_diagonal() {
                        if i < j {
                            cover[i][j] += 1;
                        }
                    } else {
                        cover[i.min(j)][i.max(j)] += 1;
                    }
                }
            }
        }
        for (i, row) in cover.iter().enumerate() {
            for (j, &count) in row.iter().enumerate().skip(i + 1) {
                assert_eq!(count, 1, "pair ({i},{j}) covered {count} times");
            }
        }
    }

    #[test]
    fn mem_planner_splits_4m_like_the_paper() {
        // Wrangler-class budget: 128 GB node, 24 workers, half a worker
        // for a task's cdist matrix ≈ 2.67 GB.
        let budget = 128 * (1u64 << 30) / 24 / 2;
        let small = plan_2d_mem(131_072, 131_072, 1024, budget);
        let big = plan_2d_mem(4_000_000, 4_000_000, 1024, budget);
        // 131k: the target grid already fits.
        let g_target = grid_for_tasks(1024);
        assert_eq!(small.len(), g_target * (g_target + 1) / 2);
        // 4M: tens of thousands of tasks, not ~1k.
        assert!(
            big.len() > 10_000 && big.len() < 100_000,
            "4M atoms should explode the task count (got {})",
            big.len()
        );
    }

    #[test]
    fn mem_planner_uses_paper_scale_for_scaled_data() {
        let budget = 128 * (1u64 << 30) / 24 / 2;
        // Scaled-down data (4M/32 atoms) must still split like 4M.
        let scaled = plan_2d_mem(125_000, 4_000_000, 1024, budget);
        let unscaled = plan_2d_mem(4_000_000, 4_000_000, 1024, budget);
        assert_eq!(scaled.len(), unscaled.len());
    }

    #[test]
    fn cdist_bytes() {
        let b = Block {
            row: (0, 100),
            col: (100, 300),
        };
        assert_eq!(b.cdist_bytes(), 100 * 200 * 8);
        assert!(!b.is_diagonal());
        assert!(Block {
            row: (0, 5),
            col: (0, 5)
        }
        .is_diagonal());
    }

    proptest! {
        #[test]
        fn plan_1d_partitions_exactly(n in 0usize..500, parts in 1usize..40) {
            let ranges = plan_1d(n, parts);
            prop_assert_eq!(ranges.len(), parts);
            let mut expect = 0u32;
            for (a, b) in ranges {
                prop_assert_eq!(a, expect);
                prop_assert!(b >= a);
                expect = b;
            }
            prop_assert_eq!(expect as usize, n);
        }

        #[test]
        fn grid_cover_is_exact(n in 1usize..60, g in 1usize..10) {
            let g = g.min(n);
            let blocks = plan_2d_grid(n, g);
            let mut count = 0usize;
            for b in &blocks {
                let r = (b.row.1 - b.row.0) as usize;
                let c = (b.col.1 - b.col.0) as usize;
                count += if b.is_diagonal() { r * (r - 1) / 2 } else { r * c };
            }
            prop_assert_eq!(count, n * (n - 1) / 2);
        }
    }
}
