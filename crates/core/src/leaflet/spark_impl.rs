//! Leaflet Finder on Spark (`sparklet`), all four approaches.

use super::gates::{check_feasible, task_mem_budget};
use super::kernels::{block_edges, block_edges_tree, block_input_bytes, strip_edges};
use super::{driver_components, sizes_of_groups, LfApproach, LfConfig, LfOutput};
use crate::partition::{grid_for_tasks, plan_1d, plan_2d_grid, plan_2d_mem, Block};
use crate::EngineKind;
use graphops::{merge_partials, partial_components, PartialComponents};
use linalg::Vec3;
use sparklet::{Rdd, SparkContext};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use taskframe::{EngineError, TaskCtx};

/// Run the Leaflet Finder on Spark with the chosen approach.
///
/// Deprecated free-function surface; prefer
/// [`run_lf`](crate::run::run_lf) with a [`RunConfig`](crate::run::RunConfig).
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_lf} instead")]
pub fn lf_spark(
    sc: &SparkContext,
    positions: Arc<Vec<Vec3>>,
    approach: LfApproach,
    cfg: &LfConfig,
) -> Result<LfOutput, EngineError> {
    lf_spark_impl(sc, positions, approach, cfg)
}

pub(crate) fn lf_spark_impl(
    sc: &SparkContext,
    positions: Arc<Vec<Vec3>>,
    approach: LfApproach,
    cfg: &LfConfig,
) -> Result<LfOutput, EngineError> {
    check_feasible(EngineKind::Spark, approach, cfg, sc.cluster())?;
    let n = positions.len();
    match approach {
        LfApproach::Broadcast1D => {
            sc.set_phase("broadcast");
            let bc = sc.broadcast((*positions).clone())?;
            let strips = plan_1d(n, cfg.partitions);
            let n_tasks = strips.len();
            let cutoff = cfg.cutoff;
            let edge_count = Arc::new(AtomicU64::new(0));
            let counter = Arc::clone(&edge_count);
            let rdd = Rdd::from_partitions(sc.clone(), n_tasks, move |p, _ctx: &TaskCtx| {
                let edges = strip_edges(bc.value(), strips[p], cutoff);
                counter.fetch_add(edges.len() as u64, Ordering::Relaxed);
                edges
            });
            let (edges, shuffle_bytes) = collect_edges(sc, &rdd)?;
            let (sizes, count) = driver_cc(sc, n, &edges);
            Ok(finish(
                sc,
                sizes,
                count,
                edge_count.load(Ordering::Relaxed),
                shuffle_bytes,
                n_tasks,
            ))
        }
        LfApproach::Task2D => {
            let blocks = plan_2d_grid(n, grid_for_tasks(cfg.partitions));
            let (edges, edge_count, shuffle_bytes, n_tasks) =
                run_edge_blocks(sc, &positions, blocks, cfg, false)?;
            let (sizes, count) = driver_cc(sc, n, &edges);
            Ok(finish(sc, sizes, count, edge_count, shuffle_bytes, n_tasks))
        }
        LfApproach::ParallelCC => {
            let blocks = plan_2d_mem(
                n,
                cfg.paper_atoms,
                cfg.partitions,
                task_mem_budget(sc.cluster()),
            );
            run_partial_cc(sc, &positions, blocks, cfg, false)
        }
        LfApproach::TreeSearch => {
            let blocks = plan_2d_grid(n, grid_for_tasks(cfg.partitions));
            run_partial_cc(sc, &positions, blocks, cfg, true)
        }
    }
}

/// Edge-stage result: `(edges, edge count, shuffle bytes, tasks run)`.
type EdgeStage = (Vec<(u32, u32)>, u64, u64, usize);

/// Map stage returning raw edge lists (approaches 1–2), collected at the
/// driver; the gathered edge-list volume is the shuffle cost of Table 2.
fn run_edge_blocks(
    sc: &SparkContext,
    positions: &Arc<Vec<Vec3>>,
    blocks: Vec<Block>,
    cfg: &LfConfig,
    tree: bool,
) -> Result<EdgeStage, EngineError> {
    let n_tasks = blocks.len();
    let cutoff = cfg.cutoff;
    let charge_io = cfg.charge_io;
    let net = sc.cluster().profile.network;
    let pos = Arc::clone(positions);
    let rdd = Rdd::from_partitions(sc.clone(), n_tasks, move |p, ctx: &TaskCtx| {
        let b = blocks[p];
        if charge_io {
            ctx.charge(net.transfer_time(block_input_bytes(b), false));
        }
        if tree {
            block_edges_tree(&pos, b, cutoff)
        } else {
            block_edges(&pos, b, cutoff)
        }
    });
    let (edges, shuffle_bytes) = collect_edges(sc, &rdd)?;
    let count = edges.len() as u64;
    Ok((edges, count, shuffle_bytes, n_tasks))
}

fn collect_edges(
    sc: &SparkContext,
    rdd: &Rdd<(u32, u32)>,
) -> Result<(Vec<(u32, u32)>, u64), EngineError> {
    sc.set_phase("edge-discovery");
    let t0 = sc.now();
    let edges = rdd.try_collect()?;
    let t1 = sc.now();
    sc.note_phase("edge-discovery", t0, t1);
    let bytes = super::edge_shuffle_bytes(edges.len() as u64);
    Ok((edges, bytes))
}

/// Approaches 3–4: map computes partial components; Spark's `reduce`
/// merges them (one partial per task crosses the wire — Table 2's O(n)
/// shuffle instead of O(E)).
fn run_partial_cc(
    sc: &SparkContext,
    positions: &Arc<Vec<Vec3>>,
    blocks: Vec<Block>,
    cfg: &LfConfig,
    tree: bool,
) -> Result<LfOutput, EngineError> {
    let n_tasks = blocks.len();
    let cutoff = cfg.cutoff;
    let charge_io = cfg.charge_io;
    let net = sc.cluster().profile.network;
    let pos = Arc::clone(positions);
    let edge_count = Arc::new(AtomicU64::new(0));
    let shuffle_bytes = Arc::new(AtomicU64::new(0));
    let (ec, sb) = (Arc::clone(&edge_count), Arc::clone(&shuffle_bytes));
    let rdd = Rdd::from_partitions(sc.clone(), n_tasks, move |p, ctx: &TaskCtx| {
        let b = blocks[p];
        if charge_io {
            ctx.charge(net.transfer_time(block_input_bytes(b), false));
        }
        let edges = if tree {
            block_edges_tree(&pos, b, cutoff)
        } else {
            block_edges(&pos, b, cutoff)
        };
        ec.fetch_add(edges.len() as u64, Ordering::Relaxed);
        let partial = partial_components(&edges);
        sb.fetch_add(partial.wire_bytes(), Ordering::Relaxed);
        vec![partial.components]
    });
    sc.set_phase("edge-discovery+partial-cc");
    let t0 = sc.now();
    let merged = rdd.try_reduce(|a, b| {
        merge_partials(&[
            PartialComponents { components: a },
            PartialComponents { components: b },
        ])
        .components
    })?;
    let t1 = sc.now();
    sc.note_phase("edge-discovery+partial-cc", t0, t1);
    let (sizes, count) = sizes_of_groups(merged.unwrap_or_default());
    Ok(finish(
        sc,
        sizes,
        count,
        edge_count.load(Ordering::Relaxed),
        shuffle_bytes.load(Ordering::Relaxed),
        n_tasks,
    ))
}

/// Driver-side connected components, with its real (measured) time charged
/// to the virtual clock.
fn driver_cc(sc: &SparkContext, n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, usize) {
    let ((sizes, count), host_s) = netsim::measure(|| driver_components(n, edges));
    sc.charge_driver("connected-components", sc.cluster().scale_compute(host_s));
    (sizes, count)
}

fn finish(
    sc: &SparkContext,
    leaflet_sizes: Vec<usize>,
    n_components: usize,
    edges_found: u64,
    shuffle_bytes: u64,
    tasks: usize,
) -> LfOutput {
    LfOutput {
        leaflet_sizes,
        n_components,
        edges_found,
        shuffle_bytes,
        tasks,
        report: sc.report(),
    }
}
