//! The Leaflet Finder (Algorithm 3) in the four architectural approaches
//! of Table 2, on Spark, Dask and MPI (plus Approach 2 on RADICAL-Pilot,
//! the only combination the paper evaluates for the pilot, Fig. 9).
//!
//! | | Partitioning | Map | Shuffle | Reduce |
//! |---|---|---|---|---|
//! | Approach 1 | 1-D + broadcast | pairwise-distance edges | edge list O(E) | driver CC |
//! | Approach 2 | 2-D pre-partitioned | pairwise-distance edges | edge list O(E) | driver CC |
//! | Approach 3 | 2-D pre-partitioned | edges + partial CC | partial components O(n) | merge partials |
//! | Approach 4 | 2-D pre-partitioned | BallTree edges + partial CC | partial components O(n) | merge partials |
//!
//! Every variant returns the same leaflet assignment (verified against the
//! serial reference and the generator's ground truth) plus a simulated
//! execution report with phase breakdowns (Fig. 8) and shuffle volumes
//! (Table 2 discussion).

mod dask_impl;
mod gates;
mod kernels;
mod mpi_impl;
mod pilot_impl;
mod spark_impl;

#[allow(deprecated)]
pub use dask_impl::lf_dask;
pub use gates::{check_feasible, task_mem_budget, worker_mem};
pub use kernels::{block_edges, block_edges_indexed, block_edges_tree, strip_edges};
#[allow(deprecated)]
pub use mpi_impl::{lf_mpi, lf_mpi_with_policy};
#[allow(deprecated)]
pub use pilot_impl::lf_pilot;
#[allow(deprecated)]
pub use spark_impl::lf_spark;

pub(crate) use kernels::block_input_bytes;

use graphops::connected_components_uf;
use linalg::Vec3;
use netsim::SimReport;

/// The four architectural approaches of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LfApproach {
    /// Broadcast the system, 1-D row partitioning, driver-side CC.
    Broadcast1D,
    /// 2-D pre-partitioned blocks via the task API, driver-side CC.
    Task2D,
    /// 2-D blocks, map computes partial components, reduce merges them.
    ParallelCC,
    /// Approach 3 with BallTree edge discovery instead of `cdist`.
    TreeSearch,
}

impl LfApproach {
    pub const ALL: [LfApproach; 4] = [
        LfApproach::Broadcast1D,
        LfApproach::Task2D,
        LfApproach::ParallelCC,
        LfApproach::TreeSearch,
    ];

    pub fn label(self) -> &'static str {
        match self {
            LfApproach::Broadcast1D => "Broadcast & 1-D Partitioning",
            LfApproach::Task2D => "Task API & 2-D Partitioning",
            LfApproach::ParallelCC => "Parallel Connected Components",
            LfApproach::TreeSearch => "Tree-Search",
        }
    }
}

/// Leaflet Finder job parameters.
#[derive(Clone, Debug)]
pub struct LfConfig {
    /// Neighbourhood threshold (Algorithm 3's `Cutoff`).
    pub cutoff: f32,
    /// Target partition count (the paper uses 1024).
    pub partitions: usize,
    /// Atom count of the *paper-scale* system this run stands in for —
    /// drives the memory model (broadcast failures, cdist task splitting)
    /// even when the actual data is scaled down. Set it to
    /// `positions.len()` for unscaled runs.
    pub paper_atoms: usize,
    /// Charge tasks the virtual time to read their blocks from storage.
    pub charge_io: bool,
}

impl LfConfig {
    /// Unscaled configuration with the paper's 1024 partitions.
    pub fn paper(n_atoms: usize, cutoff: f32) -> Self {
        LfConfig {
            cutoff,
            partitions: 1024,
            paper_atoms: n_atoms,
            charge_io: true,
        }
    }
}

/// Result of a Leaflet Finder run.
#[derive(Clone, Debug)]
pub struct LfOutput {
    /// Component sizes, descending — the two leaflets first.
    pub leaflet_sizes: Vec<usize>,
    /// Number of connected components (among atoms with ≥ 1 edge).
    pub n_components: usize,
    /// Total edges discovered.
    pub edges_found: u64,
    /// Bytes moved between the map and reduce sides (edge lists for
    /// approaches 1–2, partial components for 3–4 — Table 2's comparison).
    pub shuffle_bytes: u64,
    /// Tasks executed (1024 normally; tens of thousands when the memory
    /// planner splits, §4.3).
    pub tasks: usize,
    pub report: SimReport,
}

/// Serial reference: brute-force edges + union-find CC.
pub fn lf_serial(positions: &[Vec3], cutoff: f32) -> LfOutput {
    let edges = linalg::edges_within_cutoff(positions, positions, cutoff, true);
    let comps = connected_components_uf(positions.len(), &edges);
    let (sizes, count) = sizes_of_groups(comps.groups().into_iter().filter(|g| g.len() >= 2));
    LfOutput {
        leaflet_sizes: sizes,
        n_components: count,
        edges_found: edges.len() as u64,
        shuffle_bytes: 0,
        tasks: 1,
        report: SimReport::default(),
    }
}

/// Shuffle volume of an edge list as the paper's deployments paid it:
/// every `(i, j)` record crosses the wire as a pickled Python tuple
/// (~28 bytes: two ints plus tuple/pickle framing), while partial
/// components travel as compact integer arrays
/// ([`graphops::PartialComponents::wire_bytes`], 4 bytes per node). This
/// asymmetry — tuples-of-ints vs arrays — is what makes Approach 3's
/// shuffle ">50% smaller" in §4.3.3 despite carrying O(n) node entries.
pub(crate) fn edge_shuffle_bytes(n_edges: u64) -> u64 {
    n_edges * 28 + 4
}

/// Component sizes (descending) and count from group lists.
pub(crate) fn sizes_of_groups(groups: impl IntoIterator<Item = Vec<u32>>) -> (Vec<usize>, usize) {
    let mut sizes: Vec<usize> = groups.into_iter().map(|g| g.len()).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let count = sizes.len();
    (sizes, count)
}

/// Driver-side connected components over a gathered edge list; returns
/// (sizes desc, count) over non-singleton components.
pub(crate) fn driver_components(n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, usize) {
    let comps = connected_components_uf(n, edges);
    sizes_of_groups(comps.groups().into_iter().filter(|g| g.len() >= 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::{bilayer, BilayerSpec};

    fn system(n: usize) -> (Vec<Vec3>, f32) {
        let b = bilayer::generate(
            &BilayerSpec {
                n_atoms: n,
                ..Default::default()
            },
            5,
        );
        (b.positions, b.suggested_cutoff)
    }

    #[test]
    fn serial_finds_two_leaflets() {
        let (pos, cutoff) = system(256);
        let out = lf_serial(&pos, cutoff);
        assert_eq!(out.n_components, 2);
        assert_eq!(out.leaflet_sizes.iter().sum::<usize>(), 256);
        assert!(
            out.edges_found > 256,
            "dense bilayer should have many edges"
        );
    }

    #[test]
    fn sizes_of_groups_sorts_desc() {
        let (sizes, count) = sizes_of_groups(vec![vec![1, 2], vec![3, 4, 5], vec![6, 7]]);
        assert_eq!(sizes, vec![3, 2, 2]);
        assert_eq!(count, 3);
    }

    #[test]
    fn driver_components_ignores_singletons() {
        let (sizes, count) = driver_components(5, &[(0, 1), (1, 2)]);
        assert_eq!(sizes, vec![3]);
        assert_eq!(count, 1);
    }

    #[test]
    fn labels() {
        assert!(LfApproach::TreeSearch.label().contains("Tree"));
        assert_eq!(LfApproach::ALL.len(), 4);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::run::{run_lf, RunConfig};
    use mdsim::{bilayer, BilayerSpec};
    use netsim::{laptop, Cluster};
    use std::sync::Arc;
    use taskframe::Engine;

    fn system() -> (Arc<Vec<Vec3>>, LfConfig) {
        let b = bilayer::generate(
            &BilayerSpec {
                n_atoms: 300,
                ..Default::default()
            },
            17,
        );
        let cfg = LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 16,
            paper_atoms: 300,
            charge_io: true,
        };
        (Arc::new(b.positions), cfg)
    }

    fn cluster() -> Cluster {
        Cluster::new(laptop(), 2)
    }

    #[test]
    fn all_spark_approaches_match_serial() {
        let (pos, cfg) = system();
        let reference = lf_serial(&pos, cfg.cutoff);
        for approach in LfApproach::ALL {
            let rc = RunConfig::new(cluster(), Engine::Spark).approach(approach);
            let out =
                run_lf(&rc, Arc::clone(&pos), &cfg).unwrap_or_else(|e| panic!("{approach:?}: {e}"));
            assert_eq!(out.leaflet_sizes, reference.leaflet_sizes, "{approach:?}");
            assert_eq!(out.n_components, 2, "{approach:?}");
            assert_eq!(out.edges_found, reference.edges_found, "{approach:?}");
            assert!(out.report.makespan_s > 0.0);
        }
    }

    #[test]
    fn all_dask_approaches_match_serial() {
        let (pos, cfg) = system();
        let reference = lf_serial(&pos, cfg.cutoff);
        for approach in LfApproach::ALL {
            let rc = RunConfig::new(cluster(), Engine::Dask).approach(approach);
            let out =
                run_lf(&rc, Arc::clone(&pos), &cfg).unwrap_or_else(|e| panic!("{approach:?}: {e}"));
            assert_eq!(out.leaflet_sizes, reference.leaflet_sizes, "{approach:?}");
            assert_eq!(out.edges_found, reference.edges_found, "{approach:?}");
        }
    }

    #[test]
    fn all_mpi_approaches_match_serial() {
        let (pos, cfg) = system();
        let reference = lf_serial(&pos, cfg.cutoff);
        for approach in LfApproach::ALL {
            let rc = RunConfig::new(cluster(), Engine::Mpi)
                .approach(approach)
                .mpi_world(4);
            let out =
                run_lf(&rc, Arc::clone(&pos), &cfg).unwrap_or_else(|e| panic!("{approach:?}: {e}"));
            assert_eq!(out.leaflet_sizes, reference.leaflet_sizes, "{approach:?}");
            assert_eq!(out.edges_found, reference.edges_found, "{approach:?}");
        }
    }

    #[test]
    fn pilot_approach2_matches_serial() {
        let (pos, cfg) = system();
        let reference = lf_serial(&pos, cfg.cutoff);
        let rc = RunConfig::new(cluster(), Engine::Pilot);
        let out = run_lf(&rc, Arc::clone(&pos), &cfg).unwrap();
        assert_eq!(out.leaflet_sizes, reference.leaflet_sizes);
        assert_eq!(out.edges_found, reference.edges_found);
        assert!(out.report.bytes_staged > 0, "pilot stages block slices");
    }

    #[test]
    fn partial_cc_shuffles_less_than_edge_lists() {
        // Table 2 / §4.3.3: shuffling partial components moves less data
        // than shuffling the edge list.
        let (pos, cfg) = system();
        let rc2 = RunConfig::new(cluster(), Engine::Spark).approach(LfApproach::Task2D);
        let a2 = run_lf(&rc2, Arc::clone(&pos), &cfg).unwrap();
        let rc3 = RunConfig::new(cluster(), Engine::Spark).approach(LfApproach::ParallelCC);
        let a3 = run_lf(&rc3, Arc::clone(&pos), &cfg).unwrap();
        // The paper reports >50% with pickled Python tuples (~28 B/edge);
        // our compact 8 B/edge encoding shrinks the baseline, so the
        // reduction is smaller but must still be real.
        assert!(
            a3.shuffle_bytes < a2.shuffle_bytes,
            "partial-CC shuffle {} should undercut edge shuffle {}",
            a3.shuffle_bytes,
            a2.shuffle_bytes
        );
    }

    #[test]
    fn broadcast_phase_recorded_for_approach1() {
        let (pos, cfg) = system();
        let rc = RunConfig::new(cluster(), Engine::Spark).approach(LfApproach::Broadcast1D);
        let out = run_lf(&rc, Arc::clone(&pos), &cfg).unwrap();
        assert!(out.report.phase_duration("broadcast").is_some());
        assert!(out.report.phase_duration("edge-discovery").is_some());
        assert!(out.report.phase_duration("connected-components").is_some());

        let rc = RunConfig::new(cluster(), Engine::Mpi)
            .approach(LfApproach::Broadcast1D)
            .mpi_world(4);
        let out = run_lf(&rc, Arc::clone(&pos), &cfg).unwrap();
        assert!(out.report.phase_duration("broadcast").is_some());
    }

    #[test]
    fn ground_truth_leaflet_sizes_recovered() {
        let spec = BilayerSpec {
            n_atoms: 400,
            ..Default::default()
        };
        let b = bilayer::generate(&spec, 23);
        let (up, lo) = b.leaflet_sizes();
        let cfg = LfConfig {
            cutoff: b.suggested_cutoff,
            partitions: 9,
            paper_atoms: 400,
            charge_io: false,
        };
        let rc = RunConfig::new(cluster(), Engine::Spark).approach(LfApproach::TreeSearch);
        let out = run_lf(&rc, Arc::new(b.positions), &cfg).unwrap();
        let mut expect = vec![up, lo];
        expect.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(out.leaflet_sizes, expect);
    }
}
