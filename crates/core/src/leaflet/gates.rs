//! Memory-feasibility gates: the paper's failure modes, derived from the
//! machine's memory model rather than hard-coded per dataset.
//!
//! Observed in §4.3 and reproduced here:
//! * Approach 1 "only scales up to 262k atoms for Dask" — the list-wise
//!   broadcast's per-element scheduler state exhausts a worker;
//! * "…and 524k atoms for Spark and MPI4py" — at 4M atoms a 1-D strip's
//!   `cdist` matrix (rows × *all* atoms × 8 B) no longer fits any worker;
//! * Approach 2 cannot run the 4M system at 1024 fixed partitions ("we
//!   were not able to scale this implementation to the 4M dataset, due to
//!   memory requirements of cdist");
//! * Approach 3 splits the 4M system into tens of thousands of tasks for
//!   Spark/MPI, while "Dask was restarting its worker processes because
//!   their memory utilization was reaching 95%" — Dask 0.14 kept task
//!   results in worker memory with no disk spill, so any dataset that
//!   needs memory-driven splitting kills it;
//! * Approach 4 has no gate (the BallTree's footprint is linear).

use super::{LfApproach, LfConfig};
use crate::partition::grid_for_tasks;
use crate::EngineKind;
use netsim::Cluster;
use taskframe::EngineError;

/// Memory available to one worker process (the paper's deployments ran
/// one worker per core).
pub fn worker_mem(cluster: &Cluster) -> u64 {
    cluster.profile.mem_per_node / cluster.profile.cores_per_node as u64
}

/// Memory budget for a single task's `cdist` matrix: half a worker (the
/// rest holds the interpreter, input coordinates and the edge list under
/// construction).
pub fn task_mem_budget(cluster: &Cluster) -> u64 {
    worker_mem(cluster) / 2
}

/// Can `engine` run `approach` on a paper-scale system of
/// `cfg.paper_atoms` atoms without exhausting the memory model?
pub fn check_feasible(
    engine: EngineKind,
    approach: LfApproach,
    cfg: &LfConfig,
    cluster: &Cluster,
) -> Result<(), EngineError> {
    let n = cfg.paper_atoms as u64;
    let wmem = worker_mem(cluster);
    let budget = task_mem_budget(cluster);
    match approach {
        LfApproach::Broadcast1D => {
            if engine == EngineKind::Dask {
                let state = n * dasklet::LISTWISE_STATE_BYTES_PER_ITEM;
                if state > wmem {
                    return Err(EngineError::OutOfMemory {
                        node_mem: wmem,
                        required: state,
                        what: format!("Dask list-wise broadcast of {n} atoms"),
                    });
                }
            }
            // Every engine: one strip row-block against the full system.
            let strip_rows = n.div_ceil(cfg.partitions as u64).max(1);
            let strip_bytes = strip_rows * n * 8;
            if strip_bytes > wmem {
                return Err(EngineError::OutOfMemory {
                    node_mem: wmem,
                    required: strip_bytes,
                    what: format!("1-D cdist strip ({strip_rows} rows × {n} atoms, f64)"),
                });
            }
            Ok(())
        }
        LfApproach::Task2D => {
            let g = grid_for_tasks(cfg.partitions) as u64;
            let edge = n.div_ceil(g);
            let block_bytes = edge * edge * 8;
            if block_bytes > budget {
                return Err(EngineError::OutOfMemory {
                    node_mem: budget,
                    required: block_bytes,
                    what: format!("2-D cdist block ({edge}×{edge}, f64) at fixed {g}×{g} grid"),
                });
            }
            Ok(())
        }
        LfApproach::ParallelCC => {
            // Splitting rescues Spark/MPI; Dask 0.14 (no spill-to-disk)
            // dies whenever splitting is needed at all.
            let g_target = grid_for_tasks(cfg.partitions) as u64;
            let edge = n.div_ceil(g_target);
            let needs_split = edge * edge * 8 > budget;
            if needs_split && engine == EngineKind::Dask {
                return Err(EngineError::OutOfMemory {
                    node_mem: wmem,
                    required: edge * edge * 8,
                    what: "Dask workers restart at 95% memory (no result spilling)".into(),
                });
            }
            Ok(())
        }
        LfApproach::TreeSearch => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::wrangler;

    fn cluster() -> Cluster {
        Cluster::new(wrangler(), 8)
    }

    fn cfg(paper_atoms: usize) -> LfConfig {
        LfConfig {
            cutoff: 2.1,
            partitions: 1024,
            paper_atoms,
            charge_io: true,
        }
    }

    #[test]
    fn worker_budget_math() {
        let c = cluster();
        let cpn = c.profile.cores_per_node as u64;
        assert_eq!(worker_mem(&c), 128 * (1 << 30) / cpn);
        assert_eq!(task_mem_budget(&c), worker_mem(&c) / 2);
    }

    #[test]
    fn approach1_paper_failure_matrix() {
        let c = cluster();
        // Dask: ok at 131k/262k, OOM from 524k (paper §4.3.1).
        for (atoms, ok) in [
            (131_072, true),
            (262_144, true),
            (524_288, false),
            (4_000_000, false),
        ] {
            let r = check_feasible(EngineKind::Dask, LfApproach::Broadcast1D, &cfg(atoms), &c);
            assert_eq!(r.is_ok(), ok, "dask approach1 {atoms}");
        }
        // Spark/MPI: ok through 524k, OOM at 4M.
        for engine in [EngineKind::Spark, EngineKind::Mpi] {
            for (atoms, ok) in [(524_288, true), (4_000_000, false)] {
                let r = check_feasible(engine, LfApproach::Broadcast1D, &cfg(atoms), &c);
                assert_eq!(r.is_ok(), ok, "{engine:?} approach1 {atoms}");
            }
        }
    }

    #[test]
    fn approach2_blocks_4m_for_everyone() {
        let c = cluster();
        for engine in [
            EngineKind::Spark,
            EngineKind::Dask,
            EngineKind::Mpi,
            EngineKind::RadicalPilot,
        ] {
            assert!(check_feasible(engine, LfApproach::Task2D, &cfg(524_288), &c).is_ok());
            assert!(check_feasible(engine, LfApproach::Task2D, &cfg(4_000_000), &c).is_err());
        }
    }

    #[test]
    fn approach3_spares_spark_and_mpi_but_not_dask() {
        let c = cluster();
        assert!(check_feasible(
            EngineKind::Spark,
            LfApproach::ParallelCC,
            &cfg(4_000_000),
            &c
        )
        .is_ok());
        assert!(
            check_feasible(EngineKind::Mpi, LfApproach::ParallelCC, &cfg(4_000_000), &c).is_ok()
        );
        assert!(check_feasible(
            EngineKind::Dask,
            LfApproach::ParallelCC,
            &cfg(4_000_000),
            &c
        )
        .is_err());
        assert!(
            check_feasible(EngineKind::Dask, LfApproach::ParallelCC, &cfg(524_288), &c).is_ok()
        );
    }

    #[test]
    fn approach4_always_feasible() {
        let c = cluster();
        for engine in EngineKind::ALL {
            assert!(check_feasible(engine, LfApproach::TreeSearch, &cfg(4_000_000), &c).is_ok());
        }
    }
}
