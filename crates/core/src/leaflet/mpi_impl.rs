//! Leaflet Finder on MPI (`mpilike`), all four approaches.
//!
//! SPMD structure per approach (§4.3): Approach 1 — `MPI_Bcast` of the
//! system, per-rank strip loops, edge list gathered to rank 0, CC at rank
//! 0; Approaches 2–4 — blocks round-robin over ranks, edge lists or
//! partial components gathered to rank 0 which reduces.

use super::gates::{check_feasible, task_mem_budget};
use super::kernels::{block_edges, block_edges_tree, block_input_bytes, strip_edges};
use super::{driver_components, sizes_of_groups, LfApproach, LfConfig, LfOutput};
use crate::partition::{grid_for_tasks, plan_1d, plan_2d_grid, plan_2d_mem, Block};
use crate::EngineKind;
use graphops::{merge_partials, partial_components, PartialComponents};
use linalg::Vec3;
use netsim::Cluster;
use taskframe::EngineError;

/// Per-rank result shipped to rank 0.
type RankOut = (Vec<(u32, u32)>, Vec<Vec<u32>>, u64);

/// Run the Leaflet Finder on MPI with `world` ranks. Default MPI posture:
/// one attempt, so any node death aborts with `WorkerLost`.
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_lf} instead")]
pub fn lf_mpi(
    cluster: Cluster,
    world: usize,
    positions: &[Vec3],
    approach: LfApproach,
    cfg: &LfConfig,
) -> Result<LfOutput, EngineError> {
    lf_mpi_impl(cluster, world, positions, approach, cfg)
}

pub(crate) fn lf_mpi_impl(
    cluster: Cluster,
    world: usize,
    positions: &[Vec3],
    approach: LfApproach,
    cfg: &LfConfig,
) -> Result<LfOutput, EngineError> {
    lf_mpi_with_policy_impl(
        cluster,
        world,
        positions,
        approach,
        cfg,
        &netsim::RetryPolicy::new(1),
        true,
    )
}

/// Leaflet Finder on MPI under an explicit recovery policy: a node death
/// restarts the job from the last completed collective barrier (or from
/// startup when `restart_from_barrier` is false) instead of aborting.
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_lf} with a retry policy instead")]
pub fn lf_mpi_with_policy(
    cluster: Cluster,
    world: usize,
    positions: &[Vec3],
    approach: LfApproach,
    cfg: &LfConfig,
    policy: &netsim::RetryPolicy,
    restart_from_barrier: bool,
) -> Result<LfOutput, EngineError> {
    lf_mpi_with_policy_impl(
        cluster,
        world,
        positions,
        approach,
        cfg,
        policy,
        restart_from_barrier,
    )
}

pub(crate) fn lf_mpi_with_policy_impl(
    cluster: Cluster,
    world: usize,
    positions: &[Vec3],
    approach: LfApproach,
    cfg: &LfConfig,
    policy: &netsim::RetryPolicy,
    restart_from_barrier: bool,
) -> Result<LfOutput, EngineError> {
    check_feasible(EngineKind::Mpi, approach, cfg, &cluster)?;
    let n = positions.len();
    let blocks: Vec<Block> = match approach {
        LfApproach::Broadcast1D => Vec::new(),
        LfApproach::Task2D | LfApproach::TreeSearch => {
            plan_2d_grid(n, grid_for_tasks(cfg.partitions))
        }
        LfApproach::ParallelCC => plan_2d_mem(
            n,
            cfg.paper_atoms,
            cfg.partitions,
            task_mem_budget(&cluster),
        ),
    };
    let strips = plan_1d(n, cfg.partitions);
    let n_tasks = if approach == LfApproach::Broadcast1D {
        strips.len()
    } else {
        blocks.len()
    };
    let net = cluster.profile.network;
    let scale = cluster.profile.core_efficiency;

    let out = mpilike::try_run_with_policy(
        cluster.clone(),
        world,
        policy,
        restart_from_barrier,
        |comm| {
            let t_start = comm.clock();
            // Approach 1 broadcasts the whole system; the others ship only the
            // per-rank block slices (charged as I/O below).
            let local_positions: Vec<Vec3> = if approach == LfApproach::Broadcast1D {
                comm.set_phase("broadcast");
                let v = if comm.rank() == 0 {
                    Some(positions.to_vec())
                } else {
                    None
                };
                // A replica too big for the fixed per-rank buffers surfaces
                // typed on every rank instead of tearing mpirun down.
                match comm.try_bcast(0, v) {
                    Ok(v) => v,
                    Err(e) => return Err(e),
                }
            } else {
                positions.to_vec() // pre-partitioned: ranks read their slices
            };
            let t_bcast = comm.clock();
            comm.set_phase("edge-discovery");

            let (edges, partials, found): RankOut = match approach {
                LfApproach::Broadcast1D => {
                    let mine: Vec<_> = strips
                        .iter()
                        .copied()
                        .skip(comm.rank())
                        .step_by(comm.world())
                        .collect();
                    let edges: Vec<(u32, u32)> = comm.compute(|| {
                        mine.iter()
                            .flat_map(|&s| strip_edges(&local_positions, s, cfg.cutoff))
                            .collect()
                    });
                    let found = edges.len() as u64;
                    (edges, Vec::new(), found)
                }
                LfApproach::Task2D => {
                    let mine: Vec<_> = blocks
                        .iter()
                        .copied()
                        .skip(comm.rank())
                        .step_by(comm.world())
                        .collect();
                    if cfg.charge_io {
                        let bytes: u64 = mine.iter().map(|&b| block_input_bytes(b)).sum();
                        comm.charge(net.transfer_time(bytes, false));
                    }
                    let edges: Vec<(u32, u32)> = comm.compute(|| {
                        mine.iter()
                            .flat_map(|&b| block_edges(&local_positions, b, cfg.cutoff))
                            .collect()
                    });
                    let found = edges.len() as u64;
                    (edges, Vec::new(), found)
                }
                LfApproach::ParallelCC | LfApproach::TreeSearch => {
                    let mine: Vec<_> = blocks
                        .iter()
                        .copied()
                        .skip(comm.rank())
                        .step_by(comm.world())
                        .collect();
                    if cfg.charge_io {
                        let bytes: u64 = mine.iter().map(|&b| block_input_bytes(b)).sum();
                        comm.charge(net.transfer_time(bytes, false));
                    }
                    let (partial, found) = comm.compute(|| {
                        let mut found = 0u64;
                        let parts: Vec<PartialComponents> = mine
                            .iter()
                            .map(|&b| {
                                let edges = if approach == LfApproach::TreeSearch {
                                    block_edges_tree(&local_positions, b, cfg.cutoff)
                                } else {
                                    block_edges(&local_positions, b, cfg.cutoff)
                                };
                                found += edges.len() as u64;
                                partial_components(&edges)
                            })
                            .collect();
                        (merge_partials(&parts).components, found)
                    });
                    (Vec::new(), partial, found)
                }
            };
            let t_edges = comm.clock();
            comm.set_phase("gather");
            let gathered = comm.try_gather(0, (edges, partials, found))?;
            Ok((gathered, t_start, t_bcast, t_edges))
        },
    )?;

    // Rank 0 reduces; rank order is stable so the result is deterministic.
    let mut all_edges: Vec<(u32, u32)> = Vec::new();
    let mut all_partials: Vec<PartialComponents> = Vec::new();
    let mut edges_found = 0u64;
    let mut shuffle_bytes = 0u64;
    let mut t_bcast_max = 0.0f64;
    let mut t_edges_max = 0.0f64;
    let mut t_start_min = f64::INFINITY;
    for rank_result in &out.results {
        // Memory exhaustion inside a collective poisons every rank with
        // the same typed error; surface the first one.
        let (gathered, t_start, t_bcast, t_edges) = match rank_result {
            Ok(r) => r,
            Err(e) => return Err(e.clone()),
        };
        t_start_min = t_start_min.min(*t_start);
        t_bcast_max = t_bcast_max.max(*t_bcast);
        t_edges_max = t_edges_max.max(*t_edges);
        if let Some(rank_outs) = gathered {
            for (edges, partials, found) in rank_outs {
                shuffle_bytes += super::edge_shuffle_bytes(edges.len() as u64)
                    + PartialComponents {
                        components: partials.clone(),
                    }
                    .wire_bytes();
                all_edges.extend_from_slice(edges);
                all_partials.push(PartialComponents {
                    components: partials.clone(),
                });
                edges_found += found;
            }
        }
    }

    let ((sizes, count), host_s) = netsim::measure(|| match approach {
        LfApproach::Broadcast1D | LfApproach::Task2D => driver_components(n, &all_edges),
        LfApproach::ParallelCC | LfApproach::TreeSearch => {
            sizes_of_groups(merge_partials(&all_partials).components)
        }
    });

    let mut report = out.report;
    if approach == LfApproach::Broadcast1D {
        report.push_phase("broadcast", t_start_min, t_bcast_max);
    }
    report.push_phase("edge-discovery", t_bcast_max, t_edges_max);
    let cc_s = host_s / scale;
    report.push_phase(
        "connected-components",
        report.makespan_s,
        report.makespan_s + cc_s,
    );
    report.makespan_s += cc_s;

    Ok(LfOutput {
        leaflet_sizes: sizes,
        n_components: count,
        edges_found,
        shuffle_bytes,
        tasks: n_tasks,
        report,
    })
}
