//! Per-task edge-discovery kernels, shared by all engines.

use crate::partition::{Block, Range};
use linalg::Vec3;
use neighbors::{BallTree, KdTree, SearchStrategy};

/// Edges of one 2-D block via brute-force pairwise distances (`cdist`),
/// returned with **global** atom indices, `i < j` guaranteed.
pub fn block_edges(positions: &[Vec3], b: Block, cutoff: f32) -> Vec<(u32, u32)> {
    let rows = &positions[b.row.0 as usize..b.row.1 as usize];
    let cols = &positions[b.col.0 as usize..b.col.1 as usize];
    if b.is_diagonal() {
        linalg::edges_within_cutoff(rows, rows, cutoff, true)
            .into_iter()
            .map(|(i, j)| (b.row.0 + i, b.row.0 + j))
            .collect()
    } else {
        linalg::edges_within_cutoff(rows, cols, cutoff, false)
            .into_iter()
            .map(|(i, j)| (b.row.0 + i, b.col.0 + j))
            .collect()
    }
}

/// Edges of one 2-D block via BallTree radius queries (Approach 4): build
/// the tree over the column atoms, query each row atom.
pub fn block_edges_tree(positions: &[Vec3], b: Block, cutoff: f32) -> Vec<(u32, u32)> {
    block_edges_indexed(positions, b, cutoff, SearchStrategy::BallTree)
}

/// Approach 4 with a configurable spatial index (BallTree by default;
/// KD-tree and cell lists as ablation alternatives). Brute force falls
/// back to [`block_edges`].
pub fn block_edges_indexed(
    positions: &[Vec3],
    b: Block,
    cutoff: f32,
    strategy: SearchStrategy,
) -> Vec<(u32, u32)> {
    let rows = &positions[b.row.0 as usize..b.row.1 as usize];
    let cols = &positions[b.col.0 as usize..b.col.1 as usize];
    let query_all = |query: &dyn Fn(Vec3) -> Vec<u32>| {
        let mut edges = Vec::new();
        for (i, &p) in rows.iter().enumerate() {
            let gi = b.row.0 + i as u32;
            for j in query(p) {
                let gj = b.col.0 + j;
                if gi < gj {
                    edges.push((gi, gj));
                }
            }
        }
        edges.sort_unstable();
        edges
    };
    match strategy {
        SearchStrategy::BruteForce => block_edges(positions, b, cutoff),
        SearchStrategy::BallTree => {
            let tree = BallTree::build(cols, 16);
            query_all(&|p| tree.query_radius(p, cutoff))
        }
        SearchStrategy::KdTree => {
            let tree = KdTree::build(cols, 16);
            query_all(&|p| tree.query_radius(p, cutoff))
        }
        SearchStrategy::CellList => {
            let grid = neighbors::CellList::build(cols, cutoff);
            query_all(&|p| grid.query_radius(cols, p, cutoff))
        }
    }
}

/// Edges of one 1-D row strip against the **whole** system (Approach 1:
/// every node holds a broadcast copy). Global indices, `i < j`.
pub fn strip_edges(positions: &[Vec3], strip: Range, cutoff: f32) -> Vec<(u32, u32)> {
    let rows = &positions[strip.0 as usize..strip.1 as usize];
    linalg::edges_within_cutoff(rows, positions, cutoff, false)
        .into_iter()
        .filter_map(|(i, j)| {
            let gi = strip.0 + i;
            (gi < j).then_some((gi, j))
        })
        .collect()
}

/// Input bytes a 2-D block task must load (its row and column coordinate
/// slices, 12 bytes per atom).
pub fn block_input_bytes(b: Block) -> u64 {
    let r = (b.row.1 - b.row.0) as u64;
    let c = if b.is_diagonal() {
        0
    } else {
        (b.col.1 - b.col.0) as u64
    };
    (r + c) * 12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{plan_1d, plan_2d_grid};
    use mdsim::{bilayer, BilayerSpec};

    fn system() -> (Vec<Vec3>, f32) {
        let b = bilayer::generate(
            &BilayerSpec {
                n_atoms: 120,
                ..Default::default()
            },
            3,
        );
        (b.positions, b.suggested_cutoff)
    }

    fn all_edges(pos: &[Vec3], cutoff: f32) -> Vec<(u32, u32)> {
        linalg::edges_within_cutoff(pos, pos, cutoff, true)
    }

    #[test]
    fn blocks_union_equals_global_edges() {
        let (pos, cutoff) = system();
        let mut got: Vec<(u32, u32)> = plan_2d_grid(pos.len(), 5)
            .into_iter()
            .flat_map(|b| block_edges(&pos, b, cutoff))
            .collect();
        got.sort_unstable();
        assert_eq!(got, all_edges(&pos, cutoff));
    }

    #[test]
    fn tree_blocks_match_brute_blocks() {
        let (pos, cutoff) = system();
        for b in plan_2d_grid(pos.len(), 4) {
            let mut brute = block_edges(&pos, b, cutoff);
            brute.sort_unstable();
            assert_eq!(block_edges_tree(&pos, b, cutoff), brute, "block {b:?}");
        }
    }

    #[test]
    fn every_index_strategy_matches_brute() {
        use neighbors::SearchStrategy::*;
        let (pos, cutoff) = system();
        for b in plan_2d_grid(pos.len(), 3) {
            let mut brute = block_edges(&pos, b, cutoff);
            brute.sort_unstable();
            for strategy in [BruteForce, BallTree, KdTree, CellList] {
                assert_eq!(
                    super::block_edges_indexed(&pos, b, cutoff, strategy),
                    brute,
                    "block {b:?} via {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn strips_union_equals_global_edges() {
        let (pos, cutoff) = system();
        let mut got: Vec<(u32, u32)> = plan_1d(pos.len(), 7)
            .into_iter()
            .flat_map(|s| strip_edges(&pos, s, cutoff))
            .collect();
        got.sort_unstable();
        assert_eq!(got, all_edges(&pos, cutoff));
    }

    #[test]
    fn input_bytes() {
        use crate::partition::Block;
        assert_eq!(
            block_input_bytes(Block {
                row: (0, 10),
                col: (10, 30)
            }),
            30 * 12
        );
        assert_eq!(
            block_input_bytes(Block {
                row: (0, 10),
                col: (0, 10)
            }),
            10 * 12
        );
    }
}
