//! Leaflet Finder on Dask (`dasklet`), all four approaches.

use super::gates::{check_feasible, task_mem_budget};
use super::kernels::{block_edges, block_edges_tree, block_input_bytes, strip_edges};
use super::{driver_components, sizes_of_groups, LfApproach, LfConfig, LfOutput};
use crate::partition::{grid_for_tasks, plan_1d, plan_2d_grid, plan_2d_mem, Block};
use crate::EngineKind;
use dasklet::{DaskClient, Delayed};
use graphops::{merge_partials, partial_components, PartialComponents};
use linalg::Vec3;
use std::sync::Arc;
use taskframe::{EngineError, TaskCtx};

/// Run the Leaflet Finder on Dask with the chosen approach.
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_lf} instead")]
pub fn lf_dask(
    client: &DaskClient,
    positions: Arc<Vec<Vec3>>,
    approach: LfApproach,
    cfg: &LfConfig,
) -> Result<LfOutput, EngineError> {
    lf_dask_impl(client, positions, approach, cfg)
}

pub(crate) fn lf_dask_impl(
    client: &DaskClient,
    positions: Arc<Vec<Vec3>>,
    approach: LfApproach,
    cfg: &LfConfig,
) -> Result<LfOutput, EngineError> {
    check_feasible(EngineKind::Dask, approach, cfg, client.cluster())?;
    let n = positions.len();
    match approach {
        LfApproach::Broadcast1D => {
            // Dask's list-wise scatter(broadcast=True): the expensive path
            // Fig. 8 measures.
            client.set_phase("broadcast");
            let bc = client.broadcast((*positions).clone())?;
            let strips = plan_1d(n, cfg.partitions);
            let cutoff = cfg.cutoff;
            client.set_phase("edge-discovery");
            let fs: Vec<_> = strips
                .iter()
                .map(|&s| move |all: &Vec<Vec3>, _ctx: &TaskCtx| strip_edges(all, s, cutoff))
                .collect();
            let tasks: Vec<Delayed<Vec<(u32, u32)>>> = client.delayed_after_many(&bc, fs);
            let t0 = client.now();
            let (parts, t1) = client.try_gather(&tasks)?;
            client.note_phase("edge-discovery", t0, t1);
            let edges: Vec<(u32, u32)> = parts.into_iter().flatten().collect();
            let shuffle_bytes = super::edge_shuffle_bytes(edges.len() as u64);
            let (sizes, count) = driver_cc(client, n, &edges);
            Ok(finish(
                client,
                sizes,
                count,
                edges.len() as u64,
                shuffle_bytes,
                strips.len(),
            ))
        }
        LfApproach::Task2D => {
            let blocks = plan_2d_grid(n, grid_for_tasks(cfg.partitions));
            let n_tasks = blocks.len();
            client.set_phase("edge-discovery");
            let tasks = edge_tasks(client, &positions, &blocks, cfg, false);
            let t0 = client.now();
            let (parts, t1) = client.try_gather(&tasks)?;
            client.note_phase("edge-discovery", t0, t1);
            let edges: Vec<(u32, u32)> = parts.into_iter().flatten().collect();
            let shuffle_bytes = super::edge_shuffle_bytes(edges.len() as u64);
            let (sizes, count) = driver_cc(client, n, &edges);
            Ok(finish(
                client,
                sizes,
                count,
                edges.len() as u64,
                shuffle_bytes,
                n_tasks,
            ))
        }
        LfApproach::ParallelCC => {
            let blocks = plan_2d_mem(
                n,
                cfg.paper_atoms,
                cfg.partitions,
                task_mem_budget(client.cluster()),
            );
            run_partial_cc(client, &positions, blocks, cfg, false)
        }
        LfApproach::TreeSearch => {
            let blocks = plan_2d_grid(n, grid_for_tasks(cfg.partitions));
            run_partial_cc(client, &positions, blocks, cfg, true)
        }
    }
}

/// One delayed edge-discovery task per block.
fn edge_tasks(
    client: &DaskClient,
    positions: &Arc<Vec<Vec3>>,
    blocks: &[Block],
    cfg: &LfConfig,
    tree: bool,
) -> Vec<Delayed<Vec<(u32, u32)>>> {
    let net = client.cluster().profile.network;
    let fs: Vec<_> = blocks
        .iter()
        .map(|&b| {
            let pos = Arc::clone(positions);
            let cutoff = cfg.cutoff;
            let charge_io = cfg.charge_io;
            move |ctx: &TaskCtx| {
                if charge_io {
                    ctx.charge(net.transfer_time(block_input_bytes(b), false));
                }
                if tree {
                    block_edges_tree(&pos, b, cutoff)
                } else {
                    block_edges(&pos, b, cutoff)
                }
            }
        })
        .collect();
    client.delayed_many(fs)
}

/// Approaches 3–4: per-block partial components merged by a binary
/// combine tree (Dask's natural reduction shape — no barrier).
fn run_partial_cc(
    client: &DaskClient,
    positions: &Arc<Vec<Vec3>>,
    blocks: Vec<Block>,
    cfg: &LfConfig,
    tree: bool,
) -> Result<LfOutput, EngineError> {
    let n_tasks = blocks.len();
    let net = client.cluster().profile.network;
    let edges_found = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let shuffle_bytes = Arc::new(std::sync::atomic::AtomicU64::new(0));
    client.set_phase("edge-discovery+partial-cc");
    let t0 = client.now();
    let fs: Vec<_> = blocks
        .iter()
        .map(|&b| {
            let pos = Arc::clone(positions);
            let cutoff = cfg.cutoff;
            let charge_io = cfg.charge_io;
            let ec = Arc::clone(&edges_found);
            let sb = Arc::clone(&shuffle_bytes);
            move |ctx: &TaskCtx| {
                if charge_io {
                    ctx.charge(net.transfer_time(block_input_bytes(b), false));
                }
                let edges = if tree {
                    block_edges_tree(&pos, b, cutoff)
                } else {
                    block_edges(&pos, b, cutoff)
                };
                ec.fetch_add(edges.len() as u64, std::sync::atomic::Ordering::Relaxed);
                let partial = partial_components(&edges);
                sb.fetch_add(partial.wire_bytes(), std::sync::atomic::Ordering::Relaxed);
                partial.components
            }
        })
        .collect();
    let mut level: Vec<Delayed<Vec<Vec<u32>>>> = client.delayed_many(fs);
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(client.combine(&[&a, &b], |vals, _| {
                    merge_partials(&[
                        PartialComponents {
                            components: vals[0].clone(),
                        },
                        PartialComponents {
                            components: vals[1].clone(),
                        },
                    ])
                    .components
                })),
                None => next.push(a),
            }
        }
        level = next;
    }
    let merged = match level.into_iter().next() {
        Some(d) => {
            let (vals, t1) = client.try_gather(std::slice::from_ref(&d))?;
            client.note_phase("edge-discovery+partial-cc", t0, t1);
            vals.into_iter().next().unwrap_or_default()
        }
        None => Vec::new(),
    };
    let (sizes, count) = sizes_of_groups(merged);
    Ok(finish(
        client,
        sizes,
        count,
        edges_found.load(std::sync::atomic::Ordering::Relaxed),
        shuffle_bytes.load(std::sync::atomic::Ordering::Relaxed),
        n_tasks,
    ))
}

fn driver_cc(client: &DaskClient, n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, usize) {
    let ((sizes, count), host_s) = netsim::measure(|| driver_components(n, edges));
    client.charge_driver(
        "connected-components",
        client.cluster().scale_compute(host_s),
    );
    (sizes, count)
}

fn finish(
    client: &DaskClient,
    leaflet_sizes: Vec<usize>,
    n_components: usize,
    edges_found: u64,
    shuffle_bytes: u64,
    tasks: usize,
) -> LfOutput {
    LfOutput {
        leaflet_sizes,
        n_components,
        edges_found,
        shuffle_bytes,
        tasks,
        report: client.report(),
    }
}
