//! Leaflet Finder on RADICAL-Pilot — Approach 2 only, the combination the
//! paper evaluates (Fig. 9). Block coordinate slices are *really* encoded
//! and staged through the filesystem (RP's only data path), edge lists are
//! returned to the client, and the client computes connected components.

use super::gates::check_feasible;
use super::kernels::block_edges;
use super::{driver_components, LfConfig, LfOutput};
use crate::codec;
use crate::partition::{grid_for_tasks, plan_2d_grid, Block};
use crate::EngineKind;
use linalg::Vec3;
use pilot::{Session, UnitDescription};
use taskframe::EngineError;

/// Run the Leaflet Finder (Approach 2, "Task API and 2-D Partitioning")
/// on a pilot session.
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_lf} instead")]
pub fn lf_pilot(
    session: &Session,
    positions: &[Vec3],
    cfg: &LfConfig,
) -> Result<LfOutput, EngineError> {
    lf_pilot_impl(session, positions, cfg)
}

pub(crate) fn lf_pilot_impl(
    session: &Session,
    positions: &[Vec3],
    cfg: &LfConfig,
) -> Result<LfOutput, EngineError> {
    check_feasible(
        EngineKind::RadicalPilot,
        super::LfApproach::Task2D,
        cfg,
        session.cluster(),
    )?;
    let n = positions.len();
    let blocks = plan_2d_grid(n, grid_for_tasks(cfg.partitions));
    let n_tasks = blocks.len();
    let cutoff = cfg.cutoff;
    let units: Vec<UnitDescription<Vec<(u32, u32)>>> = blocks
        .iter()
        .map(|&b| {
            let rows = &positions[b.row.0 as usize..b.row.1 as usize];
            let cols = &positions[b.col.0 as usize..b.col.1 as usize];
            let input = codec::encode_point_pair(rows, cols);
            // Declared peak footprint: the staged bytes, their decoded
            // copy, and the joined coordinate buffer. The agent's
            // admission control bounds concurrent units per node by this.
            let working_set = input.len() as u64
                * crate::analysis::AnalysisCost::DEFAULT.staging_working_set_factor;
            UnitDescription::new(input, move |_ctx, staged: &[u8]| {
                let (rows, cols) = codec::decode_point_pair(staged);
                // Re-derive global indices from the block ranges.
                let local = Block {
                    row: (0, rows.len() as u32),
                    col: (rows.len() as u32, (rows.len() + cols.len()) as u32),
                };
                let mut joined = rows;
                joined.extend_from_slice(&cols);
                let edges = if b.is_diagonal() {
                    block_edges(
                        &joined,
                        Block {
                            row: local.row,
                            col: local.row,
                        },
                        cutoff,
                    )
                } else {
                    block_edges(&joined, local, cutoff)
                };
                edges
                    .into_iter()
                    .map(|(i, j)| {
                        let gi = b.row.0 + i;
                        let gj = if b.is_diagonal() {
                            b.row.0 + j
                        } else {
                            b.col.0 + (j - local.col.0)
                        };
                        (gi, gj)
                    })
                    .collect()
            })
            .with_working_set(working_set)
        })
        .collect();
    let out = session.submit_and_wait(units)?;
    let edges: Vec<(u32, u32)> = out.results.into_iter().flatten().collect();
    let shuffle_bytes = super::edge_shuffle_bytes(edges.len() as u64);
    let ((sizes, count), host_s) = netsim::measure(|| driver_components(n, &edges));
    let mut report = out.report;
    let cc_s = session.cluster().scale_compute(host_s);
    report.push_phase(
        "connected-components",
        report.makespan_s,
        report.makespan_s + cc_s,
    );
    report.makespan_s += cc_s;
    Ok(LfOutput {
        leaflet_sizes: sizes,
        n_components: count,
        edges_found: edges.len() as u64,
        shuffle_bytes,
        tasks: n_tasks,
        report,
    })
}
