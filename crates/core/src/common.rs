//! The paper's remaining "commonly used algorithms" (§2): RMSD time
//! series, pairwise frame distances, and sub-setting — each embarrassingly
//! parallel over frames and expressible on any engine. Implemented here on
//! Spark and Dask (the frameworks the paper recommends for data-parallel
//! analysis) plus a serial reference.

use dasklet::{Bag, DaskClient};
use linalg::{rmsd_superposed, Frame};
use mdsim::Trajectory;
use sparklet::SparkContext;

/// Which frame metric an RMSD series uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmsdMode {
    /// Plain positional RMSD (no superposition) — Algorithm 1's `dRMS`.
    Plain,
    /// Optimal-superposition RMSD (QCP), as MDAnalysis computes.
    Superposed,
}

fn metric(mode: RmsdMode) -> fn(&Frame, &Frame) -> f64 {
    match mode {
        RmsdMode::Plain => linalg::frame_rmsd,
        RmsdMode::Superposed => rmsd_superposed,
    }
}

/// Serial RMSD of every frame against a reference frame ("RMSD is used to
/// identify the deviation of atom positions between frames", §2).
pub fn rmsd_series_serial(traj: &Trajectory, reference: &Frame, mode: RmsdMode) -> Vec<f64> {
    let m = metric(mode);
    traj.frames.iter().map(|f| m(f, reference)).collect()
}

/// RMSD series on Spark: frames partitioned into an RDD, map-only.
pub fn rmsd_series_spark(
    sc: &SparkContext,
    traj: &Trajectory,
    reference: &Frame,
    mode: RmsdMode,
    partitions: usize,
) -> Vec<f64> {
    let m = metric(mode);
    let reference = reference.clone();
    sc.parallelize(traj.frames.clone(), partitions)
        .map(move |f| m(&f, &reference))
        .collect()
}

/// RMSD series on Dask: a Bag of frames, mapped per partition.
pub fn rmsd_series_dask(
    client: &DaskClient,
    traj: &Trajectory,
    reference: &Frame,
    mode: RmsdMode,
    partitions: usize,
) -> Vec<f64> {
    let m = metric(mode);
    let reference = reference.clone();
    Bag::from_vec(client, traj.frames.clone(), partitions)
        .map(move |f| m(f, &reference))
        .compute()
}

/// Sub-setting (§2): restrict a trajectory to a selection of atom indices
/// ("isolate parts of interest of MD simulation").
pub fn subset_trajectory(traj: &Trajectory, indices: &[usize]) -> Trajectory {
    Trajectory {
        frames: traj.frames.iter().map(|f| f.subset(indices)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::ChainSpec;
    use netsim::{laptop, Cluster};

    fn traj() -> Trajectory {
        let spec = ChainSpec {
            n_atoms: 30,
            n_frames: 24,
            stride: 1,
            ..ChainSpec::default()
        };
        mdsim::chain::generate(&spec, 8)
    }

    #[test]
    fn serial_series_starts_at_zero() {
        let t = traj();
        for mode in [RmsdMode::Plain, RmsdMode::Superposed] {
            let series = rmsd_series_serial(&t, &t.frames[0], mode);
            assert_eq!(series.len(), 24);
            assert!(series[0] < 1e-5, "first frame vs itself ({mode:?})");
            assert!(series[5] > 0.0, "dynamics must move atoms");
        }
    }

    #[test]
    fn superposed_never_exceeds_plain() {
        let t = traj();
        let plain = rmsd_series_serial(&t, &t.frames[0], RmsdMode::Plain);
        let sup = rmsd_series_serial(&t, &t.frames[0], RmsdMode::Superposed);
        for (p, s) in plain.iter().zip(&sup) {
            assert!(s <= &(p + 1e-5), "superposed {s} > plain {p}");
        }
    }

    #[test]
    fn engines_match_serial() {
        let t = traj();
        let reference = rmsd_series_serial(&t, &t.frames[0], RmsdMode::Plain);
        let sc = SparkContext::new(Cluster::new(laptop(), 2));
        let spark = rmsd_series_spark(&sc, &t, &t.frames[0], RmsdMode::Plain, 4);
        assert_eq!(spark, reference);
        let client = DaskClient::new(Cluster::new(laptop(), 2));
        let dask = rmsd_series_dask(&client, &t, &t.frames[0], RmsdMode::Plain, 4);
        assert_eq!(dask, reference);
    }

    #[test]
    fn subsetting_picks_atoms() {
        let t = traj();
        let sub = subset_trajectory(&t, &[0, 2, 4]);
        assert_eq!(sub.n_atoms(), 3);
        assert_eq!(sub.n_frames(), t.n_frames());
        assert_eq!(sub.frames[3].positions()[1], t.frames[3].positions()[2]);
    }
}
