//! Path Similarity Analysis (Algorithm 1) with the 2-D task partitioning
//! of Algorithm 2, on every engine.
//!
//! "The input data, i.e. a set of trajectory files, is equally distributed
//! over the cores, generating one task per core. Each task reads its
//! respective input files in parallel, executes and writes the result"
//! (§4.2). Per framework (§4.2):
//! * RADICAL-Pilot — one Compute-Unit per task, inputs staged through the
//!   shared filesystem (*really* serialized and written here);
//! * Spark — an RDD with one partition per task, executed in a map;
//! * Dask — one delayed function per task;
//! * MPI — each task executed by a process (round-robin over ranks).

use crate::codec;
use crate::partition::{plan_psa_2d, Block};
use dasklet::{DaskClient, Delayed};
use linalg::{hausdorff_naive, DistanceMatrix};
use mdsim::Trajectory;
use netsim::{Cluster, SimReport};
use pilot::{Session, UnitDescription};
use sparklet::SparkContext;
use std::sync::Arc;
use taskframe::{EngineError, TaskCtx};

/// PSA job parameters.
#[derive(Clone, Debug)]
pub struct PsaConfig {
    /// Number of trajectory groups `k` (Algorithm 2): the job runs `k²`
    /// tasks. The paper picks `k` so that `k²` ≈ core count.
    pub groups: usize,
    /// Charge each task the (virtual) time to read its trajectory slice
    /// from shared storage, as the paper's file-per-task layout did.
    pub charge_io: bool,
}

impl PsaConfig {
    /// `k` such that `k²` is at least `cores` (one task per core, §4.2).
    pub fn for_cores(cores: usize) -> Self {
        let mut k = (cores as f64).sqrt().floor() as usize;
        k = k.max(1);
        while k * k < cores {
            k += 1;
        }
        PsaConfig {
            groups: k,
            charge_io: true,
        }
    }
}

/// Result of a PSA run: the real all-pairs Hausdorff matrix and the
/// simulated execution report.
pub struct PsaOutput {
    pub distances: DistanceMatrix,
    pub report: SimReport,
}

/// Serial reference (Algorithm 1 verbatim).
pub fn psa_serial(ensemble: &[Trajectory]) -> DistanceMatrix {
    let n = ensemble.len();
    let mut d = DistanceMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            d.set(
                i,
                j,
                hausdorff_naive(&ensemble[i].frames, &ensemble[j].frames, linalg::frame_rmsd),
            );
        }
    }
    d
}

/// The per-task kernel: all Hausdorff distances of one 2-D block,
/// executed serially (Algorithm 2 step 3).
fn block_distances(ensemble: &[Trajectory], b: Block) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::with_capacity(((b.row.1 - b.row.0) * (b.col.1 - b.col.0)) as usize);
    for i in b.row.0..b.row.1 {
        for j in b.col.0..b.col.1 {
            let h = hausdorff_naive(
                &ensemble[i as usize].frames,
                &ensemble[j as usize].frames,
                linalg::frame_rmsd,
            );
            out.push((i, j, h));
        }
    }
    out
}

/// Bytes a task must read from storage for block `b`.
pub(crate) fn block_input_bytes(ensemble: &[Trajectory], b: Block) -> u64 {
    let row: u64 = (b.row.0..b.row.1)
        .map(|i| ensemble[i as usize].size_bytes())
        .sum();
    let col: u64 = (b.col.0..b.col.1)
        .map(|j| ensemble[j as usize].size_bytes())
        .sum();
    row + col
}

pub(crate) fn assemble(
    n: usize,
    triples: impl IntoIterator<Item = (u32, u32, f64)>,
) -> DistanceMatrix {
    let mut d = DistanceMatrix::zeros(n, n);
    for (i, j, h) in triples {
        d.set(i as usize, j as usize, h);
    }
    d
}

/// PSA on Spark: one RDD partition per task, map-only. Surfaces retry
/// exhaustion under a fault plan as a typed error.
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_psa} instead")]
pub fn psa_spark(
    sc: &SparkContext,
    ensemble: Arc<Vec<Trajectory>>,
    cfg: &PsaConfig,
) -> Result<PsaOutput, EngineError> {
    psa_spark_impl(sc, ensemble, cfg)
}

pub(crate) fn psa_spark_impl(
    sc: &SparkContext,
    ensemble: Arc<Vec<Trajectory>>,
    cfg: &PsaConfig,
) -> Result<PsaOutput, EngineError> {
    let n = ensemble.len();
    let blocks = plan_psa_2d(n, cfg.groups);
    let net = sc.cluster().profile.network;
    let charge_io = cfg.charge_io;
    let ens = Arc::clone(&ensemble);
    let rdd = sparklet::Rdd::from_partitions(sc.clone(), blocks.len(), move |p, ctx: &TaskCtx| {
        let b = blocks[p];
        if charge_io {
            ctx.charge(net.transfer_time(block_input_bytes(&ens, b), false));
        }
        block_distances(&ens, b)
    });
    sc.set_phase("psa-map");
    let triples = rdd.try_collect()?;
    Ok(PsaOutput {
        distances: assemble(n, triples),
        report: sc.report(),
    })
}

/// PSA on Dask: one delayed function per task. Surfaces retry exhaustion
/// under a fault plan as a typed error.
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_psa} instead")]
pub fn psa_dask(
    client: &DaskClient,
    ensemble: Arc<Vec<Trajectory>>,
    cfg: &PsaConfig,
) -> Result<PsaOutput, EngineError> {
    psa_dask_impl(client, ensemble, cfg)
}

pub(crate) fn psa_dask_impl(
    client: &DaskClient,
    ensemble: Arc<Vec<Trajectory>>,
    cfg: &PsaConfig,
) -> Result<PsaOutput, EngineError> {
    let n = ensemble.len();
    let blocks = plan_psa_2d(n, cfg.groups);
    let net = client.cluster().profile.network;
    client.set_phase("psa-map");
    let fs: Vec<_> = blocks
        .iter()
        .map(|&b| {
            let ens = Arc::clone(&ensemble);
            let charge_io = cfg.charge_io;
            move |ctx: &TaskCtx| {
                if charge_io {
                    ctx.charge(net.transfer_time(block_input_bytes(&ens, b), false));
                }
                block_distances(&ens, b)
            }
        })
        .collect();
    let tasks: Vec<Delayed<Vec<(u32, u32, f64)>>> = client.delayed_many(fs);
    let (parts, _t) = client.try_gather(&tasks)?;
    Ok(PsaOutput {
        distances: assemble(n, parts.into_iter().flatten()),
        report: client.report(),
    })
}

/// PSA on RADICAL-Pilot: one Compute-Unit per task, inputs genuinely
/// staged through the filesystem (encoded trajectories written to and read
/// back from the staging area).
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_psa} instead")]
pub fn psa_pilot(
    session: &Session,
    ensemble: &[Trajectory],
    cfg: &PsaConfig,
) -> Result<PsaOutput, EngineError> {
    psa_pilot_impl(session, ensemble, cfg)
}

pub(crate) fn psa_pilot_impl(
    session: &Session,
    ensemble: &[Trajectory],
    cfg: &PsaConfig,
) -> Result<PsaOutput, EngineError> {
    let n = ensemble.len();
    let blocks = plan_psa_2d(n, cfg.groups);
    let units: Vec<UnitDescription<Vec<(u32, u32, f64)>>> = blocks
        .iter()
        .map(|&b| {
            let rows: Vec<&Trajectory> =
                (b.row.0..b.row.1).map(|i| &ensemble[i as usize]).collect();
            let cols: Vec<&Trajectory> =
                (b.col.0..b.col.1).map(|j| &ensemble[j as usize]).collect();
            let mut input = codec::encode_trajectories(&rows);
            input.extend_from_slice(&codec::encode_trajectories(&cols));
            // Remember the split point so the unit can decode both groups.
            let row_len = codec::encode_trajectories(&rows).len();
            // Staged bytes plus their decoded trajectory copies: the
            // declared footprint admission control schedules against.
            let working_set = input.len() as u64
                * crate::analysis::AnalysisCost::DEFAULT.staging_working_set_factor;
            UnitDescription::new(input, move |_ctx, staged: &[u8]| {
                let rows = codec::decode_trajectories(&staged[..row_len]);
                let cols = codec::decode_trajectories(&staged[row_len..]);
                let mut out = Vec::new();
                for (di, ti) in rows.iter().enumerate() {
                    for (dj, tj) in cols.iter().enumerate() {
                        let h = hausdorff_naive(&ti.frames, &tj.frames, linalg::frame_rmsd);
                        out.push((b.row.0 + di as u32, b.col.0 + dj as u32, h));
                    }
                }
                out
            })
            .with_working_set(working_set)
        })
        .collect();
    let out = session.submit_and_wait(units)?;
    Ok(PsaOutput {
        distances: assemble(n, out.results.into_iter().flatten()),
        report: out.report,
    })
}

/// PSA on MPI: blocks round-robin over ranks, gather at rank 0.
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_psa} instead")]
pub fn psa_mpi(
    cluster: Cluster,
    world: usize,
    ensemble: &[Trajectory],
    cfg: &PsaConfig,
) -> PsaOutput {
    psa_mpi_impl(cluster, world, ensemble, cfg)
}

pub(crate) fn psa_mpi_impl(
    cluster: Cluster,
    world: usize,
    ensemble: &[Trajectory],
    cfg: &PsaConfig,
) -> PsaOutput {
    let n = ensemble.len();
    let blocks = plan_psa_2d(n, cfg.groups);
    let net = cluster.profile.network;
    let charge_io = cfg.charge_io;
    let out = mpilike::run(cluster, world, |comm| {
        comm.set_phase("psa-map");
        let mine: Vec<Block> = blocks
            .iter()
            .copied()
            .skip(comm.rank())
            .step_by(comm.world())
            .collect();
        if charge_io {
            let bytes: u64 = mine.iter().map(|&b| block_input_bytes(ensemble, b)).sum();
            comm.charge(net.transfer_time(bytes, false));
        }
        let local: Vec<(u32, u32, f64)> = comm.compute(|| {
            mine.iter()
                .flat_map(|&b| block_distances(ensemble, b))
                .collect()
        });
        comm.set_phase("gather");
        comm.gather(0, local)
    });
    let triples = out.results.into_iter().flatten().flatten().flatten();
    PsaOutput {
        distances: assemble(n, triples),
        report: out.report,
    }
}

/// PSA on MPI under an explicit recovery policy: a node death restarts the
/// job from the last completed collective barrier (or from startup when
/// `restart_from_barrier` is false) instead of aborting, up to
/// `policy.max_attempts` total attempts.
#[deprecated(note = "use mdtask_core::run::{RunConfig, run_psa} with a retry policy instead")]
pub fn psa_mpi_with_policy(
    cluster: Cluster,
    world: usize,
    ensemble: &[Trajectory],
    cfg: &PsaConfig,
    policy: &netsim::RetryPolicy,
    restart_from_barrier: bool,
) -> Result<PsaOutput, EngineError> {
    psa_mpi_with_policy_impl(cluster, world, ensemble, cfg, policy, restart_from_barrier)
}

pub(crate) fn psa_mpi_with_policy_impl(
    cluster: Cluster,
    world: usize,
    ensemble: &[Trajectory],
    cfg: &PsaConfig,
    policy: &netsim::RetryPolicy,
    restart_from_barrier: bool,
) -> Result<PsaOutput, EngineError> {
    let n = ensemble.len();
    let blocks = plan_psa_2d(n, cfg.groups);
    let net = cluster.profile.network;
    let charge_io = cfg.charge_io;
    let out = mpilike::try_run_with_policy(cluster, world, policy, restart_from_barrier, |comm| {
        comm.set_phase("psa-map");
        let mine: Vec<Block> = blocks
            .iter()
            .copied()
            .skip(comm.rank())
            .step_by(comm.world())
            .collect();
        if charge_io {
            let bytes: u64 = mine.iter().map(|&b| block_input_bytes(ensemble, b)).sum();
            comm.charge(net.transfer_time(bytes, false));
        }
        let local: Vec<(u32, u32, f64)> = comm.compute(|| {
            mine.iter()
                .flat_map(|&b| block_distances(ensemble, b))
                .collect()
        });
        comm.set_phase("gather");
        // A gathered total that overflows rank 0's fixed buffer surfaces
        // typed on every rank instead of tearing mpirun down.
        comm.try_gather(0, local)
    })?;
    let mut gathered = Vec::with_capacity(out.results.len());
    for r in out.results {
        gathered.push(r?);
    }
    let triples = gathered.into_iter().flatten().flatten().flatten();
    Ok(PsaOutput {
        distances: assemble(n, triples),
        report: out.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_psa, RunConfig};
    use mdsim::ChainSpec;
    use netsim::{comet, laptop};
    use taskframe::Engine;

    fn ensemble(count: usize) -> Vec<Trajectory> {
        let spec = ChainSpec {
            n_atoms: 10,
            n_frames: 5,
            stride: 1,
            ..ChainSpec::default()
        };
        mdsim::chain::generate_ensemble(&spec, count, 42)
    }

    fn matrices_equal(a: &DistanceMatrix, b: &DistanceMatrix) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn config_for_cores() {
        assert_eq!(PsaConfig::for_cores(16).groups, 4);
        assert_eq!(PsaConfig::for_cores(17).groups, 5);
        assert_eq!(PsaConfig::for_cores(1).groups, 1);
    }

    #[test]
    fn serial_matrix_is_symmetric_zero_diagonal() {
        let e = ensemble(4);
        let d = psa_serial(&e);
        for i in 0..4 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..4 {
                assert!((d.get(i, j) - d.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn all_engines_match_serial() {
        let e = ensemble(6);
        let reference = psa_serial(&e);
        let cfg = PsaConfig {
            groups: 3,
            charge_io: true,
        };
        let cluster = || Cluster::new(laptop(), 2);
        let arc = Arc::new(e.clone());

        for engine in Engine::ALL {
            let rc = RunConfig::new(cluster(), engine).mpi_world(4);
            let out = run_psa(&rc, Arc::clone(&arc), &cfg)
                .unwrap_or_else(|e| panic!("{engine:?} runs fault-free: {e}"));
            assert!(
                matrices_equal(&out.distances, &reference),
                "{engine:?} mismatch"
            );
        }
    }

    #[test]
    fn task_counts_are_k_squared() {
        let e = ensemble(4);
        let cfg = PsaConfig {
            groups: 2,
            charge_io: false,
        };
        let rc = RunConfig::new(Cluster::new(laptop(), 1), Engine::Spark);
        let out = run_psa(&rc, Arc::new(e), &cfg).expect("fault-free");
        assert_eq!(out.report.tasks, 4);
    }

    #[test]
    fn block_input_bytes_counts_both_axes() {
        // The I/O model charges exactly the bytes a task reads: all row
        // and column trajectories of its block.
        let e = ensemble(4); // 4 trajectories × 5 frames × 10 atoms
        let per_traj = 5 * 10 * 12;
        let diag = Block {
            row: (0, 2),
            col: (0, 2),
        };
        assert_eq!(block_input_bytes(&e, diag), 4 * per_traj);
        let off = Block {
            row: (0, 1),
            col: (2, 4),
        };
        assert_eq!(block_input_bytes(&e, off), 3 * per_traj);
    }

    #[test]
    fn charged_io_lands_in_task_durations() {
        // Mechanism check with a charge (10 s/task) that dwarfs any host
        // noise: compute_s must include it for every task.
        let sc = SparkContext::new(Cluster::new(comet(), 1));
        let rdd = sparklet::Rdd::from_partitions(sc.clone(), 4, |_p, ctx: &taskframe::TaskCtx| {
            ctx.charge(10.0);
            vec![0u32]
        });
        rdd.collect();
        assert!(sc.report().compute_s >= 40.0);
    }

    #[test]
    fn pilot_stages_real_bytes() {
        let e = ensemble(2);
        let rc = RunConfig::new(Cluster::new(laptop(), 1), Engine::Pilot);
        let out = run_psa(
            &rc,
            Arc::new(e),
            &PsaConfig {
                groups: 1,
                charge_io: true,
            },
        )
        .unwrap();
        assert!(
            out.report.bytes_staged > 0,
            "pilot must stage trajectory bytes"
        );
    }
}
