//! The conceptual decision framework of §4.4: Table 1 (framework
//! properties) and Table 3 (criteria ranking), as queryable data, plus the
//! recommendation logic the paper's discussion implies.

use crate::EngineKind;

/// Support level, Table 3's `-` / `o` / `+` / `++` scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Support {
    /// `-`: unsupported or low performance.
    Unsupported,
    /// `o`: minor support.
    Minor,
    /// `+`: supported.
    Supported,
    /// `++`: major support.
    Major,
}

impl Support {
    pub fn symbol(self) -> &'static str {
        match self {
            Support::Unsupported => "-",
            Support::Minor => "o",
            Support::Supported => "+",
            Support::Major => "++",
        }
    }
}

/// Table 3's criteria.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Criterion {
    // Task management
    LowLatency,
    Throughput,
    MpiHpcTasks,
    TaskApi,
    LargeNumberOfTasks,
    // Application characteristics
    PythonNativeCode,
    Java,
    HigherLevelAbstraction,
    Shuffle,
    Broadcast,
    Caching,
}

impl Criterion {
    pub const ALL: [Criterion; 11] = [
        Criterion::LowLatency,
        Criterion::Throughput,
        Criterion::MpiHpcTasks,
        Criterion::TaskApi,
        Criterion::LargeNumberOfTasks,
        Criterion::PythonNativeCode,
        Criterion::Java,
        Criterion::HigherLevelAbstraction,
        Criterion::Shuffle,
        Criterion::Broadcast,
        Criterion::Caching,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Criterion::LowLatency => "Low Latency",
            Criterion::Throughput => "Throughput",
            Criterion::MpiHpcTasks => "MPI/HPC Tasks",
            Criterion::TaskApi => "Task API",
            Criterion::LargeNumberOfTasks => "Large Number of Tasks",
            Criterion::PythonNativeCode => "Python/native Code",
            Criterion::Java => "Java",
            Criterion::HigherLevelAbstraction => "Higher-Level Abstraction",
            Criterion::Shuffle => "Shuffle",
            Criterion::Broadcast => "Broadcast",
            Criterion::Caching => "Caching",
        }
    }

    /// Is this a task-management criterion (upper half of Table 3)?
    pub fn is_task_management(self) -> bool {
        matches!(
            self,
            Criterion::LowLatency
                | Criterion::Throughput
                | Criterion::MpiHpcTasks
                | Criterion::TaskApi
                | Criterion::LargeNumberOfTasks
        )
    }
}

/// Table 3, verbatim. (`RADICAL-Pilot`'s "Large Number of Tasks" is `--`
/// in the paper; we map it to `Unsupported`.)
pub fn rank(engine: EngineKind, criterion: Criterion) -> Support {
    use Criterion::*;
    use EngineKind::*;
    use Support::*;
    match (engine, criterion) {
        (RadicalPilot, LowLatency) => Unsupported,
        (Spark, LowLatency) => Minor,
        (Dask, LowLatency) => Supported,
        (RadicalPilot, Throughput) => Unsupported,
        (Spark, Throughput) => Supported,
        (Dask, Throughput) => Major,
        (RadicalPilot, MpiHpcTasks) => Supported,
        (Spark, MpiHpcTasks) => Minor,
        (Dask, MpiHpcTasks) => Minor,
        (RadicalPilot, TaskApi) => Supported,
        (Spark, TaskApi) => Minor,
        (Dask, TaskApi) => Major,
        (RadicalPilot, LargeNumberOfTasks) => Unsupported,
        (Spark, LargeNumberOfTasks) => Major,
        (Dask, LargeNumberOfTasks) => Major,
        (RadicalPilot, PythonNativeCode) => Major,
        (Spark, PythonNativeCode) => Minor,
        (Dask, PythonNativeCode) => Supported,
        (RadicalPilot, Java) => Minor,
        (Spark, Java) => Major,
        (Dask, Java) => Minor,
        (RadicalPilot, HigherLevelAbstraction) => Unsupported,
        (Spark, HigherLevelAbstraction) => Major,
        (Dask, HigherLevelAbstraction) => Supported,
        (RadicalPilot, Shuffle) => Unsupported,
        (Spark, Shuffle) => Major,
        (Dask, Shuffle) => Supported,
        (RadicalPilot, Broadcast) => Unsupported,
        (Spark, Broadcast) => Major,
        (Dask, Broadcast) => Supported,
        (RadicalPilot, Caching) => Unsupported,
        (Spark, Caching) => Major,
        (Dask, Caching) => Minor,
        // MPI is the baseline, not ranked by Table 3.
        (Mpi, _) => Minor,
    }
}

/// A workload description for the recommendation logic (§4.4.1).
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// Tasks are coarse-grained and independent (e.g. PSA).
    pub embarrassingly_parallel: bool,
    /// Requires reduce/shuffle coupling (e.g. Leaflet Finder 3/4).
    pub needs_shuffle: bool,
    /// Needs to run MPI executables alongside the analytics.
    pub mixes_mpi_tasks: bool,
    /// Fine-grained: many short tasks.
    pub many_short_tasks: bool,
    /// Iterative passes over a cached working set.
    pub iterative: bool,
}

/// The paper's qualitative guidance, §4.4.1–4.4.2, as a function.
pub fn recommend(w: &Workload) -> EngineKind {
    if w.mixes_mpi_tasks {
        // "Executing MPI and Spark applications alongside … makes
        // RADICAL-Pilot particularly suitable when different programming
        // models need to be combined."
        EngineKind::RadicalPilot
    } else if w.iterative || w.needs_shuffle {
        // "Spark needs to be particularly considered for shuffle-intensive
        // applications. Its in-memory caching … suited for iterative
        // algorithms."
        EngineKind::Spark
    } else if w.many_short_tasks {
        // "Dask provides a highly flexible, low-latency task management."
        EngineKind::Dask
    } else if w.embarrassingly_parallel {
        // "The choice of framework does not significantly influence
        // performance … programmability and integrate-ability become more
        // important" — Dask's native-Python integration wins.
        EngineKind::Dask
    } else {
        EngineKind::Mpi
    }
}

/// Table 1 rows: descriptive properties per framework.
pub fn framework_properties(engine: EngineKind) -> Vec<(&'static str, &'static str)> {
    match engine {
        EngineKind::RadicalPilot => vec![
            ("Languages", "Python"),
            ("Task Abstraction", "Task (Compute-Unit)"),
            ("Functional Abstraction", "-"),
            ("Higher-Level Abstractions", "EnTK"),
            ("Resource Management", "Pilot-Job"),
            ("Scheduler", "Individual Tasks"),
            ("Shuffle", "-"),
            ("Limitations", "no shuffle, filesystem-based communication"),
        ],
        EngineKind::Spark => vec![
            ("Languages", "Java, Scala, Python, R"),
            ("Task Abstraction", "Map-Task"),
            ("Functional Abstraction", "RDD API"),
            ("Higher-Level Abstractions", "Dataframe, ML Pipeline, MLlib"),
            ("Resource Management", "Spark Execution Engines"),
            ("Scheduler", "Stage-oriented DAG"),
            ("Shuffle", "hash/sort-based shuffle"),
            (
                "Limitations",
                "high overheads for Python tasks (serialization)",
            ),
        ],
        EngineKind::Dask => vec![
            ("Languages", "Python"),
            ("Task Abstraction", "Delayed"),
            ("Functional Abstraction", "Bag"),
            (
                "Higher-Level Abstractions",
                "Dataframe, Arrays for block computations",
            ),
            ("Resource Management", "Dask Distributed Scheduler"),
            ("Scheduler", "DAG"),
            ("Shuffle", "hash/sort-based shuffle"),
            (
                "Limitations",
                "Dask Array can not deal with dynamic output shapes",
            ),
        ],
        EngineKind::Mpi => vec![
            ("Languages", "C, C++, Fortran, Python (mpi4py)"),
            ("Task Abstraction", "Process (rank)"),
            ("Functional Abstraction", "-"),
            ("Higher-Level Abstractions", "-"),
            ("Resource Management", "mpirun / cluster scheduler"),
            ("Scheduler", "static SPMD"),
            ("Shuffle", "collectives (alltoall)"),
            ("Limitations", "explicit communication and synchronization"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_headline_orderings() {
        // Throughput: Dask > Spark > RP (Fig. 2/3).
        assert!(
            rank(EngineKind::Dask, Criterion::Throughput)
                > rank(EngineKind::Spark, Criterion::Throughput)
        );
        assert!(
            rank(EngineKind::Spark, Criterion::Throughput)
                > rank(EngineKind::RadicalPilot, Criterion::Throughput)
        );
        // Shuffle/broadcast/caching: Spark strongest (§4.4.2).
        for c in [Criterion::Shuffle, Criterion::Broadcast, Criterion::Caching] {
            assert_eq!(rank(EngineKind::Spark, c), Support::Major);
            assert!(rank(EngineKind::Dask, c) < Support::Major);
            assert_eq!(rank(EngineKind::RadicalPilot, c), Support::Unsupported);
        }
        // RP leads on MPI/HPC task support.
        assert!(
            rank(EngineKind::RadicalPilot, Criterion::MpiHpcTasks)
                > rank(EngineKind::Spark, Criterion::MpiHpcTasks)
        );
    }

    #[test]
    fn symbols_roundtrip() {
        assert_eq!(Support::Major.symbol(), "++");
        assert_eq!(Support::Unsupported.symbol(), "-");
    }

    #[test]
    fn recommendations_follow_the_paper() {
        assert_eq!(
            recommend(&Workload {
                mixes_mpi_tasks: true,
                ..Default::default()
            }),
            EngineKind::RadicalPilot
        );
        assert_eq!(
            recommend(&Workload {
                needs_shuffle: true,
                ..Default::default()
            }),
            EngineKind::Spark
        );
        assert_eq!(
            recommend(&Workload {
                iterative: true,
                ..Default::default()
            }),
            EngineKind::Spark
        );
        assert_eq!(
            recommend(&Workload {
                many_short_tasks: true,
                ..Default::default()
            }),
            EngineKind::Dask
        );
        assert_eq!(
            recommend(&Workload {
                embarrassingly_parallel: true,
                ..Default::default()
            }),
            EngineKind::Dask
        );
        assert_eq!(recommend(&Workload::default()), EngineKind::Mpi);
    }

    #[test]
    fn properties_cover_all_engines() {
        for e in EngineKind::ALL {
            let props = framework_properties(e);
            assert!(props.len() >= 8, "{e:?}");
            assert_eq!(props[0].0, "Languages");
        }
    }

    #[test]
    fn criteria_split() {
        let tm = Criterion::ALL
            .iter()
            .filter(|c| c.is_task_management())
            .count();
        assert_eq!(tm, 5);
        assert_eq!(Criterion::ALL.len() - tm, 6);
    }
}
