//! `mdtask-core` — task-parallel analysis of molecular dynamics
//! trajectories.
//!
//! This crate is the paper's primary contribution, reimplemented: the two
//! representative MD trajectory-analysis algorithms — **Path Similarity
//! Analysis with the Hausdorff metric** (Algorithm 1) and the **Leaflet
//! Finder** (Algorithm 3) — expressed over four task-parallel engines
//! (`sparklet`, `dasklet`, `pilot`, `mpilike`), together with:
//!
//! * [`partition`] — the 2-D partitioning of Algorithm 2 and the
//!   memory-aware Leaflet Finder block planner;
//! * [`psa`] — PSA on every engine plus a serial reference;
//! * [`leaflet`] — the four architectural approaches of Table 2
//!   (broadcast + 1-D; task API + 2-D; parallel connected components;
//!   tree search) on Spark/Dask/MPI (+ approach 2 on RADICAL-Pilot);
//! * [`decision`] — the conceptual decision framework of Tables 1 and 3,
//!   queryable;
//! * [`ogres`] — the Big Data Ogres facet characterization of §2.
//!
//! Every engine implementation returns both a *real* analysis result
//! (verified identical to the serial reference in tests) and a simulated
//! execution report (`netsim::SimReport`) carrying virtual makespan and
//! communication volumes — the quantities the paper's figures plot.

pub mod analysis;
pub mod clustering;
pub mod codec;
pub mod common;
pub mod decision;
pub mod leaflet;
pub mod ogres;
pub mod partition;
pub mod psa;
pub mod run;

pub use analysis::{
    contacts_analysis, rmsd_analysis, AnalysisCost, AnalysisFromFunction, AtomSelection, DriverCtx,
    FrameSeries, Gathered, MpiClocks, ParallelAnalysis, ReduceShape,
};
pub use leaflet::{LfApproach, LfConfig, LfOutput};
pub use psa::{PsaConfig, PsaOutput};
pub use run::{
    lf_frame_value, run_lf, run_lf_stream, run_psa, run_workload, LfRun, PsaRun, RunConfig,
    StreamTuning, Workload, WorkloadRun,
};
pub use taskframe::Engine;

/// Which task-parallel engine executes an analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    Spark,
    Dask,
    RadicalPilot,
    Mpi,
}

impl EngineKind {
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Spark,
        EngineKind::Dask,
        EngineKind::RadicalPilot,
        EngineKind::Mpi,
    ];

    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Spark => "Spark",
            EngineKind::Dask => "Dask",
            EngineKind::RadicalPilot => "RADICAL-Pilot",
            EngineKind::Mpi => "MPI4py",
        }
    }
}
