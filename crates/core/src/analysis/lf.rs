//! The Leaflet Finder expressed as [`ParallelAnalysis`] instances.
//!
//! Two instances cover the four architectural approaches of Table 2:
//! [`LfEdges`] for the edge-gathering approaches (1: broadcast + 1-D
//! strips, 2: task API + 2-D blocks) and [`LfPartials`] for the
//! partial-connected-components approaches (3: parallel CC, 4: tree
//! search), whose reduce is engine-side. Both reproduce the bespoke
//! drivers' postures exactly — `tests/api_surface.rs` proves the reports
//! byte-identical.

use super::{DriverCtx, Gathered, MpiClocks, ParallelAnalysis, ReduceShape};
use crate::codec;
use crate::leaflet::{
    block_edges, block_edges_tree, block_input_bytes, check_feasible, driver_components,
    edge_shuffle_bytes, sizes_of_groups, strip_edges, task_mem_budget, LfApproach, LfConfig,
    LfOutput,
};
use crate::partition::{grid_for_tasks, plan_1d, plan_2d_grid, plan_2d_mem, Block, Range};
use crate::EngineKind;
use graphops::{merge_partials, partial_components, PartialComponents};
use linalg::Vec3;
use netsim::Cluster;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use taskframe::EngineError;

/// Per-rank MPI wire format shared by both LF analyses: `(edge list,
/// partial components, edges found)` — one of the first two is empty
/// depending on the approach.
pub(crate) type RankOut = (Vec<(u32, u32)>, Vec<Vec<u32>>, u64);

/// One unit of Leaflet-Finder work: a 1-D atom strip (approach 1) or a
/// 2-D block (approaches 2–4).
#[derive(Clone, Copy, Debug)]
pub(crate) enum LfSlice {
    Strip(Range),
    Block(Block),
}

/// Approaches 1–2: map tasks emit raw edge lists, gathered at the driver,
/// which runs connected components (the O(E)-shuffle posture of Table 2).
pub(crate) struct LfEdges {
    positions: Arc<Vec<Vec3>>,
    cfg: LfConfig,
    approach: LfApproach,
    /// Edges found across *executions* (Spark's broadcast counter — under
    /// retries or speculation it counts every attempt, exactly like the
    /// accumulator the bespoke driver used).
    edge_count: AtomicU64,
}

impl LfEdges {
    pub(crate) fn new(positions: Arc<Vec<Vec3>>, cfg: LfConfig, approach: LfApproach) -> Self {
        debug_assert!(matches!(
            approach,
            LfApproach::Broadcast1D | LfApproach::Task2D
        ));
        LfEdges {
            positions,
            cfg,
            approach,
            edge_count: AtomicU64::new(0),
        }
    }
}

impl ParallelAnalysis for LfEdges {
    type Shared = Vec<Vec3>;
    type Slice = LfSlice;
    type Item = (u32, u32);
    type Wire = RankOut;
    type Output = LfOutput;

    fn name(&self) -> &'static str {
        "leaflet-finder"
    }

    fn check(&self, engine: EngineKind, cluster: &Cluster) -> Result<(), EngineError> {
        check_feasible(engine, self.approach, &self.cfg, cluster)
    }

    fn shared(&self) -> Arc<Vec<Vec3>> {
        Arc::clone(&self.positions)
    }

    fn slices(&self, _engine: EngineKind, _cluster: &Cluster) -> Vec<LfSlice> {
        let n = self.positions.len();
        match self.approach {
            LfApproach::Broadcast1D => plan_1d(n, self.cfg.partitions)
                .into_iter()
                .map(LfSlice::Strip)
                .collect(),
            _ => plan_2d_grid(n, grid_for_tasks(self.cfg.partitions))
                .into_iter()
                .map(LfSlice::Block)
                .collect(),
        }
    }

    fn broadcast(&self) -> bool {
        self.approach == LfApproach::Broadcast1D
    }

    fn map_phase(&self, _engine: EngineKind) -> &'static str {
        "edge-discovery"
    }

    fn bracket_map_phase(&self) -> bool {
        true
    }

    fn io_bytes(&self, slice: LfSlice) -> Option<u64> {
        match slice {
            LfSlice::Strip(_) => None, // approach 1 ships data by broadcast
            LfSlice::Block(b) => self.cfg.charge_io.then(|| block_input_bytes(b)),
        }
    }

    fn map(&self, shared: &Vec<Vec3>, slice: LfSlice) -> Vec<(u32, u32)> {
        match slice {
            LfSlice::Strip(s) => {
                let edges = strip_edges(shared, s, self.cfg.cutoff);
                self.edge_count
                    .fetch_add(edges.len() as u64, Ordering::Relaxed);
                edges
            }
            LfSlice::Block(b) => block_edges(shared, b, self.cfg.cutoff),
        }
    }

    fn rank_map(&self, shared: &Vec<Vec3>, mine: &[LfSlice]) -> RankOut {
        let edges: Vec<(u32, u32)> = mine
            .iter()
            .flat_map(|&s| match s {
                LfSlice::Strip(s) => strip_edges(shared, s, self.cfg.cutoff),
                LfSlice::Block(b) => block_edges(shared, b, self.cfg.cutoff),
            })
            .collect();
        let found = edges.len() as u64;
        (edges, Vec::new(), found)
    }

    fn rank_io_bytes(&self, mine: &[LfSlice]) -> Option<u64> {
        // Approach 2's MPI posture charges the read unconditionally when
        // I/O accounting is on — even a rank with no blocks pays the
        // (zero-byte) request.
        match self.approach {
            LfApproach::Broadcast1D => None,
            _ => self.cfg.charge_io.then(|| {
                mine.iter()
                    .map(|&s| match s {
                        LfSlice::Strip(_) => 0,
                        LfSlice::Block(b) => block_input_bytes(b),
                    })
                    .sum()
            }),
        }
    }

    fn stage(&self, shared: &Vec<Vec3>, slice: LfSlice) -> Option<(Vec<u8>, u64)> {
        // Pilot posture: block coordinate slices really encoded and staged
        // through the filesystem (RP's only data path).
        match slice {
            LfSlice::Strip(_) => None,
            LfSlice::Block(b) => {
                let rows = &shared[b.row.0 as usize..b.row.1 as usize];
                let cols = &shared[b.col.0 as usize..b.col.1 as usize];
                Some((codec::encode_point_pair(rows, cols), 0))
            }
        }
    }

    fn map_staged(&self, slice: LfSlice, _token: u64, staged: &[u8]) -> Vec<(u32, u32)> {
        let LfSlice::Block(b) = slice else {
            unreachable!("only block slices are staged")
        };
        let (rows, cols) = codec::decode_point_pair(staged);
        // Re-derive global indices from the block ranges.
        let local = Block {
            row: (0, rows.len() as u32),
            col: (rows.len() as u32, (rows.len() + cols.len()) as u32),
        };
        let mut joined = rows;
        joined.extend_from_slice(&cols);
        let edges = if b.is_diagonal() {
            block_edges(
                &joined,
                Block {
                    row: local.row,
                    col: local.row,
                },
                self.cfg.cutoff,
            )
        } else {
            block_edges(&joined, local, self.cfg.cutoff)
        };
        edges
            .into_iter()
            .map(|(i, j)| {
                let gi = b.row.0 + i;
                let gj = if b.is_diagonal() {
                    b.row.0 + j
                } else {
                    b.col.0 + (j - local.col.0)
                };
                (gi, gj)
            })
            .collect()
    }

    fn finalize(
        &self,
        gathered: Gathered<(u32, u32), RankOut>,
        mut ctx: DriverCtx<'_>,
    ) -> Result<LfOutput, EngineError> {
        let n = self.positions.len();
        match gathered {
            Gathered::Items(edges) => {
                let shuffle_bytes = edge_shuffle_bytes(edges.len() as u64);
                // Spark's broadcast approach reports the accumulator (all
                // executions); the rest report the collected edge count.
                let edges_found = if ctx.engine() == EngineKind::Spark
                    && self.approach == LfApproach::Broadcast1D
                {
                    self.edge_count.load(Ordering::Relaxed)
                } else {
                    edges.len() as u64
                };
                let (sizes, count) =
                    ctx.charge_measured("connected-components", || driver_components(n, &edges));
                Ok(LfOutput {
                    leaflet_sizes: sizes,
                    n_components: count,
                    edges_found,
                    shuffle_bytes,
                    tasks: ctx.tasks(),
                    report: ctx.finish(),
                })
            }
            Gathered::Ranks(wires) => Ok(finalize_mpi(n, self.approach, &wires, ctx)),
            Gathered::Merged(_) => unreachable!("LfEdges is gather-shaped"),
        }
    }
}

/// Approaches 3–4: map tasks compute partial connected components,
/// merged engine-side (one partial per task crosses the wire — Table 2's
/// O(n) shuffle instead of O(E)).
pub(crate) struct LfPartials {
    positions: Arc<Vec<Vec3>>,
    cfg: LfConfig,
    approach: LfApproach,
    edge_count: AtomicU64,
    shuffle_bytes: AtomicU64,
}

impl LfPartials {
    pub(crate) fn new(positions: Arc<Vec<Vec3>>, cfg: LfConfig, approach: LfApproach) -> Self {
        debug_assert!(matches!(
            approach,
            LfApproach::ParallelCC | LfApproach::TreeSearch
        ));
        LfPartials {
            positions,
            cfg,
            approach,
            edge_count: AtomicU64::new(0),
            shuffle_bytes: AtomicU64::new(0),
        }
    }

    fn edges_of(&self, shared: &[Vec3], b: Block) -> Vec<(u32, u32)> {
        if self.approach == LfApproach::TreeSearch {
            block_edges_tree(shared, b, self.cfg.cutoff)
        } else {
            block_edges(shared, b, self.cfg.cutoff)
        }
    }
}

impl ParallelAnalysis for LfPartials {
    type Shared = Vec<Vec3>;
    type Slice = Block;
    type Item = Vec<Vec<u32>>;
    type Wire = RankOut;
    type Output = LfOutput;

    fn name(&self) -> &'static str {
        "leaflet-finder"
    }

    fn check(&self, engine: EngineKind, cluster: &Cluster) -> Result<(), EngineError> {
        check_feasible(engine, self.approach, &self.cfg, cluster)
    }

    fn shared(&self) -> Arc<Vec<Vec3>> {
        Arc::clone(&self.positions)
    }

    fn slices(&self, _engine: EngineKind, cluster: &Cluster) -> Vec<Block> {
        let n = self.positions.len();
        match self.approach {
            LfApproach::ParallelCC => plan_2d_mem(
                n,
                self.cfg.paper_atoms,
                self.cfg.partitions,
                task_mem_budget(cluster),
            ),
            _ => plan_2d_grid(n, grid_for_tasks(self.cfg.partitions)),
        }
    }

    fn map_phase(&self, engine: EngineKind) -> &'static str {
        // The SPMD engine folds the partial-CC into its edge loop; the
        // task engines label the fused map+reduce stage explicitly.
        if engine == EngineKind::Mpi {
            "edge-discovery"
        } else {
            "edge-discovery+partial-cc"
        }
    }

    fn io_bytes(&self, b: Block) -> Option<u64> {
        self.cfg.charge_io.then(|| block_input_bytes(b))
    }

    fn map(&self, shared: &Vec<Vec3>, b: Block) -> Vec<Vec<Vec<u32>>> {
        vec![self.map_one(shared, b)]
    }

    fn map_one(&self, shared: &Vec<Vec3>, b: Block) -> Vec<Vec<u32>> {
        let edges = self.edges_of(shared, b);
        self.edge_count
            .fetch_add(edges.len() as u64, Ordering::Relaxed);
        let partial = partial_components(&edges);
        self.shuffle_bytes
            .fetch_add(partial.wire_bytes(), Ordering::Relaxed);
        partial.components
    }

    fn reduce_shape(&self) -> ReduceShape {
        ReduceShape::Tree
    }

    fn combine(&self, a: Vec<Vec<u32>>, b: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        merge_partials(&[
            PartialComponents { components: a },
            PartialComponents { components: b },
        ])
        .components
    }

    fn rank_map(&self, shared: &Vec<Vec3>, mine: &[Block]) -> RankOut {
        let mut found = 0u64;
        let parts: Vec<PartialComponents> = mine
            .iter()
            .map(|&b| {
                let edges = self.edges_of(shared, b);
                found += edges.len() as u64;
                partial_components(&edges)
            })
            .collect();
        (Vec::new(), merge_partials(&parts).components, found)
    }

    fn rank_io_bytes(&self, mine: &[Block]) -> Option<u64> {
        self.cfg
            .charge_io
            .then(|| mine.iter().map(|&b| block_input_bytes(b)).sum())
    }

    fn finalize(
        &self,
        gathered: Gathered<Vec<Vec<u32>>, RankOut>,
        ctx: DriverCtx<'_>,
    ) -> Result<LfOutput, EngineError> {
        let n = self.positions.len();
        match gathered {
            Gathered::Merged(merged) => {
                // Engine-side reduce already ran: no driver CC charge.
                let (sizes, count) = sizes_of_groups(merged.unwrap_or_default());
                Ok(LfOutput {
                    leaflet_sizes: sizes,
                    n_components: count,
                    edges_found: self.edge_count.load(Ordering::Relaxed),
                    shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
                    tasks: ctx.tasks(),
                    report: ctx.finish(),
                })
            }
            Gathered::Ranks(wires) => Ok(finalize_mpi(n, self.approach, &wires, ctx)),
            Gathered::Items(_) => unreachable!("LfPartials is tree-shaped"),
        }
    }
}

/// Shared MPI rank-0 reduce for both LF analyses: accumulate per-rank
/// wires, attribute the broadcast/edge-discovery spans from the rank
/// clocks, and charge the measured driver-side component reduction.
fn finalize_mpi(
    n: usize,
    approach: LfApproach,
    wires: &[RankOut],
    mut ctx: DriverCtx<'_>,
) -> LfOutput {
    let mut all_edges: Vec<(u32, u32)> = Vec::new();
    let mut all_partials: Vec<PartialComponents> = Vec::new();
    let mut edges_found = 0u64;
    let mut shuffle_bytes = 0u64;
    for (edges, partials, found) in wires {
        shuffle_bytes += edge_shuffle_bytes(edges.len() as u64)
            + PartialComponents {
                components: partials.clone(),
            }
            .wire_bytes();
        all_edges.extend_from_slice(edges);
        all_partials.push(PartialComponents {
            components: partials.clone(),
        });
        edges_found += found;
    }
    let MpiClocks {
        start_min,
        bcast_max,
        map_max,
    } = ctx.mpi_clocks().expect("MPI finalize requires rank clocks");
    if approach == LfApproach::Broadcast1D {
        ctx.push_span("broadcast", start_min, bcast_max);
    }
    ctx.push_span("edge-discovery", bcast_max, map_max);
    let (sizes, count) = ctx.charge_measured("connected-components", || match approach {
        LfApproach::Broadcast1D | LfApproach::Task2D => driver_components(n, &all_edges),
        LfApproach::ParallelCC | LfApproach::TreeSearch => {
            sizes_of_groups(merge_partials(&all_partials).components)
        }
    });
    LfOutput {
        leaflet_sizes: sizes,
        n_components: count,
        edges_found,
        shuffle_bytes,
        tasks: ctx.tasks(),
        report: ctx.finish(),
    }
}
