//! Path Similarity Analysis expressed as a [`ParallelAnalysis`].
//!
//! One instance replaces the four bespoke PSA drivers: per-block all-pairs
//! Hausdorff distances over the 2-D partitioning of Algorithm 2, gathered
//! and assembled at the driver. The per-pair kernel is the
//! centroid-pruned Hausdorff ([`linalg::hausdorff_rmsd_pruned`]), which
//! is bitwise-identical to the naive sweep the old drivers ran — so the
//! distance matrices match the legacy output to the last bit
//! (`tests/api_surface.rs`).

use super::{DriverCtx, Gathered, ParallelAnalysis};
use crate::codec;
use crate::partition::{plan_psa_2d, Block};
use crate::psa::{assemble, block_input_bytes, PsaConfig, PsaOutput};
use crate::EngineKind;
use linalg::hausdorff_rmsd_pruned;
use mdsim::Trajectory;
use netsim::Cluster;
use std::sync::Arc;
use taskframe::EngineError;

pub(crate) struct PsaAnalysis {
    ensemble: Arc<Vec<Trajectory>>,
    cfg: PsaConfig,
}

impl PsaAnalysis {
    pub(crate) fn new(ensemble: Arc<Vec<Trajectory>>, cfg: PsaConfig) -> Self {
        PsaAnalysis { ensemble, cfg }
    }
}

/// All Hausdorff distances of one 2-D block (Algorithm 2 step 3), with
/// the pruned kernel.
fn block_distances(ensemble: &[Trajectory], b: Block) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::with_capacity(((b.row.1 - b.row.0) * (b.col.1 - b.col.0)) as usize);
    for i in b.row.0..b.row.1 {
        for j in b.col.0..b.col.1 {
            let h =
                hausdorff_rmsd_pruned(&ensemble[i as usize].frames, &ensemble[j as usize].frames);
            out.push((i, j, h));
        }
    }
    out
}

impl ParallelAnalysis for PsaAnalysis {
    type Shared = Vec<Trajectory>;
    type Slice = Block;
    type Item = (u32, u32, f64);
    type Wire = Vec<(u32, u32, f64)>;
    type Output = PsaOutput;

    fn name(&self) -> &'static str {
        "psa"
    }

    fn shared(&self) -> Arc<Vec<Trajectory>> {
        Arc::clone(&self.ensemble)
    }

    fn slices(&self, _engine: EngineKind, _cluster: &Cluster) -> Vec<Block> {
        plan_psa_2d(self.ensemble.len(), self.cfg.groups)
    }

    fn map_phase(&self, _engine: EngineKind) -> &'static str {
        "psa-map"
    }

    fn io_bytes(&self, b: Block) -> Option<u64> {
        self.cfg
            .charge_io
            .then(|| block_input_bytes(&self.ensemble, b))
    }

    fn map(&self, shared: &Vec<Trajectory>, b: Block) -> Vec<(u32, u32, f64)> {
        block_distances(shared, b)
    }

    fn rank_map(&self, shared: &Vec<Trajectory>, mine: &[Block]) -> Vec<(u32, u32, f64)> {
        mine.iter()
            .flat_map(|&b| block_distances(shared, b))
            .collect()
    }

    fn rank_io_bytes(&self, mine: &[Block]) -> Option<u64> {
        // The paper's file-per-task layout charges the read whenever I/O
        // accounting is on — a rank with no blocks still pays the
        // zero-byte request.
        self.cfg.charge_io.then(|| {
            mine.iter()
                .map(|&b| block_input_bytes(&self.ensemble, b))
                .sum()
        })
    }

    fn stage(&self, shared: &Vec<Trajectory>, b: Block) -> Option<(Vec<u8>, u64)> {
        // Pilot posture: the block's row and column trajectories genuinely
        // serialized through the staging filesystem; the split offset
        // travels as the decode token.
        let rows: Vec<&Trajectory> = (b.row.0..b.row.1).map(|i| &shared[i as usize]).collect();
        let cols: Vec<&Trajectory> = (b.col.0..b.col.1).map(|j| &shared[j as usize]).collect();
        let mut input = codec::encode_trajectories(&rows);
        let row_len = input.len() as u64;
        input.extend_from_slice(&codec::encode_trajectories(&cols));
        Some((input, row_len))
    }

    fn map_staged(&self, b: Block, token: u64, staged: &[u8]) -> Vec<(u32, u32, f64)> {
        let row_len = token as usize;
        let rows = codec::decode_trajectories(&staged[..row_len]);
        let cols = codec::decode_trajectories(&staged[row_len..]);
        let mut out = Vec::new();
        for (di, ti) in rows.iter().enumerate() {
            for (dj, tj) in cols.iter().enumerate() {
                let h = hausdorff_rmsd_pruned(&ti.frames, &tj.frames);
                out.push((b.row.0 + di as u32, b.col.0 + dj as u32, h));
            }
        }
        out
    }

    fn finalize(
        &self,
        gathered: Gathered<(u32, u32, f64), Vec<(u32, u32, f64)>>,
        ctx: DriverCtx<'_>,
    ) -> Result<PsaOutput, EngineError> {
        let n = self.ensemble.len();
        let distances = match gathered {
            Gathered::Items(triples) => assemble(n, triples),
            Gathered::Ranks(wires) => assemble(n, wires.into_iter().flatten()),
            Gathered::Merged(_) => unreachable!("PSA is gather-shaped"),
        };
        Ok(PsaOutput {
            distances,
            report: ctx.finish(),
        })
    }
}
