//! The generic analysis API: one analysis definition, four engines.
//!
//! This is the Rust analogue of pmda's `ParallelAnalysisBase` /
//! `AnalysisFromFunction` (MDAnalysis ecosystem): an analysis declares how
//! to split its input into slices, how to `map` one slice to items, how to
//! reduce, and how to finalize — [`RunConfig::run_analysis`]
//! (`crate::run::RunConfig::run_analysis`) executes it with each engine's
//! native posture:
//!
//! * **Spark** (`sparklet`) — one RDD partition per slice; `Gather`
//!   analyses `collect`, `Tree` analyses `treeReduce` via [`ParallelAnalysis::combine`];
//! * **Dask** (`dasklet`) — one delayed task per slice, gathered, or a
//!   binary combine tree for `Tree` analyses;
//! * **RADICAL-Pilot** (`pilot`) — one Compute-Unit per slice, with
//!   [`ParallelAnalysis::stage`]d inputs really framed through the staging
//!   filesystem;
//! * **MPI** (`mpilike`) — slices round-robin over ranks, one
//!   [`ParallelAnalysis::rank_map`] per rank inside a measured compute
//!   block, results gathered to rank 0.
//!
//! Everything the bespoke drivers had comes for free: fault plans,
//! [`netsim::RetryPolicy`], the memory ledger, tracing, partitions/zombie
//! fencing, and host-thread bit-identity. The Leaflet Finder and PSA are
//! themselves expressed as [`ParallelAnalysis`] instances ([`lf`],
//! [`psa_impl`]) and are proven byte-identical to the legacy drivers in
//! `tests/api_surface.rs`.

pub(crate) mod engines;
pub mod frames;
pub(crate) mod lf;
pub(crate) mod psa_impl;

pub use frames::{
    contacts_analysis, rmsd_analysis, AnalysisFromFunction, AtomSelection, FrameSeries,
};

use crate::EngineKind;
use netsim::{Cluster, SimReport};
use std::sync::Arc;
use taskframe::{EngineError, Payload};

/// Declared cost model of an analysis: the constants the engines used to
/// duplicate inline (pilot working-set factors, streaming defaults) now
/// live in one place so the four postures cannot drift apart.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalysisCost {
    /// Pilot admission control: declared peak working set as a multiple of
    /// the staged input bytes (staged copy + decoded copy + joined
    /// buffer).
    pub staging_working_set_factor: u64,
    /// Declared virtual cost per streamed frame (see
    /// [`crate::run::StreamTuning::frame_cost_s`]).
    pub stream_frame_cost_s: f64,
    /// Resident window-state bytes per streamed frame.
    pub stream_state_bytes_per_frame: u64,
    /// Spark streaming micro-batch size.
    pub stream_micro_batch: usize,
    /// MPI streaming ring-buffer slots.
    pub stream_ring: usize,
}

impl AnalysisCost {
    pub const DEFAULT: AnalysisCost = AnalysisCost {
        staging_working_set_factor: 3,
        stream_frame_cost_s: 0.01,
        stream_state_bytes_per_frame: 1 << 20,
        stream_micro_batch: 4,
        stream_ring: 4,
    };
}

impl Default for AnalysisCost {
    fn default() -> Self {
        AnalysisCost::DEFAULT
    }
}

/// How an analysis's mapped items come back to the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceShape {
    /// Every item crosses the wire; the driver sees all of them
    /// (`collect` / `gather`). The paper's O(E)-shuffle posture.
    Gather,
    /// Items are pairwise [`ParallelAnalysis::combine`]d engine-side
    /// (Spark `treeReduce`, Dask combine tree); the driver sees one. The
    /// paper's partial-connected-components posture.
    Tree,
}

/// What the engine hands to [`ParallelAnalysis::finalize`].
#[derive(Debug)]
pub enum Gathered<I, W> {
    /// Gather-shaped result: every mapped item, in slice order (Spark,
    /// Dask, Pilot).
    Items(Vec<I>),
    /// Tree-shaped result: the engine-side combine of all items (`None`
    /// when there were no slices).
    Merged(Option<I>),
    /// MPI result: one [`ParallelAnalysis::Wire`] value per rank, in rank
    /// order.
    Ranks(Vec<W>),
}

/// Per-rank virtual clock readings of an MPI run, for phase attribution
/// in [`ParallelAnalysis::finalize`].
#[derive(Clone, Copy, Debug)]
pub struct MpiClocks {
    /// Earliest rank start.
    pub start_min: f64,
    /// Latest end of the broadcast (equals the start when nothing was
    /// broadcast).
    pub bcast_max: f64,
    /// Latest end of the map stage.
    pub map_max: f64,
}

enum Sink<'a> {
    Spark(&'a sparklet::SparkContext),
    Dask(&'a dasklet::DaskClient),
    /// Pilot and MPI hand the report over by value; driver-side charges
    /// append phases directly.
    Owned {
        report: Box<SimReport>,
        cluster: Box<Cluster>,
    },
}

/// Driver-side context handed to [`ParallelAnalysis::finalize`]: charge
/// measured driver work to the virtual clock, attribute phase spans, and
/// surrender the [`SimReport`].
pub struct DriverCtx<'a> {
    engine: EngineKind,
    tasks: usize,
    clocks: Option<MpiClocks>,
    sink: Sink<'a>,
}

impl<'a> DriverCtx<'a> {
    pub(crate) fn spark(sc: &'a sparklet::SparkContext, tasks: usize) -> Self {
        DriverCtx {
            engine: EngineKind::Spark,
            tasks,
            clocks: None,
            sink: Sink::Spark(sc),
        }
    }

    pub(crate) fn dask(client: &'a dasklet::DaskClient, tasks: usize) -> Self {
        DriverCtx {
            engine: EngineKind::Dask,
            tasks,
            clocks: None,
            sink: Sink::Dask(client),
        }
    }

    pub(crate) fn owned(
        engine: EngineKind,
        tasks: usize,
        clocks: Option<MpiClocks>,
        report: SimReport,
        cluster: Cluster,
    ) -> Self {
        DriverCtx {
            engine,
            tasks,
            clocks,
            sink: Sink::Owned {
                report: Box::new(report),
                cluster: Box::new(cluster),
            },
        }
    }

    /// Which engine executed the map stage.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// How many map slices the engine ran.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// The cluster the run executed on.
    pub fn cluster(&self) -> &Cluster {
        match &self.sink {
            Sink::Spark(sc) => sc.cluster(),
            Sink::Dask(client) => client.cluster(),
            Sink::Owned { cluster, .. } => cluster,
        }
    }

    /// Per-rank clock extrema (MPI runs only).
    pub fn mpi_clocks(&self) -> Option<MpiClocks> {
        self.clocks
    }

    /// Record a phase span `[start, end)` on the report.
    pub fn push_span(&mut self, label: &str, start: f64, end: f64) {
        match &mut self.sink {
            Sink::Spark(sc) => sc.note_phase(label, start, end),
            Sink::Dask(client) => client.note_phase(label, start, end),
            Sink::Owned { report, .. } => report.push_phase(label, start, end),
        }
    }

    /// Run `f` on the driver, measure its real host time, and charge the
    /// scaled equivalent to the virtual clock under `label` — Spark/Dask
    /// charge the driver, Pilot/MPI extend the makespan (the legacy
    /// drivers' exact postures).
    pub fn charge_measured<T>(&mut self, label: &str, f: impl FnOnce() -> T) -> T {
        let (value, host_s) = netsim::measure(f);
        match &mut self.sink {
            Sink::Spark(sc) => {
                sc.charge_driver(label, sc.cluster().scale_compute(host_s));
            }
            Sink::Dask(client) => {
                client.charge_driver(label, client.cluster().scale_compute(host_s));
            }
            Sink::Owned { report, cluster } => {
                let secs = cluster.scale_compute(host_s);
                report.push_phase(label, report.makespan_s, report.makespan_s + secs);
                report.makespan_s += secs;
            }
        }
        value
    }

    /// Consume the context, yielding the final [`SimReport`].
    pub fn finish(self) -> SimReport {
        match self.sink {
            Sink::Spark(sc) => sc.report(),
            Sink::Dask(client) => client.report(),
            Sink::Owned { report, .. } => *report,
        }
    }
}

/// An analysis expressed once and executed by any engine.
///
/// The life cycle mirrors pmda: [`prepare`](Self::prepare) →
/// [`map`](Self::map) over every slice → an associative reduce
/// ([`ReduceShape`]) → [`finalize`](Self::finalize). The remaining hooks
/// describe engine-posture details (broadcast vs capture, staged bytes
/// for the pilot, the whole-rank computation for MPI, phase labels and
/// I/O charges) with defaults that fit simple frame-mapped analyses; the
/// built-in Leaflet Finder and PSA instances override them to stay
/// byte-identical to the bespoke drivers they replaced.
pub trait ParallelAnalysis: Send + Sync {
    /// The input every map task reads (broadcast when
    /// [`broadcast`](Self::broadcast) is true, captured otherwise).
    type Shared: Payload + Clone + Send + Sync + 'static;
    /// One unit of work (an index range, a 2-D block, …). `Copy` so the
    /// planners can hand slices to closures freely.
    type Slice: Copy + Send + Sync + 'static;
    /// One mapped result element.
    type Item: Payload + Clone + Send + Sync + 'static;
    /// What one MPI rank ships to rank 0 (commonly `Vec<Item>`).
    type Wire: Payload + Clone + Send + Sync + 'static;
    /// The finalized analysis result.
    type Output;

    /// Short name (trace labels, diagnostics).
    fn name(&self) -> &'static str;

    /// One-time setup before any engine work (pmda's `_prepare`).
    fn prepare(&self) -> Result<(), EngineError> {
        Ok(())
    }

    /// Feasibility gate, checked before any engine work.
    fn check(&self, _engine: EngineKind, _cluster: &Cluster) -> Result<(), EngineError> {
        Ok(())
    }

    /// The shared input.
    fn shared(&self) -> Arc<Self::Shared>;

    /// Work decomposition for this engine on this cluster. Must be
    /// non-empty for Spark runs (an RDD needs at least one partition).
    fn slices(&self, engine: EngineKind, cluster: &Cluster) -> Vec<Self::Slice>;

    /// Ship [`shared`](Self::shared) through the engine's broadcast
    /// primitive (charged per its cost model) instead of capturing it.
    fn broadcast(&self) -> bool {
        false
    }

    /// Phase label of the map stage.
    fn map_phase(&self, _engine: EngineKind) -> &'static str {
        "map"
    }

    /// Record an explicit phase span around the Spark/Dask map gather.
    fn bracket_map_phase(&self) -> bool {
        false
    }

    /// Bytes a map task must read for `slice`; `None` charges nothing.
    fn io_bytes(&self, _slice: Self::Slice) -> Option<u64> {
        None
    }

    /// Declared virtual compute cost of one slice, charged inside the
    /// engine task on top of measured host time. Zero (the default) for
    /// analyses whose task cost comes purely from measurement; the
    /// frame-mapped analyses declare their per-frame cost model here so
    /// tasks occupy virtual time even when the host closure is trivial.
    fn slice_cost_s(&self, _slice: Self::Slice) -> f64 {
        0.0
    }

    /// Map one slice to its items (gather-shaped analyses).
    fn map(&self, shared: &Self::Shared, slice: Self::Slice) -> Vec<Self::Item>;

    /// Map one slice to a single combinable item (tree-shaped analyses).
    fn map_one(&self, _shared: &Self::Shared, _slice: Self::Slice) -> Self::Item {
        unimplemented!("map_one is required for ReduceShape::Tree analyses")
    }

    /// How mapped items come back to the driver.
    fn reduce_shape(&self) -> ReduceShape {
        ReduceShape::Gather
    }

    /// Associative pairwise combine (tree-shaped analyses).
    fn combine(&self, _a: Self::Item, _b: Self::Item) -> Self::Item {
        unimplemented!("combine is required for ReduceShape::Tree analyses")
    }

    /// Declared cost model (pilot admission, streaming defaults).
    fn cost(&self) -> AnalysisCost {
        AnalysisCost::DEFAULT
    }

    /// Pilot posture: serialize `slice`'s input for filesystem staging,
    /// returning the staged bytes plus an opaque decode token handed back
    /// to [`map_staged`](Self::map_staged) (e.g. a split offset). `None`
    /// (the default) runs compute-only units that capture the shared
    /// input in memory.
    fn stage(&self, _shared: &Self::Shared, _slice: Self::Slice) -> Option<(Vec<u8>, u64)> {
        None
    }

    /// Map from staged bytes inside a pilot Compute-Unit (required when
    /// [`stage`](Self::stage) returns `Some`).
    fn map_staged(&self, _slice: Self::Slice, _token: u64, _staged: &[u8]) -> Vec<Self::Item> {
        unimplemented!("map_staged is required when stage() returns Some")
    }

    /// MPI posture: the whole per-rank computation over this rank's
    /// slices, executed inside one measured `compute` block.
    fn rank_map(&self, shared: &Self::Shared, mine: &[Self::Slice]) -> Self::Wire;

    /// Bytes an MPI rank must read for its slices before mapping; `None`
    /// charges nothing. Defaults to the sum of per-slice
    /// [`io_bytes`](Self::io_bytes) (no charge when every slice declares
    /// none).
    fn rank_io_bytes(&self, mine: &[Self::Slice]) -> Option<u64> {
        let mut total = 0u64;
        let mut any = false;
        for &s in mine {
            if let Some(b) = self.io_bytes(s) {
                total += b;
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Consume the reduced results and the driver context into the final
    /// output.
    fn finalize(
        &self,
        gathered: Gathered<Self::Item, Self::Wire>,
        ctx: DriverCtx<'_>,
    ) -> Result<Self::Output, EngineError>;
}
