//! Per-frame analyses over a trajectory: the pmda-style
//! `AnalysisFromFunction` adapter plus RMSD and contact-count built-ins.
//!
//! [`AnalysisFromFunction`] lifts any `Fn(&Frame, &AtomSelection) -> T`
//! into a [`ParallelAnalysis`]: the trajectory is broadcast, frame ranges
//! become slices, the closure maps each frame, and the driver reassembles
//! the per-frame series in trajectory order regardless of which engine
//! (and which rank/task interleaving) executed it.

use super::{Gathered, ParallelAnalysis};
use crate::partition::plan_1d;
use crate::EngineKind;
use linalg::{rmsd_superposed, Frame, Vec3};
use mdsim::Trajectory;
use neighbors::{neighbor_pairs, SearchStrategy};
use netsim::{Cluster, SimReport};
use std::marker::PhantomData;
use std::sync::Arc;
use taskframe::{EngineError, Payload};

/// Which atoms of each frame an analysis reads (MDAnalysis'
/// `select_atoms`, reduced to the shapes the synthetic trajectories
/// need).
#[derive(Clone, Debug)]
pub enum AtomSelection {
    /// Every atom.
    All,
    /// Every `k`-th atom (k ≥ 1).
    Stride(usize),
    /// An explicit index list (shared, so selections clone cheaply into
    /// task closures).
    Indices(Arc<Vec<u32>>),
}

impl AtomSelection {
    /// Materialize the selected coordinates of one frame.
    pub fn gather(&self, frame: &Frame) -> Vec<Vec3> {
        let pos = frame.positions();
        match self {
            AtomSelection::All => pos.to_vec(),
            AtomSelection::Stride(k) => pos.iter().copied().step_by((*k).max(1)).collect(),
            AtomSelection::Indices(idx) => idx.iter().map(|&i| pos[i as usize]).collect(),
        }
    }
}

/// The per-frame series a frame-mapped analysis produces, in frame order.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameSeries<T> {
    pub values: Vec<T>,
    pub report: SimReport,
}

/// A [`ParallelAnalysis`] built from a per-frame closure (pmda's
/// `AnalysisFromFunction`): `f(frame, selection)` is evaluated for every
/// frame, on whichever engine [`crate::run::RunConfig`] selects, and the
/// results come back as a [`FrameSeries`] in frame order.
pub struct AnalysisFromFunction<T, F> {
    name: &'static str,
    traj: Arc<Trajectory>,
    select: AtomSelection,
    slices: usize,
    cost: super::AnalysisCost,
    f: F,
    _result: PhantomData<fn() -> T>,
}

impl<T, F> AnalysisFromFunction<T, F>
where
    T: Payload + Clone + Send + Sync + 'static,
    F: Fn(&Frame, &AtomSelection) -> T + Send + Sync + 'static,
{
    /// Build the analysis: `slices` frame ranges over `traj`, each frame
    /// reduced by `f` under `select`.
    pub fn new(
        name: &'static str,
        traj: Arc<Trajectory>,
        select: AtomSelection,
        slices: usize,
        f: F,
    ) -> Self {
        assert!(
            !traj.frames.is_empty(),
            "cannot analyse an empty trajectory"
        );
        AnalysisFromFunction {
            name,
            traj,
            select,
            slices: slices.max(1),
            cost: super::AnalysisCost::DEFAULT,
            f,
            _result: PhantomData,
        }
    }

    /// Override the declared cost model (per-frame virtual cost, staging
    /// expansion) for this analysis.
    pub fn with_cost(mut self, cost: super::AnalysisCost) -> Self {
        self.cost = cost;
        self
    }
}

impl<T, F> ParallelAnalysis for AnalysisFromFunction<T, F>
where
    T: Payload + Clone + Send + Sync + 'static,
    F: Fn(&Frame, &AtomSelection) -> T + Send + Sync + 'static,
{
    type Shared = Trajectory;
    type Slice = (u32, u32);
    type Item = (u32, T);
    type Wire = Vec<(u32, T)>;
    type Output = FrameSeries<T>;

    fn name(&self) -> &'static str {
        self.name
    }

    fn shared(&self) -> Arc<Trajectory> {
        Arc::clone(&self.traj)
    }

    fn slices(&self, _engine: EngineKind, _cluster: &Cluster) -> Vec<(u32, u32)> {
        plan_1d(self.traj.n_frames(), self.slices)
    }

    fn broadcast(&self) -> bool {
        // pmda's posture: the universe ships to the workers once.
        true
    }

    fn map_phase(&self, _engine: EngineKind) -> &'static str {
        "frame-map"
    }

    fn cost(&self) -> super::AnalysisCost {
        self.cost
    }

    fn slice_cost_s(&self, slice: (u32, u32)) -> f64 {
        // The declared per-frame cost model: frame analyses occupy
        // virtual time proportional to the frames they touch, so fault
        // plans and schedulers see realistic task durations even when
        // the host closure is trivially cheap.
        (slice.1 - slice.0) as f64 * self.cost().stream_frame_cost_s
    }

    fn map(&self, shared: &Trajectory, slice: (u32, u32)) -> Vec<(u32, T)> {
        (slice.0..slice.1)
            .map(|i| (i, (self.f)(&shared.frames[i as usize], &self.select)))
            .collect()
    }

    fn rank_map(&self, shared: &Trajectory, mine: &[(u32, u32)]) -> Vec<(u32, T)> {
        mine.iter().flat_map(|&s| self.map(shared, s)).collect()
    }

    fn finalize(
        &self,
        gathered: Gathered<(u32, T), Vec<(u32, T)>>,
        ctx: super::DriverCtx<'_>,
    ) -> Result<FrameSeries<T>, EngineError> {
        let mut pairs = match gathered {
            Gathered::Items(items) => items,
            Gathered::Ranks(wires) => wires.into_iter().flatten().collect(),
            Gathered::Merged(_) => unreachable!("frame analyses are gather-shaped"),
        };
        // MPI's round-robin rank order interleaves slices; restore frame
        // order before handing the series back.
        pairs.sort_by_key(|&(i, _)| i);
        Ok(FrameSeries {
            values: pairs.into_iter().map(|(_, v)| v).collect(),
            report: ctx.finish(),
        })
    }
}

/// Per-frame RMSD to a reference frame after optimal superposition
/// (MDAnalysis `rms.RMSD` / pmda's `RMSD`), over the selected atoms.
pub fn rmsd_analysis(
    traj: Arc<Trajectory>,
    select: AtomSelection,
    reference: usize,
    slices: usize,
) -> AnalysisFromFunction<f64, impl Fn(&Frame, &AtomSelection) -> f64 + Send + Sync + 'static> {
    let ref_frame = Frame::new(select.gather(&traj.frames[reference]));
    AnalysisFromFunction::new("rmsd", traj, select, slices, move |frame, sel| {
        rmsd_superposed(&Frame::new(sel.gather(frame)), &ref_frame)
    })
}

/// Per-frame contact count: pairs of selected atoms within `cutoff`,
/// found with the cell-list search.
pub fn contacts_analysis(
    traj: Arc<Trajectory>,
    select: AtomSelection,
    cutoff: f32,
    slices: usize,
) -> AnalysisFromFunction<u64, impl Fn(&Frame, &AtomSelection) -> u64 + Send + Sync + 'static> {
    AnalysisFromFunction::new("contacts", traj, select, slices, move |frame, sel| {
        let pts = sel.gather(frame);
        neighbor_pairs(&pts, cutoff, SearchStrategy::CellList).len() as u64
    })
}
