//! The four engine executors behind
//! [`RunConfig::run_analysis`](crate::run::RunConfig::run_analysis).
//!
//! Each runner reproduces its engine's established driver posture — the
//! phase-label ordering, I/O charges, broadcast sequencing and reduce
//! shape of the bespoke Leaflet-Finder/PSA drivers — so an analysis
//! expressed through [`ParallelAnalysis`] is byte-identical to a
//! hand-written driver (proven for LF and PSA in `tests/api_surface.rs`).

use super::{DriverCtx, Gathered, MpiClocks, ParallelAnalysis, ReduceShape};
use crate::EngineKind;
use dasklet::{DaskClient, Delayed};
use netsim::Cluster;
use pilot::{Session, UnitDescription};
use sparklet::{Rdd, SparkContext};
use std::sync::Arc;
use taskframe::{EngineError, TaskCtx};

/// Spark posture: one RDD partition per slice; `Gather` collects, `Tree`
/// runs the engine-side `treeReduce`.
pub(crate) fn run_spark<A: ParallelAnalysis + 'static>(
    sc: &SparkContext,
    a: &Arc<A>,
) -> Result<A::Output, EngineError> {
    a.check(EngineKind::Spark, sc.cluster())?;
    let slices = a.slices(EngineKind::Spark, sc.cluster());
    let n_tasks = slices.len();
    let phase = a.map_phase(EngineKind::Spark);
    let net = sc.cluster().profile.network;
    let one = a.reduce_shape() == ReduceShape::Tree;

    // Map closures are 'static (Spark serializes them to executors), so
    // the analysis and its shared input travel as Arc clones — or through
    // the broadcast variable when the analysis asks for it.
    let rdd: Rdd<A::Item> = if a.broadcast() {
        sc.set_phase("broadcast");
        let bc = sc.broadcast((*a.shared()).clone())?;
        let task = Arc::clone(a);
        Rdd::from_partitions(sc.clone(), n_tasks, move |p, ctx: &TaskCtx| {
            let s = slices[p];
            if let Some(bytes) = task.io_bytes(s) {
                ctx.charge(net.transfer_time(bytes, false));
            }
            let cost = task.slice_cost_s(s);
            if cost > 0.0 {
                ctx.charge(cost);
            }
            if one {
                vec![task.map_one(bc.value(), s)]
            } else {
                task.map(bc.value(), s)
            }
        })
    } else {
        let task = Arc::clone(a);
        let shared = a.shared();
        Rdd::from_partitions(sc.clone(), n_tasks, move |p, ctx: &TaskCtx| {
            let s = slices[p];
            if let Some(bytes) = task.io_bytes(s) {
                ctx.charge(net.transfer_time(bytes, false));
            }
            let cost = task.slice_cost_s(s);
            if cost > 0.0 {
                ctx.charge(cost);
            }
            if one {
                vec![task.map_one(&shared, s)]
            } else {
                task.map(&shared, s)
            }
        })
    };

    match a.reduce_shape() {
        ReduceShape::Gather => {
            sc.set_phase(phase);
            let items = if a.bracket_map_phase() {
                let t0 = sc.now();
                let items = rdd.try_collect()?;
                let t1 = sc.now();
                sc.note_phase(phase, t0, t1);
                items
            } else {
                rdd.try_collect()?
            };
            a.finalize(Gathered::Items(items), DriverCtx::spark(sc, n_tasks))
        }
        ReduceShape::Tree => {
            sc.set_phase(phase);
            let t0 = sc.now();
            let merged = rdd.try_reduce(|x, y| a.combine(x, y))?;
            let t1 = sc.now();
            sc.note_phase(phase, t0, t1);
            a.finalize(Gathered::Merged(merged), DriverCtx::spark(sc, n_tasks))
        }
    }
}

/// Dask posture: one delayed task per slice; `Gather` gathers them,
/// `Tree` reduces through a binary combine ladder.
pub(crate) fn run_dask<A: ParallelAnalysis + 'static>(
    client: &DaskClient,
    a: &Arc<A>,
) -> Result<A::Output, EngineError> {
    a.check(EngineKind::Dask, client.cluster())?;
    let slices = a.slices(EngineKind::Dask, client.cluster());
    let n_tasks = slices.len();
    let phase = a.map_phase(EngineKind::Dask);
    let net = client.cluster().profile.network;

    match a.reduce_shape() {
        ReduceShape::Gather => {
            let tasks: Vec<Delayed<Vec<A::Item>>> = if a.broadcast() {
                client.set_phase("broadcast");
                let bc = client.broadcast((*a.shared()).clone())?;
                client.set_phase(phase);
                let fs: Vec<_> = slices
                    .iter()
                    .map(|&s| {
                        let task = Arc::clone(a);
                        move |shared: &A::Shared, ctx: &TaskCtx| {
                            if let Some(bytes) = task.io_bytes(s) {
                                ctx.charge(net.transfer_time(bytes, false));
                            }
                            let cost = task.slice_cost_s(s);
                            if cost > 0.0 {
                                ctx.charge(cost);
                            }
                            task.map(shared, s)
                        }
                    })
                    .collect();
                client.delayed_after_many(&bc, fs)
            } else {
                client.set_phase(phase);
                let fs: Vec<_> = slices
                    .iter()
                    .map(|&s| {
                        let task = Arc::clone(a);
                        let shared = a.shared();
                        move |ctx: &TaskCtx| {
                            if let Some(bytes) = task.io_bytes(s) {
                                ctx.charge(net.transfer_time(bytes, false));
                            }
                            let cost = task.slice_cost_s(s);
                            if cost > 0.0 {
                                ctx.charge(cost);
                            }
                            task.map(&shared, s)
                        }
                    })
                    .collect();
                client.delayed_many(fs)
            };
            let parts = if a.bracket_map_phase() {
                let t0 = client.now();
                let (parts, t1) = client.try_gather(&tasks)?;
                client.note_phase(phase, t0, t1);
                parts
            } else {
                let (parts, _t) = client.try_gather(&tasks)?;
                parts
            };
            let items: Vec<A::Item> = parts.into_iter().flatten().collect();
            a.finalize(Gathered::Items(items), DriverCtx::dask(client, n_tasks))
        }
        ReduceShape::Tree => {
            client.set_phase(phase);
            let t0 = client.now();
            let fs: Vec<_> = slices
                .iter()
                .map(|&s| {
                    let task = Arc::clone(a);
                    let shared = a.shared();
                    move |ctx: &TaskCtx| {
                        if let Some(bytes) = task.io_bytes(s) {
                            ctx.charge(net.transfer_time(bytes, false));
                        }
                        let cost = task.slice_cost_s(s);
                        if cost > 0.0 {
                            ctx.charge(cost);
                        }
                        task.map_one(&shared, s)
                    }
                })
                .collect();
            let mut level: Vec<Delayed<A::Item>> = client.delayed_many(fs);
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut it = level.into_iter();
                while let Some(x) = it.next() {
                    match it.next() {
                        Some(y) => next.push(client.combine(&[&x, &y], |vals, _| {
                            a.combine(vals[0].clone(), vals[1].clone())
                        })),
                        None => next.push(x),
                    }
                }
                level = next;
            }
            let merged = match level.into_iter().next() {
                Some(d) => {
                    let (vals, t1) = client.try_gather(std::slice::from_ref(&d))?;
                    client.note_phase(phase, t0, t1);
                    vals.into_iter().next()
                }
                None => None,
            };
            a.finalize(Gathered::Merged(merged), DriverCtx::dask(client, n_tasks))
        }
    }
}

/// RADICAL-Pilot posture: one Compute-Unit per slice. Analyses that
/// implement [`ParallelAnalysis::stage`] get their inputs genuinely
/// serialized through the staging filesystem; the rest run compute-only
/// units over the in-memory shared input.
pub(crate) fn run_pilot<A: ParallelAnalysis + 'static>(
    session: &Session,
    a: &Arc<A>,
) -> Result<A::Output, EngineError> {
    a.check(EngineKind::RadicalPilot, session.cluster())?;
    let slices = a.slices(EngineKind::RadicalPilot, session.cluster());
    let n_tasks = slices.len();
    let shared = a.shared();
    let factor = a.cost().staging_working_set_factor;
    let one = a.reduce_shape() == ReduceShape::Tree;

    let units: Vec<UnitDescription<Vec<A::Item>>> = slices
        .iter()
        .map(|&s| match a.stage(&shared, s) {
            Some((input, token)) => {
                // Declared peak footprint: the staged bytes times the
                // analysis's declared expansion (staged copy, decoded
                // copy, working buffers). Admission control schedules
                // against it.
                let working_set = input.len() as u64 * factor;
                let task = Arc::clone(a);
                UnitDescription::new(input, move |ctx: &TaskCtx, staged: &[u8]| {
                    let cost = task.slice_cost_s(s);
                    if cost > 0.0 {
                        ctx.charge(cost);
                    }
                    task.map_staged(s, token, staged)
                })
                .with_working_set(working_set)
            }
            None => {
                let task = Arc::clone(a);
                let sh = Arc::clone(&shared);
                UnitDescription::compute_only(move |ctx: &TaskCtx, _staged: &[u8]| {
                    let cost = task.slice_cost_s(s);
                    if cost > 0.0 {
                        ctx.charge(cost);
                    }
                    if one {
                        vec![task.map_one(&sh, s)]
                    } else {
                        task.map(&sh, s)
                    }
                })
            }
        })
        .collect();
    let out = session.submit_and_wait(units)?;
    let items: Vec<A::Item> = out.results.into_iter().flatten().collect();
    let ctx = DriverCtx::owned(
        EngineKind::RadicalPilot,
        n_tasks,
        None,
        out.report,
        session.cluster().clone(),
    );
    // The pilot has no engine-side reduce; tree-shaped analyses fold at
    // the client (associativity makes the left fold equivalent).
    if one {
        let merged = items.into_iter().reduce(|x, y| a.combine(x, y));
        a.finalize(Gathered::Merged(merged), ctx)
    } else {
        a.finalize(Gathered::Items(items), ctx)
    }
}

/// MPI posture: slices round-robin over ranks, per-rank
/// [`ParallelAnalysis::rank_map`] inside a measured compute block, gather
/// to rank 0, driver-side reduce in [`ParallelAnalysis::finalize`].
pub(crate) fn run_mpi<A: ParallelAnalysis + 'static>(
    cluster: &Cluster,
    world: usize,
    policy: &netsim::RetryPolicy,
    restart_from_barrier: bool,
    a: &Arc<A>,
) -> Result<A::Output, EngineError> {
    a.check(EngineKind::Mpi, cluster)?;
    let slices = a.slices(EngineKind::Mpi, cluster);
    let n_tasks = slices.len();
    let phase = a.map_phase(EngineKind::Mpi);
    let net = cluster.profile.network;
    let shared = a.shared();
    let broadcast = a.broadcast();

    let out = mpilike::try_run_with_policy(
        cluster.clone(),
        world,
        policy,
        restart_from_barrier,
        |comm| {
            let t_start = comm.clock();
            let received;
            let local: &A::Shared = if broadcast {
                comm.set_phase("broadcast");
                let v = (comm.rank() == 0).then(|| (*shared).clone());
                // A replica too big for the fixed per-rank buffers
                // surfaces typed on every rank instead of tearing the
                // job down.
                received = match comm.try_bcast(0, v) {
                    Ok(v) => v,
                    Err(e) => return Err(e),
                };
                &received
            } else {
                &shared // pre-partitioned: ranks read their slices as I/O
            };
            let t_bcast = comm.clock();
            comm.set_phase(phase);
            let mine: Vec<A::Slice> = slices
                .iter()
                .copied()
                .skip(comm.rank())
                .step_by(comm.world())
                .collect();
            if let Some(bytes) = a.rank_io_bytes(&mine) {
                comm.charge(net.transfer_time(bytes, false));
            }
            let cost: f64 = mine.iter().map(|&s| a.slice_cost_s(s)).sum();
            if cost > 0.0 {
                comm.charge(cost);
            }
            let wire = comm.compute(|| a.rank_map(local, &mine));
            let t_map = comm.clock();
            comm.set_phase("gather");
            let gathered = comm.try_gather(0, wire)?;
            Ok((gathered, t_start, t_bcast, t_map))
        },
    )?;

    // Rank 0 reduces; rank order is stable so the result is
    // deterministic. Memory exhaustion inside a collective poisons every
    // rank with the same typed error; surface the first one.
    let mut wires: Vec<A::Wire> = Vec::new();
    let mut start_min = f64::INFINITY;
    let mut bcast_max = 0.0f64;
    let mut map_max = 0.0f64;
    for rank_result in &out.results {
        let (gathered, t_start, t_bcast, t_map) = match rank_result {
            Ok(r) => r,
            Err(e) => return Err(e.clone()),
        };
        start_min = start_min.min(*t_start);
        bcast_max = bcast_max.max(*t_bcast);
        map_max = map_max.max(*t_map);
        if let Some(rank_outs) = gathered {
            wires.extend(rank_outs.iter().cloned());
        }
    }
    let clocks = MpiClocks {
        start_min,
        bcast_max,
        map_max,
    };
    let ctx = DriverCtx::owned(
        EngineKind::Mpi,
        n_tasks,
        Some(clocks),
        out.report,
        cluster.clone(),
    );
    a.finalize(Gathered::Ranks(wires), ctx)
}
