//! Byte framing for pilot staging: trajectory groups and coordinate
//! slices are *really* serialized, written to the staging filesystem, and
//! decoded inside the Compute-Unit — RADICAL-Pilot's only data path.

use bytes::{Buf, BufMut};
use linalg::Vec3;
use mdsim::Trajectory;

/// Encode a list of trajectories: `u32` count, then per trajectory an
/// `u32` length prefix and its MDT bytes.
pub fn encode_trajectories(trajs: &[&Trajectory]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u32_le(trajs.len() as u32);
    for t in trajs {
        let body = mdio::mdt::encode_mdt(&t.frames).expect("uniform trajectory encodes");
        buf.put_u32_le(body.len() as u32);
        buf.put_slice(&body);
    }
    buf
}

/// Decode [`encode_trajectories`] output.
///
/// # Panics
/// Panics on malformed input (staging is engine-internal; corruption is a
/// bug, not an input error).
pub fn decode_trajectories(mut data: &[u8]) -> Vec<Trajectory> {
    let n = data.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = data.get_u32_le() as usize;
        let (body, rest) = data.split_at(len);
        out.push(Trajectory {
            frames: mdio::mdt::decode_mdt(body).expect("valid MDT"),
        });
        data = rest;
    }
    assert!(data.is_empty(), "trailing bytes after trajectories");
    out
}

/// Encode a coordinate slice: `u32` count then 12 bytes per point.
pub fn encode_points(points: &[Vec3]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + points.len() * 12);
    buf.put_u32_le(points.len() as u32);
    for p in points {
        buf.put_f32_le(p.x);
        buf.put_f32_le(p.y);
        buf.put_f32_le(p.z);
    }
    buf
}

/// Decode [`encode_points`] output, returning any remaining bytes.
pub fn decode_points(data: &[u8]) -> (Vec<Vec3>, &[u8]) {
    let mut cur = data;
    let n = cur.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let x = cur.get_f32_le();
        let y = cur.get_f32_le();
        let z = cur.get_f32_le();
        out.push(Vec3::new(x, y, z));
    }
    (out, cur)
}

/// Encode two coordinate slices back to back (a 2-D block's row and
/// column atoms).
pub fn encode_point_pair(rows: &[Vec3], cols: &[Vec3]) -> Vec<u8> {
    let mut buf = encode_points(rows);
    buf.extend_from_slice(&encode_points(cols));
    buf
}

/// Decode [`encode_point_pair`] output.
pub fn decode_point_pair(data: &[u8]) -> (Vec<Vec3>, Vec<Vec3>) {
    let (rows, rest) = decode_points(data);
    let (cols, rest) = decode_points(rest);
    assert!(rest.is_empty(), "trailing bytes after point pair");
    (rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::ChainSpec;

    #[test]
    fn trajectories_roundtrip() {
        let spec = ChainSpec {
            n_atoms: 9,
            n_frames: 4,
            stride: 1,
            ..ChainSpec::default()
        };
        let e = mdsim::chain::generate_ensemble(&spec, 3, 11);
        let refs: Vec<&Trajectory> = e.iter().collect();
        let bytes = encode_trajectories(&refs);
        let back = decode_trajectories(&bytes);
        assert_eq!(back, e);
    }

    #[test]
    fn empty_trajectory_list_roundtrips() {
        let bytes = encode_trajectories(&[]);
        assert!(decode_trajectories(&bytes).is_empty());
    }

    #[test]
    fn points_roundtrip() {
        let pts = vec![Vec3::new(1.0, -2.0, 3.5), Vec3::ZERO];
        let bytes = encode_points(&pts);
        let (back, rest) = decode_points(&bytes);
        assert_eq!(back, pts);
        assert!(rest.is_empty());
    }

    #[test]
    fn point_pair_roundtrip() {
        let rows = vec![Vec3::new(1.0, 0.0, 0.0)];
        let cols = vec![Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.0, 0.0, 3.0)];
        let bytes = encode_point_pair(&rows, &cols);
        let (r, c) = decode_point_pair(&bytes);
        assert_eq!(r, rows);
        assert_eq!(c, cols);
    }
}
