//! Clustering of trajectory ensembles from a PSA distance matrix.
//!
//! "The basic idea is to compute pair-wise distances … between members of
//! an ensemble of trajectories and **cluster the trajectories based on
//! their distance matrix**" (§2.1.1). This module completes that pipeline:
//! hierarchical agglomerative clustering (single / complete / average
//! linkage, the standard choices for PSA dendrograms) over a
//! [`DistanceMatrix`], with cuts by cluster count or distance threshold.

use linalg::DistanceMatrix;

/// Linkage criterion for merging clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Unweighted average of pairwise distances (UPGMA).
    Average,
}

/// One merge step of the dendrogram: clusters `a` and `b` (ids) join at
/// `height` into a new cluster with id `n + step`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Merge {
    pub a: usize,
    pub b: usize,
    pub height: f64,
}

/// The full dendrogram of `n` leaves (`n - 1` merges, ascending heights
/// for monotone linkages).
#[derive(Clone, Debug)]
pub struct Dendrogram {
    pub n_leaves: usize,
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cut into exactly `k` clusters (1 ≤ k ≤ n). Returns, per leaf, a
    /// cluster label in `0..k` (labels ordered by smallest member id).
    pub fn cut_into(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n_leaves, "k={k} out of range");
        self.labels_after(self.n_leaves - k)
    }

    /// Cut at a distance threshold: clusters are the components formed by
    /// merges with `height <= threshold`.
    pub fn cut_at(&self, threshold: f64) -> Vec<usize> {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.height <= threshold)
            .count();
        self.labels_after(applied)
    }

    /// Labels after applying the first `applied` merges.
    fn labels_after(&self, applied: usize) -> Vec<usize> {
        let n = self.n_leaves;
        let mut uf = graphops::UnionFind::new(n);
        // Track each dendrogram node's representative leaf; leaves are
        // nodes 0..n, the i-th merge creates node n+i.
        let mut rep: Vec<u32> = (0..n as u32).collect();
        for m in &self.merges[..applied] {
            let ra = rep[m.a];
            let rb = rep[m.b];
            uf.union(ra, rb);
            rep.push(uf.find(ra));
        }
        let labels = uf.canonical_labels();
        // Renumber canonical labels to 0..k by first appearance order of
        // the smallest member.
        let mut order: Vec<u32> = labels.clone();
        order.sort_unstable();
        order.dedup();
        labels
            .iter()
            .map(|l| order.binary_search(l).expect("label present"))
            .collect()
    }
}

/// Agglomerative clustering over a symmetric distance matrix.
///
/// O(n³) Lance–Williams implementation — ensembles are O(100) members, so
/// this is instantaneous next to the O(n²) Hausdorff computation that
/// produced the matrix.
///
/// # Panics
/// Panics if the matrix is not square or is empty.
pub fn hierarchical(distances: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let n = distances.rows();
    assert_eq!(n, distances.cols(), "distance matrix must be square");
    assert!(n >= 1, "cannot cluster an empty ensemble");
    // Working copy of inter-cluster distances; cluster ids 0..n are
    // leaves, n..2n-1 are merge products. `active` maps live cluster id →
    // its row in `d`; sizes for average linkage.
    let mut d: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| distances.get(i, j)).collect())
        .collect();
    let mut active: Vec<usize> = (0..n).collect(); // cluster id per row
    let mut alive: Vec<bool> = vec![true; n];
    let mut size: Vec<f64> = vec![1.0; n];
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    for step in 0..n.saturating_sub(1) {
        // Find the closest live pair.
        let (mut bi, mut bj, mut best) = (0usize, 0usize, f64::INFINITY);
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in i + 1..n {
                if alive[j] && d[i][j] < best {
                    best = d[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        merges.push(Merge {
            a: active[bi],
            b: active[bj],
            height: best,
        });
        // Lance–Williams update into row bi; kill row bj.
        for k in 0..n {
            if !alive[k] || k == bi || k == bj {
                continue;
            }
            // Only the upper triangle of `d` is kept current.
            let dik = if bi < k { d[bi][k] } else { d[k][bi] };
            let djk = if bj < k { d[bj][k] } else { d[k][bj] };
            let merged = match linkage {
                Linkage::Single => dik.min(djk),
                Linkage::Complete => dik.max(djk),
                Linkage::Average => (size[bi] * dik + size[bj] * djk) / (size[bi] + size[bj]),
            };
            if bi < k {
                d[bi][k] = merged;
            } else {
                d[k][bi] = merged;
            }
        }
        size[bi] += size[bj];
        alive[bj] = false;
        active[bi] = n + step;
    }
    Dendrogram {
        n_leaves: n,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D points as a distance matrix.
    fn matrix_of(points: &[f64]) -> DistanceMatrix {
        let n = points.len();
        let mut m = DistanceMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, (points[i] - points[j]).abs());
            }
        }
        m
    }

    #[test]
    fn two_obvious_groups() {
        // {0, 1, 2} and {100, 101}.
        let m = matrix_of(&[0.0, 1.0, 2.0, 100.0, 101.0]);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dend = hierarchical(&m, linkage);
            let labels = dend.cut_into(2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_ne!(labels[0], labels[3], "{linkage:?}");
        }
    }

    #[test]
    fn cut_into_n_gives_singletons() {
        let m = matrix_of(&[0.0, 5.0, 9.0]);
        let dend = hierarchical(&m, Linkage::Average);
        assert_eq!(dend.cut_into(3), vec![0, 1, 2]);
        assert_eq!(dend.cut_into(1), vec![0, 0, 0]);
    }

    #[test]
    fn cut_at_threshold() {
        let m = matrix_of(&[0.0, 1.0, 10.0, 11.0]);
        let dend = hierarchical(&m, Linkage::Single);
        // Threshold 2: the two pairs merge, the groups stay apart.
        let labels = dend.cut_at(2.0);
        assert_eq!(labels, vec![0, 0, 1, 1]);
        // Threshold 100: everything merges.
        assert_eq!(dend.cut_at(100.0), vec![0, 0, 0, 0]);
        // Threshold 0.5: nothing merges.
        assert_eq!(dend.cut_at(0.5), vec![0, 1, 2, 3]);
    }

    #[test]
    fn heights_monotone_for_monotone_linkages() {
        let m = matrix_of(&[0.0, 2.0, 3.0, 7.0, 20.0, 21.5]);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dend = hierarchical(&m, linkage);
            for w in dend.merges.windows(2) {
                assert!(
                    w[1].height >= w[0].height - 1e-12,
                    "{linkage:?}: heights must not decrease"
                );
            }
        }
    }

    #[test]
    fn single_leaf() {
        let dend = hierarchical(&matrix_of(&[0.0]), Linkage::Average);
        assert!(dend.merges.is_empty());
        assert_eq!(dend.cut_into(1), vec![0]);
    }

    #[test]
    fn clusters_real_trajectory_families() {
        // Two families exploring different regions of space: Hausdorff
        // distances across families dwarf the within-family spread.
        use linalg::Vec3;
        use mdsim::ChainSpec;
        let spec = ChainSpec {
            n_atoms: 12,
            n_frames: 6,
            stride: 1,
            ..ChainSpec::default()
        };
        let mut ensemble = mdsim::chain::generate_ensemble(&spec, 3, 1);
        let mut far = mdsim::chain::generate_ensemble(&spec, 3, 100);
        for t in &mut far {
            for f in &mut t.frames {
                f.translate(Vec3::new(500.0, 0.0, 0.0));
            }
        }
        ensemble.extend(far);
        let distances = crate::psa::psa_serial(&ensemble);
        let dend = hierarchical(&distances, Linkage::Average);
        let labels = dend.cut_into(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }
}
