//! The unified run API: pick an engine, configure the run once, execute.
//!
//! [`RunConfig`] folds everything the old free-function zoo spread over
//! positional arguments and `*_with_policy` variants into one builder:
//! engine choice ([`taskframe::Engine`]), Leaflet-Finder approach,
//! [`RetryPolicy`], MPI checkpoint/restart posture, Spark speculative
//! execution, tracing, MPI world size, per-node memory budget and the
//! host-parallelism degree ([`netsim::Threads`]). [`run_lf`] and
//! [`run_psa`] construct the engine handle internally, apply the
//! configuration, and dispatch — the legacy free functions remain as
//! `#[deprecated]` wrappers and produce bit-identical results (see
//! `tests/api_surface.rs`).
//!
//! ```
//! use mdtask_core::run::{run_lf, RunConfig};
//! use mdtask_core::{LfApproach, LfConfig};
//! use netsim::{laptop, Cluster};
//! use std::sync::Arc;
//! use taskframe::Engine;
//!
//! let b = mdsim::bilayer::generate(
//!     &mdsim::BilayerSpec { n_atoms: 200, ..Default::default() }, 7);
//! let cfg = RunConfig::new(Cluster::new(laptop(), 2), Engine::Spark)
//!     .approach(LfApproach::TreeSearch)
//!     .trace(true);
//! let lf = LfConfig { cutoff: b.suggested_cutoff, partitions: 8,
//!                     paper_atoms: 200, charge_io: true };
//! let out = run_lf(&cfg, Arc::new(b.positions), &lf).unwrap();
//! assert_eq!(out.n_components, 2);
//! assert!(out.report.trace.is_some());
//! ```

use crate::analysis::lf::{LfEdges, LfPartials};
use crate::analysis::psa_impl::PsaAnalysis;
use crate::analysis::{
    contacts_analysis, engines, rmsd_analysis, AnalysisCost, AtomSelection, ParallelAnalysis,
};
use crate::leaflet::{LfApproach, LfConfig, LfOutput};
use crate::psa::{PsaConfig, PsaOutput};
use dasklet::DaskClient;
use linalg::Vec3;
use mdio::StreamSource;
use mdsim::Trajectory;
use netsim::stream::{LateDisposition, StreamJob, StreamRun, WindowSpec};
use netsim::{parallel, Cluster, RetryPolicy, Threads};
use pilot::Session;
use sparklet::SparkContext;
use std::sync::Arc;
use taskframe::{Engine, EngineError};

/// Result of a configured Leaflet-Finder run.
pub type LfRun = LfOutput;
/// Result of a configured PSA run.
pub type PsaRun = PsaOutput;

/// Everything a run needs besides the data and the algorithm parameters.
///
/// Defaults: [`LfApproach::Task2D`], no retry policy (each engine's
/// native single-attempt posture), MPI restart-from-barrier on, no
/// speculation, no tracing, one MPI rank per simulated core, and the
/// process-wide host-parallelism degree.
#[derive(Clone, Debug)]
pub struct RunConfig {
    cluster: Cluster,
    engine: Engine,
    approach: LfApproach,
    policy: Option<RetryPolicy>,
    checkpoint_restart: bool,
    speculation: Option<f64>,
    trace: bool,
    trace_stride: u32,
    mpi_world: usize,
    threads: Option<Threads>,
    streaming: Option<StreamTuning>,
}

/// Streaming knobs attached to a [`RunConfig`] by [`RunConfig::streaming`]:
/// the event-time window layout plus the declared per-frame cost model and
/// per-engine buffering sizes.
#[derive(Clone, Debug)]
pub struct StreamTuning {
    pub window_s: f64,
    pub slide_s: f64,
    pub lateness_s: f64,
    pub late: LateDisposition,
    pub frame_cost_s: f64,
    pub state_bytes_per_frame: u64,
    /// Frames per micro-batch (Spark's posture).
    pub micro_batch: usize,
    /// Ring-buffer slots (MPI's posture).
    pub ring: usize,
}

impl RunConfig {
    /// A run on `engine` over `cluster`, with the defaults above.
    pub fn new(cluster: Cluster, engine: Engine) -> Self {
        let mpi_world = cluster.total_cores();
        RunConfig {
            cluster,
            engine,
            approach: LfApproach::Task2D,
            policy: None,
            checkpoint_restart: true,
            speculation: None,
            trace: false,
            trace_stride: 1,
            mpi_world,
            threads: None,
            streaming: None,
        }
    }

    /// Switch the run into streaming mode: event-time windows of
    /// `window_s`, one opening every `slide_s` (equal values tumble), with
    /// `lateness_s` of allowed lateness before the watermark closes a
    /// window. Late frames default to the side channel
    /// ([`Self::late_disposition`]); per-frame cost and window-state
    /// footprint default to 10 ms / 1 MiB ([`Self::stream_costs`]).
    pub fn streaming(mut self, window_s: f64, slide_s: f64, lateness_s: f64) -> Self {
        // Validates the layout eagerly so misconfiguration fails at build
        // time, not mid-stream.
        let _ = WindowSpec::sliding(window_s, slide_s, lateness_s);
        let cost = AnalysisCost::DEFAULT;
        self.streaming = Some(StreamTuning {
            window_s,
            slide_s,
            lateness_s,
            late: LateDisposition::SideChannel,
            frame_cost_s: cost.stream_frame_cost_s,
            state_bytes_per_frame: cost.stream_state_bytes_per_frame,
            micro_batch: cost.stream_micro_batch,
            ring: cost.stream_ring,
        });
        self
    }

    /// What happens to frames arriving behind the watermark. Requires
    /// [`Self::streaming`] first.
    pub fn late_disposition(mut self, late: LateDisposition) -> Self {
        self.tuning_mut().late = late;
        self
    }

    /// Declared virtual cost per streamed frame and resident window-state
    /// bytes per (frame, window). Requires [`Self::streaming`] first.
    pub fn stream_costs(mut self, frame_cost_s: f64, state_bytes_per_frame: u64) -> Self {
        let t = self.tuning_mut();
        t.frame_cost_s = frame_cost_s;
        t.state_bytes_per_frame = state_bytes_per_frame;
        self
    }

    /// Per-engine stream buffering: Spark's micro-batch size and MPI's
    /// ring-buffer slots (the other engines buffer nothing). Requires
    /// [`Self::streaming`] first.
    pub fn stream_buffering(mut self, micro_batch: usize, ring: usize) -> Self {
        let t = self.tuning_mut();
        t.micro_batch = micro_batch.max(1);
        t.ring = ring.max(1);
        self
    }

    /// The streaming knobs, if [`Self::streaming`] was called.
    pub fn streaming_ref(&self) -> Option<&StreamTuning> {
        self.streaming.as_ref()
    }

    fn tuning_mut(&mut self) -> &mut StreamTuning {
        self.streaming
            .as_mut()
            .expect("call .streaming(window, slide, lateness) first")
    }

    /// Leaflet-Finder architectural approach (Table 2). Ignored by PSA
    /// and by the pilot engine (which implements Approach 2 only).
    pub fn approach(mut self, approach: LfApproach) -> Self {
        self.approach = approach;
        self
    }

    /// Retry policy applied to the engine (task retries on Spark/Dask/
    /// Pilot; job restart attempts on MPI).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// MPI recovery posture: `true` (default) restarts from the last
    /// completed collective barrier, `false` from scratch. Only observable
    /// with a retry policy allowing more than one attempt; ignored by the
    /// task-parallel engines, which recover per task.
    pub fn checkpoint_restart(mut self, on: bool) -> Self {
        self.checkpoint_restart = on;
        self
    }

    /// Enable Spark speculative execution with the given stragglers
    /// threshold (> 1.0). Ignored by the other engines.
    pub fn speculation(mut self, threshold: f64) -> Self {
        self.speculation = Some(threshold);
        self
    }

    /// Record the event trace into `report.trace`.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Record a *sampled* event trace: only every `stride`-th task attempt
    /// is kept (network/memory events are always complete, so conservation
    /// oracles still hold). Implies [`Self::trace`]; a stride of 1 records
    /// everything. Use for paper-scale runs where a full trace would
    /// dominate memory. The stride is stamped on the trace
    /// ([`netsim::Trace::sample_stride`]) so consumers know counts are
    /// partial. Ignored by the MPI engine, whose traces are always small
    /// (ranks × collectives) and recorded in full.
    pub fn trace_sampled(mut self, stride: u32) -> Self {
        self.trace = true;
        self.trace_stride = stride.max(1);
        self
    }

    /// MPI world size (default: one rank per simulated core).
    pub fn mpi_world(mut self, world: usize) -> Self {
        self.mpi_world = world;
        self
    }

    /// Host-parallelism degree for the real compute closures. `None`
    /// (default) inherits the process-wide setting
    /// ([`netsim::parallel::set_default_threads`] / `MDTASK_THREADS`).
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Override the per-node memory budget (bytes) of the cluster profile.
    pub fn mem_budget(mut self, bytes: u64) -> Self {
        self.cluster.profile.mem_per_node = bytes;
        self
    }

    /// The cluster this run executes on.
    pub fn cluster_ref(&self) -> &Cluster {
        &self.cluster
    }

    /// The engine this run dispatches to.
    pub fn engine_kind(&self) -> Engine {
        self.engine
    }

    fn scoped<T>(&self, f: impl FnOnce() -> T) -> T {
        match self.threads {
            Some(t) => parallel::with_degree(t, f),
            None => f(),
        }
    }

    /// Execute any [`ParallelAnalysis`] on the configured engine — the
    /// generic entry point [`run_lf`] and [`run_psa`] are built on.
    ///
    /// The analysis runs with the engine's native posture (Spark
    /// map-partitions + `treeReduce`, Dask per-slice task graph + gather,
    /// Pilot one staged Compute-Unit per slice, MPI scatter +
    /// gather/reduce) and inherits everything this config carries: fault
    /// plans on the cluster, the [`RetryPolicy`], tracing, speculation,
    /// MPI world size and checkpoint posture, and the host-parallelism
    /// degree.
    pub fn run_analysis<A: ParallelAnalysis + 'static>(
        &self,
        analysis: A,
    ) -> Result<A::Output, EngineError> {
        let a = Arc::new(analysis);
        self.scoped(|| {
            a.prepare()?;
            match self.engine {
                Engine::Spark => engines::run_spark(&spark_handle(self), &a),
                Engine::Dask => engines::run_dask(&dask_handle(self), &a),
                Engine::Pilot => engines::run_pilot(&pilot_handle(self)?, &a),
                Engine::Mpi => engines::run_mpi(
                    &self.cluster,
                    self.mpi_world,
                    &mpi_policy(self),
                    self.checkpoint_restart,
                    &a,
                ),
            }
        })
    }
}

/// Run the Leaflet Finder as configured.
///
/// Since the generic-API redesign this is an instance of
/// [`RunConfig::run_analysis`]: approaches 1–2 dispatch the
/// edge-gathering analysis, 3–4 the partial-components analysis (the
/// pilot implements approach 2 only). `tests/api_surface.rs` proves the
/// outputs byte-identical to the legacy bespoke drivers.
pub fn run_lf(
    cfg: &RunConfig,
    positions: Arc<Vec<Vec3>>,
    lf: &LfConfig,
) -> Result<LfRun, EngineError> {
    if cfg.engine == Engine::Pilot {
        return cfg.run_analysis(LfEdges::new(positions, lf.clone(), LfApproach::Task2D));
    }
    match cfg.approach {
        LfApproach::Broadcast1D | LfApproach::Task2D => {
            cfg.run_analysis(LfEdges::new(positions, lf.clone(), cfg.approach))
        }
        LfApproach::ParallelCC | LfApproach::TreeSearch => {
            cfg.run_analysis(LfPartials::new(positions, lf.clone(), cfg.approach))
        }
    }
}

/// Run Path Similarity Analysis as configured — an instance of
/// [`RunConfig::run_analysis`] since the generic-API redesign.
pub fn run_psa(
    cfg: &RunConfig,
    ensemble: Arc<Vec<Trajectory>>,
    psa: &PsaConfig,
) -> Result<PsaRun, EngineError> {
    cfg.run_analysis(PsaAnalysis::new(ensemble, psa.clone()))
}

/// Per-frame leaflet analysis for streamed trajectories: the lipid
/// contact-pair count within `cutoff`, stride-sampled down to at most 128
/// atoms so a single frame stays cheap, folded into a deterministic
/// fingerprint. This is the real (host-executed) computation behind each
/// streamed frame; its *virtual* cost is declared by
/// [`StreamTuning::frame_cost_s`].
pub fn lf_frame_value(frame: &linalg::Frame, cutoff: f32) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let pos = frame.positions();
    let stride = pos.len().div_ceil(128).max(1);
    let sampled: Vec<Vec3> = pos.iter().copied().step_by(stride).collect();
    let c2 = cutoff * cutoff;
    let mut contacts = 0u64;
    let mut acc = 0u64;
    for i in 0..sampled.len() {
        for j in (i + 1)..sampled.len() {
            if sampled[i].dist2(sampled[j]) <= c2 {
                contacts += 1;
                acc = mix(acc ^ ((i as u64) << 32 | j as u64));
            }
        }
    }
    mix(acc ^ contacts)
}

/// Run the Leaflet Finder over a *streamed* trajectory as configured.
///
/// Frame `i` of `traj` is delivered on `source`'s schedule (stalls,
/// drops, delays, duplicates and all); each engine consumes it with its
/// own posture — Dask per-frame tasks, Spark micro-batches, Pilot one
/// unit per closing window, MPI ring-buffered collective steps — under
/// the watermark/backpressure/lineage semantics of
/// [`netsim::stream::run_stream`]. Window layout and cost model come from
/// [`RunConfig::streaming`] (defaults: tumbling windows of four frame
/// intervals with one interval of lateness when not set).
pub fn run_lf_stream(
    cfg: &RunConfig,
    traj: Arc<Trajectory>,
    lf: &LfConfig,
    source: &StreamSource,
) -> Result<StreamRun, EngineError> {
    assert!(!traj.frames.is_empty(), "cannot stream an empty trajectory");
    let cost = AnalysisCost::DEFAULT;
    let defaults = StreamTuning {
        window_s: source.interval_s * 4.0,
        slide_s: source.interval_s * 4.0,
        lateness_s: source.interval_s,
        late: LateDisposition::SideChannel,
        frame_cost_s: cost.stream_frame_cost_s,
        state_bytes_per_frame: cost.stream_state_bytes_per_frame,
        micro_batch: cost.stream_micro_batch,
        ring: cost.stream_ring,
    };
    let t = cfg.streaming.as_ref().unwrap_or(&defaults);
    let job = StreamJob::new(WindowSpec::sliding(t.window_s, t.slide_s, t.lateness_s))
        .late(t.late)
        .frame_cost(t.frame_cost_s)
        .state_bytes(t.state_bytes_per_frame);
    let schedule = source.schedule();
    let cutoff = lf.cutoff;
    let frames = &traj.frames;
    let mut fv = move |i: usize| lf_frame_value(&frames[i % frames.len()], cutoff);
    cfg.scoped(|| match cfg.engine {
        Engine::Spark => spark_handle(cfg).run_stream(&schedule, &job, t.micro_batch, &mut fv),
        Engine::Dask => dask_handle(cfg).run_stream(&schedule, &job, &mut fv),
        Engine::Pilot => pilot_handle(cfg)?.run_stream(&schedule, &job, &mut fv),
        Engine::Mpi => mpilike::run_stream_ring(
            cfg.cluster.clone(),
            t.ring,
            &schedule,
            &job,
            &mpi_policy(cfg),
            &mut fv,
        ),
    })
}

fn spark_handle(cfg: &RunConfig) -> SparkContext {
    let sc = SparkContext::new(cfg.cluster.clone());
    if let Some(p) = &cfg.policy {
        sc.set_retry_policy(*p);
    }
    if let Some(t) = cfg.speculation {
        sc.enable_speculation(t);
    }
    if cfg.trace {
        sc.enable_trace_sampled(cfg.trace_stride);
    }
    sc
}

fn dask_handle(cfg: &RunConfig) -> DaskClient {
    let client = DaskClient::new(cfg.cluster.clone());
    if let Some(p) = &cfg.policy {
        client.set_retry_policy(*p);
    }
    if cfg.trace {
        client.enable_trace_sampled(cfg.trace_stride);
    }
    client
}

fn pilot_handle(cfg: &RunConfig) -> Result<Session, EngineError> {
    let session = Session::new(cfg.cluster.clone())?;
    if let Some(p) = &cfg.policy {
        session.set_retry_policy(*p);
    }
    if cfg.trace {
        session.enable_trace_sampled(cfg.trace_stride);
    }
    Ok(session)
}

/// MPI folds the single-attempt default into the policy knob.
fn mpi_policy(cfg: &RunConfig) -> RetryPolicy {
    cfg.policy.unwrap_or_else(|| RetryPolicy::new(1))
}

/// A self-contained job descriptor for service-style submission: which
/// analysis to run plus the synthetic-input parameters and seed needed to
/// materialize its data at dispatch time.
///
/// The direct entry points ([`run_lf`], [`run_psa`]) take the input data
/// itself (`Arc`'d positions, ensembles); a service holding thousands of
/// queued jobs cannot afford that, so a `Workload` stores only the
/// *recipe* — a few machine words, `Clone` + `PartialEq` + `Send` — and
/// [`run_workload`] generates the inputs when the job finally dispatches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Leaflet-Finder over a generated bilayer.
    Lf {
        n_atoms: usize,
        partitions: usize,
        seed: u64,
    },
    /// Path Similarity Analysis over a generated chain ensemble.
    Psa {
        n_traj: usize,
        n_frames: usize,
        groups: usize,
        seed: u64,
    },
    /// CPPTraj-style ensemble 2-D RMSD (the paper's MPI baseline);
    /// `optimized` picks the Intel `-O3` kernel build over GNU `-O0`.
    Rmsd2d {
        n_traj: usize,
        n_frames: usize,
        optimized: bool,
        seed: u64,
    },
    /// Per-frame RMSD to frame 0 over a generated chain trajectory —
    /// the built-in [`crate::analysis::rmsd_analysis`] on the generic API.
    Rmsd {
        n_atoms: usize,
        n_frames: usize,
        slices: usize,
        seed: u64,
    },
    /// Per-frame contact counts over a generated chain trajectory —
    /// the built-in [`crate::analysis::contacts_analysis`].
    Contacts {
        n_atoms: usize,
        n_frames: usize,
        slices: usize,
        seed: u64,
    },
}

/// Contact cutoff (Å) for the [`Workload::Contacts`] recipe — a little
/// above the chain generator's 3.8 Å bond length so bonded neighbors
/// always count and fluctuating non-bonded pairs flicker in and out.
const CONTACT_CUTOFF: f32 = 6.0;

impl Workload {
    /// Short lowercase name (trace labels, JSON keys).
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Lf { .. } => "lf",
            Workload::Psa { .. } => "psa",
            Workload::Rmsd2d { .. } => "rmsd2d",
            Workload::Rmsd { .. } => "rmsd",
            Workload::Contacts { .. } => "contacts",
        }
    }
}

/// Result of a [`Workload`] run: a bit-exact fingerprint of the analysis
/// output (for determinism oracles) and the simulated execution report.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadRun {
    pub fingerprint: u64,
    pub report: netsim::SimReport,
}

/// Run a [`Workload`] as configured — the unified front door job
/// descriptors dispatch through. LF and PSA honor the full `RunConfig`
/// (engine choice, policy, tracing); the 2-D RMSD baseline is inherently
/// MPI and runs under `mpilike` regardless of `cfg`'s engine, using
/// `cfg.mpi_world` ranks.
pub fn run_workload(cfg: &RunConfig, w: &Workload) -> Result<WorkloadRun, EngineError> {
    match *w {
        Workload::Lf {
            n_atoms,
            partitions,
            seed,
        } => {
            let b = mdsim::bilayer::generate(
                &mdsim::BilayerSpec {
                    n_atoms,
                    ..Default::default()
                },
                seed,
            );
            let lf = LfConfig {
                cutoff: b.suggested_cutoff,
                partitions,
                paper_atoms: n_atoms,
                charge_io: true,
            };
            let out = run_lf(cfg, Arc::new(b.positions), &lf)?;
            let mut fp = netsim::Fingerprint::new();
            fp.write_usize(out.n_components);
            for sz in &out.leaflet_sizes {
                fp.write_usize(*sz);
            }
            fp.write_u64(out.edges_found);
            Ok(WorkloadRun {
                fingerprint: fp.finish(),
                report: out.report,
            })
        }
        Workload::Psa {
            n_traj,
            n_frames,
            groups,
            seed,
        } => {
            let spec = mdsim::ChainSpec {
                n_atoms: 10,
                n_frames,
                stride: 1,
                ..Default::default()
            };
            let ensemble = Arc::new(mdsim::chain::generate_ensemble(&spec, n_traj, seed));
            let psa = PsaConfig {
                groups,
                charge_io: true,
            };
            let out = run_psa(cfg, ensemble, &psa)?;
            let mut fp = netsim::Fingerprint::new();
            for &d in out.distances.as_slice() {
                fp.write_f64(d);
            }
            Ok(WorkloadRun {
                fingerprint: fp.finish(),
                report: out.report,
            })
        }
        Workload::Rmsd {
            n_atoms,
            n_frames,
            slices,
            seed,
        } => {
            let spec = mdsim::ChainSpec {
                n_atoms,
                n_frames,
                stride: 1,
                ..Default::default()
            };
            let traj = Arc::new(mdsim::chain::generate(&spec, seed));
            let out = cfg.run_analysis(rmsd_analysis(traj, AtomSelection::All, 0, slices))?;
            let mut fp = netsim::Fingerprint::new();
            for &v in &out.values {
                fp.write_f64(v);
            }
            Ok(WorkloadRun {
                fingerprint: fp.finish(),
                report: out.report,
            })
        }
        Workload::Contacts {
            n_atoms,
            n_frames,
            slices,
            seed,
        } => {
            let spec = mdsim::ChainSpec {
                n_atoms,
                n_frames,
                stride: 1,
                ..Default::default()
            };
            let traj = Arc::new(mdsim::chain::generate(&spec, seed));
            let out = cfg.run_analysis(contacts_analysis(
                traj,
                AtomSelection::All,
                CONTACT_CUTOFF,
                slices,
            ))?;
            let mut fp = netsim::Fingerprint::new();
            for &v in &out.values {
                fp.write_u64(v);
            }
            Ok(WorkloadRun {
                fingerprint: fp.finish(),
                report: out.report,
            })
        }
        Workload::Rmsd2d {
            n_traj,
            n_frames,
            optimized,
            seed,
        } => {
            let spec = mdsim::ChainSpec {
                n_atoms: 10,
                n_frames,
                stride: 1,
                ..Default::default()
            };
            let ensemble = mdsim::chain::generate_ensemble(&spec, n_traj, seed);
            let build = if optimized {
                cpptraj::KernelBuild::IntelO3
            } else {
                cpptraj::KernelBuild::GnuNoOpt
            };
            let out = cfg.scoped(|| {
                cpptraj::ensemble_psa(cfg.cluster.clone(), cfg.mpi_world, build, &ensemble)
            });
            let mut fp = netsim::Fingerprint::new();
            for &d in out.distances.as_slice() {
                fp.write_f64(d);
            }
            Ok(WorkloadRun {
                fingerprint: fp.finish(),
                report: out.report,
            })
        }
    }
}
