//! Big Data Ogres characterization (§2): the facet/view classification the
//! paper applies to PSA and the Leaflet Finder, as data.
//!
//! "Big Data Ogres are organized into four classes, called views. The
//! possible features of a view are called facets. A combination of facets
//! from all views defines an Ogre."

/// The four Ogre views.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum View {
    /// I/O and memory/compute ratios, iteration structure, the 5 Vs.
    Execution,
    /// Input collection, storage and access.
    DataSourceAndStyle,
    /// Algorithms and kernels.
    Processing,
    /// Application architecture.
    ProblemArchitecture,
}

/// One facet assignment: a view plus the facet text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Facet {
    pub view: View,
    pub facet: &'static str,
}

/// The two applications characterized in §2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Application {
    PathSimilarityAnalysis,
    LeafletFinder,
}

/// The paper's facet assignments (§2.1.1 and §2.1.2).
pub fn facets(app: Application) -> Vec<Facet> {
    match app {
        Application::PathSimilarityAnalysis => vec![
            Facet {
                view: View::ProblemArchitecture,
                facet: "embarrassingly parallel",
            },
            Facet {
                view: View::Processing,
                facet: "linear algebra kernels",
            },
            Facet {
                view: View::Processing,
                facet: "O(n^2) complexity",
            },
            Facet {
                view: View::Execution,
                facet: "medium-to-large input volume, small output",
            },
            Facet {
                view: View::Execution,
                facet: "HPC nodes, NumPy-class arithmetic libraries",
            },
            Facet {
                view: View::DataSourceAndStyle,
                facet: "HPC simulation output on parallel filesystems (Lustre)",
            },
        ],
        Application::LeafletFinder => vec![
            Facet {
                view: View::ProblemArchitecture,
                facet: "MapReduce",
            },
            Facet {
                view: View::Processing,
                facet: "graph algorithms (connected components)",
            },
            Facet {
                view: View::Processing,
                facet: "linear algebra kernels (pairwise distances)",
            },
            Facet {
                view: View::Processing,
                facet: "edge discovery O(n^2) or O(n log n) with trees",
            },
            Facet {
                view: View::Execution,
                facet: "medium input, smaller output; graph output",
            },
            Facet {
                view: View::Execution,
                facet: "HPC nodes, NumPy arrays",
            },
            Facet {
                view: View::DataSourceAndStyle,
                facet: "HPC simulation output on parallel filesystems (Lustre)",
            },
        ],
    }
}

/// Does this application map naturally onto MapReduce? (Drives the
/// "suitability" discussion of §3.4.)
pub fn is_mapreduce_shaped(app: Application) -> bool {
    facets(app)
        .iter()
        .any(|f| f.view == View::ProblemArchitecture && f.facet.contains("MapReduce"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psa_is_embarrassingly_parallel_not_mapreduce() {
        let f = facets(Application::PathSimilarityAnalysis);
        assert!(f
            .iter()
            .any(|x| x.facet.contains("embarrassingly parallel")));
        assert!(!is_mapreduce_shaped(Application::PathSimilarityAnalysis));
    }

    #[test]
    fn leaflet_finder_is_mapreduce_shaped() {
        assert!(is_mapreduce_shaped(Application::LeafletFinder));
        let f = facets(Application::LeafletFinder);
        assert!(f.iter().any(|x| x.facet.contains("connected components")));
    }

    #[test]
    fn both_apps_cover_all_views_except_where_stated() {
        for app in [
            Application::PathSimilarityAnalysis,
            Application::LeafletFinder,
        ] {
            let f = facets(app);
            for view in [
                View::Execution,
                View::DataSourceAndStyle,
                View::Processing,
                View::ProblemArchitecture,
            ] {
                assert!(f.iter().any(|x| x.view == view), "{app:?} missing {view:?}");
            }
        }
    }
}
