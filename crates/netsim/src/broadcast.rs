//! Broadcast cost models — the mechanism behind Fig. 8.
//!
//! The paper measures three very different broadcast behaviours:
//! * **MPI** uses a simple algorithm whose time "increases linearly as the
//!   number of processes increases" but starts tiny (<1–10% of edge
//!   discovery time);
//! * **Spark** uses an efficient (torrent/tree) broadcast whose time is
//!   roughly independent of node count (3–15%);
//! * **Dask** "partitions the dataset to a list where each element
//!   represents a value from the initial dataset" — a per-element
//!   replication that is 40–65% of edge discovery time and prevented
//!   broadcasting the 524k-atom system at all.

use crate::cluster::NetworkModel;

/// Broadcast algorithm used by an engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BroadcastAlgo {
    /// Root sends to each destination in turn (naive MPI): cost grows
    /// linearly with the destination count.
    Linear,
    /// Binomial/torrent tree: ⌈log₂(dests+1)⌉ rounds of full transfers.
    Tree,
    /// Dask-style list-wise scatter: tree distribution of the payload plus
    /// a per-element handling cost. Every destination pays the tax, but
    /// the destinations unpack *concurrently*, so the wall-clock charge is
    /// the per-destination maximum — `items × per_item_s` counted once,
    /// independent of `dest_nodes` (the destination count shows up in the
    /// distribution term instead).
    ListWise {
        /// Seconds of per-element overhead charged at each destination
        /// (concurrent across destinations — charged once in wall-clock).
        per_item_s: f64,
    },
}

/// Virtual seconds to broadcast `bytes` (comprising `items` logical
/// elements) from one node to `dest_nodes` other nodes.
///
/// `dest_nodes == 0` (single-node run, data already local) costs one local
/// handoff for `Linear`/`Tree`, plus the per-element tax for `ListWise` —
/// Dask pays its list materialization even locally.
pub fn broadcast_time(
    net: &NetworkModel,
    algo: BroadcastAlgo,
    bytes: u64,
    items: u64,
    dest_nodes: usize,
) -> f64 {
    let one = net.transfer_time(bytes, false);
    let local = net.transfer_time(bytes, true);
    match algo {
        BroadcastAlgo::Linear => {
            if dest_nodes == 0 {
                local
            } else {
                dest_nodes as f64 * one
            }
        }
        BroadcastAlgo::Tree => {
            if dest_nodes == 0 {
                local
            } else {
                ((dest_nodes + 1) as f64).log2().ceil() * one
            }
        }
        BroadcastAlgo::ListWise { per_item_s } => {
            let distribute = if dest_nodes == 0 {
                local
            } else {
                ((dest_nodes + 1) as f64).log2().ceil() * one
            };
            // Per-element handling happens at every destination, but the
            // destinations unpack in parallel: the wall-clock cost is the
            // max over destinations, i.e. one `items × per_item_s` term.
            distribute + items as f64 * per_item_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel::infiniband()
    }

    #[test]
    fn linear_grows_linearly() {
        let t1 = broadcast_time(&net(), BroadcastAlgo::Linear, 1 << 20, 1, 1);
        let t4 = broadcast_time(&net(), BroadcastAlgo::Linear, 1 << 20, 1, 4);
        assert!((t4 / t1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tree_grows_logarithmically() {
        let t1 = broadcast_time(&net(), BroadcastAlgo::Tree, 1 << 20, 1, 1);
        let t7 = broadcast_time(&net(), BroadcastAlgo::Tree, 1 << 20, 1, 7);
        assert!((t7 / t1 - 3.0).abs() < 1e-9, "7 dests = 3 rounds");
    }

    #[test]
    fn tree_beats_linear_at_scale() {
        let lin = broadcast_time(&net(), BroadcastAlgo::Linear, 1 << 24, 1, 9);
        let tree = broadcast_time(&net(), BroadcastAlgo::Tree, 1 << 24, 1, 9);
        assert!(tree < lin);
    }

    #[test]
    fn listwise_pays_per_item() {
        let algo = BroadcastAlgo::ListWise { per_item_s: 1e-6 };
        let few = broadcast_time(&net(), algo, 1 << 20, 10, 2);
        let many = broadcast_time(&net(), algo, 1 << 20, 1_000_000, 2);
        assert!((many - few - (1e-6 * 999_990.0)).abs() < 1e-9);
        // For large element counts the per-item tax dominates the wire time:
        let tree = broadcast_time(&net(), BroadcastAlgo::Tree, 1 << 20, 1_000_000, 2);
        assert!(many > 5.0 * tree);
    }

    #[test]
    fn listwise_per_item_tax_is_wall_clock_not_per_destination() {
        // Destinations unpack concurrently: adding destinations grows only
        // the (log-shaped) distribution term, never the per-item term.
        let per_item_s = 1e-3;
        let algo = BroadcastAlgo::ListWise { per_item_s };
        let items = 10_000u64;
        let tax = items as f64 * per_item_s;
        for dest_nodes in [1usize, 3, 7, 15] {
            let listwise = broadcast_time(&net(), algo, 1 << 20, items, dest_nodes);
            let tree = broadcast_time(&net(), BroadcastAlgo::Tree, 1 << 20, items, dest_nodes);
            assert!(
                (listwise - tree - tax).abs() < 1e-9,
                "per-item tax must be charged exactly once at {dest_nodes} dests"
            );
        }
    }

    #[test]
    fn single_node_is_cheap_but_nonzero() {
        let t = broadcast_time(&net(), BroadcastAlgo::Tree, 1 << 20, 1, 0);
        assert!(t > 0.0);
        assert!(t < broadcast_time(&net(), BroadcastAlgo::Tree, 1 << 20, 1, 1));
    }
}
