//! Host thread pool for executing real compute closures in parallel.
//!
//! The simulator's split between *real execution* (closures genuinely run,
//! [`crate::clock::measure`] times them) and *simulated placement* (measured
//! durations land on virtual per-core timelines) means independent task
//! closures can run on any host core without affecting virtual-time
//! semantics — as long as engines merge the measured results back in a
//! deterministic order. This module provides that pool; the engines own the
//! merge discipline (pre-reserved task ids, scheduling passes that consume
//! results in submission order).
//!
//! Shape: a self-scheduling shared work queue. [`run_indexed`] spawns
//! `degree − 1` scoped workers plus the caller; each claims the next
//! un-started index from a shared atomic counter (every idle worker "steals"
//! from the one global queue — the degenerate but contention-optimal form of
//! work stealing for a flat bag of tasks) and sends `(index, result)` over a
//! channel. Results are re-assembled into input order, so the caller sees
//! `Vec<T>` exactly as the serial loop would have produced it.
//!
//! Degree resolution, outermost first:
//! 1. inside a pool worker → 1 (no nested parallelism);
//! 2. a scoped [`with_degree`] override (how `RunConfig::threads` applies);
//! 3. the process default, set by [`set_default_threads`] or the
//!    `MDTASK_THREADS` env var (`1`, `auto`, or a number). Unset → serial,
//!    i.e. exactly the pre-pool behavior.

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Requested host-parallelism degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// One task at a time on the calling thread (the default).
    Serial,
    /// Exactly `n` concurrent host threads (caller included).
    Fixed(usize),
    /// One thread per available host core.
    Auto,
}

impl Threads {
    /// Resolve to a concrete degree (≥ 1) on this host.
    pub fn resolve(self) -> usize {
        match self {
            Threads::Serial => 1,
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl FromStr for Threads {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" | "0" => Ok(Threads::Auto),
            "1" => Ok(Threads::Serial),
            other => other
                .parse::<usize>()
                .map(Threads::Fixed)
                .map_err(|_| format!("invalid thread count {other:?} (want 1, N, or `auto`)")),
        }
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Serial => write!(f, "1"),
            Threads::Fixed(n) => write!(f, "{n}"),
            Threads::Auto => write!(f, "auto"),
        }
    }
}

/// Process-wide default degree: 0 = not yet initialized (read env on first
/// use), otherwise the resolved degree.
static DEFAULT_DEGREE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_degree`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while this thread is executing work *inside* a pool, so nested
    /// `run_indexed` calls degrade to serial instead of oversubscribing.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Set the process-wide default degree (what `--threads` and the
/// `MDTASK_THREADS` env var feed).
pub fn set_default_threads(threads: Threads) {
    DEFAULT_DEGREE.store(threads.resolve().max(1), Ordering::Relaxed);
}

fn default_degree() -> usize {
    let d = DEFAULT_DEGREE.load(Ordering::Relaxed);
    if d != 0 {
        return d;
    }
    let resolved = std::env::var("MDTASK_THREADS")
        .ok()
        .and_then(|v| v.parse::<Threads>().ok())
        .map(Threads::resolve)
        .unwrap_or(1)
        .max(1);
    DEFAULT_DEGREE.store(resolved, Ordering::Relaxed);
    resolved
}

/// The degree a pool started *right now* on this thread would use.
pub fn current_degree() -> usize {
    if IN_POOL.with(Cell::get) {
        return 1;
    }
    OVERRIDE.with(Cell::get).unwrap_or_else(default_degree)
}

/// Run `f` with the degree overridden on this thread (restored after).
/// This is how a per-run `threads` knob scopes: engine handles constructed
/// inside capture the override via [`current_degree`].
pub fn with_degree<T>(threads: Threads, f: impl FnOnce() -> T) -> T {
    let prev = OVERRIDE.with(|o| o.replace(Some(threads.resolve().max(1))));
    let out = f();
    OVERRIDE.with(|o| o.set(prev));
    out
}

/// Evaluate `f(0..n)` across up to `degree` host threads and return the
/// results **in index order** — byte-for-byte the `Vec` the serial loop
/// `(0..n).map(f).collect()` yields, which is what keeps engine merge
/// order deterministic. Degree ≤ 1 (or a nested call from inside a pool)
/// runs serially on the caller with zero threading overhead.
///
/// Panics in `f` propagate to the caller once all workers have stopped.
pub fn run_indexed_with<T, F>(degree: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if degree <= 1 || n <= 1 || IN_POOL.with(Cell::get) {
        return (0..n).map(f).collect();
    }
    let workers = degree.min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    std::thread::scope(|s| {
        for _ in 0..workers - 1 {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || {
                IN_POOL.with(|p| p.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A send only fails if the receiver is gone, which
                    // means the caller is already unwinding.
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
            });
        }
        // The caller is the final worker; flag nested calls serial for the
        // duration, then restore (the caller thread outlives this pool).
        let was = IN_POOL.with(|p| p.replace(true));
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let out = tx.send((i, f(i)));
            debug_assert!(out.is_ok(), "caller holds the receiver");
        }
        IN_POOL.with(|p| p.set(was));
    });
    drop(tx);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced a result"))
        .collect()
}

/// [`run_indexed_with`] at [`current_degree`].
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(current_degree(), n, f)
}

/// Distribute owned items (e.g. `FnOnce` task closures) across the pool:
/// each item is claimed exactly once, `f(index, item)` runs on some worker,
/// results come back in input order. Serial when `degree ≤ 1`.
pub fn run_owned_with<I, T, F>(degree: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    if degree <= 1 || items.len() <= 1 || IN_POOL.with(Cell::get) {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, it)| f(i, it))
            .collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    run_indexed_with(degree, slots.len(), |i| {
        let item = slots[i].lock().take().expect("each item claimed once");
        f(i, item)
    })
}

/// [`run_owned_with`] at [`current_degree`].
pub fn run_owned<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    run_owned_with(current_degree(), items, f)
}

/// Counting semaphore bounding how many rank threads execute real compute
/// concurrently (mpilike's generalization of its old global compute token:
/// capacity 1 reproduces the strict serial order exactly).
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    /// Block until a permit is free; the guard returns it on drop.
    pub fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut n = self.permits.lock();
        while *n == 0 {
            self.available.wait(&mut n);
        }
        *n -= 1;
        SemaphoreGuard { sem: self }
    }
}

/// RAII permit from [`Semaphore::acquire`].
pub struct SemaphoreGuard<'a> {
    sem: &'a Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        *self.sem.permits.lock() += 1;
        self.sem.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn threads_parse_and_resolve() {
        assert_eq!("1".parse::<Threads>().unwrap(), Threads::Serial);
        assert_eq!("4".parse::<Threads>().unwrap(), Threads::Fixed(4));
        assert_eq!("auto".parse::<Threads>().unwrap(), Threads::Auto);
        assert!("four".parse::<Threads>().is_err());
        assert_eq!(Threads::Serial.resolve(), 1);
        assert_eq!(Threads::Fixed(6).resolve(), 6);
        assert!(Threads::Auto.resolve() >= 1);
        assert_eq!(Threads::Fixed(0).resolve(), 1);
    }

    #[test]
    fn results_arrive_in_index_order() {
        for degree in [1, 2, 3, 8] {
            let got = run_indexed_with(degree, 37, |i| i * i);
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "degree {degree}");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counts: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        run_indexed_with(8, 100, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_indexed_with(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed_with(8, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn owned_items_each_claimed_once() {
        let items: Vec<String> = (0..20).map(|i| format!("item-{i}")).collect();
        let got = run_owned_with(4, items, |i, s| format!("{i}:{s}"));
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s, &format!("{i}:item-{i}"));
        }
    }

    #[test]
    fn nested_calls_run_serial() {
        let depth = run_indexed_with(4, 8, |_| {
            // Inside the pool, a nested pool must degrade to serial.
            assert_eq!(current_degree(), 1);
            run_indexed_with(4, 4, |j| j).len()
        });
        assert_eq!(depth, vec![4; 8]);
    }

    #[test]
    fn with_degree_scopes_override() {
        let outer = current_degree();
        let inner = with_degree(Threads::Fixed(5), current_degree);
        assert_eq!(inner, 5);
        assert_eq!(current_degree(), outer);
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let sem = Semaphore::new(2);
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        run_indexed_with(8, 32, |_| {
            let _g = sem.acquire();
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    // A panic on a spawned worker surfaces as the scope's own panic
    // payload ("a scoped thread panicked"), so only propagation — not the
    // message — is asserted.
    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        run_indexed_with(4, 16, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }
}
