//! Post-run metric summaries derived from a [`SimReport`] and its trace.
//!
//! Where [`SimReport`] accumulates totals *during* a run, [`Metrics`] is
//! computed *after* one: per-phase time shares, per-node traffic, and
//! latency histograms — the numbers a performance investigation reaches
//! for first (cf. the per-rank compute/I-O/communication breakdowns in
//! Khoshlessan et al., arXiv:1907.00097).

use crate::report::SimReport;
use crate::trace::EventKind;

/// Fixed-bucket log₂ histogram for virtual-time latencies. Buckets are
/// powers of two starting at 1 µs (bucket 0 holds everything below);
/// recording is O(1) and quantiles are bucket-upper-bound approximations —
/// exact enough to tell a 50 µs dispatch gap from a 5 ms one.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const HIST_BASE_S: f64 = 1e-6;
const HIST_BUCKETS: usize = 40; // up to ~5.5e5 s in the last regular bucket

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }
}

impl Histogram {
    /// Bucket index for `v` under the documented semantics: bucket 0 holds
    /// everything below `HIST_BASE_S`; bucket `b ≥ 1` covers the half-open
    /// range `[HIST_BASE_S·2^(b-1), HIST_BASE_S·2^b)`; the last bucket
    /// absorbs everything at or above its lower bound.
    ///
    /// The log₂-of-a-quotient estimate is only within an ulp of the true
    /// value — a wait an ulp under a power-of-two boundary can round *up*
    /// across it (and the division itself can push an exact boundary value
    /// either way) — so the estimate is corrected against the exact bucket
    /// bounds, which are themselves exact (`2f64.powi` of a power of two
    /// times the base is one floating-point product).
    fn bucket_of(v: f64) -> usize {
        // NaN checked explicitly so it also lands in bucket 0.
        if v.is_nan() || v < HIST_BASE_S {
            return 0;
        }
        // Clamp in f64 *before* the cast: for v = ∞ the log is ∞ and a
        // saturating `as i64` followed by `+ 1` would overflow.
        let est = ((v / HIST_BASE_S).log2().floor() + 1.0).clamp(1.0, (HIST_BUCKETS - 1) as f64);
        let mut b = est as usize;
        while b > 1 && v < HIST_BASE_S * 2f64.powi((b - 1) as i32) {
            b -= 1;
        }
        while b < HIST_BUCKETS - 1 && v >= HIST_BASE_S * 2f64.powi(b as i32) {
            b += 1;
        }
        b
    }

    pub fn record(&mut self, v: f64) {
        let v = v.max(0.0);
        let b = Self::bucket_of(v);
        self.counts[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile: the upper bound of the first bucket at which
    /// the cumulative count reaches `q × count` (clamped to the observed
    /// max).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = HIST_BASE_S * 2f64.powi(b as i32);
                return upper.min(self.max);
            }
        }
        self.max
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_s\":{},\"min_s\":{},\"max_s\":{},\"p50_s\":{},\"p90_s\":{},\"p99_s\":{}}}",
            self.count,
            json_num(self.mean()),
            json_num(self.min()),
            json_num(self.max()),
            json_num(self.quantile(0.50)),
            json_num(self.quantile(0.90)),
            json_num(self.quantile(0.99)),
        )
    }
}

/// Total time and share-of-makespan of one named phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseShare {
    pub name: String,
    pub total_s: f64,
    /// `total_s / makespan_s` — shares can exceed 1.0 summed, since phases
    /// overlap (a shuffle runs inside a stage).
    pub share: f64,
}

/// Bytes entering and leaving one node over the network, from the trace's
/// fetch and broadcast events. Broadcast payloads are counted as egress
/// from the root only (destination fan-out is algorithm-internal).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeTraffic {
    pub node: usize,
    pub bytes_in: u64,
    pub bytes_out: u64,
}

/// Memory-pressure activity on one node, from the trace's spill/evict/
/// OOM-kill events plus the report's resident high-water mark.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeMemory {
    pub node: usize,
    /// Bytes that overflowed to local scratch disk.
    pub bytes_spilled: u64,
    /// Cached bytes dropped (recoverable by lineage recompute).
    pub bytes_evicted: u64,
    /// Tasks/workers killed for exceeding the budget outright.
    pub oom_kills: usize,
    /// Resident high-water mark (bytes); 0 if the ledger never engaged.
    pub high_water: u64,
}

/// Post-run summary of one [`SimReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    pub makespan_s: f64,
    pub tasks: usize,
    /// Useful (non-killed) task time / (cores × makespan); falls back to
    /// `compute_s` when no trace was recorded.
    pub utilization: f64,
    /// Occupied core time including killed attempts (trace only; equals
    /// `utilization` without a trace).
    pub busy_fraction: f64,
    /// Phase totals in first-appearance order.
    pub phases: Vec<PhaseShare>,
    /// Per-node traffic, for nodes that moved any bytes.
    pub nodes: Vec<NodeTraffic>,
    /// Per-node memory pressure, for nodes that spilled, evicted, OOM-
    /// killed, or recorded a high-water mark.
    pub memory: Vec<NodeMemory>,
    /// Task queue wait: `start_s - ready_s` per completed task attempt.
    pub queue_wait: Histogram,
    /// Driver/scheduler dispatch cadence: gaps between consecutive task
    /// release times — a serialized dispatcher shows its per-task cost
    /// here (Fig. 2's throughput caps, seen per-task).
    pub dispatch_latency: Histogram,
    /// Service-queue events (mdtaskd): jobs enqueued by tenants.
    pub jobs_enqueued: usize,
    /// Service-queue events: jobs admitted to a cluster by the scheduler.
    pub jobs_admitted: usize,
    /// Service-queue events: jobs refused typed (backpressure/quota).
    pub jobs_rejected: usize,
    /// Streaming ingestion pauses under memory pressure (backpressure
    /// trace events) and the total virtual time spent paused.
    pub backpressure_pauses: usize,
    pub backpressure_wait_s: f64,
}

impl Metrics {
    pub fn from_report(report: &SimReport, n_cores: usize) -> Metrics {
        let makespan = report.makespan_s;
        // Phase totals, first-appearance order.
        let mut order: Vec<String> = Vec::new();
        for p in &report.phases {
            if !order.contains(&p.name) {
                order.push(p.name.clone());
            }
        }
        let phases = order
            .into_iter()
            .map(|name| {
                let total_s = report.phase_total(&name).unwrap_or(0.0);
                PhaseShare {
                    share: if makespan > 0.0 {
                        total_s / makespan
                    } else {
                        0.0
                    },
                    name,
                    total_s,
                }
            })
            .collect();

        let mut queue_wait = Histogram::default();
        let mut dispatch_latency = Histogram::default();
        let (mut jobs_enqueued, mut jobs_admitted, mut jobs_rejected) = (0usize, 0usize, 0usize);
        let (mut backpressure_pauses, mut backpressure_wait_s) = (0usize, 0.0f64);
        let mut traffic: Vec<NodeTraffic> = Vec::new();
        let mut memory: Vec<NodeMemory> = Vec::new();
        fn mem_entry(memory: &mut Vec<NodeMemory>, node: usize) -> &mut NodeMemory {
            if let Some(i) = memory.iter().position(|m| m.node == node) {
                &mut memory[i]
            } else {
                memory.push(NodeMemory {
                    node,
                    ..Default::default()
                });
                memory.last_mut().expect("just pushed")
            }
        }
        let bump = |node: usize, inb: u64, outb: u64, traffic: &mut Vec<NodeTraffic>| {
            if let Some(t) = traffic.iter_mut().find(|t| t.node == node) {
                t.bytes_in += inb;
                t.bytes_out += outb;
            } else {
                traffic.push(NodeTraffic {
                    node,
                    bytes_in: inb,
                    bytes_out: outb,
                });
            }
        };
        let (utilization, busy_fraction) = match &report.trace {
            Some(trace) => {
                let mut releases: Vec<f64> = Vec::new();
                for e in &trace.events {
                    match &e.kind {
                        EventKind::Task { .. } => {
                            if !e.killed {
                                queue_wait.record(e.start_s - e.ready_s);
                                releases.push(e.ready_s);
                            }
                        }
                        EventKind::Fetch {
                            from_node,
                            to_node,
                            bytes,
                        } => {
                            bump(*from_node, 0, *bytes, &mut traffic);
                            bump(*to_node, *bytes, 0, &mut traffic);
                        }
                        EventKind::Broadcast { bytes, .. } => {
                            bump(0, 0, *bytes, &mut traffic);
                        }
                        EventKind::Recovery { .. } | EventKind::Fenced { .. } => {}
                        EventKind::Spill { node, bytes } => {
                            mem_entry(&mut memory, *node).bytes_spilled += bytes;
                        }
                        EventKind::Evict { node, bytes } => {
                            mem_entry(&mut memory, *node).bytes_evicted += bytes;
                        }
                        EventKind::OomKill { node } => {
                            mem_entry(&mut memory, *node).oom_kills += 1;
                        }
                        EventKind::Enqueue { .. } => jobs_enqueued += 1,
                        EventKind::Admit { .. } => {
                            jobs_admitted += 1;
                            // Service-queue wait: enqueue → admission.
                            queue_wait.record(e.start_s - e.ready_s);
                        }
                        EventKind::Reject { .. } => jobs_rejected += 1,
                        EventKind::Backpressure { .. } => {
                            backpressure_pauses += 1;
                            backpressure_wait_s += e.end_s - e.start_s;
                        }
                    }
                }
                releases.sort_by(f64::total_cmp);
                for w in releases.windows(2) {
                    dispatch_latency.record(w[1] - w[0]);
                }
                (trace.utilization(n_cores), trace.busy_fraction(n_cores))
            }
            None => {
                let u = if makespan > 0.0 && n_cores > 0 {
                    report.compute_s / (n_cores as f64 * makespan)
                } else {
                    0.0
                };
                (u, u)
            }
        };
        // Merge the report's resident high-water marks (the ledger tracks
        // them even when no spill/evict event fired).
        for (node, &hw) in report.mem_high_water.iter().enumerate() {
            if hw > 0 {
                mem_entry(&mut memory, node).high_water = hw;
            }
        }
        traffic.sort_by_key(|t| t.node);
        memory.sort_by_key(|m| m.node);
        Metrics {
            makespan_s: makespan,
            tasks: report.tasks,
            utilization,
            busy_fraction,
            phases,
            nodes: traffic,
            memory,
            queue_wait,
            dispatch_latency,
            jobs_enqueued,
            jobs_admitted,
            jobs_rejected,
            backpressure_pauses,
            backpressure_wait_s,
        }
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "makespan {:.4}s · {} tasks · utilization {:.1}% (busy {:.1}%)\n",
            self.makespan_s,
            self.tasks,
            100.0 * self.utilization,
            100.0 * self.busy_fraction
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "  phase {:<22} {:>9.4}s  {:>5.1}%\n",
                p.name,
                p.total_s,
                100.0 * p.share
            ));
        }
        for n in &self.nodes {
            out.push_str(&format!(
                "  node {:<3} in {:>12} B  out {:>12} B\n",
                n.node, n.bytes_in, n.bytes_out
            ));
        }
        for m in &self.memory {
            out.push_str(&format!(
                "  mem  {:<3} high-water {:>12} B  spilled {:>10} B  evicted {:>10} B  oom-kills {}\n",
                m.node, m.high_water, m.bytes_spilled, m.bytes_evicted, m.oom_kills
            ));
        }
        if self.queue_wait.count() > 0 {
            out.push_str(&format!(
                "  queue wait      p50 {:.6}s  p90 {:.6}s  max {:.6}s\n",
                self.queue_wait.quantile(0.5),
                self.queue_wait.quantile(0.9),
                self.queue_wait.max()
            ));
        }
        if self.dispatch_latency.count() > 0 {
            out.push_str(&format!(
                "  dispatch gap    p50 {:.6}s  p90 {:.6}s  max {:.6}s\n",
                self.dispatch_latency.quantile(0.5),
                self.dispatch_latency.quantile(0.9),
                self.dispatch_latency.max()
            ));
        }
        if self.jobs_enqueued + self.jobs_admitted + self.jobs_rejected > 0 {
            out.push_str(&format!(
                "  service jobs    enqueued {}  admitted {}  rejected {}\n",
                self.jobs_enqueued, self.jobs_admitted, self.jobs_rejected
            ));
        }
        if self.backpressure_pauses > 0 {
            out.push_str(&format!(
                "  backpressure    pauses {}  waited {:.4}s\n",
                self.backpressure_pauses, self.backpressure_wait_s
            ));
        }
        out
    }

    /// JSON object (hand-rolled — the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"name\":\"{}\",\"total_s\":{},\"share\":{}}}",
                    escape_json(&p.name),
                    json_num(p.total_s),
                    json_num(p.share)
                )
            })
            .collect();
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"node\":{},\"bytes_in\":{},\"bytes_out\":{}}}",
                    n.node, n.bytes_in, n.bytes_out
                )
            })
            .collect();
        let memory: Vec<String> = self
            .memory
            .iter()
            .map(|m| {
                format!(
                    "{{\"node\":{},\"high_water\":{},\"bytes_spilled\":{},\"bytes_evicted\":{},\"oom_kills\":{}}}",
                    m.node, m.high_water, m.bytes_spilled, m.bytes_evicted, m.oom_kills
                )
            })
            .collect();
        format!(
            "{{\"makespan_s\":{},\"tasks\":{},\"utilization\":{},\"busy_fraction\":{},\"phases\":[{}],\"nodes\":[{}],\"memory\":[{}],\"queue_wait\":{},\"dispatch_latency\":{},\"jobs_enqueued\":{},\"jobs_admitted\":{},\"jobs_rejected\":{},\"backpressure_pauses\":{},\"backpressure_wait_s\":{}}}",
            json_num(self.makespan_s),
            self.tasks,
            json_num(self.utilization),
            json_num(self.busy_fraction),
            phases.join(","),
            nodes.join(","),
            memory.join(","),
            self.queue_wait.to_json(),
            self.dispatch_latency.to_json(),
            self.jobs_enqueued,
            self.jobs_admitted,
            self.jobs_rejected,
            self.backpressure_pauses,
            json_num(self.backpressure_wait_s),
        )
    }
}

/// Finite JSON number (JSON has no NaN/Inf; those map to 0).
pub(crate) fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".into()
    }
}

/// Escape a string for a JSON literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{laptop, Cluster};
    use crate::executor::SimExecutor;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record(1e-4);
        }
        for _ in 0..10 {
            h.record(1e-2);
        }
        assert_eq!(h.count(), 100);
        assert!(h.quantile(0.5) >= 1e-4 && h.quantile(0.5) < 1e-3);
        assert!(h.quantile(0.99) >= 1e-2 - 1e-12);
        assert!((h.mean() - (90.0 * 1e-4 + 10.0 * 1e-2) / 100.0).abs() < 1e-12);
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_boundary_semantics_are_exact() {
        // Regression for the bucketing audit: bucket 0 is [0, base);
        // bucket b ≥ 1 is [base·2^(b-1), base·2^b). Sub-base, exact-
        // boundary, and boundary±ulp values must all land per that spec —
        // the raw log₂ estimate can round across a boundary by an ulp.
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(f64::NAN), 0);
        assert_eq!(Histogram::bucket_of(HIST_BASE_S / 2.0), 0);
        let below_base = f64::from_bits(HIST_BASE_S.to_bits() - 1);
        assert_eq!(Histogram::bucket_of(below_base), 0, "base − ulp");
        assert_eq!(Histogram::bucket_of(HIST_BASE_S), 1, "exact base");
        // Every exact power-of-two boundary, plus one ulp to either side.
        for b in 1..HIST_BUCKETS - 1 {
            let bound = HIST_BASE_S * 2f64.powi(b as i32);
            assert_eq!(
                Histogram::bucket_of(bound),
                b + 1,
                "exact boundary base·2^{b} opens bucket {}",
                b + 1
            );
            let lo = f64::from_bits(bound.to_bits() - 1);
            assert_eq!(Histogram::bucket_of(lo), b, "boundary − ulp stays in {b}");
            let hi = f64::from_bits(bound.to_bits() + 1);
            assert_eq!(Histogram::bucket_of(hi), b + 1, "boundary + ulp");
        }
        // Beyond the last regular boundary everything collapses into the
        // final bucket.
        assert_eq!(Histogram::bucket_of(1e12), HIST_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(f64::INFINITY), HIST_BUCKETS - 1);
        // Recording a boundary value keeps quantiles consistent with the
        // documented ranges: p100 of a single exact-boundary sample is the
        // sample itself (bucket upper bound clamped to the observed max).
        let mut h = Histogram::default();
        h.record(HIST_BASE_S);
        assert_eq!(h.quantile(1.0), HIST_BASE_S);
    }

    #[test]
    fn metrics_from_traced_run() {
        let mut e = SimExecutor::new(Cluster::builder().cores_per_node(2).build());
        e.enable_trace();
        e.run_task(0.0, 1.0);
        e.run_task(0.5, 1.0);
        e.record_fetch(0, 1, 1000, 1.0, 1.25);
        e.record_broadcast(500, 2, 0.0, 0.1);
        e.report_mut().push_phase("map", 0.0, 1.5);
        let m = Metrics::from_report(e.report(), 2);
        assert_eq!(m.tasks, 2);
        assert!((m.utilization - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.phases[0].name, "map");
        assert_eq!(m.queue_wait.count(), 2);
        assert_eq!(m.dispatch_latency.count(), 1);
        // node 0: broadcast 500 out + fetch 1000 out; node 1: 1000 in.
        assert_eq!(m.nodes[0].bytes_out, 1500);
        assert_eq!(m.nodes[1].bytes_in, 1000);
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"phases\":[{\"name\":\"map\""));
        assert!(m.render().contains("phase map"));
    }

    #[test]
    fn metrics_without_trace_falls_back_to_compute_share() {
        let mut e = SimExecutor::new(Cluster::new(laptop(), 1));
        e.run_task(0.0, 4.0);
        let m = Metrics::from_report(e.report(), 8);
        assert!((m.utilization - 4.0 / (8.0 * 4.0)).abs() < 1e-12);
        assert_eq!(m.utilization, m.busy_fraction);
        assert_eq!(m.queue_wait.count(), 0);
    }

    #[test]
    fn metrics_summarize_memory_pressure() {
        use crate::trace::{Trace, TraceEvent};
        let mut trace = Trace::default();
        let shuffle = trace.intern("shuffle");
        let cache = trace.intern("cache");
        let memory = trace.intern("memory");
        trace.record(TraceEvent {
            task: 0,
            core: 0,
            start_s: 0.0,
            end_s: 0.5,
            killed: false,
            ready_s: 0.0,
            phase: shuffle,
            kind: EventKind::Spill {
                node: 1,
                bytes: 4096,
            },
        });
        trace.record(TraceEvent {
            task: 1,
            core: 0,
            start_s: 0.5,
            end_s: 0.5,
            killed: false,
            ready_s: 0.5,
            phase: cache,
            kind: EventKind::Evict {
                node: 1,
                bytes: 1024,
            },
        });
        trace.record(TraceEvent {
            task: 2,
            core: 0,
            start_s: 1.0,
            end_s: 1.0,
            killed: false,
            ready_s: 1.0,
            phase: memory,
            kind: EventKind::OomKill { node: 0 },
        });
        let report = SimReport {
            makespan_s: 1.0,
            bytes_spilled: 4096,
            bytes_evicted: 1024,
            oom_kills: 1,
            mem_high_water: vec![100, 200],
            trace: Some(trace),
            ..Default::default()
        };
        let m = Metrics::from_report(&report, 2);
        assert_eq!(m.memory.len(), 2);
        assert_eq!(m.memory[0].node, 0);
        assert_eq!(m.memory[0].oom_kills, 1);
        assert_eq!(m.memory[0].high_water, 100);
        assert_eq!(m.memory[1].bytes_spilled, 4096);
        assert_eq!(m.memory[1].bytes_evicted, 1024);
        assert_eq!(m.memory[1].high_water, 200);
        let json = m.to_json();
        assert!(json.contains("\"memory\":[{\"node\":0"));
        assert!(json.contains("\"bytes_spilled\":4096"));
        assert!(m.render().contains("high-water"));
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_num(f64::NAN), "0");
    }
}
