//! Machines, networks and clusters.

use crate::fault::FaultPlan;

/// Point-to-point communication cost model: a transfer of `b` bytes costs
/// `latency + b / bandwidth`, with cheaper constants for intra-node
/// (shared-memory) transfers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Inter-node message latency (seconds).
    pub latency_s: f64,
    /// Inter-node bandwidth (bytes/second).
    pub bandwidth_bps: f64,
    /// Intra-node (same node, cross process) latency.
    pub local_latency_s: f64,
    /// Intra-node bandwidth.
    pub local_bandwidth_bps: f64,
}

impl NetworkModel {
    /// FDR InfiniBand-class network (Comet: 56 Gb/s ≈ 7 GB/s, ~2 µs MPI
    /// latency; we use software-visible effective numbers).
    pub fn infiniband() -> Self {
        NetworkModel {
            latency_s: 5e-6,
            bandwidth_bps: 6.0e9,
            local_latency_s: 5e-7,
            local_bandwidth_bps: 2.0e10,
        }
    }

    /// Time to move `bytes` between two endpoints.
    pub fn transfer_time(&self, bytes: u64, same_node: bool) -> f64 {
        if same_node {
            self.local_latency_s + bytes as f64 / self.local_bandwidth_bps
        } else {
            self.latency_s + bytes as f64 / self.bandwidth_bps
        }
    }
}

/// A named machine configuration — node shape, relative per-core speed, and
/// network. Mirrors the two XSEDE systems the paper used.
#[derive(Clone, Debug)]
pub struct MachineProfile {
    pub name: String,
    /// Cores per node presented to the scheduler.
    pub cores_per_node: usize,
    /// Relative per-core throughput; simulated task duration =
    /// `measured_host_seconds / core_efficiency`.
    pub core_efficiency: f64,
    /// Usable memory per node (bytes) — the paper's runs hit real memory
    /// walls (cdist on 4M atoms, Dask worker restarts at 95% utilization),
    /// which the engines reproduce against this limit.
    pub mem_per_node: u64,
    /// Local-disk (scratch) bandwidth in bytes/second. Spill paths —
    /// Spark's MEMORY_AND_DISK overflow, Dask's worker spill threshold —
    /// charge `bytes / disk_bandwidth_bps` of virtual time per traversal.
    pub disk_bandwidth_bps: f64,
    pub network: NetworkModel,
}

impl MachineProfile {
    /// Virtual time for one traversal (write *or* read) of `bytes` through
    /// local scratch disk.
    pub fn disk_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.disk_bandwidth_bps
    }
}

/// SDSC Comet: 24 Haswell cores and 128 GB per node (§4).
pub fn comet() -> MachineProfile {
    MachineProfile {
        name: "comet".into(),
        cores_per_node: 24,
        core_efficiency: 1.0,
        mem_per_node: 128 * (1 << 30),
        disk_bandwidth_bps: 5.0e8, // node-local SSD scratch, ~500 MB/s
        network: NetworkModel::infiniband(),
    }
}

/// TACC Wrangler: 24 hyper-threading-enabled Haswell cores and 128 GB per
/// node. The paper's figures schedule 32 hardware threads per node
/// (32/1 … 256/8), and observe smaller speedups than Comet for the same
/// core count because hyper-threaded slots share execution units —
/// modelled as 32 schedulable cores of lower per-core efficiency.
pub fn wrangler() -> MachineProfile {
    MachineProfile {
        name: "wrangler".into(),
        cores_per_node: 32,
        core_efficiency: 0.72,
        mem_per_node: 128 * (1 << 30),
        disk_bandwidth_bps: 1.0e9, // Wrangler's flash-storage tier, ~1 GB/s
        network: NetworkModel::infiniband(),
    }
}

/// A small local profile for examples and tests.
pub fn laptop() -> MachineProfile {
    MachineProfile {
        name: "laptop".into(),
        cores_per_node: 8,
        core_efficiency: 1.0,
        mem_per_node: 16 * (1 << 30),
        disk_bandwidth_bps: 2.0e8, // laptop SSD under contention
        network: NetworkModel {
            latency_s: 2e-5,
            bandwidth_bps: 1.2e9,
            local_latency_s: 5e-7,
            local_bandwidth_bps: 2.0e10,
        },
    }
}

/// A fixed allocation of a machine profile — what a pilot/Spark/Dask/MPI
/// job actually gets to run on. The allocation may use only part of its
/// last node (the paper runs e.g. 16 cores of a 24-core node).
#[derive(Clone, Debug)]
pub struct Cluster {
    pub profile: MachineProfile,
    pub nodes: usize,
    /// Schedulable cores (≤ `nodes × cores_per_node`).
    cores: usize,
    /// Scripted failures this allocation will suffer (empty by default).
    faults: FaultPlan,
}

/// Fluent construction of a [`Cluster`]: start from a machine profile
/// (default [`laptop`]), tweak its shape, attach a fault plan.
///
/// ```
/// use netsim::{wrangler, Cluster, FaultPlan};
/// let c = Cluster::builder()
///     .profile(wrangler())
///     .nodes(8)
///     .cores_per_node(32)
///     .mem_budget(64 * (1 << 30))
///     .fault_plan(FaultPlan::none().kill_node(1, 5.0))
///     .build();
/// assert_eq!(c.total_cores(), 256);
/// ```
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    profile: MachineProfile,
    nodes: usize,
    /// Total-core override (`with_cores`-style ragged allocation).
    cores: Option<usize>,
    faults: FaultPlan,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            profile: laptop(),
            nodes: 1,
            cores: None,
            faults: FaultPlan::none(),
        }
    }
}

impl ClusterBuilder {
    /// Start from a named machine profile (replaces any prior shape tweaks).
    pub fn profile(mut self, profile: MachineProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Number of whole nodes to allocate.
    pub fn nodes(mut self, nodes: usize) -> Self {
        assert!(nodes >= 1, "cluster needs at least one node");
        self.nodes = nodes;
        self
    }

    /// Schedulable cores per node.
    pub fn cores_per_node(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "need at least one core per node");
        self.profile.cores_per_node = cores;
        self
    }

    /// Total schedulable cores (the paper's "Cores/Nodes" axis); the last
    /// node may be partially used. Overrides [`Self::nodes`].
    pub fn total_cores(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "need at least one core");
        self.cores = Some(cores);
        self
    }

    /// Relative per-core throughput (see
    /// [`MachineProfile::core_efficiency`]).
    pub fn core_efficiency(mut self, efficiency: f64) -> Self {
        assert!(efficiency > 0.0, "core efficiency must be positive");
        self.profile.core_efficiency = efficiency;
        self
    }

    /// Usable memory per node, in bytes.
    pub fn mem_budget(mut self, bytes: u64) -> Self {
        self.profile.mem_per_node = bytes;
        self
    }

    /// Local scratch-disk bandwidth, bytes/second (spill cost).
    pub fn disk_bandwidth(mut self, bps: f64) -> Self {
        assert!(bps > 0.0, "disk bandwidth must be positive");
        self.profile.disk_bandwidth_bps = bps;
        self
    }

    /// Scripted failures this allocation will suffer.
    pub fn fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    pub fn build(self) -> Cluster {
        let c = match self.cores {
            Some(cores) => Cluster::with_cores(self.profile, cores),
            None => Cluster::new(self.profile, self.nodes),
        };
        c.with_faults(self.faults)
    }
}

impl Cluster {
    /// Fluent builder: `Cluster::builder().nodes(8).cores_per_node(32)…`.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Allocate `nodes` whole nodes.
    pub fn new(profile: MachineProfile, nodes: usize) -> Self {
        assert!(nodes >= 1, "cluster needs at least one node");
        let cores = nodes * profile.cores_per_node;
        Cluster {
            profile,
            nodes,
            cores,
            faults: FaultPlan::none(),
        }
    }

    /// Allocate by total core count, mirroring the paper's "Cores/Nodes"
    /// axis labels (e.g. 256 cores = 8 Wrangler nodes); the last node may
    /// be partially used.
    pub fn with_cores(profile: MachineProfile, cores: usize) -> Self {
        assert!(cores >= 1, "need at least one core");
        let nodes = cores.div_ceil(profile.cores_per_node);
        Cluster {
            profile,
            nodes,
            cores,
            faults: FaultPlan::none(),
        }
    }

    /// Attach a fault plan to this allocation: engines running on it will
    /// observe (and must recover from) the scripted failures.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The failures scripted for this allocation.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    pub fn total_cores(&self) -> usize {
        self.cores
    }

    /// Node hosting a given global core id.
    pub fn node_of_core(&self, core: usize) -> usize {
        assert!(core < self.total_cores(), "core {core} out of range");
        core / self.profile.cores_per_node
    }

    /// Convert measured host seconds into simulated seconds on this
    /// machine's cores.
    pub fn scale_compute(&self, host_secs: f64) -> f64 {
        host_secs / self.profile.core_efficiency
    }

    /// Effective memory budget of `node` at virtual time `at_s`: the
    /// machine's `mem_per_node`, overridden by whatever fault-plan memory
    /// shrink or set is in effect by then (never above the hardware
    /// capacity).
    pub fn mem_budget(&self, node: usize, at_s: f64) -> u64 {
        match self.faults.mem_limit(node, at_s) {
            Some(limit) => limit.min(self.profile.mem_per_node),
            None => self.profile.mem_per_node,
        }
    }

    /// Earliest scripted memory-budget change strictly after `after_s`, on
    /// any node, or `None` when the schedule is exhausted. Admission
    /// controllers that found no node able to host a unit *now* use this
    /// to decide between waiting for a future budget and refusing typed.
    pub fn next_mem_change_after(&self, after_s: f64) -> Option<f64> {
        self.faults.next_mem_change_after(after_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_components() {
        let n = NetworkModel::infiniband();
        let t = n.transfer_time(6_000_000_000, false);
        assert!((t - (5e-6 + 1.0)).abs() < 1e-9);
        assert!(n.transfer_time(1024, true) < n.transfer_time(1024, false));
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let n = NetworkModel::infiniband();
        assert_eq!(n.transfer_time(0, false), n.latency_s);
    }

    #[test]
    fn cluster_core_math() {
        let c = Cluster::with_cores(comet(), 96);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.total_cores(), 96);
        assert_eq!(c.node_of_core(0), 0);
        assert_eq!(c.node_of_core(23), 0);
        assert_eq!(c.node_of_core(24), 1);
        assert_eq!(c.node_of_core(95), 3);
    }

    #[test]
    fn sub_node_allocation_allowed() {
        let c = Cluster::with_cores(comet(), 16);
        assert_eq!(c.nodes, 1);
        assert_eq!(c.total_cores(), 16);
    }

    #[test]
    fn ragged_allocation_uses_partial_last_node() {
        let c = Cluster::with_cores(comet(), 36);
        assert_eq!(c.nodes, 2);
        assert_eq!(c.total_cores(), 36);
        assert_eq!(c.node_of_core(35), 1);
    }

    #[test]
    fn wrangler_cores_are_slower() {
        let comet = Cluster::new(comet(), 1);
        let wrang = Cluster::new(wrangler(), 1);
        assert!(wrang.scale_compute(1.0) > comet.scale_compute(1.0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_core_panics() {
        Cluster::new(laptop(), 1).node_of_core(8);
    }

    #[test]
    fn builder_matches_positional() {
        let a = Cluster::builder().profile(comet()).nodes(4).build();
        let b = Cluster::new(comet(), 4);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.total_cores(), b.total_cores());
        assert_eq!(a.profile.name, b.profile.name);
    }

    #[test]
    fn builder_shape_overrides() {
        let c = Cluster::builder()
            .nodes(2)
            .cores_per_node(4)
            .mem_budget(1 << 20)
            .core_efficiency(0.5)
            .build();
        assert_eq!(c.total_cores(), 8);
        assert_eq!(c.profile.mem_per_node, 1 << 20);
        assert_eq!(c.scale_compute(1.0), 2.0);
    }

    #[test]
    fn builder_total_cores_ragged() {
        let c = Cluster::builder().profile(comet()).total_cores(36).build();
        assert_eq!(c.nodes, 2);
        assert_eq!(c.total_cores(), 36);
    }

    #[test]
    fn builder_attaches_faults() {
        let c = Cluster::builder()
            .nodes(2)
            .fault_plan(FaultPlan::none().kill_node(1, 3.0))
            .build();
        assert!(!c.faults().is_empty());
    }
}
