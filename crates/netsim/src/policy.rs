//! Bounded recovery policies.
//!
//! PR-1's fault layer made engines *survive* failures, but every recovery
//! loop was unbounded and instantaneous: a death was observed the moment it
//! happened and the task was re-dispatched forever until it stuck. A
//! [`RetryPolicy`] makes recovery honest and bounded:
//!
//! * **bounded retries** — after `max_attempts` failed attempts the task
//!   surfaces a typed [`PolicyError`] instead of spinning;
//! * **exponential backoff** — re-dispatch waits `base · factor^(k-1)`
//!   simulated seconds (capped) after the `k`-th failure, the standard
//!   thundering-herd guard;
//! * **detection delay** — a node death is noticed one heartbeat interval
//!   *after* it happens (Dask's worker heartbeat, a pilot agent's DB
//!   poll), so recovery cost is modelled, not assumed free;
//! * **per-attempt timeout and job deadline** — a watchdog kills attempts
//!   that run longer than `attempt_timeout_s`, and an attempt that could
//!   not finish by `deadline_s` fails fast.
//!
//! All engines derive their policy from
//! `FrameworkProfile::retry_policy()` and surface exhaustion as
//! `EngineError` values; [`SimExecutor::run_task_policied`]
//! (crate::SimExecutor::run_task_policied) is the executor-level
//! counterpart used by synthetic workloads and the chaos harness.

use std::error::Error;
use std::fmt;

/// Hard ceiling on any single backoff wait when no finite
/// [`RetryPolicy::backoff_cap_s`] is set. Without it, the default infinite
/// cap lets `base · factor^k` overflow into astronomical (or infinite)
/// waits at high attempt counts, which then poison every downstream
/// virtual-time computation. One simulated hour is far beyond any sane
/// re-dispatch wait.
pub const BACKOFF_SATURATION_S: f64 = 3_600.0;

/// Bounded-retry policy, all times in simulated seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff for each further attempt.
    pub backoff_factor: f64,
    /// Upper bound on any single backoff wait.
    pub backoff_cap_s: f64,
    /// Heartbeat interval: how long after a node death the scheduler
    /// *notices* it. Timeout kills are noticed immediately (the watchdog
    /// is the observer).
    pub detection_delay_s: f64,
    /// Kill any attempt still running after this long.
    pub attempt_timeout_s: Option<f64>,
    /// Absolute virtual-time deadline: an attempt that cannot finish by
    /// this time fails fast with [`PolicyError::DeadlineExceeded`].
    pub deadline_s: Option<f64>,
    /// Heartbeat period of the suspicion-based failure detector. `0.0`
    /// disables suspicion: partitioned nodes are simply waited out and
    /// only real deaths are observed (via `detection_delay_s`).
    pub heartbeat_interval_s: f64,
    /// How long after the last received heartbeat the detector declares a
    /// node suspect. A network partition that outlives this window makes
    /// the detector *false-positive* on a live node — the scheduler
    /// reschedules while the original attempt survives as a zombie.
    pub suspicion_timeout_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(3)
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and no backoff, detection
    /// delay, timeout, or deadline.
    pub fn new(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "a task gets at least one attempt");
        RetryPolicy {
            max_attempts,
            backoff_base_s: 0.0,
            backoff_factor: 2.0,
            backoff_cap_s: f64::INFINITY,
            detection_delay_s: 0.0,
            attempt_timeout_s: None,
            deadline_s: None,
            heartbeat_interval_s: 0.0,
            suspicion_timeout_s: 0.0,
        }
    }

    /// Exponential backoff: wait `base · factor^(k-1)` (≤ `cap`) before
    /// re-dispatching after the `k`-th failure.
    pub fn with_backoff(mut self, base_s: f64, factor: f64, cap_s: f64) -> Self {
        assert!(base_s >= 0.0 && factor >= 1.0 && cap_s >= 0.0);
        self.backoff_base_s = base_s;
        self.backoff_factor = factor;
        self.backoff_cap_s = cap_s;
        self
    }

    /// Heartbeat-based failure detection: deaths are observed `delay_s`
    /// after they happen.
    pub fn with_detection_delay(mut self, delay_s: f64) -> Self {
        assert!(delay_s >= 0.0);
        self.detection_delay_s = delay_s;
        self
    }

    /// Watchdog: kill attempts still running after `timeout_s`.
    pub fn with_timeout(mut self, timeout_s: f64) -> Self {
        assert!(timeout_s > 0.0);
        self.attempt_timeout_s = Some(timeout_s);
        self
    }

    /// Absolute deadline for the whole task.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0);
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Enable the suspicion-based failure detector: workers heartbeat
    /// every `heartbeat_s`; a node whose heartbeats stop (death *or*
    /// partition) is declared suspect `timeout_s` after its last received
    /// heartbeat. `timeout_s` must be at least `heartbeat_s`, otherwise
    /// the detector would suspect healthy nodes between beats.
    pub fn with_suspicion(mut self, heartbeat_s: f64, timeout_s: f64) -> Self {
        assert!(heartbeat_s > 0.0, "heartbeat interval must be positive");
        assert!(
            timeout_s >= heartbeat_s,
            "suspicion timeout below the heartbeat interval suspects healthy nodes"
        );
        self.heartbeat_interval_s = heartbeat_s;
        self.suspicion_timeout_s = timeout_s;
        self
    }

    /// The configured suspicion detector, if any.
    pub fn detector(&self) -> Option<Detector> {
        if self.heartbeat_interval_s > 0.0 {
            Some(Detector {
                heartbeat_s: self.heartbeat_interval_s,
                timeout_s: self.suspicion_timeout_s,
            })
        } else {
            None
        }
    }

    /// Deadline gate for a retry decision. The failure was observed at
    /// `observed_s`; the next attempt would dispatch at `redispatch_s`
    /// (observation + backoff + any scheduler overheads the caller adds).
    /// When the redispatch already falls past `deadline_s` the backoff
    /// sleep is doomed — the typed error surfaces *now*, stamped with the
    /// observation time, instead of burning virtual time on a wait whose
    /// attempt could never be allowed to run.
    pub fn deadline_gate(&self, observed_s: f64, redispatch_s: f64) -> Result<(), PolicyError> {
        match self.deadline_s {
            Some(deadline) if redispatch_s > deadline => Err(PolicyError::DeadlineExceeded {
                deadline_s: deadline,
                at_s: observed_s,
            }),
            _ => Ok(()),
        }
    }

    /// Backoff wait applied before dispatching `attempt` (1-based). The
    /// first attempt never waits; attempt `k+1` waits
    /// `min(cap, base · factor^(k-1))`. The wait saturates instead of
    /// overflowing: with an infinite (default) cap it is bounded by
    /// [`BACKOFF_SATURATION_S`], and a non-finite intermediate product
    /// (e.g. `factor^60` overflowing) collapses to the effective cap.
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        if attempt <= 1 || self.backoff_base_s <= 0.0 {
            return 0.0;
        }
        let cap = if self.backoff_cap_s.is_finite() {
            self.backoff_cap_s
        } else {
            BACKOFF_SATURATION_S.max(self.backoff_base_s)
        };
        let exp = (attempt - 2).min(60);
        let raw = self.backoff_base_s * self.backoff_factor.powi(exp as i32);
        if raw.is_finite() {
            raw.min(cap)
        } else {
            cap
        }
    }
}

/// Suspicion-based failure detector in virtual time. Workers beat every
/// `heartbeat_s`; a node is suspect `timeout_s` after its last *received*
/// beat. Unlike the oracle `detection_delay_s`, this detector can
/// false-positive: a partitioned-but-alive node stops being heard without
/// being dead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detector {
    /// Heartbeat period.
    pub heartbeat_s: f64,
    /// Silence tolerated after the last received heartbeat.
    pub timeout_s: f64,
}

impl Detector {
    /// When the detector declares a node suspect, given that contact was
    /// lost (death or partition cut) at `lost_contact_s`. Heartbeats land
    /// on the grid `0, h, 2h, …`; the last one *received* is the last
    /// grid point strictly before the cut (a beat exactly at the cut is
    /// lost with it). The suspect time never precedes the cut itself,
    /// which keeps the `timeout_s == heartbeat_s` boundary honest: a cut
    /// just after a beat is suspected one full timeout later, a cut just
    /// before a beat almost immediately.
    pub fn suspect_time(&self, lost_contact_s: f64) -> f64 {
        let h = self.heartbeat_s;
        let last_beat = ((lost_contact_s / h).ceil() - 1.0).max(0.0) * h;
        (last_beat + self.timeout_s).max(lost_contact_s)
    }
}

/// Why a policied task gave up. Engines map these onto their own error
/// types; nothing in this crate panics or hangs on a fault plan.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyError {
    /// Every allowed attempt was killed by a node death.
    RetriesExhausted { attempts: u32, last_failure_s: f64 },
    /// The final allowed attempt was killed by the watchdog.
    Timeout {
        attempt: u32,
        timeout_s: f64,
        at_s: f64,
    },
    /// No attempt could finish before the deadline.
    DeadlineExceeded { deadline_s: f64, at_s: f64 },
    /// Every node that could host the task is dead.
    NoSurvivingCore { at_s: f64 },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::RetriesExhausted {
                attempts,
                last_failure_s,
            } => write!(
                f,
                "task failed after {attempts} attempts (last failure at {last_failure_s:.3}s)"
            ),
            PolicyError::Timeout {
                attempt,
                timeout_s,
                at_s,
            } => write!(
                f,
                "attempt {attempt} exceeded its {timeout_s:.3}s timeout at {at_s:.3}s"
            ),
            PolicyError::DeadlineExceeded { deadline_s, at_s } => write!(
                f,
                "cannot finish by the {deadline_s:.3}s deadline (checked at {at_s:.3}s)"
            ),
            PolicyError::NoSurvivingCore { at_s } => {
                write!(f, "no surviving core at {at_s:.3}s (all nodes dead)")
            }
        }
    }
}

impl Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::new(5).with_backoff(0.5, 2.0, 3.0);
        assert_eq!(p.backoff_before(1), 0.0, "first attempt never waits");
        assert_eq!(p.backoff_before(2), 0.5);
        assert_eq!(p.backoff_before(3), 1.0);
        assert_eq!(p.backoff_before(4), 2.0);
        assert_eq!(p.backoff_before(5), 3.0, "capped");
    }

    #[test]
    fn backoff_saturates_at_high_attempt_counts() {
        // Regression: with the default infinite cap, factor^k used to grow
        // unchecked (2^60 · base ≈ 1e18 s) or overflow to infinity. Every
        // wait must stay finite and bounded by the saturation ceiling.
        let p = RetryPolicy::new(u32::MAX).with_backoff(1.0, 2.0, f64::INFINITY);
        for attempt in [2, 10, 62, 1_000, u32::MAX] {
            let w = p.backoff_before(attempt);
            assert!(w.is_finite(), "attempt {attempt} backoff must be finite");
            assert!(w <= BACKOFF_SATURATION_S, "attempt {attempt} wait {w}");
        }
        assert_eq!(p.backoff_before(u32::MAX), BACKOFF_SATURATION_S);
        // A factor large enough to overflow f64 also saturates.
        let q = RetryPolicy::new(u32::MAX).with_backoff(1.0, 1e300, f64::INFINITY);
        assert_eq!(q.backoff_before(100), BACKOFF_SATURATION_S);
        // A finite user cap still wins, even above the saturation ceiling.
        let r = RetryPolicy::new(u32::MAX).with_backoff(1.0, 2.0, 7_200.0);
        assert_eq!(r.backoff_before(u32::MAX), 7_200.0);
        // Small attempt counts are unchanged by the fix.
        assert_eq!(p.backoff_before(1), 0.0);
        assert_eq!(p.backoff_before(2), 1.0);
        assert_eq!(p.backoff_before(3), 2.0);
    }

    #[test]
    fn zero_base_means_no_backoff() {
        let p = RetryPolicy::new(4);
        for k in 1..6 {
            assert_eq!(p.backoff_before(k), 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_attempts_rejected() {
        RetryPolicy::new(0);
    }

    #[test]
    fn suspicion_detector_math() {
        let p = RetryPolicy::new(3).with_suspicion(1.0, 3.0);
        let d = p.detector().expect("suspicion enabled");
        // Cut at 5.5: last received beat was at 5.0, suspect at 8.0.
        assert_eq!(d.suspect_time(5.5), 8.0);
        // Cut exactly on a beat: that beat is lost, last received is the
        // previous one.
        assert_eq!(d.suspect_time(5.0), 7.0);
        // Cut before the first beat: nothing was ever heard after t=0.
        assert_eq!(d.suspect_time(0.5), 3.0);
        assert_eq!(d.suspect_time(0.0), 3.0);
        // timeout == heartbeat boundary: suspicion can never precede the
        // cut, even though last_beat + timeout would.
        let tight = RetryPolicy::new(3).with_suspicion(2.0, 2.0);
        let d = tight.detector().unwrap();
        assert_eq!(d.suspect_time(3.9), 4.0, "last beat 2.0 + 2.0");
        assert_eq!(d.suspect_time(4.0), 4.0, "clamped to the cut itself");
        assert_eq!(d.suspect_time(4.1), 6.0);
    }

    #[test]
    fn suspicion_disabled_by_default() {
        assert_eq!(RetryPolicy::new(3).detector(), None);
    }

    #[test]
    #[should_panic]
    fn suspicion_timeout_below_heartbeat_rejected() {
        RetryPolicy::new(3).with_suspicion(2.0, 1.0);
    }

    #[test]
    fn errors_render() {
        let e = PolicyError::RetriesExhausted {
            attempts: 3,
            last_failure_s: 1.5,
        };
        assert!(e.to_string().contains("3 attempts"));
        let t = PolicyError::Timeout {
            attempt: 2,
            timeout_s: 4.0,
            at_s: 9.0,
        };
        assert!(t.to_string().contains("timeout"));
    }
}
