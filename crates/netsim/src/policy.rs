//! Bounded recovery policies.
//!
//! PR-1's fault layer made engines *survive* failures, but every recovery
//! loop was unbounded and instantaneous: a death was observed the moment it
//! happened and the task was re-dispatched forever until it stuck. A
//! [`RetryPolicy`] makes recovery honest and bounded:
//!
//! * **bounded retries** — after `max_attempts` failed attempts the task
//!   surfaces a typed [`PolicyError`] instead of spinning;
//! * **exponential backoff** — re-dispatch waits `base · factor^(k-1)`
//!   simulated seconds (capped) after the `k`-th failure, the standard
//!   thundering-herd guard;
//! * **detection delay** — a node death is noticed one heartbeat interval
//!   *after* it happens (Dask's worker heartbeat, a pilot agent's DB
//!   poll), so recovery cost is modelled, not assumed free;
//! * **per-attempt timeout and job deadline** — a watchdog kills attempts
//!   that run longer than `attempt_timeout_s`, and an attempt that could
//!   not finish by `deadline_s` fails fast.
//!
//! All engines derive their policy from
//! `FrameworkProfile::retry_policy()` and surface exhaustion as
//! `EngineError` values; [`SimExecutor::run_task_policied`]
//! (crate::SimExecutor::run_task_policied) is the executor-level
//! counterpart used by synthetic workloads and the chaos harness.

use std::error::Error;
use std::fmt;

/// Hard ceiling on any single backoff wait when no finite
/// [`RetryPolicy::backoff_cap_s`] is set. Without it, the default infinite
/// cap lets `base · factor^k` overflow into astronomical (or infinite)
/// waits at high attempt counts, which then poison every downstream
/// virtual-time computation. One simulated hour is far beyond any sane
/// re-dispatch wait.
pub const BACKOFF_SATURATION_S: f64 = 3_600.0;

/// Bounded-retry policy, all times in simulated seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff for each further attempt.
    pub backoff_factor: f64,
    /// Upper bound on any single backoff wait.
    pub backoff_cap_s: f64,
    /// Heartbeat interval: how long after a node death the scheduler
    /// *notices* it. Timeout kills are noticed immediately (the watchdog
    /// is the observer).
    pub detection_delay_s: f64,
    /// Kill any attempt still running after this long.
    pub attempt_timeout_s: Option<f64>,
    /// Absolute virtual-time deadline: an attempt that cannot finish by
    /// this time fails fast with [`PolicyError::DeadlineExceeded`].
    pub deadline_s: Option<f64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(3)
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and no backoff, detection
    /// delay, timeout, or deadline.
    pub fn new(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "a task gets at least one attempt");
        RetryPolicy {
            max_attempts,
            backoff_base_s: 0.0,
            backoff_factor: 2.0,
            backoff_cap_s: f64::INFINITY,
            detection_delay_s: 0.0,
            attempt_timeout_s: None,
            deadline_s: None,
        }
    }

    /// Exponential backoff: wait `base · factor^(k-1)` (≤ `cap`) before
    /// re-dispatching after the `k`-th failure.
    pub fn with_backoff(mut self, base_s: f64, factor: f64, cap_s: f64) -> Self {
        assert!(base_s >= 0.0 && factor >= 1.0 && cap_s >= 0.0);
        self.backoff_base_s = base_s;
        self.backoff_factor = factor;
        self.backoff_cap_s = cap_s;
        self
    }

    /// Heartbeat-based failure detection: deaths are observed `delay_s`
    /// after they happen.
    pub fn with_detection_delay(mut self, delay_s: f64) -> Self {
        assert!(delay_s >= 0.0);
        self.detection_delay_s = delay_s;
        self
    }

    /// Watchdog: kill attempts still running after `timeout_s`.
    pub fn with_timeout(mut self, timeout_s: f64) -> Self {
        assert!(timeout_s > 0.0);
        self.attempt_timeout_s = Some(timeout_s);
        self
    }

    /// Absolute deadline for the whole task.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0);
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Deadline gate for a retry decision. The failure was observed at
    /// `observed_s`; the next attempt would dispatch at `redispatch_s`
    /// (observation + backoff + any scheduler overheads the caller adds).
    /// When the redispatch already falls past `deadline_s` the backoff
    /// sleep is doomed — the typed error surfaces *now*, stamped with the
    /// observation time, instead of burning virtual time on a wait whose
    /// attempt could never be allowed to run.
    pub fn deadline_gate(&self, observed_s: f64, redispatch_s: f64) -> Result<(), PolicyError> {
        match self.deadline_s {
            Some(deadline) if redispatch_s > deadline => Err(PolicyError::DeadlineExceeded {
                deadline_s: deadline,
                at_s: observed_s,
            }),
            _ => Ok(()),
        }
    }

    /// Backoff wait applied before dispatching `attempt` (1-based). The
    /// first attempt never waits; attempt `k+1` waits
    /// `min(cap, base · factor^(k-1))`. The wait saturates instead of
    /// overflowing: with an infinite (default) cap it is bounded by
    /// [`BACKOFF_SATURATION_S`], and a non-finite intermediate product
    /// (e.g. `factor^60` overflowing) collapses to the effective cap.
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        if attempt <= 1 || self.backoff_base_s <= 0.0 {
            return 0.0;
        }
        let cap = if self.backoff_cap_s.is_finite() {
            self.backoff_cap_s
        } else {
            BACKOFF_SATURATION_S.max(self.backoff_base_s)
        };
        let exp = (attempt - 2).min(60);
        let raw = self.backoff_base_s * self.backoff_factor.powi(exp as i32);
        if raw.is_finite() {
            raw.min(cap)
        } else {
            cap
        }
    }
}

/// Why a policied task gave up. Engines map these onto their own error
/// types; nothing in this crate panics or hangs on a fault plan.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyError {
    /// Every allowed attempt was killed by a node death.
    RetriesExhausted { attempts: u32, last_failure_s: f64 },
    /// The final allowed attempt was killed by the watchdog.
    Timeout {
        attempt: u32,
        timeout_s: f64,
        at_s: f64,
    },
    /// No attempt could finish before the deadline.
    DeadlineExceeded { deadline_s: f64, at_s: f64 },
    /// Every node that could host the task is dead.
    NoSurvivingCore { at_s: f64 },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::RetriesExhausted {
                attempts,
                last_failure_s,
            } => write!(
                f,
                "task failed after {attempts} attempts (last failure at {last_failure_s:.3}s)"
            ),
            PolicyError::Timeout {
                attempt,
                timeout_s,
                at_s,
            } => write!(
                f,
                "attempt {attempt} exceeded its {timeout_s:.3}s timeout at {at_s:.3}s"
            ),
            PolicyError::DeadlineExceeded { deadline_s, at_s } => write!(
                f,
                "cannot finish by the {deadline_s:.3}s deadline (checked at {at_s:.3}s)"
            ),
            PolicyError::NoSurvivingCore { at_s } => {
                write!(f, "no surviving core at {at_s:.3}s (all nodes dead)")
            }
        }
    }
}

impl Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::new(5).with_backoff(0.5, 2.0, 3.0);
        assert_eq!(p.backoff_before(1), 0.0, "first attempt never waits");
        assert_eq!(p.backoff_before(2), 0.5);
        assert_eq!(p.backoff_before(3), 1.0);
        assert_eq!(p.backoff_before(4), 2.0);
        assert_eq!(p.backoff_before(5), 3.0, "capped");
    }

    #[test]
    fn backoff_saturates_at_high_attempt_counts() {
        // Regression: with the default infinite cap, factor^k used to grow
        // unchecked (2^60 · base ≈ 1e18 s) or overflow to infinity. Every
        // wait must stay finite and bounded by the saturation ceiling.
        let p = RetryPolicy::new(u32::MAX).with_backoff(1.0, 2.0, f64::INFINITY);
        for attempt in [2, 10, 62, 1_000, u32::MAX] {
            let w = p.backoff_before(attempt);
            assert!(w.is_finite(), "attempt {attempt} backoff must be finite");
            assert!(w <= BACKOFF_SATURATION_S, "attempt {attempt} wait {w}");
        }
        assert_eq!(p.backoff_before(u32::MAX), BACKOFF_SATURATION_S);
        // A factor large enough to overflow f64 also saturates.
        let q = RetryPolicy::new(u32::MAX).with_backoff(1.0, 1e300, f64::INFINITY);
        assert_eq!(q.backoff_before(100), BACKOFF_SATURATION_S);
        // A finite user cap still wins, even above the saturation ceiling.
        let r = RetryPolicy::new(u32::MAX).with_backoff(1.0, 2.0, 7_200.0);
        assert_eq!(r.backoff_before(u32::MAX), 7_200.0);
        // Small attempt counts are unchanged by the fix.
        assert_eq!(p.backoff_before(1), 0.0);
        assert_eq!(p.backoff_before(2), 1.0);
        assert_eq!(p.backoff_before(3), 2.0);
    }

    #[test]
    fn zero_base_means_no_backoff() {
        let p = RetryPolicy::new(4);
        for k in 1..6 {
            assert_eq!(p.backoff_before(k), 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_attempts_rejected() {
        RetryPolicy::new(0);
    }

    #[test]
    fn errors_render() {
        let e = PolicyError::RetriesExhausted {
            attempts: 3,
            last_failure_s: 1.5,
        };
        assert!(e.to_string().contains("3 attempts"));
        let t = PolicyError::Timeout {
            attempt: 2,
            timeout_s: 4.0,
            at_s: 9.0,
        };
        assert!(t.to_string().contains("timeout"));
    }
}
