//! Measuring real kernel time for simulated placement.

use std::time::Instant;

/// Run `f` and return its result together with measured host wall-clock
/// seconds. This is the boundary between real execution and virtual time:
/// the closure's work is genuine; only its *placement* is simulated.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// [`measure`], scaling the measured time by `1 / efficiency` — converts a
/// host measurement into seconds on a simulated core of relative speed
/// `efficiency`.
pub fn measure_scaled<T>(efficiency: f64, f: impl FnOnce() -> T) -> (T, f64) {
    assert!(efficiency > 0.0, "core efficiency must be positive");
    let (out, t) = measure(f);
    (out, t / efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_result_and_nonnegative_time() {
        let (v, t) = measure(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(t >= 0.0);
    }

    #[test]
    fn measure_times_real_work() {
        let (_, t) = measure(|| std::thread::sleep(std::time::Duration::from_millis(20)));
        assert!(t >= 0.015, "slept 20ms but measured {t}");
    }

    #[test]
    fn scaled_divides_by_efficiency() {
        let (_, t1) = measure(|| std::thread::sleep(std::time::Duration::from_millis(10)));
        let (_, t2) = measure_scaled(0.5, || {
            std::thread::sleep(std::time::Duration::from_millis(10))
        });
        // t2 measures the same sleep but reports ~2x the virtual time.
        assert!(t2 > t1 * 1.5, "t1={t1} t2={t2}");
    }

    #[test]
    #[should_panic]
    fn zero_efficiency_panics() {
        measure_scaled(0.0, || ());
    }
}
