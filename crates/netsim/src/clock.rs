//! Measuring real kernel time for simulated placement.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// When set, [`measure`] still runs its closure but reports `0.0` host
/// seconds, so every simulated duration reduces to the *modelled* charges
/// (framework overheads, `TaskCtx` charges, serialization, network) — which
/// are pure functions of the workload. That makes whole runs bit-identical
/// across repeats and across host thread counts, which is what the
/// host-parallel determinism suite asserts. Off by default: real runs keep
/// real measurements.
static DETERMINISTIC_TIMING: AtomicBool = AtomicBool::new(false);

/// Enable or disable deterministic timing for this process (see
/// [`measure`]). Intended for determinism tests; flip it before any engine
/// handle is created.
pub fn set_deterministic_timing(on: bool) {
    DETERMINISTIC_TIMING.store(on, Ordering::Relaxed);
}

/// Whether [`measure`] is currently reporting zero host seconds.
pub fn deterministic_timing() -> bool {
    DETERMINISTIC_TIMING.load(Ordering::Relaxed)
}

/// Run `f` and return its result together with measured host wall-clock
/// seconds. This is the boundary between real execution and virtual time:
/// the closure's work is genuine; only its *placement* is simulated.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    let host_s = if deterministic_timing() {
        0.0
    } else {
        start.elapsed().as_secs_f64()
    };
    (out, host_s)
}

/// [`measure`], scaling the measured time by `1 / efficiency` — converts a
/// host measurement into seconds on a simulated core of relative speed
/// `efficiency`.
pub fn measure_scaled<T>(efficiency: f64, f: impl FnOnce() -> T) -> (T, f64) {
    assert!(efficiency > 0.0, "core efficiency must be positive");
    let (out, t) = measure(f);
    (out, t / efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_result_and_nonnegative_time() {
        let (v, t) = measure(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(t >= 0.0);
    }

    #[test]
    fn measure_times_real_work() {
        let (_, t) = measure(|| std::thread::sleep(std::time::Duration::from_millis(20)));
        assert!(t >= 0.015, "slept 20ms but measured {t}");
    }

    #[test]
    fn scaled_divides_by_efficiency() {
        let (_, t1) = measure(|| std::thread::sleep(std::time::Duration::from_millis(10)));
        let (_, t2) = measure_scaled(0.5, || {
            std::thread::sleep(std::time::Duration::from_millis(10))
        });
        // t2 measures the same sleep but reports ~2x the virtual time.
        assert!(t2 > t1 * 1.5, "t1={t1} t2={t2}");
    }

    #[test]
    #[should_panic]
    fn zero_efficiency_panics() {
        measure_scaled(0.0, || ());
    }
}
