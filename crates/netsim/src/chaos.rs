//! Deterministic chaos-fuzzing harness with invariant oracles.
//!
//! PR-1 scripted *point* failures by hand; this module tests recovery
//! *adversarially*. From a base seed it generates random [`FaultPlan`]s
//! (node deaths × straggler cores × lost fetches × mid-run memory
//! shrinks), runs a workload under each, and checks invariant oracles
//! against the fault-free run:
//!
//! * **result equivalence** — the workload's result fingerprint must be
//!   bit-identical to the fault-free run (or the engine must surface a
//!   typed error; it must never silently return different data);
//! * **shuffle byte conservation** — lost fetches are re-sent, not
//!   re-counted, so `bytes_shuffled` matches the fault-free run;
//! * **spill byte conservation** — the report's spilled/evicted byte
//!   totals match the sum of `Spill`/`Evict` events in the trace (and
//!   OOM kills match their events), so memory pressure is accounted, not
//!   estimated;
//! * **eviction ⇔ recompute equivalence** — when cached partitions were
//!   evicted under pressure, the lineage-recomputed results must still be
//!   bit-identical to the never-evicted run;
//! * **recovery-accounting consistency** — lost work implies a visible
//!   recovery (`retries`, `recomputed_partitions`), and a `"recovery"`
//!   phase never appears without lost work behind it;
//! * **trace accounting** — completed (non-killed) task events equal the
//!   report's task count (no task is both completed and killed) and no
//!   two task attempts overlap on one core;
//! * **termination** — the run returns (bounded [`RetryPolicy`]s make
//!   this structural) with a finite makespan.
//!
//! On a violation the plan is *shrunk* — deaths and stragglers are
//! greedily dropped and the fetch-loss probability zeroed while the
//! violation still reproduces — to a minimal counterexample, and the whole
//! [`FuzzReport`] serializes to JSON so CI can attach it as an artifact
//! and a developer can replay it with
//! `Cluster::with_faults(FaultPlan::from_json(..))`.
//!
//! Everything is deterministic: the same config and seed produce the same
//! plans, the same violations, and the same shrunk counterexamples.

use crate::fault::{
    mix, FaultPlan, FrameDelay, FrameDrop, LinkDegrade, MemShrink, NodeDeath, Partition,
    ProducerStall, Straggler,
};
use crate::report::SimReport;
use crate::trace::EventKind;

/// SplitMix64 sequence: a tiny deterministic RNG for plan generation.
struct SeedStream(u64);

impl SeedStream {
    fn new(seed: u64) -> Self {
        SeedStream(mix(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.0)
    }

    /// Uniform in `[0, n)`; `n == 0` yields 0.
    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// What the chaos generator is allowed to inject, and how the oracles
/// judge the outcome.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Cluster shape the workload runs on (used to draw valid node/core
    /// indices; at least one node always survives).
    pub nodes: usize,
    pub cores_per_node: usize,
    /// First seed of the sweep; plan `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Number of plans to generate and run.
    pub plans: usize,
    /// At most this many node deaths per plan (clamped to `nodes - 1`).
    pub max_deaths: usize,
    /// Death times are drawn uniformly from this window.
    pub death_window_s: (f64, f64),
    /// At most this many straggler cores per plan.
    pub max_stragglers: usize,
    /// Straggler factors are drawn from `[1, straggler_factor_max]`.
    pub straggler_factor_max: f64,
    /// Fetch-loss probability is drawn from `[0, lost_fetch_prob_max]`
    /// (half of all plans keep fetches reliable).
    pub lost_fetch_prob_max: f64,
    /// At most this many mid-run memory shrinks per plan.
    pub max_mem_shrinks: usize,
    /// Memory shrink times are drawn uniformly from this window.
    pub mem_shrink_window_s: (f64, f64),
    /// The per-node memory budget the workload's cluster declares; shrink
    /// targets are fractions of it.
    pub mem_per_node: u64,
    /// Shrink targets are drawn from
    /// `[mem_shrink_frac.0, mem_shrink_frac.1) × mem_per_node`.
    pub mem_shrink_frac: (f64, f64),
    /// Whether a typed error from the workload is an acceptable outcome
    /// (bounded policies may legitimately exhaust under heavy plans).
    /// When `false`, any error is a violation.
    pub allow_typed_errors: bool,
    /// Check trace-level task accounting. Disable for engines whose
    /// report's `tasks` is not an attempt count (mpilike counts ranks).
    pub check_trace_accounting: bool,
    /// Require an *empty* plan to reproduce the baseline report
    /// byte-for-byte. Holds for synthetic fixed-duration workloads;
    /// disable for workloads that re-measure real closure durations each
    /// run (their makespans carry µs-scale measurement jitter).
    pub check_empty_plan_determinism: bool,
    /// Frame count of the streamed workload under test. `0` (the default)
    /// disables stream-fault generation entirely, leaving plans for batch
    /// workloads byte-identical to what older configs produced.
    pub stream_frames: usize,
    /// At most this many producer stalls per plan.
    pub max_producer_stalls: usize,
    /// Stall (and crash) times are drawn uniformly from this window.
    pub producer_stall_window_s: (f64, f64),
    /// Stall lengths are drawn uniformly from this range.
    pub producer_stall_len_s: (f64, f64),
    /// Per-plan probability that the producer also crashes outright.
    pub producer_crash_prob: f64,
    /// At most this many scripted frame drops per plan.
    pub max_frame_drops: usize,
    /// At most this many scripted frame delays per plan.
    pub max_frame_delays: usize,
    /// Scripted frame delays are drawn from `(0, frame_delay_max_s]`.
    pub frame_delay_max_s: f64,
    /// Seeded per-frame drop probability is drawn from
    /// `[0, frame_drop_prob_max]` (half of all plans keep delivery
    /// reliable).
    pub frame_drop_prob_max: f64,
    /// Seeded per-frame duplicate-delivery probability is drawn from
    /// `[0, frame_dup_prob_max]` (half of all plans deliver exactly once).
    pub frame_dup_prob_max: f64,
    /// At most this many scripted network partitions per plan. `0` (the
    /// default) disables partition and link-degradation generation
    /// entirely, leaving plans byte-identical to what older configs
    /// produced for the same `(cfg, seed)`.
    pub max_partitions: usize,
    /// Partition cut times are drawn from this window (successive cuts
    /// are laid out disjoint by construction, so every plan validates).
    pub partition_window_s: (f64, f64),
    /// Cut-to-heal durations are drawn uniformly from this range.
    pub partition_len_s: (f64, f64),
    /// At most this many per-link degradations per plan.
    pub max_link_degrades: usize,
    /// Link latency factors are drawn from `[1, link_factor_max]`.
    pub link_factor_max: f64,
    /// Link loss probability is drawn from `[0, link_loss_prob_max]`
    /// (half of all degraded links stay lossless).
    pub link_loss_prob_max: f64,
}

impl ChaosConfig {
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes >= 1 && cores_per_node >= 1);
        ChaosConfig {
            nodes,
            cores_per_node,
            base_seed: 0,
            plans: 100,
            max_deaths: 1,
            death_window_s: (0.0, 10.0),
            max_stragglers: 2,
            straggler_factor_max: 8.0,
            lost_fetch_prob_max: 0.3,
            max_mem_shrinks: 1,
            mem_shrink_window_s: (0.0, 10.0),
            mem_per_node: 16 * (1 << 30),
            mem_shrink_frac: (0.3, 0.9),
            allow_typed_errors: true,
            check_trace_accounting: true,
            check_empty_plan_determinism: true,
            stream_frames: 0,
            max_producer_stalls: 1,
            producer_stall_window_s: (0.0, 10.0),
            producer_stall_len_s: (0.5, 3.0),
            producer_crash_prob: 0.15,
            max_frame_drops: 2,
            max_frame_delays: 2,
            frame_delay_max_s: 2.0,
            frame_drop_prob_max: 0.1,
            frame_dup_prob_max: 0.1,
            max_partitions: 0,
            partition_window_s: (0.0, 10.0),
            partition_len_s: (0.5, 4.0),
            max_link_degrades: 1,
            link_factor_max: 4.0,
            link_loss_prob_max: 0.2,
        }
    }

    /// Enable stream-fault generation for a streamed workload of
    /// `frames` frames (producer stalls/crashes, scripted drops and
    /// delays, seeded loss and duplicate delivery).
    pub fn with_stream(mut self, frames: usize) -> Self {
        self.stream_frames = frames;
        self
    }

    /// Enable partition generation: up to `max` scripted network cuts
    /// (plus link degradations) per plan. The driver's node 0 is never
    /// isolated alone — cuts strand worker groups, as real split-brain
    /// scenarios do.
    pub fn with_partitions(mut self, max: usize) -> Self {
        self.max_partitions = max;
        self
    }
}

/// Generate the plan for one seed: deaths on distinct nodes (always
/// leaving a survivor), straggler cores, mid-run memory shrinks, and an
/// optional fetch-loss rate. Deterministic in `(cfg, seed)`.
pub fn plan_for_seed(cfg: &ChaosConfig, seed: u64) -> FaultPlan {
    let mut rng = SeedStream::new(seed);
    let max_deaths = cfg.max_deaths.min(cfg.nodes.saturating_sub(1));
    let n_deaths = rng.below(max_deaths + 1);
    let mut nodes: Vec<usize> = (0..cfg.nodes).collect();
    let mut deaths = Vec::with_capacity(n_deaths);
    let (lo, hi) = cfg.death_window_s;
    for i in 0..n_deaths {
        // Partial Fisher–Yates: death nodes are distinct.
        let j = i + rng.below(nodes.len() - i);
        nodes.swap(i, j);
        deaths.push(NodeDeath {
            node: nodes[i],
            at_s: lo + rng.f64() * (hi - lo),
        });
    }
    let n_stragglers = rng.below(cfg.max_stragglers + 1);
    let total_cores = cfg.nodes * cfg.cores_per_node;
    let stragglers = (0..n_stragglers)
        .map(|_| Straggler {
            core: rng.below(total_cores),
            factor: 1.0 + rng.f64() * (cfg.straggler_factor_max - 1.0).max(0.0),
        })
        .collect();
    let n_shrinks = rng.below(cfg.max_mem_shrinks + 1);
    let (mlo, mhi) = cfg.mem_shrink_window_s;
    let (flo, fhi) = cfg.mem_shrink_frac;
    let mem_shrinks = (0..n_shrinks)
        .map(|_| {
            let frac = flo + rng.f64() * (fhi - flo).max(0.0);
            MemShrink {
                node: rng.below(cfg.nodes),
                at_s: mlo + rng.f64() * (mhi - mlo),
                to_bytes: (cfg.mem_per_node as f64 * frac) as u64,
            }
        })
        .collect();
    let lost_fetch_prob = if rng.f64() < 0.5 {
        0.0
    } else {
        rng.f64() * cfg.lost_fetch_prob_max
    };
    let plan = FaultPlan::from_parts(deaths, stragglers, mem_shrinks, lost_fetch_prob, mix(seed));
    if cfg.stream_frames == 0 && cfg.max_partitions == 0 {
        // Batch config: no stream or partition draws at all, so plans
        // stay byte-identical to what pre-streaming harnesses produced
        // for the same (cfg, seed).
        return plan;
    }
    let plan = if cfg.stream_frames > 0 {
        stream_draws(cfg, &mut rng, plan)
    } else {
        plan
    };
    if cfg.max_partitions == 0 {
        return plan;
    }
    partition_draws(cfg, &mut rng, plan)
}

/// Stream-fault draws for [`plan_for_seed`]. Split out so the draw order
/// stays a stable prefix: enabling partitions never changes what a
/// stream-only config would have drawn.
fn stream_draws(cfg: &ChaosConfig, rng: &mut SeedStream, plan: FaultPlan) -> FaultPlan {
    let mut producer_stalls = Vec::new();
    let n_stalls = rng.below(cfg.max_producer_stalls + 1);
    let (slo, shi) = cfg.producer_stall_window_s;
    let (llo, lhi) = cfg.producer_stall_len_s;
    for _ in 0..n_stalls {
        producer_stalls.push(ProducerStall {
            at_s: slo + rng.f64() * (shi - slo).max(0.0),
            for_s: (llo + rng.f64() * (lhi - llo).max(0.0)).max(1e-3),
        });
    }
    if rng.f64() < cfg.producer_crash_prob {
        producer_stalls.push(ProducerStall {
            at_s: slo + rng.f64() * (shi - slo).max(0.0),
            for_s: f64::INFINITY,
        });
    }
    let n_drops = rng.below(cfg.max_frame_drops + 1);
    let frame_drops = (0..n_drops)
        .map(|_| FrameDrop {
            frame: rng.below(cfg.stream_frames),
        })
        .collect();
    let n_delays = rng.below(cfg.max_frame_delays + 1);
    let frame_delays = (0..n_delays)
        .map(|_| FrameDelay {
            frame: rng.below(cfg.stream_frames),
            by_s: rng.f64() * cfg.frame_delay_max_s,
        })
        .collect();
    let frame_drop_prob = if rng.f64() < 0.5 {
        0.0
    } else {
        rng.f64() * cfg.frame_drop_prob_max
    };
    let frame_dup_prob = if rng.f64() < 0.5 {
        0.0
    } else {
        rng.f64() * cfg.frame_dup_prob_max
    };
    plan.with_stream_parts(
        producer_stalls,
        frame_drops,
        frame_delays,
        frame_drop_prob,
        frame_dup_prob,
    )
}

/// Partition and link-degradation draws for [`plan_for_seed`]. Cut
/// windows are laid out left-to-right from a moving cursor, so no two
/// partitions ever overlap in time and every generated plan validates.
fn partition_draws(cfg: &ChaosConfig, rng: &mut SeedStream, plan: FaultPlan) -> FaultPlan {
    let n_parts = if cfg.nodes >= 2 {
        rng.below(cfg.max_partitions + 1)
    } else {
        0 // a single node has nothing to cut
    };
    let (plo, phi) = cfg.partition_window_s;
    let (llo, lhi) = cfg.partition_len_s;
    let mut partitions = Vec::with_capacity(n_parts);
    let mut cursor = plo;
    for _ in 0..n_parts {
        let from_s = cursor + rng.f64() * (phi - cursor).max(0.0);
        let len = (llo + rng.f64() * (lhi - llo).max(0.0)).max(1e-3);
        let to_s = from_s + len;
        // Isolate a random non-empty set of worker nodes; the driver's
        // node 0 always stays in the implicit remainder group.
        let k = 1 + rng.below(cfg.nodes - 1);
        let mut workers: Vec<usize> = (1..cfg.nodes).collect();
        let mut cut = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + rng.below(workers.len() - i);
            workers.swap(i, j);
            cut.push(workers[i]);
        }
        cut.sort_unstable();
        partitions.push(Partition {
            groups: vec![cut],
            from_s,
            to_s,
        });
        cursor = to_s;
    }
    let n_links = if cfg.nodes >= 2 {
        rng.below(cfg.max_link_degrades + 1)
    } else {
        0
    };
    let mut link_degrades = Vec::with_capacity(n_links);
    for _ in 0..n_links {
        let a = rng.below(cfg.nodes);
        let b = (a + 1 + rng.below(cfg.nodes - 1)) % cfg.nodes;
        let latency_factor = 1.0 + rng.f64() * (cfg.link_factor_max - 1.0).max(0.0);
        let loss_prob = if rng.f64() < 0.5 {
            0.0
        } else {
            rng.f64() * cfg.link_loss_prob_max
        };
        let from_s = plo + rng.f64() * (phi - plo).max(0.0);
        let len = (llo + rng.f64() * (lhi - llo).max(0.0)).max(1e-3);
        link_degrades.push(LinkDegrade {
            a,
            b,
            latency_factor,
            loss_prob,
            from_s,
            to_s: from_s + len,
        });
    }
    plan.with_partition_parts(partitions, link_degrades)
}

/// What one workload run under one plan produced: a fingerprint of the
/// *data* the workload computed (build it with [`Fingerprint`] over
/// results only — never over timings) plus the full [`SimReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosOutcome {
    pub fingerprint: u64,
    pub report: SimReport,
}

/// Order-sensitive 64-bit fingerprint builder for workload results.
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    pub fn new() -> Self {
        Fingerprint(0x9e37_79b9_7f4a_7c15)
    }

    pub fn write_u64(&mut self, v: u64) {
        self.0 = mix(self.0 ^ mix(v));
    }

    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Bit-exact: equal fingerprints mean equal f64 bit patterns.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    pub fn finish(&self) -> u64 {
        mix(self.0)
    }
}

/// One invariant violation, with the original and shrunk plans.
#[derive(Clone, Debug)]
pub struct Violation {
    pub seed: u64,
    pub message: String,
    pub plan: FaultPlan,
    pub shrunk: FaultPlan,
}

/// Outcome of a fuzz sweep.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    pub plans_run: usize,
    pub violations: Vec<Violation>,
}

impl FuzzReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// JSON artifact for CI: every violation carries its seed, message,
    /// and both the original and minimal replayable plans.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"plans_run\":{},\"passed\":{},\"violations\":[",
            self.plans_run,
            self.passed()
        );
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seed\":{},\"message\":\"{}\",\"plan\":{},\"shrunk\":{}}}",
                v.seed,
                escape_json(&v.message),
                v.plan.to_json(),
                v.shrunk.to_json()
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Check every oracle for one run. `Ok(outcome)` means the workload
/// completed; `Err` is a typed engine error (acceptable when
/// `cfg.allow_typed_errors`). Returns the first violated invariant.
pub fn check_invariants(
    cfg: &ChaosConfig,
    baseline: &ChaosOutcome,
    plan: &FaultPlan,
    result: &Result<ChaosOutcome, String>,
) -> Option<String> {
    let outcome = match result {
        // Bounded failure is an acceptable outcome; the run still
        // terminated with a typed error rather than hanging.
        Err(_) if cfg.allow_typed_errors => return None,
        Err(e) => return Some(format!("workload failed under plan: {e}")),
        Ok(o) => o,
    };
    let r = &outcome.report;
    if outcome.fingerprint != baseline.fingerprint {
        // Eviction ⇔ recompute equivalence: when data was evicted under
        // memory pressure, divergence means the lineage recompute path
        // produced different bits — name the culprit precisely.
        if r.bytes_evicted > 0 {
            return Some(format!(
                "evicted partitions were recomputed to different data \
                 (fingerprint {:#018x} != fault-free {:#018x}, {} bytes evicted)",
                outcome.fingerprint, baseline.fingerprint, r.bytes_evicted
            ));
        }
        return Some(format!(
            "result diverged from fault-free run (fingerprint {:#018x} != {:#018x})",
            outcome.fingerprint, baseline.fingerprint
        ));
    }
    if !r.makespan_s.is_finite() || r.makespan_s < 0.0 {
        return Some(format!("non-finite makespan {}", r.makespan_s));
    }
    // Zombie/fence accounting: zombies exist only under scripted
    // partitions, and a zombie attempt whose stale result was never
    // fenced is a double-count waiting to happen. The fingerprint oracle
    // above already proved no double-count *happened*; these prove the
    // bookkeeping that prevents it is present.
    if !plan.has_partitions() && (r.zombie_attempts > 0 || r.fenced_results > 0) {
        return Some(format!(
            "plan scripts no partition but the report claims {} zombie attempts / {} fenced results",
            r.zombie_attempts, r.fenced_results
        ));
    }
    if r.zombie_attempts > 0 && r.fenced_results == 0 {
        return Some(format!(
            "{} zombie attempts but no fenced result: stale outputs were not rejected",
            r.zombie_attempts
        ));
    }
    if r.zombie_time_s < 0.0 || (r.zombie_attempts == 0 && r.zombie_time_s != 0.0) {
        return Some(format!(
            "inconsistent zombie accounting: {} attempts, {}s wasted",
            r.zombie_attempts, r.zombie_time_s
        ));
    }
    if let Some(trace) = &r.trace {
        if !trace.is_sampled() {
            let fences = trace
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Fenced { .. }))
                .count();
            if fences != r.fenced_results {
                return Some(format!(
                    "fences not conserved: trace records {fences} but the report claims {}",
                    r.fenced_results
                ));
            }
        }
    }
    if r.bytes_shuffled != baseline.report.bytes_shuffled {
        return Some(format!(
            "shuffle bytes not conserved: {} vs fault-free {}",
            r.bytes_shuffled, baseline.report.bytes_shuffled
        ));
    }
    // Spill byte conservation: the report's memory-pressure totals must
    // equal the sum of the typed events in the trace — spills and
    // evictions are accounted where they happen, never estimated.
    if let Some(trace) = &r.trace {
        let (mut spilled, mut evicted, mut ooms) = (0u64, 0u64, 0usize);
        for ev in &trace.events {
            // Per-event well-formedness. `Trace::record` checks these as
            // debug_assert!s only, which release/CI chaos runs never
            // execute — so the oracle re-checks them on every battery run
            // (same 1e-12 ready-time epsilon as the recorder).
            if ev.end_s < ev.start_s {
                return Some(format!(
                    "trace event {} ({} in phase {:?}) ends at {} before its start {}",
                    ev.task,
                    ev.kind.kind_name(),
                    trace.phase_of(ev),
                    ev.end_s,
                    ev.start_s
                ));
            }
            if ev.ready_s > ev.start_s + 1e-12 {
                return Some(format!(
                    "trace event {} ({} in phase {:?}) became ready at {}, after its start {}",
                    ev.task,
                    ev.kind.kind_name(),
                    trace.phase_of(ev),
                    ev.ready_s,
                    ev.start_s
                ));
            }
            match ev.kind {
                EventKind::Spill { bytes, .. } => spilled += bytes,
                EventKind::Evict { bytes, .. } => evicted += bytes,
                EventKind::OomKill { .. } => ooms += 1,
                _ => {}
            }
        }
        if spilled != r.bytes_spilled {
            return Some(format!(
                "spill bytes not conserved: trace records {spilled} but the report claims {}",
                r.bytes_spilled
            ));
        }
        if evicted != r.bytes_evicted {
            return Some(format!(
                "evicted bytes not conserved: trace records {evicted} but the report claims {}",
                r.bytes_evicted
            ));
        }
        if ooms != r.oom_kills {
            return Some(format!(
                "oom kills not conserved: trace records {ooms} but the report claims {}",
                r.oom_kills
            ));
        }
    }
    if cfg.check_empty_plan_determinism && plan.is_empty() && *r != baseline.report {
        return Some("empty plan produced a different report (non-determinism)".into());
    }
    if r.lost_time_s > 0.0 && r.retries == 0 && r.recomputed_partitions == 0 {
        return Some(format!(
            "{:.3}s of work lost but no retry or recompute recorded",
            r.lost_time_s
        ));
    }
    let recovery = r.phase_total("recovery").unwrap_or(0.0);
    if recovery > 0.0 && r.retries == 0 && r.recomputed_partitions == 0 && r.lost_time_s == 0.0 {
        return Some(format!(
            "phantom recovery: {recovery:.3}s of \"recovery\" phase with nothing lost or retried"
        ));
    }
    if cfg.check_trace_accounting {
        if let Some(trace) = &r.trace {
            let mut completed = 0usize;
            let mut spans: Vec<(usize, f64, f64)> = Vec::new();
            for ev in &trace.events {
                if let EventKind::Task { .. } = ev.kind {
                    if !ev.killed {
                        completed += 1;
                        spans.push((ev.core, ev.start_s, ev.end_s));
                    } else if (ev.end_s - ev.start_s) < 0.0 {
                        return Some("killed attempt with negative span".into());
                    }
                }
            }
            // A sampled trace (stride > 1) is deliberately partial:
            // counts cannot be reconciled against report totals, but the
            // overlap check below is still valid (dropping events never
            // creates an overlap).
            if !trace.is_sampled() && completed != r.tasks {
                return Some(format!(
                    "trace has {completed} completed task attempts but the report counts {} \
                     tasks (a task was double-counted as completed and killed, or dropped)",
                    r.tasks
                ));
            }
            spans.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            for w in spans.windows(2) {
                let (ca, _, ea) = w[0];
                let (cb, sb, _) = w[1];
                if ca == cb && sb < ea - 1e-9 {
                    return Some(format!(
                        "two completed attempts overlap on core {ca}: one ends at {ea:.6}, \
                         the next starts at {sb:.6}"
                    ));
                }
            }
        }
    }
    None
}

/// A [`FaultPlan`] decomposed into its independently shrinkable parts.
/// The shrinker mutates one field of a clone and rebuilds a candidate.
#[derive(Clone)]
struct PlanParts {
    deaths: Vec<NodeDeath>,
    stragglers: Vec<Straggler>,
    mem_shrinks: Vec<MemShrink>,
    producer_stalls: Vec<ProducerStall>,
    frame_drops: Vec<FrameDrop>,
    frame_delays: Vec<FrameDelay>,
    partitions: Vec<Partition>,
    link_degrades: Vec<LinkDegrade>,
    lost_fetch_prob: f64,
    frame_drop_prob: f64,
    frame_dup_prob: f64,
    seed: u64,
}

impl PlanParts {
    fn decompose(plan: &FaultPlan) -> Self {
        PlanParts {
            deaths: plan.deaths().to_vec(),
            stragglers: plan.stragglers().to_vec(),
            mem_shrinks: plan.mem_shrinks().to_vec(),
            producer_stalls: plan.producer_stalls().to_vec(),
            frame_drops: plan.frame_drops().to_vec(),
            frame_delays: plan.frame_delays().to_vec(),
            partitions: plan.partitions().to_vec(),
            link_degrades: plan.link_degrades().to_vec(),
            lost_fetch_prob: plan.lost_fetch_prob(),
            frame_drop_prob: plan.frame_drop_prob(),
            frame_dup_prob: plan.frame_dup_prob(),
            seed: plan.seed(),
        }
    }

    fn build(&self) -> FaultPlan {
        FaultPlan::from_parts(
            self.deaths.clone(),
            self.stragglers.clone(),
            self.mem_shrinks.clone(),
            self.lost_fetch_prob,
            self.seed,
        )
        .with_stream_parts(
            self.producer_stalls.clone(),
            self.frame_drops.clone(),
            self.frame_delays.clone(),
            self.frame_drop_prob,
            self.frame_dup_prob,
        )
        .with_partition_parts(self.partitions.clone(), self.link_degrades.clone())
    }
}

/// Below this a probability is snapped to zero rather than halved again —
/// halving forever would never terminate, and no workload distinguishes
/// 1e-18 from 0.
const PROB_FLOOR: f64 = 1e-18;

/// Greedily shrink `plan` to a minimal set of faults for which
/// `still_fails` holds: drop one scripted fault at a time from each list
/// (deaths, stragglers, memory shrinks, producer stalls, frame drops,
/// frame delays), then attack the probabilities — first try zero, then
/// repeatedly *halve* toward zero — to a fixpoint. Halving finds the
/// smallest rate at which the failure still reproduces, which tells the
/// investigator whether the bug needs sustained loss or a single unlucky
/// coin. Bounded: each pass removes something or halves a finite value to
/// the floor, so shrinking a plan with `n` scripted faults re-runs the
/// workload `O(n^2 + log(1/PROB_FLOOR))` times.
pub fn shrink(plan: &FaultPlan, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut cur = PlanParts::decompose(plan);
    // One removal pass over a fault list; returns true if it shrank.
    fn remove_pass<T: Clone>(
        cur: &mut PlanParts,
        get: impl Fn(&mut PlanParts) -> &mut Vec<T>,
        still_fails: &mut impl FnMut(&FaultPlan) -> bool,
    ) -> bool {
        for i in 0..get(cur).len() {
            let mut cand = cur.clone();
            get(&mut cand).remove(i);
            if still_fails(&cand.build()) {
                *cur = cand;
                return true;
            }
        }
        false
    }
    // Zero-then-halve a probability; returns true if it shrank at all.
    fn prob_pass(
        cur: &mut PlanParts,
        get: impl Fn(&mut PlanParts) -> &mut f64,
        still_fails: &mut impl FnMut(&FaultPlan) -> bool,
    ) -> bool {
        let mut shrunk = false;
        if *get(cur) > 0.0 {
            let mut cand = cur.clone();
            *get(&mut cand) = 0.0;
            if still_fails(&cand.build()) {
                *cur = cand;
                return true;
            }
        }
        while *get(cur) > PROB_FLOOR {
            let mut cand = cur.clone();
            *get(&mut cand) /= 2.0;
            if !still_fails(&cand.build()) {
                break;
            }
            *cur = cand;
            shrunk = true;
        }
        shrunk
    }
    // Halve one partition's cut-to-heal duration (heal-time halving):
    // finds the shortest cut that still reproduces, which tells the
    // investigator whether the bug needs a sustained split or a blip.
    // Floored at 1 ms so the pass terminates.
    fn heal_pass(cur: &mut PlanParts, still_fails: &mut impl FnMut(&FaultPlan) -> bool) -> bool {
        for i in 0..cur.partitions.len() {
            let dur = cur.partitions[i].to_s - cur.partitions[i].from_s;
            if dur <= 1e-3 {
                continue;
            }
            let mut cand = cur.clone();
            cand.partitions[i].to_s = cand.partitions[i].from_s + dur / 2.0;
            if still_fails(&cand.build()) {
                *cur = cand;
                return true;
            }
        }
        false
    }
    loop {
        if remove_pass(&mut cur, |p| &mut p.deaths, &mut still_fails)
            || remove_pass(&mut cur, |p| &mut p.stragglers, &mut still_fails)
            || remove_pass(&mut cur, |p| &mut p.mem_shrinks, &mut still_fails)
            || remove_pass(&mut cur, |p| &mut p.producer_stalls, &mut still_fails)
            || remove_pass(&mut cur, |p| &mut p.frame_drops, &mut still_fails)
            || remove_pass(&mut cur, |p| &mut p.frame_delays, &mut still_fails)
            || remove_pass(&mut cur, |p| &mut p.partitions, &mut still_fails)
            || remove_pass(&mut cur, |p| &mut p.link_degrades, &mut still_fails)
            || heal_pass(&mut cur, &mut still_fails)
            || prob_pass(&mut cur, |p| &mut p.lost_fetch_prob, &mut still_fails)
            || prob_pass(&mut cur, |p| &mut p.frame_drop_prob, &mut still_fails)
            || prob_pass(&mut cur, |p| &mut p.frame_dup_prob, &mut still_fails)
        {
            continue;
        }
        return cur.build();
    }
}

/// Run the full sweep: a fault-free baseline, then `cfg.plans` seeded
/// plans, checking every oracle and shrinking each violation to a minimal
/// counterexample. The workload closure runs the *same* job under the
/// given plan and fingerprints its results.
pub fn fuzz<F>(cfg: &ChaosConfig, run: F) -> FuzzReport
where
    F: Fn(&FaultPlan) -> Result<ChaosOutcome, String> + Sync,
{
    let baseline = match run(&FaultPlan::none()) {
        Ok(o) => o,
        Err(e) => {
            let none = FaultPlan::none();
            return FuzzReport {
                plans_run: 0,
                violations: vec![Violation {
                    seed: cfg.base_seed,
                    message: format!("fault-free baseline failed: {e}"),
                    plan: none.clone(),
                    shrunk: none,
                }],
            };
        }
    };
    let violation_for =
        |plan: &FaultPlan| -> Option<String> { check_invariants(cfg, &baseline, plan, &run(plan)) };
    // The seeded plans are independent of each other, so detection fans
    // out across host threads (`netsim::parallel::current_degree()` of
    // them); the pool returns per-seed outcomes in seed order, keeping the
    // report identical to the serial sweep. Shrinking — an inherently
    // sequential search — stays serial, and violations are rare.
    let flagged = crate::parallel::run_indexed(cfg.plans, |i| {
        let seed = cfg.base_seed + i as u64;
        let plan = plan_for_seed(cfg, seed);
        violation_for(&plan).map(|message| (seed, plan, message))
    });
    let mut violations = Vec::new();
    for (seed, plan, message) in flagged.into_iter().flatten() {
        let shrunk = shrink(&plan, |cand| violation_for(cand).is_some());
        violations.push(Violation {
            seed,
            message,
            plan,
            shrunk,
        });
    }
    FuzzReport {
        plans_run: cfg.plans,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::executor::SimExecutor;
    use crate::policy::RetryPolicy;

    fn cfg() -> ChaosConfig {
        let mut c = ChaosConfig::new(3, 2);
        c.plans = 40;
        c.death_window_s = (0.1, 4.0);
        c.max_deaths = 2;
        c
    }

    /// A deterministic synthetic workload: 12 fixed-duration tasks under a
    /// bounded policy. `break_recovery` models a buggy recovery path whose
    /// re-run produces *different data* — the canary the harness must
    /// catch.
    fn workload(plan: &FaultPlan, break_recovery: bool) -> Result<ChaosOutcome, String> {
        let mut exec = SimExecutor::new(
            Cluster::builder()
                .nodes(3)
                .cores_per_node(2)
                .fault_plan(plan.clone())
                .build(),
        );
        exec.enable_trace();
        // Suspicion is only consulted under scripted partitions, so
        // partition-free plans keep their exact legacy schedules.
        let policy = RetryPolicy::new(4)
            .with_detection_delay(0.2)
            .with_backoff(0.1, 2.0, 2.0)
            .with_suspicion(0.2, 0.4);
        let mut fp = Fingerprint::new();
        for i in 0..12u64 {
            let dur = 0.5 + (i % 4) as f64 * 0.25;
            let before = exec.report().retries;
            exec.run_task_policied(0.0, dur, &policy)
                .map_err(|e| e.to_string())?;
            let retried = exec.report().retries > before;
            // The task's "result" is pure data — unless the broken canary
            // recovery recomputes it wrongly after a retry.
            let result = if break_recovery && retried {
                i + 1000
            } else {
                i * i
            };
            fp.write_u64(result);
        }
        Ok(ChaosOutcome {
            fingerprint: fp.finish(),
            report: exec.into_report(),
        })
    }

    #[test]
    fn plans_are_deterministic_and_bounded() {
        let c = cfg();
        for i in 0..200 {
            let seed = c.base_seed + i;
            let p = plan_for_seed(&c, seed);
            assert_eq!(p, plan_for_seed(&c, seed), "same seed, same plan");
            assert!(p.deaths().len() <= 2, "at most max_deaths deaths");
            let mut nodes: Vec<usize> = p.deaths().iter().map(|d| d.node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), p.deaths().len(), "death nodes are distinct");
            assert!(nodes.iter().all(|&n| n < 3), "valid node ids");
            for d in p.deaths() {
                assert!((0.1..=4.0).contains(&d.at_s));
            }
            assert!(p.stragglers().len() <= 2);
            for s in p.stragglers() {
                assert!(s.core < 6);
                assert!((1.0..=8.0).contains(&s.factor));
            }
            assert!(p.mem_shrinks().len() <= c.max_mem_shrinks);
            for m in p.mem_shrinks() {
                assert!(m.node < 3, "valid shrink node");
                let (lo, hi) = c.mem_shrink_window_s;
                assert!((lo..=hi).contains(&m.at_s));
                let (flo, fhi) = c.mem_shrink_frac;
                let frac = m.to_bytes as f64 / c.mem_per_node as f64;
                assert!(frac >= flo - 1e-9 && frac <= fhi + 1e-9);
            }
            assert!((0.0..=0.3).contains(&p.lost_fetch_prob()));
        }
        // Different seeds explore different plans.
        assert_ne!(plan_for_seed(&c, 1), plan_for_seed(&c, 2));
    }

    #[test]
    fn fingerprint_is_order_and_value_sensitive() {
        let mut a = Fingerprint::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fingerprint::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.write_f64(1.0);
        let mut d = Fingerprint::new();
        d.write_f64(1.0 + f64::EPSILON);
        assert_ne!(c.finish(), d.finish(), "bit-exact, not approximate");
        let mut e = Fingerprint::new();
        e.write_f64(1.0);
        assert_eq!(c.finish(), e.finish());
    }

    #[test]
    fn correct_recovery_passes_the_sweep() {
        let report = fuzz(&cfg(), |plan| workload(plan, false));
        assert!(
            report.passed(),
            "correct workload must satisfy every oracle: {:?}",
            report.violations.first().map(|v| &v.message)
        );
        assert_eq!(report.plans_run, 40);
    }

    #[test]
    fn broken_canary_is_found_and_shrunk_to_a_minimal_plan() {
        let report = fuzz(&cfg(), |plan| workload(plan, true));
        assert!(
            !report.passed(),
            "a recovery path that corrupts data must be caught"
        );
        let baseline = workload(&FaultPlan::none(), true).unwrap();
        let fails = |plan: &FaultPlan| {
            check_invariants(&cfg(), &baseline, plan, &workload(plan, true)).is_some()
        };
        for v in &report.violations {
            assert!(v.message.contains("diverged"), "oracle: {}", v.message);
            // The broken path only fires on a retry, so a death must remain.
            assert!(!v.shrunk.deaths().is_empty());
            // 1-minimality: removing any remaining fault stops the
            // reproduction (a straggler may legitimately survive shrinking
            // when it is what stretches a task into the death window).
            for i in 0..v.shrunk.deaths().len() {
                let mut deaths = v.shrunk.deaths().to_vec();
                deaths.remove(i);
                let cand = FaultPlan::from_parts(
                    deaths,
                    v.shrunk.stragglers().to_vec(),
                    v.shrunk.mem_shrinks().to_vec(),
                    v.shrunk.lost_fetch_prob(),
                    v.shrunk.seed(),
                );
                assert!(!fails(&cand), "death {i} is redundant in the shrunk plan");
            }
            for i in 0..v.shrunk.stragglers().len() {
                let mut stragglers = v.shrunk.stragglers().to_vec();
                stragglers.remove(i);
                let cand = FaultPlan::from_parts(
                    v.shrunk.deaths().to_vec(),
                    stragglers,
                    v.shrunk.mem_shrinks().to_vec(),
                    v.shrunk.lost_fetch_prob(),
                    v.shrunk.seed(),
                );
                assert!(
                    !fails(&cand),
                    "straggler {i} is redundant in the shrunk plan"
                );
            }
            // The shrunk plan still reproduces, and round-trips through the
            // JSON artifact to an identical replay.
            let replayed = FaultPlan::from_json(&v.shrunk.to_json()).unwrap();
            assert_eq!(replayed, v.shrunk);
            assert!(fails(&replayed), "replayed shrunk plan reproduces");
        }
        // At least one counterexample boils down to a single death with
        // nothing else — the canonical minimal trigger for the canary.
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.shrunk.deaths().len() == 1
                    && v.shrunk.stragglers().is_empty()
                    && v.shrunk.lost_fetch_prob() == 0.0),
            "some violation shrinks to exactly one death"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = fuzz(&cfg(), |plan| workload(plan, true));
        let b = fuzz(&cfg(), |plan| workload(plan, true));
        assert_eq!(a.to_json(), b.to_json(), "byte-identical fuzz reports");
        let run = |plan: &FaultPlan| workload(plan, false).unwrap().report;
        let p = plan_for_seed(&cfg(), 17);
        assert_eq!(run(&p), run(&p), "byte-identical SimReport per plan");
    }

    #[test]
    fn oracles_catch_phantom_recovery_and_lost_work() {
        let c = cfg();
        let base = workload(&FaultPlan::none(), false).unwrap();
        // Phantom recovery: a "recovery" phase with nothing lost.
        let mut phantom = base.clone();
        phantom.report.push_phase("recovery", 0.0, 1.0);
        let plan = plan_for_seed(&c, 3);
        let got = check_invariants(&c, &base, &plan, &Ok(phantom));
        assert!(got.is_some_and(|m| m.contains("phantom")));
        // Lost work with no recovery recorded.
        let mut silent = base.clone();
        silent.report.lost_time_s = 2.0;
        let got = check_invariants(&c, &base, &plan, &Ok(silent));
        assert!(got.is_some_and(|m| m.contains("lost")));
        // Byte conservation.
        let mut leaky = base.clone();
        leaky.report.bytes_shuffled += 4096;
        let got = check_invariants(&c, &base, &plan, &Ok(leaky));
        assert!(got.is_some_and(|m| m.contains("conserved")));
    }

    #[test]
    fn oracles_catch_malformed_trace_events() {
        // `Trace::record` only debug_asserts these invariants, so a buggy
        // engine shipping a malformed event would sail through release/CI
        // runs — the oracle must catch it. Events are pushed directly onto
        // the trace to bypass the recorder's debug checks.
        use crate::trace::TraceEvent;
        let c = cfg();
        let base = workload(&FaultPlan::none(), false).unwrap();
        let plan = plan_for_seed(&c, 7);
        let event = |start_s: f64, end_s: f64, ready_s: f64| TraceEvent {
            task: 0,
            core: 0,
            start_s,
            end_s,
            killed: false,
            ready_s,
            phase: 0,
            kind: EventKind::Recovery { label: 0 },
        };
        // Ends before it starts.
        let mut inverted = base.clone();
        let trace = inverted.report.trace.as_mut().unwrap();
        trace.events.push(event(2.0, 1.0, 2.0));
        let got = check_invariants(&c, &base, &plan, &Ok(inverted));
        assert!(
            got.as_ref().is_some_and(|m| m.contains("before its start")),
            "{got:?}"
        );
        // Ready after start (beyond the recorder's 1e-12 epsilon).
        let mut unready = base.clone();
        let trace = unready.report.trace.as_mut().unwrap();
        trace.events.push(event(1.0, 2.0, 1.5));
        let got = check_invariants(&c, &base, &plan, &Ok(unready));
        assert!(
            got.as_ref().is_some_and(|m| m.contains("after its start")),
            "{got:?}"
        );
        // A ready time within the epsilon is legitimate float jitter, and
        // these probes must not trip the other oracles.
        let mut jitter = base.clone();
        let trace = jitter.report.trace.as_mut().unwrap();
        trace.events.push(event(1.0, 2.0, 1.0 + 1e-13));
        assert_eq!(check_invariants(&c, &base, &plan, &Ok(jitter)), None);
    }

    #[test]
    fn sampled_traces_skip_task_count_reconciliation() {
        // A sampled trace records only a subset of task events, so the
        // completed-count oracle must not fire on the mismatch — but the
        // other trace oracles (well-formedness, overlap) still apply.
        let c = cfg();
        let base = workload(&FaultPlan::none(), false).unwrap();
        let plan = plan_for_seed(&c, 9);
        let mut sampled = base.clone();
        {
            let trace = sampled.report.trace.as_mut().unwrap();
            trace.set_sample_stride(4);
            let keep: Vec<_> = trace
                .events
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 4 == 0)
                .map(|(_, e)| *e)
                .collect();
            trace.events = keep;
        }
        // The baseline comparison sees a different trace, so compare the
        // sampled run against itself (empty-plan determinism is off for
        // this probe).
        let mut c2 = c.clone();
        c2.check_empty_plan_determinism = false;
        let self_base = ChaosOutcome {
            fingerprint: base.fingerprint,
            report: sampled.report.clone(),
        };
        assert_eq!(
            check_invariants(&c2, &self_base, &plan, &Ok(sampled)),
            None,
            "sampled trace must not trip the count reconciliation"
        );
    }

    #[test]
    fn typed_errors_are_acceptable_only_when_allowed() {
        let mut c = cfg();
        let base = workload(&FaultPlan::none(), false).unwrap();
        let plan = plan_for_seed(&c, 5);
        let failed: Result<ChaosOutcome, String> = Err("task failed after 3 attempts".into());
        assert!(check_invariants(&c, &base, &plan, &failed).is_none());
        c.allow_typed_errors = false;
        assert!(check_invariants(&c, &base, &plan, &failed).is_some());
    }

    #[test]
    fn shrink_reaches_a_fixpoint_without_oracle_calls_blowing_up() {
        // A violation that only needs one specific death: shrink must strip
        // everything else and keep exactly that death.
        let plan = FaultPlan::from_parts(
            vec![
                NodeDeath { node: 0, at_s: 1.0 },
                NodeDeath { node: 1, at_s: 2.0 },
            ],
            vec![Straggler {
                core: 3,
                factor: 5.0,
            }],
            vec![MemShrink {
                node: 2,
                at_s: 3.0,
                to_bytes: 1 << 30,
            }],
            0.25,
            9,
        );
        let mut calls = 0;
        let shrunk = shrink(&plan, |cand| {
            calls += 1;
            cand.deaths().iter().any(|d| d.node == 1)
        });
        assert_eq!(shrunk.deaths().len(), 1);
        assert_eq!(shrunk.deaths()[0].node, 1);
        assert!(shrunk.stragglers().is_empty());
        assert!(shrunk.mem_shrinks().is_empty());
        assert_eq!(shrunk.lost_fetch_prob(), 0.0);
        assert!(calls < 25, "greedy shrink stays quadratic, ran {calls}");
    }

    #[test]
    fn stream_plans_appear_only_when_asked_and_stay_bounded() {
        let batch = cfg();
        let streamed = cfg().with_stream(64);
        for seed in 0..200 {
            // A batch config never draws stream faults, and its plans are
            // byte-identical to pre-streaming harness output.
            let b = plan_for_seed(&batch, seed);
            assert!(b.producer_stalls().is_empty());
            assert!(b.frame_drops().is_empty() && b.frame_delays().is_empty());
            assert_eq!(b.frame_drop_prob(), 0.0);
            assert_eq!(b.frame_dup_prob(), 0.0);
            let s = plan_for_seed(&streamed, seed);
            // The batch half of a streamed plan matches the batch plan
            // exactly: stream draws append after every existing draw.
            assert_eq!(s.deaths(), b.deaths());
            assert_eq!(s.stragglers(), b.stragglers());
            assert_eq!(s.mem_shrinks(), b.mem_shrinks());
            assert_eq!(s.lost_fetch_prob(), b.lost_fetch_prob());
            assert!(s.producer_stalls().len() <= streamed.max_producer_stalls + 1);
            for stall in s.producer_stalls() {
                assert!(stall.at_s >= 0.0 && stall.for_s > 0.0);
            }
            assert!(s.frame_drops().len() <= streamed.max_frame_drops);
            assert!(s.frame_delays().len() <= streamed.max_frame_delays);
            for d in s.frame_drops() {
                assert!(d.frame < 64);
            }
            for d in s.frame_delays() {
                assert!(d.frame < 64 && (0.0..=streamed.frame_delay_max_s).contains(&d.by_s));
            }
            assert!((0.0..=streamed.frame_drop_prob_max).contains(&s.frame_drop_prob()));
            assert!((0.0..=streamed.frame_dup_prob_max).contains(&s.frame_dup_prob()));
            assert_eq!(s, plan_for_seed(&streamed, seed), "plans are deterministic");
        }
        // Across 200 seeds a streamed config exercises every fault class.
        let any =
            |f: &dyn Fn(&FaultPlan) -> bool| (0..200).any(|s| f(&plan_for_seed(&streamed, s)));
        assert!(any(&|p| p.producer_stalls().iter().any(|s| s.is_crash())));
        assert!(any(&|p| p.producer_stalls().iter().any(|s| !s.is_crash())));
        assert!(any(&|p| !p.frame_drops().is_empty()));
        assert!(any(&|p| !p.frame_delays().is_empty()));
        assert!(any(&|p| p.frame_drop_prob() > 0.0));
        assert!(any(&|p| p.frame_dup_prob() > 0.0));
    }

    #[test]
    fn partition_plans_appear_only_when_asked_and_validate() {
        let batch = cfg();
        let parted = cfg().with_partitions(2);
        for seed in 0..200 {
            // The partition knob off keeps plans byte-identical (covered
            // elsewhere); on, the batch prefix still matches exactly.
            let b = plan_for_seed(&batch, seed);
            assert!(b.partitions().is_empty() && b.link_degrades().is_empty());
            let p = plan_for_seed(&parted, seed);
            assert_eq!(p.deaths(), b.deaths());
            assert_eq!(p.stragglers(), b.stragglers());
            assert_eq!(p.mem_shrinks(), b.mem_shrinks());
            assert_eq!(p.lost_fetch_prob(), b.lost_fetch_prob());
            assert!(p.partitions().len() <= 2);
            assert!(p.link_degrades().len() <= parted.max_link_degrades);
            for part in p.partitions() {
                assert!(part.from_s >= 0.0 && part.to_s > part.from_s);
                assert_eq!(part.groups.len(), 1, "one cut group, driver in remainder");
                assert!(!part.groups[0].is_empty());
                assert!(part.groups[0].iter().all(|&n| (1..3).contains(&n)));
            }
            // Successive cuts are disjoint by construction.
            for w in p.partitions().windows(2) {
                assert!(w[1].from_s >= w[0].to_s, "cut windows never overlap");
            }
            for l in p.link_degrades() {
                assert!(l.a < 3 && l.b < 3 && l.a != l.b);
                assert!(l.latency_factor >= 1.0 && (0.0..=1.0).contains(&l.loss_prob));
            }
            p.validate(3, 6).expect("every generated plan validates");
            assert_eq!(p, plan_for_seed(&parted, seed), "plans are deterministic");
        }
        let any = |f: &dyn Fn(&FaultPlan) -> bool| (0..200).any(|s| f(&plan_for_seed(&parted, s)));
        assert!(any(&|p| !p.partitions().is_empty()));
        assert!(any(&|p| p.partitions().len() == 2));
        assert!(any(&|p| !p.link_degrades().is_empty()));
        assert!(any(&|p| p
            .link_degrades()
            .iter()
            .any(|l| l.loss_prob > 0.0)));
    }

    #[test]
    fn partition_chaos_sweep_passes_and_fences_zombies() {
        // The full battery under scripted partitions: every oracle holds
        // (no double-count, no hang, fences conserved), and the sweep
        // actually exercised the zombie path somewhere.
        let mut c = cfg().with_partitions(2);
        c.partition_window_s = (0.1, 3.0);
        c.partition_len_s = (0.5, 3.0);
        let report = fuzz(&c, |plan| workload(plan, false));
        assert!(
            report.passed(),
            "partition chaos must satisfy every oracle: {:?}",
            report.violations.first().map(|v| &v.message)
        );
        let mut zombies = 0usize;
        let mut fences = 0usize;
        for seed in 0..c.plans as u64 {
            let plan = plan_for_seed(&c, c.base_seed + seed);
            if let Ok(out) = workload(&plan, false) {
                zombies += out.report.zombie_attempts;
                fences += out.report.fenced_results;
            }
        }
        assert!(zombies > 0, "the sweep produced at least one zombie");
        assert!(fences >= zombies, "every zombie's stale result was fenced");
    }

    #[test]
    fn shrink_strips_partitions_and_halves_heal_times() {
        // Only a sustained (≥ 1 s) cut isolating node 1 matters; the
        // death, the link degradation, and the second partition must all
        // be stripped, and the surviving cut's heal halved to within a
        // factor of two of the 1 s boundary — a strictly smaller
        // counterexample on both axes.
        let plan = FaultPlan::from_parts(
            vec![NodeDeath { node: 2, at_s: 2.0 }],
            vec![],
            vec![],
            0.0,
            13,
        )
        .with_partition_parts(
            vec![
                Partition {
                    groups: vec![vec![1]],
                    from_s: 1.0,
                    to_s: 9.0,
                },
                Partition {
                    groups: vec![vec![2]],
                    from_s: 10.0,
                    to_s: 11.0,
                },
            ],
            vec![LinkDegrade {
                a: 0,
                b: 2,
                latency_factor: 3.0,
                loss_prob: 0.1,
                from_s: 0.5,
                to_s: 4.0,
            }],
        );
        let fails = |cand: &FaultPlan| {
            cand.partitions()
                .iter()
                .any(|p| p.separates(0, 1) && (p.to_s - p.from_s) >= 1.0)
        };
        assert!(fails(&plan), "original plan reproduces");
        let shrunk = shrink(&plan, fails);
        assert!(shrunk.deaths().is_empty(), "death is irrelevant");
        assert!(shrunk.link_degrades().is_empty(), "link is irrelevant");
        assert_eq!(shrunk.partitions().len(), 1, "one cut survives");
        let p = &shrunk.partitions()[0];
        assert!(p.separates(0, 1));
        let dur = p.to_s - p.from_s;
        assert!(
            (1.0..2.0).contains(&dur),
            "heal halving lands within 2x of the boundary, got {dur}"
        );
        assert!(
            dur < 8.0,
            "strictly smaller counterexample than the original 8 s cut"
        );
        assert!(fails(&shrunk), "shrunk plan still reproduces");
        // And it round-trips through the JSON artifact for replay.
        let replayed = FaultPlan::from_json(&shrunk.to_json()).unwrap();
        assert_eq!(replayed, shrunk);
    }

    #[test]
    fn shrink_halves_probabilities_to_a_strictly_smaller_counterexample() {
        // A failure that reproduces whenever seeded frame loss is at least
        // 5%: zeroing the probability kills the repro, so the shrinker must
        // *halve* 0.8 down until one more halving would cross the
        // threshold. The shrunk plan is strictly smaller than the original
        // and still within a factor of two of the true boundary.
        let plan = FaultPlan::from_parts(vec![], vec![], vec![], 0.0, 3).with_stream_parts(
            vec![ProducerStall {
                at_s: 1.0,
                for_s: 2.0,
            }],
            vec![],
            vec![],
            0.8,
            0.0,
        );
        let shrunk = shrink(&plan, |cand| cand.frame_drop_prob() >= 0.05);
        assert!(shrunk.producer_stalls().is_empty(), "stall is irrelevant");
        assert!(
            shrunk.frame_drop_prob() < plan.frame_drop_prob(),
            "strictly smaller counterexample"
        );
        assert!(
            (0.05..0.1).contains(&shrunk.frame_drop_prob()),
            "halving lands within 2x of the boundary, got {}",
            shrunk.frame_drop_prob()
        );
        // Same machinery on the batch-side probability: lost_fetch_prob
        // halves from 0.6 to just above a 0.1 threshold.
        let plan = FaultPlan::from_parts(vec![], vec![], vec![], 0.6, 3);
        let shrunk = shrink(&plan, |cand| cand.lost_fetch_prob() >= 0.1);
        assert!((0.1..0.2).contains(&shrunk.lost_fetch_prob()));
    }

    #[test]
    fn shrink_strips_irrelevant_stream_faults() {
        // Only the producer crash matters; every scripted and seeded
        // stream fault around it must be stripped.
        let plan = FaultPlan::from_parts(
            vec![NodeDeath { node: 0, at_s: 4.0 }],
            vec![],
            vec![],
            0.2,
            11,
        )
        .with_stream_parts(
            vec![
                ProducerStall {
                    at_s: 1.0,
                    for_s: 2.0,
                },
                ProducerStall {
                    at_s: 5.0,
                    for_s: f64::INFINITY,
                },
            ],
            vec![FrameDrop { frame: 3 }, FrameDrop { frame: 9 }],
            vec![FrameDelay {
                frame: 4,
                by_s: 1.5,
            }],
            0.05,
            0.07,
        );
        let shrunk = shrink(&plan, |cand| {
            cand.producer_stalls().iter().any(|s| s.is_crash())
        });
        assert_eq!(shrunk.producer_stalls().len(), 1);
        assert!(shrunk.producer_stalls()[0].is_crash());
        assert!(shrunk.deaths().is_empty());
        assert!(shrunk.frame_drops().is_empty());
        assert!(shrunk.frame_delays().is_empty());
        assert_eq!(shrunk.lost_fetch_prob(), 0.0);
        assert_eq!(shrunk.frame_drop_prob(), 0.0);
        assert_eq!(shrunk.frame_dup_prob(), 0.0);
    }

    #[test]
    fn memory_oracles_catch_unaccounted_pressure() {
        let c = cfg();
        let base = workload(&FaultPlan::none(), false).unwrap();
        let plan = plan_for_seed(&c, 7);
        // Spilled bytes claimed in the report with no Spill events behind
        // them: conservation violation.
        let mut leaky = base.clone();
        leaky.report.bytes_spilled += 4096;
        let got = check_invariants(&c, &base, &plan, &Ok(leaky));
        assert!(got.is_some_and(|m| m.contains("spill bytes not conserved")));
        // Divergent results after eviction name the recompute path.
        let mut diverged = base.clone();
        diverged.fingerprint ^= 1;
        diverged.report.bytes_evicted = 2048;
        // Keep the conservation oracle quiet: the fingerprint check runs
        // first, so the eviction-specific message wins.
        let got = check_invariants(&c, &base, &plan, &Ok(diverged));
        assert!(got.is_some_and(|m| m.contains("evicted partitions were recomputed")));
        // A memory shrink alone is a valid plan that still satisfies every
        // oracle for a workload that never caches.
        let shrink_only = FaultPlan::none().shrink_memory(1, 2.0, 1 << 28);
        let got = check_invariants(&c, &base, &shrink_only, &workload(&shrink_only, false));
        assert!(got.is_none(), "shrink-only plan passes: {got:?}");
    }
}
