//! Execution traces: an optional typed record of the simulated schedule.
//!
//! Every interesting simulated occurrence — a task attempt, a shuffle
//! fetch, a broadcast round, a lineage recompute — becomes one
//! [`TraceEvent`] with a start/end interval in virtual time, the phase it
//! belongs to, and a typed [`EventKind`] payload. The trace renders as a
//! text Gantt chart, exports to CSV (round-trippable) and to
//! Chrome-trace/Perfetto JSON (see [`crate::chrome`]), and feeds the
//! [`crate::Metrics`] summary and [`crate::CriticalPath`] analysis — the
//! visibility tools for debugging framework scheduling behaviour (stage
//! barriers, stragglers, dispatch serialization, broadcast cost).
//!
//! ## Interned labels
//!
//! Phase and label strings are *interned*: events carry `u32` [`Sym`]
//! handles into the trace's [`Interner`], so recording an event on the
//! simulator hot path allocates nothing ([`TraceEvent`] is `Copy`).
//! Strings materialise only at export boundaries (CSV, Chrome JSON, the
//! Gantt legend, critical-path attribution) via [`Trace::resolve`] /
//! [`Trace::phase_of`] / [`Trace::label_of`]. Because symbol ids depend on
//! first-use order (which varies across e.g. CSV round-trips or
//! multi-threaded recording), trace equality compares *resolved strings*,
//! never raw ids.

use std::collections::HashMap;

/// Interned-string handle. `Sym(0)` is always the empty string.
pub type Sym = u32;

/// String interner owned by a [`Trace`]: maps phase/label strings to dense
/// `u32` ids so hot-path event records don't allocate. The empty string is
/// pre-interned as id 0.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    strings: Vec<String>,
    index: HashMap<String, Sym>,
}

impl Interner {
    pub fn new() -> Interner {
        let mut i = Interner {
            strings: Vec::new(),
            index: HashMap::new(),
        };
        i.intern("");
        i
    }

    /// Id for `s`, allocating one on first sight.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = self.strings.len() as Sym;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), sym);
        sym
    }

    /// The string behind `sym` (empty for an id this interner never
    /// issued — only possible for events smuggled in from another trace).
    pub fn resolve(&self, sym: Sym) -> &str {
        self.strings.get(sym as usize).map_or("", String::as_str)
    }
}

/// What a trace event records. Only `Task` events occupy a core; the
/// other kinds live on the network/driver timelines. Label-carrying kinds
/// hold interned [`Sym`]s — resolve through the owning trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A task attempt executing on a core. `speculative` marks backup
    /// attempts launched by speculative execution.
    Task { label: Sym, speculative: bool },
    /// A point-to-point transfer (shuffle fetch, staging, gather leg).
    /// A `killed` fetch event is one lost on the wire and re-sent.
    Fetch {
        from_node: usize,
        to_node: usize,
        bytes: u64,
    },
    /// One broadcast round from the driver to `dest_nodes` destinations.
    Broadcast { bytes: u64, dest_nodes: usize },
    /// Recovery work outside normal task placement (lineage recompute
    /// dispatch, DB re-enqueue, failure detection window).
    Recovery { label: Sym },
    /// Bytes written to (and later read back from) node-local scratch
    /// disk because `node`'s memory budget could not hold them resident.
    Spill { node: usize, bytes: u64 },
    /// Cached/resident bytes dropped from `node` under memory pressure;
    /// recoverable by lineage recompute, so no data is lost.
    Evict { node: usize, bytes: u64 },
    /// A task or worker on `node` killed outright for exceeding the memory
    /// budget (after spill/eviction could not make room).
    OomKill { node: usize },
    /// A job entering a tenant's service queue (mdtaskd).
    Enqueue { tenant: usize, job: usize },
    /// A queued job admitted to a cluster by the service scheduler.
    /// `ready_s` is the enqueue time, so `start_s - ready_s` is the queue
    /// wait the admission decision imposed.
    Admit { tenant: usize, job: usize },
    /// A job refused with a typed error (backpressure, quota, or
    /// capacity). `killed` is set: the submission's work was never done.
    Reject { tenant: usize, job: usize },
    /// A streaming pipeline pausing ingestion because `node`'s resident
    /// window state is at the memory budget — the interval is the pause,
    /// which ends when a scheduled budget change makes room. Pausing
    /// instead of OOM-killing is the backpressure contract.
    Backpressure { node: usize },
    /// A stale result rejected by fencing: a zombie attempt (rescheduled
    /// on false-positive suspicion while the original survived a
    /// partition) delivered after heal and was discarded by its attempt
    /// epoch / generation number. The interval spans suspicion to the
    /// would-be delivery; the label names the engine's fencing mechanism.
    Fenced { label: Sym },
}

impl EventKind {
    /// CSV/JSON discriminant.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EventKind::Task { .. } => "task",
            EventKind::Fetch { .. } => "fetch",
            EventKind::Broadcast { .. } => "broadcast",
            EventKind::Recovery { .. } => "recovery",
            EventKind::Spill { .. } => "spill",
            EventKind::Evict { .. } => "evict",
            EventKind::OomKill { .. } => "oomkill",
            EventKind::Enqueue { .. } => "enqueue",
            EventKind::Admit { .. } => "admit",
            EventKind::Reject { .. } => "reject",
            EventKind::Backpressure { .. } => "backpressure",
            EventKind::Fenced { .. } => "fenced",
        }
    }

    /// The label symbol for kinds that carry one (`Task`, `Recovery`,
    /// `Fenced`).
    fn label_sym(&self) -> Option<Sym> {
        match self {
            EventKind::Task { label, .. }
            | EventKind::Recovery { label }
            | EventKind::Fenced { label } => Some(*label),
            _ => None,
        }
    }
}

/// One scheduled occurrence in the simulated run. `Copy`: all strings are
/// interned [`Sym`]s resolved through the owning [`Trace`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Monotonic id in record order (re-assigned to sorted order by
    /// engines that record from several threads).
    pub task: usize,
    /// Core id for `Task` events; a track hint (e.g. destination node or
    /// rank) for non-task events, which do not occupy the core.
    pub core: usize,
    pub start_s: f64,
    pub end_s: f64,
    /// True if this attempt was cut short (node death, speculative loser)
    /// or, for a fetch, lost on the wire — the interval's work was wasted.
    pub killed: bool,
    /// When the event *could* have started (task release time). The gap
    /// `start_s - ready_s` is queue wait.
    pub ready_s: f64,
    /// Owning phase ("broadcast", "edge-discovery", …); [`Sym`] 0 (the
    /// empty string) when the engine did not declare one.
    pub phase: Sym,
    pub kind: EventKind,
}

impl TraceEvent {
    /// Only task attempts hold a core busy; fetches/broadcasts/recovery
    /// windows overlap freely with task execution.
    pub fn occupies_core(&self) -> bool {
        matches!(self.kind, EventKind::Task { .. })
    }
}

/// A recorded schedule.
///
/// Equality is *semantic*: two traces are equal when their events match
/// with phases/labels compared as resolved strings, regardless of the
/// symbol ids behind them (ids depend on first-use order, which differs
/// across CSV round-trips and multi-threaded recording).
#[derive(Clone, Debug)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
    interner: Interner,
    /// Cached `max(end_s)` over all events, maintained by [`Self::record`]
    /// so [`Self::span`] is O(1) instead of re-folding the event vector.
    span_s: f64,
    /// Task-event sampling stride the recording executor used: 1 = every
    /// task attempt was recorded (the default), `n` = only every n-th.
    /// Oracles that reconcile the trace against report counters must skip
    /// a sampled trace (see [`Self::is_sampled`]).
    sample_stride: u32,
}

impl Default for Trace {
    fn default() -> Trace {
        Trace {
            events: Vec::new(),
            interner: Interner::new(),
            span_s: 0.0,
            sample_stride: 1,
        }
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Trace) -> bool {
        self.events.len() == other.events.len()
            && self
                .events
                .iter()
                .zip(&other.events)
                .all(|(a, b)| self.event_eq(a, other, b))
    }
}

impl Trace {
    /// Compare one event of `self` against one of `other`, resolving
    /// label/phase symbols through each trace's own interner.
    fn event_eq(&self, a: &TraceEvent, other: &Trace, b: &TraceEvent) -> bool {
        let payload_eq = match (&a.kind, &b.kind) {
            (
                EventKind::Task {
                    speculative: sa, ..
                },
                EventKind::Task {
                    speculative: sb, ..
                },
            ) => sa == sb,
            (EventKind::Recovery { .. }, EventKind::Recovery { .. }) => true,
            (EventKind::Fenced { .. }, EventKind::Fenced { .. }) => true,
            (ka, kb) => ka == kb,
        };
        payload_eq
            && a.kind.kind_name() == b.kind.kind_name()
            && self.label_of(a) == other.label_of(b)
            && a.task == b.task
            && a.core == b.core
            && a.start_s == b.start_s
            && a.end_s == b.end_s
            && a.killed == b.killed
            && a.ready_s == b.ready_s
            && self.resolve(a.phase) == other.resolve(b.phase)
    }

    /// Intern a phase/label string, returning its [`Sym`].
    pub fn intern(&mut self, s: &str) -> Sym {
        self.interner.intern(s)
    }

    /// The string behind `sym`.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// Resolved phase name of an event recorded in this trace.
    pub fn phase_of(&self, e: &TraceEvent) -> &str {
        self.interner.resolve(e.phase)
    }

    /// Stable display label of an event recorded in this trace: the
    /// interned label for `Task`/`Recovery` kinds, a fixed name otherwise.
    /// Used by the Gantt legend, CSV `label` column, Chrome-trace `name`,
    /// and critical-path attribution.
    pub fn label_of(&self, e: &TraceEvent) -> &str {
        match &e.kind {
            EventKind::Task { label, .. }
            | EventKind::Recovery { label }
            | EventKind::Fenced { label } => self.interner.resolve(*label),
            EventKind::Fetch { .. } => "fetch",
            EventKind::Broadcast { .. } => "broadcast",
            EventKind::Spill { .. } => "spill",
            EventKind::Evict { .. } => "evict",
            EventKind::OomKill { .. } => "oom-kill",
            EventKind::Enqueue { .. } => "enqueue",
            EventKind::Admit { .. } => "admit",
            EventKind::Reject { .. } => "reject",
            EventKind::Backpressure { .. } => "backpressure",
        }
    }

    /// Record a completed plain task attempt (compatibility shim around
    /// [`Self::record`]).
    pub fn push(&mut self, task: usize, core: usize, start_s: f64, end_s: f64) {
        let label = self.intern("task");
        self.record(TraceEvent {
            task,
            core,
            start_s,
            end_s,
            killed: false,
            ready_s: start_s,
            phase: 0,
            kind: EventKind::Task {
                label,
                speculative: false,
            },
        });
    }

    /// Record a task attempt killed by a node death at `died_at`.
    pub fn push_killed(&mut self, task: usize, core: usize, start_s: f64, died_at: f64) {
        let label = self.intern("task");
        self.record(TraceEvent {
            task,
            core,
            start_s,
            end_s: died_at,
            killed: true,
            ready_s: start_s,
            phase: 0,
            kind: EventKind::Task {
                label,
                speculative: false,
            },
        });
    }

    /// Record an arbitrary typed event. Label/phase symbols must come from
    /// this trace's [`Self::intern`].
    pub fn record(&mut self, e: TraceEvent) {
        debug_assert!(e.end_s >= e.start_s, "event ends before it starts");
        debug_assert!(e.ready_s <= e.start_s + 1e-12, "ready after start");
        if e.end_s > self.span_s {
            self.span_s = e.end_s;
        }
        self.events.push(e);
    }

    /// Next unused event id (record order).
    pub fn next_id(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Makespan covered by the trace (cached, O(1)).
    pub fn span(&self) -> f64 {
        self.span_s
    }

    /// Mark this trace as sampled: only every `stride`-th task attempt was
    /// recorded. Network/memory events are never sampled (byte-conservation
    /// oracles need all of them).
    pub fn set_sample_stride(&mut self, stride: u32) {
        self.sample_stride = stride.max(1);
    }

    /// The task-event sampling stride (1 = complete trace).
    pub fn sample_stride(&self) -> u32 {
        self.sample_stride
    }

    /// True when task events were sampled, i.e. the trace is *not* a
    /// complete record and event counts cannot be reconciled against
    /// report counters.
    pub fn is_sampled(&self) -> bool {
        self.sample_stride > 1
    }

    /// Sort events into virtual-time order — (start, end, core, label) —
    /// and renumber ids to the sorted order. Engines that record from
    /// several threads (SPMD ranks) call this after the join so runs are
    /// reproducible regardless of host scheduling. Labels compare as
    /// resolved strings, so the order is independent of symbol ids.
    pub fn sort_for_determinism(&mut self) {
        let interner = std::mem::take(&mut self.interner);
        self.events.sort_by(|a, b| {
            a.start_s
                .total_cmp(&b.start_s)
                .then(a.end_s.total_cmp(&b.end_s))
                .then(a.core.cmp(&b.core))
                .then_with(|| {
                    let la = a.kind.label_sym().map_or("", |s| interner.resolve(s));
                    let lb = b.kind.label_sym().map_or("", |s| interner.resolve(s));
                    la.cmp(lb)
                })
        });
        self.interner = interner;
        for (i, e) in self.events.iter_mut().enumerate() {
            e.task = i;
        }
    }

    /// Core utilization counting *useful* work only: completed (non-killed)
    /// task-attempt time / (cores × makespan). Killed attempts' partial
    /// work is excluded — it was thrown away. Compare with
    /// [`Self::busy_fraction`].
    pub fn utilization(&self, n_cores: usize) -> f64 {
        self.occupancy(n_cores, false)
    }

    /// Fraction of core-time that was *occupied*, useful or not: includes
    /// killed attempts (node-death victims, speculative losers). The gap
    /// `busy_fraction - utilization` is the core-time lost to failures.
    pub fn busy_fraction(&self, n_cores: usize) -> f64 {
        self.occupancy(n_cores, true)
    }

    fn occupancy(&self, n_cores: usize, include_killed: bool) -> f64 {
        let span = self.span();
        if span <= 0.0 || n_cores == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .events
            .iter()
            .filter(|e| e.occupies_core() && (include_killed || !e.killed))
            .map(|e| e.end_s - e.start_s)
            .sum();
        busy / (n_cores as f64 * span)
    }

    /// Render a text Gantt chart: one row per core, `width` columns of
    /// virtual time, `#` for busy, `x` for a killed attempt, `.` for idle.
    /// Only core-occupying (task) events are drawn.
    pub fn gantt(&self, n_cores: usize, width: usize) -> String {
        assert!(width >= 1);
        let span = self.span().max(f64::MIN_POSITIVE);
        let mut rows = vec![vec![b'.'; width]; n_cores];
        for e in &self.events {
            if e.core >= n_cores || !e.occupies_core() {
                continue;
            }
            // A zero-duration event at the span boundary maps to the last
            // cell: clamp the floor into range *first*, so `a + 1 <= width`
            // always holds and the cell range below never inverts.
            let a = ((e.start_s / span) * width as f64).floor() as usize;
            let a = a.min(width - 1);
            let b = (((e.end_s / span) * width as f64).ceil() as usize).clamp(a + 1, width);
            let mark = if e.killed { b'x' } else { b'#' };
            for cell in &mut rows[e.core][a..b] {
                *cell = mark;
            }
        }
        let mut out = String::new();
        for (c, row) in rows.iter().enumerate() {
            out.push_str(&format!("core {c:>3} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!("          0 .. {:.3}s\n", span));
        out
    }

    /// Serialize as CSV, one row per event, for external plotting. The
    /// `from_node`/`to_node`/`bytes`/`dest_nodes` columns are empty for
    /// kinds they do not apply to. Labels and phases must not contain
    /// commas or newlines (engine-internal identifiers never do).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for e in &self.events {
            let (label, speculative, from_node, to_node, bytes, dest_nodes) = match &e.kind {
                EventKind::Task { label, speculative } => (
                    self.resolve(*label).to_string(),
                    speculative.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ),
                EventKind::Fetch {
                    from_node,
                    to_node,
                    bytes,
                } => (
                    "fetch".into(),
                    String::new(),
                    from_node.to_string(),
                    to_node.to_string(),
                    bytes.to_string(),
                    String::new(),
                ),
                EventKind::Broadcast { bytes, dest_nodes } => (
                    "broadcast".into(),
                    String::new(),
                    String::new(),
                    String::new(),
                    bytes.to_string(),
                    dest_nodes.to_string(),
                ),
                EventKind::Recovery { label } | EventKind::Fenced { label } => (
                    self.resolve(*label).to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ),
                // Memory events reuse the from_node column for their node.
                EventKind::Spill { node, bytes } => (
                    "spill".into(),
                    String::new(),
                    node.to_string(),
                    String::new(),
                    bytes.to_string(),
                    String::new(),
                ),
                EventKind::Evict { node, bytes } => (
                    "evict".into(),
                    String::new(),
                    node.to_string(),
                    String::new(),
                    bytes.to_string(),
                    String::new(),
                ),
                EventKind::OomKill { node } => (
                    "oom-kill".into(),
                    String::new(),
                    node.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                ),
                EventKind::Backpressure { node } => (
                    "backpressure".into(),
                    String::new(),
                    node.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                ),
                // Service events reuse from_node for the tenant and
                // to_node for the job id.
                EventKind::Enqueue { tenant, job }
                | EventKind::Admit { tenant, job }
                | EventKind::Reject { tenant, job } => (
                    e.kind.kind_name().into(),
                    String::new(),
                    tenant.to_string(),
                    job.to_string(),
                    String::new(),
                    String::new(),
                ),
            };
            let phase = self.phase_of(e);
            debug_assert!(!label.contains(',') && !phase.contains(','));
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                e.task,
                e.core,
                e.start_s,
                e.end_s,
                e.killed,
                e.kind.kind_name(),
                label,
                phase,
                e.ready_s,
                speculative,
                from_node,
                to_node,
                if matches!(e.kind, EventKind::Broadcast { .. }) {
                    format!("{bytes};{dest_nodes}")
                } else {
                    bytes.clone()
                },
            ));
        }
        out
    }

    /// Parse a trace back from [`Self::to_csv`] output (exact round-trip:
    /// `f64` values are printed with Rust's shortest-round-trip formatting;
    /// symbol ids may differ from the source trace but equality compares
    /// resolved strings).
    pub fn from_csv(csv: &str) -> Result<Trace, String> {
        let mut lines = csv.lines();
        match lines.next() {
            Some(h) if h == CSV_HEADER => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut t = Trace::default();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 13 {
                return Err(format!("row {i}: expected 13 fields, got {}", f.len()));
            }
            let num = |s: &str, what: &str| -> Result<f64, String> {
                s.parse().map_err(|_| format!("row {i}: bad {what}: {s}"))
            };
            let idx = |s: &str, what: &str| -> Result<usize, String> {
                s.parse().map_err(|_| format!("row {i}: bad {what}: {s}"))
            };
            let kind = match f[5] {
                "task" => EventKind::Task {
                    label: t.intern(f[6]),
                    speculative: f[9] == "true",
                },
                "fetch" => EventKind::Fetch {
                    from_node: idx(f[10], "from_node")?,
                    to_node: idx(f[11], "to_node")?,
                    bytes: f[12]
                        .parse()
                        .map_err(|_| format!("row {i}: bad bytes: {}", f[12]))?,
                },
                "broadcast" => {
                    let (b, d) = f[12]
                        .split_once(';')
                        .ok_or_else(|| format!("row {i}: bad broadcast payload: {}", f[12]))?;
                    EventKind::Broadcast {
                        bytes: b.parse().map_err(|_| format!("row {i}: bad bytes: {b}"))?,
                        dest_nodes: idx(d, "dest_nodes")?,
                    }
                }
                "recovery" => EventKind::Recovery {
                    label: t.intern(f[6]),
                },
                "fenced" => EventKind::Fenced {
                    label: t.intern(f[6]),
                },
                "spill" => EventKind::Spill {
                    node: idx(f[10], "node")?,
                    bytes: f[12]
                        .parse()
                        .map_err(|_| format!("row {i}: bad bytes: {}", f[12]))?,
                },
                "evict" => EventKind::Evict {
                    node: idx(f[10], "node")?,
                    bytes: f[12]
                        .parse()
                        .map_err(|_| format!("row {i}: bad bytes: {}", f[12]))?,
                },
                "oomkill" => EventKind::OomKill {
                    node: idx(f[10], "node")?,
                },
                "backpressure" => EventKind::Backpressure {
                    node: idx(f[10], "node")?,
                },
                "enqueue" => EventKind::Enqueue {
                    tenant: idx(f[10], "tenant")?,
                    job: idx(f[11], "job")?,
                },
                "admit" => EventKind::Admit {
                    tenant: idx(f[10], "tenant")?,
                    job: idx(f[11], "job")?,
                },
                "reject" => EventKind::Reject {
                    tenant: idx(f[10], "tenant")?,
                    job: idx(f[11], "job")?,
                },
                other => return Err(format!("row {i}: unknown kind: {other}")),
            };
            let phase = t.intern(f[7]);
            t.record(TraceEvent {
                task: idx(f[0], "task")?,
                core: idx(f[1], "core")?,
                start_s: num(f[2], "start_s")?,
                end_s: num(f[3], "end_s")?,
                killed: f[4] == "true",
                ready_s: num(f[8], "ready_s")?,
                phase,
                kind,
            });
        }
        Ok(t)
    }
}

const CSV_HEADER: &str =
    "task,core,start_s,end_s,killed,kind,label,phase,ready_s,speculative,from_node,to_node,bytes";

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0);
        t.push(1, 1, 0.0, 0.5);
        t.push(2, 1, 0.5, 2.0);
        t
    }

    /// Test helper: record a typed event, interning the phase string.
    fn rec(
        t: &mut Trace,
        task: usize,
        core: usize,
        span: (f64, f64),
        phase: &str,
        kind: EventKind,
    ) {
        let phase = t.intern(phase);
        t.record(TraceEvent {
            task,
            core,
            start_s: span.0,
            end_s: span.1,
            killed: false,
            ready_s: span.0,
            phase,
            kind,
        });
    }

    #[test]
    fn span_and_utilization() {
        let t = trace();
        assert_eq!(t.span(), 2.0);
        // busy = 1.0 + 0.5 + 1.5 = 3.0 over 2 cores × 2.0s.
        assert!((t.utilization(2) - 0.75).abs() < 1e-12);
        assert_eq!(Trace::default().utilization(2), 0.0);
    }

    #[test]
    fn span_is_maintained_incrementally() {
        let mut t = Trace::default();
        assert_eq!(t.span(), 0.0);
        t.push(0, 0, 0.0, 3.0);
        t.push(1, 1, 0.0, 1.0); // earlier end must not shrink the span
        assert_eq!(t.span(), 3.0);
        t.push(2, 0, 3.0, 4.5);
        assert_eq!(t.span(), 4.5);
    }

    #[test]
    fn interning_is_stable_and_resolves() {
        let mut t = Trace::default();
        assert_eq!(t.intern(""), 0, "empty string is pre-interned as 0");
        let a = t.intern("map");
        let b = t.intern("reduce");
        assert_ne!(a, b);
        assert_eq!(t.intern("map"), a, "same string, same sym");
        assert_eq!(t.resolve(a), "map");
        assert_eq!(t.resolve(b), "reduce");
        assert_eq!(t.resolve(999), "", "unknown syms resolve to empty");
    }

    #[test]
    fn equality_is_by_resolved_strings_not_sym_ids() {
        // Same events, interned in different orders → different ids, but
        // the traces must still compare equal.
        let mut a = Trace::default();
        let (m, s0) = (a.intern("map"), a.intern("stage-0"));
        rec(
            &mut a,
            0,
            0,
            (0.0, 1.0),
            "stage-0",
            EventKind::Task {
                label: m,
                speculative: false,
            },
        );
        let _ = (m, s0);
        let mut b = Trace::default();
        let _decoy = b.intern("reduce"); // shifts ids
        let m2 = b.intern("map");
        rec(
            &mut b,
            0,
            0,
            (0.0, 1.0),
            "stage-0",
            EventKind::Task {
                label: m2,
                speculative: false,
            },
        );
        assert_eq!(a, b);
        // Differing labels break equality even with equal ids.
        let mut c = Trace::default();
        let r = c.intern("reduce");
        rec(
            &mut c,
            0,
            0,
            (0.0, 1.0),
            "stage-0",
            EventKind::Task {
                label: r,
                speculative: false,
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn sort_for_determinism_orders_and_renumbers() {
        let mut t = Trace::default();
        let b = t.intern("beta");
        let a = t.intern("alpha");
        rec(
            &mut t,
            7,
            1,
            (1.0, 2.0),
            "",
            EventKind::Task {
                label: b,
                speculative: false,
            },
        );
        rec(
            &mut t,
            9,
            0,
            (0.0, 1.0),
            "",
            EventKind::Task {
                label: a,
                speculative: false,
            },
        );
        // Same (start, end, core): resolved-label order decides, so
        // "alpha" must come before "beta" even though its sym id is larger.
        rec(
            &mut t,
            3,
            2,
            (0.0, 1.0),
            "",
            EventKind::Task {
                label: b,
                speculative: false,
            },
        );
        rec(
            &mut t,
            4,
            2,
            (0.0, 1.0),
            "",
            EventKind::Task {
                label: a,
                speculative: false,
            },
        );
        t.sort_for_determinism();
        let labels: Vec<&str> = t.events.iter().map(|e| t.label_of(e)).collect();
        assert_eq!(labels, vec!["alpha", "alpha", "beta", "beta"]);
        let ids: Vec<usize> = t.events.iter().map(|e| e.task).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(t.events[0].core, 0, "time order before label order");
    }

    #[test]
    fn sampled_traces_declare_themselves() {
        let mut t = Trace::default();
        assert!(!t.is_sampled());
        assert_eq!(t.sample_stride(), 1);
        t.set_sample_stride(16);
        assert!(t.is_sampled());
        t.set_sample_stride(0); // clamped: stride 0 means "record all"
        assert_eq!(t.sample_stride(), 1);
    }

    #[test]
    fn utilization_excludes_killed_but_busy_fraction_counts_them() {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0); // useful
        t.push_killed(1, 1, 0.0, 1.0); // lost work
        t.push(2, 1, 1.0, 2.0); // useful rerun
                                // span 2.0, 2 cores: useful = 2.0 of 4.0; occupied = 3.0 of 4.0.
        assert!((t.utilization(2) - 0.5).abs() < 1e-12);
        assert!((t.busy_fraction(2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn non_task_events_do_not_count_as_core_time() {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0);
        rec(
            &mut t,
            1,
            0,
            (0.0, 1.0),
            "shuffle",
            EventKind::Fetch {
                from_node: 0,
                to_node: 1,
                bytes: 100,
            },
        );
        assert!((t.utilization(1) - 1.0).abs() < 1e-12);
        assert!(!t.gantt(1, 4).contains('x'));
    }

    #[test]
    fn gantt_renders_rows() {
        let g = trace().gantt(2, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("core   0 |#####"));
        assert!(lines[1].contains('#'));
        assert!(lines[2].contains("2.000"));
    }

    #[test]
    fn gantt_zero_duration_event_at_span_boundary_does_not_panic() {
        // Regression: an event with start_s == span produced
        // `a + 1 > width` and the old `clamp(a + 1, width)` panicked.
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 2.0);
        t.push(1, 1, 2.0, 2.0); // zero-duration, exactly at the makespan
        let g = t.gantt(2, 10);
        assert!(g.lines().nth(1).unwrap().ends_with('#'));

        // All-zero-duration trace (Fig. 2 zero-workload shape).
        let mut z = Trace::default();
        z.push(0, 0, 0.0, 0.0);
        z.push(1, 0, 0.0, 0.0);
        let _ = z.gantt(1, 5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace().to_csv();
        assert!(csv.starts_with(CSV_HEADER));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn csv_round_trips_all_kinds() {
        let mut t = trace();
        t.push_killed(3, 0, 1.0, 1.25);
        rec(
            &mut t,
            4,
            1,
            (0.125, 0.375),
            "shuffle",
            EventKind::Fetch {
                from_node: 0,
                to_node: 1,
                bytes: 4096,
            },
        );
        // ready_s < start_s on this one: patch it after the helper.
        t.events.last_mut().unwrap().ready_s = 0.1;
        rec(
            &mut t,
            5,
            0,
            (0.0, 0.5),
            "broadcast",
            EventKind::Broadcast {
                bytes: 1 << 20,
                dest_nodes: 3,
            },
        );
        let recompute = t.intern("recompute");
        rec(
            &mut t,
            6,
            2,
            (0.5, 0.75),
            "recovery",
            EventKind::Recovery { label: recompute },
        );
        rec(
            &mut t,
            7,
            0,
            (0.75, 1.0),
            "shuffle",
            EventKind::Spill {
                node: 1,
                bytes: 2048,
            },
        );
        rec(
            &mut t,
            8,
            0,
            (1.0, 1.0),
            "cache",
            EventKind::Evict {
                node: 0,
                bytes: 512,
            },
        );
        rec(
            &mut t,
            9,
            3,
            (1.5, 1.5),
            "memory",
            EventKind::OomKill { node: 1 },
        );
        rec(
            &mut t,
            10,
            0,
            (1.5, 1.5),
            "service",
            EventKind::Enqueue { tenant: 2, job: 17 },
        );
        rec(
            &mut t,
            11,
            0,
            (1.75, 1.75),
            "service",
            EventKind::Admit { tenant: 2, job: 17 },
        );
        t.events.last_mut().unwrap().ready_s = 1.5; // queue wait survives
        rec(
            &mut t,
            12,
            0,
            (1.75, 1.75),
            "service",
            EventKind::Reject { tenant: 3, job: 18 },
        );
        t.events.last_mut().unwrap().killed = true;
        rec(
            &mut t,
            13,
            0,
            (2.0, 2.5),
            "stream",
            EventKind::Backpressure { node: 1 },
        );
        let back = Trace::from_csv(&t.to_csv()).expect("round trip");
        assert_eq!(back, t);
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(Trace::from_csv("nope\n1,2,3").is_err());
        let bad_row = format!("{CSV_HEADER}\n1,2,3\n");
        assert!(Trace::from_csv(&bad_row).is_err());
    }

    #[test]
    fn killed_attempts_render_distinctly() {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0);
        t.push_killed(1, 1, 0.0, 0.5);
        assert!(t.events[1].killed);
        let g = t.gantt(2, 8);
        assert!(g.contains('x'), "killed attempt must render as x:\n{g}");
        assert!(t.to_csv().contains("true"));
    }
}
