//! Execution traces: an optional per-task record of the simulated
//! schedule, renderable as a text Gantt chart — the visibility tool for
//! debugging framework scheduling behaviour (stage barriers, stragglers,
//! dispatch serialization).

/// One scheduled task instance.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    pub task: usize,
    pub core: usize,
    pub start_s: f64,
    pub end_s: f64,
    /// True if this attempt was cut short by a node death (its interval
    /// ends at the death time, and the work was lost).
    pub killed: bool,
}

/// A recorded schedule.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    pub fn push(&mut self, task: usize, core: usize, start_s: f64, end_s: f64) {
        debug_assert!(end_s >= start_s);
        self.events.push(TraceEvent {
            task,
            core,
            start_s,
            end_s,
            killed: false,
        });
    }

    /// Record a task attempt killed by a node death at `died_at`.
    pub fn push_killed(&mut self, task: usize, core: usize, start_s: f64, died_at: f64) {
        debug_assert!(died_at >= start_s);
        self.events.push(TraceEvent {
            task,
            core,
            start_s,
            end_s: died_at,
            killed: true,
        });
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Makespan covered by the trace.
    pub fn span(&self) -> f64 {
        self.events.iter().map(|e| e.end_s).fold(0.0, f64::max)
    }

    /// Core utilization: busy time / (cores × makespan).
    pub fn utilization(&self, n_cores: usize) -> f64 {
        let span = self.span();
        if span <= 0.0 || n_cores == 0 {
            return 0.0;
        }
        let busy: f64 = self.events.iter().map(|e| e.end_s - e.start_s).sum();
        busy / (n_cores as f64 * span)
    }

    /// Render a text Gantt chart: one row per core, `width` columns of
    /// virtual time, `#` for busy, `x` for a killed attempt, `.` for idle.
    pub fn gantt(&self, n_cores: usize, width: usize) -> String {
        assert!(width >= 1);
        let span = self.span().max(f64::MIN_POSITIVE);
        let mut rows = vec![vec![b'.'; width]; n_cores];
        for e in &self.events {
            if e.core >= n_cores {
                continue;
            }
            let a = ((e.start_s / span) * width as f64).floor() as usize;
            let b = (((e.end_s / span) * width as f64).ceil() as usize).clamp(a + 1, width);
            let mark = if e.killed { b'x' } else { b'#' };
            for cell in &mut rows[e.core][a.min(width - 1)..b] {
                *cell = mark;
            }
        }
        let mut out = String::new();
        for (c, row) in rows.iter().enumerate() {
            out.push_str(&format!("core {c:>3} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!("          0 .. {:.3}s\n", span));
        out
    }

    /// Serialize as CSV (`task,core,start_s,end_s,killed`), for external
    /// plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("task,core,start_s,end_s,killed\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.task, e.core, e.start_s, e.end_s, e.killed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0);
        t.push(1, 1, 0.0, 0.5);
        t.push(2, 1, 0.5, 2.0);
        t
    }

    #[test]
    fn span_and_utilization() {
        let t = trace();
        assert_eq!(t.span(), 2.0);
        // busy = 1.0 + 0.5 + 1.5 = 3.0 over 2 cores × 2.0s.
        assert!((t.utilization(2) - 0.75).abs() < 1e-12);
        assert_eq!(Trace::default().utilization(2), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let g = trace().gantt(2, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("core   0 |#####"));
        assert!(lines[1].contains('#'));
        assert!(lines[2].contains("2.000"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace().to_csv();
        assert!(csv.starts_with("task,core,start_s,end_s,killed\n"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn killed_attempts_render_distinctly() {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0);
        t.push_killed(1, 1, 0.0, 0.5);
        assert!(t.events[1].killed);
        let g = t.gantt(2, 8);
        assert!(g.contains('x'), "killed attempt must render as x:\n{g}");
        assert!(t.to_csv().contains("true"));
    }
}
